//! Property tests: the range-splitting geolocation builder against a
//! brute-force per-address model.

use proptest::prelude::*;
use ruwhere_geo::GeoDbBuilder;
use ruwhere_types::Country;
use std::net::Ipv4Addr;

const COUNTRIES: [Country; 4] = [Country::RU, Country::US, Country::DE, Country::SE];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn builder_matches_bruteforce_model(
        // Confine to a small window so overlaps are frequent.
        ops in proptest::collection::vec((0u32..512, 0u32..512, 0usize..4), 1..25),
        probes in proptest::collection::vec(0u32..600, 32),
    ) {
        const BASE: u32 = 0x0A000000; // 10.0.0.0
        let mut builder = GeoDbBuilder::new();
        let mut model: Vec<Option<Country>> = vec![None; 600];
        for (a, b, c) in &ops {
            let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
            let country = COUNTRIES[*c];
            builder.assign(
                Ipv4Addr::from(BASE + lo),
                Ipv4Addr::from(BASE + hi),
                country,
            );
            for x in lo..=hi {
                if (x as usize) < model.len() {
                    model[x as usize] = Some(country);
                }
            }
        }
        let db = builder.build();
        for &p in &probes {
            let got = db.lookup(Ipv4Addr::from(BASE + p));
            prop_assert_eq!(got, model[p as usize], "mismatch at offset {}", p);
        }
    }

    #[test]
    fn coverage_equals_model_coverage(
        ops in proptest::collection::vec((0u32..256, 0u32..256, 0usize..4), 1..15),
    ) {
        const BASE: u32 = 0xC0000200; // 192.0.2.0
        let mut builder = GeoDbBuilder::new();
        let mut covered = vec![false; 256];
        for (a, b, c) in &ops {
            let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
            builder.assign(Ipv4Addr::from(BASE + lo), Ipv4Addr::from(BASE + hi), COUNTRIES[*c]);
            for x in lo..=hi {
                covered[x as usize] = true;
            }
        }
        let db = builder.build();
        let expected = covered.iter().filter(|c| **c).count() as u64;
        prop_assert_eq!(db.coverage(), expected);
    }

    #[test]
    fn ranges_never_overlap(
        ops in proptest::collection::vec((0u32..1024, 0u32..1024, 0usize..4), 1..30),
    ) {
        let mut builder = GeoDbBuilder::new();
        for (a, b, c) in &ops {
            let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
            builder.assign(Ipv4Addr::from(lo), Ipv4Addr::from(hi), COUNTRIES[*c]);
        }
        let db = builder.build();
        let ranges: Vec<(Ipv4Addr, Ipv4Addr, Country)> = db.iter().collect();
        for w in ranges.windows(2) {
            let (_, end_a, c_a) = w[0];
            let (start_b, _, c_b) = w[1];
            prop_assert!(u32::from(end_a) < u32::from(start_b), "ranges overlap or touch out of order");
            // Adjacent equal-country ranges must have been merged.
            if u32::from(end_a) + 1 == u32::from(start_b) {
                prop_assert_ne!(c_a, c_b, "unmerged adjacent ranges with equal country");
            }
        }
    }
}
