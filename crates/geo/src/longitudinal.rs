//! Effective-dated stacks of geolocation snapshots.

use crate::db::GeoDb;
use ruwhere_types::{Country, Date};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A time series of [`GeoDb`] snapshots, each effective from its date until
/// superseded. Mirrors how the paper uses "contemporaneous results from the
/// IP2location service": lookups are resolved against the snapshot that was
/// current on the measurement date.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LongitudinalGeoDb {
    /// (effective date, snapshot), sorted by date.
    snapshots: Vec<(Date, GeoDb)>,
}

impl LongitudinalGeoDb {
    /// Empty database (all lookups return `None`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a snapshot effective from `date`. Snapshots may be added out of
    /// order; a snapshot with a duplicate date replaces the earlier one.
    pub fn add_snapshot(&mut self, date: Date, db: GeoDb) {
        match self.snapshots.binary_search_by_key(&date, |(d, _)| *d) {
            Ok(i) => self.snapshots[i].1 = db,
            Err(i) => self.snapshots.insert(i, (date, db)),
        }
    }

    /// Number of snapshots.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// The snapshot in force on `date` (latest with effective date ≤ `date`).
    pub fn snapshot_at(&self, date: Date) -> Option<&GeoDb> {
        let idx = self.snapshots.partition_point(|(d, _)| *d <= date);
        (idx > 0).then(|| &self.snapshots[idx - 1].1)
    }

    /// Geolocate `ip` as of `date`.
    pub fn lookup(&self, date: Date, ip: Ipv4Addr) -> Option<Country> {
        self.snapshot_at(date)?.lookup(ip)
    }

    /// Effective dates, in order.
    pub fn dates(&self) -> impl Iterator<Item = Date> + '_ {
        self.snapshots.iter().map(|(d, _)| *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::GeoDbBuilder;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn db(country: Country) -> GeoDb {
        let mut b = GeoDbBuilder::new();
        b.assign(ip("10.0.0.0"), ip("10.0.0.255"), country);
        b.build()
    }

    #[test]
    fn empty_db() {
        let l = LongitudinalGeoDb::new();
        assert_eq!(l.lookup(Date::from_ymd(2022, 1, 1), ip("10.0.0.1")), None);
        assert!(l.snapshot_at(Date::from_ymd(2022, 1, 1)).is_none());
    }

    #[test]
    fn effective_dating() {
        let mut l = LongitudinalGeoDb::new();
        l.add_snapshot(Date::from_ymd(2022, 1, 1), db(Country::SE));
        l.add_snapshot(Date::from_ymd(2022, 3, 15), db(Country::RU));

        // Before any snapshot: unknown.
        assert_eq!(l.lookup(Date::from_ymd(2021, 12, 31), ip("10.0.0.1")), None);
        // January through March 14: Swedish.
        assert_eq!(
            l.lookup(Date::from_ymd(2022, 2, 1), ip("10.0.0.1")),
            Some(Country::SE)
        );
        assert_eq!(
            l.lookup(Date::from_ymd(2022, 3, 14), ip("10.0.0.1")),
            Some(Country::SE)
        );
        // From the 15th: Russian. This lag-shaped behaviour is the paper's
        // footnote-5 artifact: the infrastructure moved on March 3 but the
        // database only reflects it at the next snapshot.
        assert_eq!(
            l.lookup(Date::from_ymd(2022, 3, 15), ip("10.0.0.1")),
            Some(Country::RU)
        );
        assert_eq!(
            l.lookup(Date::from_ymd(2022, 5, 25), ip("10.0.0.1")),
            Some(Country::RU)
        );
    }

    #[test]
    fn out_of_order_insert() {
        let mut l = LongitudinalGeoDb::new();
        l.add_snapshot(Date::from_ymd(2022, 3, 1), db(Country::RU));
        l.add_snapshot(Date::from_ymd(2022, 1, 1), db(Country::SE));
        assert_eq!(l.snapshot_count(), 2);
        let dates: Vec<Date> = l.dates().collect();
        assert!(dates[0] < dates[1]);
        assert_eq!(
            l.lookup(Date::from_ymd(2022, 2, 1), ip("10.0.0.1")),
            Some(Country::SE)
        );
    }

    #[test]
    fn duplicate_date_replaces() {
        let mut l = LongitudinalGeoDb::new();
        l.add_snapshot(Date::from_ymd(2022, 1, 1), db(Country::SE));
        l.add_snapshot(Date::from_ymd(2022, 1, 1), db(Country::DE));
        assert_eq!(l.snapshot_count(), 1);
        assert_eq!(
            l.lookup(Date::from_ymd(2022, 1, 2), ip("10.0.0.1")),
            Some(Country::DE)
        );
    }
}
