//! A single geolocation snapshot: sorted non-overlapping ranges → country.

use ruwhere_netsim::{Ipv4Net, Topology};
use ruwhere_types::Country;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Builder that accepts possibly-overlapping range assignments; later
/// assignments override earlier ones (the vendor's latest registry data
/// wins), with automatic range splitting.
#[derive(Debug, Clone, Default)]
pub struct GeoDbBuilder {
    /// start → (end inclusive, country)
    ranges: BTreeMap<u32, (u32, Country)>,
}

impl GeoDbBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assign `[start, end]` (inclusive) to `country`, overriding any
    /// overlapping earlier assignment.
    pub fn assign(&mut self, start: Ipv4Addr, end: Ipv4Addr, country: Country) -> &mut Self {
        let (s, e) = (u32::from(start), u32::from(end));
        if s > e {
            return self;
        }
        self.assign_u32(s, e, country)
    }

    /// Assign a CIDR prefix to `country`.
    pub fn assign_net(&mut self, net: Ipv4Net, country: Country) -> &mut Self {
        let s = net.bits();
        let e = s + (net.size() - 1) as u32;
        self.assign_u32(s, e, country)
    }

    fn assign_u32(&mut self, s: u32, e: u32, country: Country) -> &mut Self {
        // Collect every existing range overlapping [s, e].
        let mut affected: Vec<(u32, (u32, Country))> = Vec::new();
        // Candidate starting before s that might reach into [s, e]:
        if let Some((&ps, &(pe, pc))) = self.ranges.range(..=s).next_back() {
            if pe >= s {
                affected.push((ps, (pe, pc)));
            }
        }
        for (&rs, &(re, rc)) in self.ranges.range(s..=e) {
            if affected.first().map(|(a, _)| *a) != Some(rs) {
                affected.push((rs, (re, rc)));
            }
        }
        for (rs, (re, rc)) in affected {
            self.ranges.remove(&rs);
            // Keep the non-overlapped left part.
            if rs < s {
                self.ranges.insert(rs, (s - 1, rc));
            }
            // Keep the non-overlapped right part.
            if re > e {
                self.ranges.insert(e + 1, (re, rc));
            }
        }
        self.ranges.insert(s, (e, country));
        self
    }

    /// Snapshot the current topology's announced prefixes: each prefix
    /// geolocates to its origin AS's country. This is how our simulated
    /// "vendor" compiles its database.
    pub fn from_topology(topo: &Topology) -> Self {
        let mut b = Self::new();
        // Announce order matters for overlaps exactly as in the FIB: more
        // recent announcements override older data.
        for &(net, asn) in topo.prefixes() {
            if let Some(info) = topo.as_info(asn) {
                b.assign_net(net, info.country);
            }
        }
        b
    }

    /// Finalize into an immutable, lookup-optimized [`GeoDb`], merging
    /// adjacent ranges with equal countries.
    pub fn build(&self) -> GeoDb {
        let mut starts = Vec::with_capacity(self.ranges.len());
        let mut ends = Vec::with_capacity(self.ranges.len());
        let mut countries: Vec<Country> = Vec::with_capacity(self.ranges.len());
        for (&s, &(e, c)) in &self.ranges {
            if let (Some(&last_end), Some(&last_c)) = (ends.last(), countries.last()) {
                if last_c == c && last_end as u64 + 1 == s as u64 {
                    *ends.last_mut().expect("nonempty") = e;
                    continue;
                }
            }
            starts.push(s);
            ends.push(e);
            countries.push(c);
        }
        GeoDb {
            starts,
            ends,
            countries,
        }
    }
}

/// An immutable geolocation snapshot with `O(log n)` lookups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GeoDb {
    starts: Vec<u32>,
    ends: Vec<u32>,
    countries: Vec<Country>,
}

impl GeoDb {
    /// Country for `ip`, or `None` for unassigned space.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<Country> {
        let x = u32::from(ip);
        let idx = self.starts.partition_point(|&s| s <= x);
        if idx == 0 {
            return None;
        }
        (self.ends[idx - 1] >= x).then(|| self.countries[idx - 1])
    }

    /// Number of (merged) ranges.
    pub fn range_count(&self) -> usize {
        self.starts.len()
    }

    /// Total addresses covered.
    pub fn coverage(&self) -> u64 {
        self.starts
            .iter()
            .zip(&self.ends)
            .map(|(&s, &e)| u64::from(e) - u64::from(s) + 1)
            .sum()
    }

    /// Iterate `(start, end, country)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, Ipv4Addr, Country)> + '_ {
        self.starts
            .iter()
            .zip(&self.ends)
            .zip(&self.countries)
            .map(|((&s, &e), &c)| (Ipv4Addr::from(s), Ipv4Addr::from(e), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn simple_assign_lookup() {
        let mut b = GeoDbBuilder::new();
        b.assign(ip("10.0.0.0"), ip("10.255.255.255"), Country::RU);
        b.assign(ip("52.0.0.0"), ip("52.0.0.255"), Country::US);
        let db = b.build();
        assert_eq!(db.lookup(ip("10.1.2.3")), Some(Country::RU));
        assert_eq!(db.lookup(ip("52.0.0.128")), Some(Country::US));
        assert_eq!(db.lookup(ip("52.0.1.0")), None);
        assert_eq!(db.lookup(ip("9.255.255.255")), None);
        assert_eq!(db.lookup(ip("11.0.0.0")), None);
    }

    #[test]
    fn boundaries_inclusive() {
        let mut b = GeoDbBuilder::new();
        b.assign(ip("192.0.2.10"), ip("192.0.2.20"), Country::DE);
        let db = b.build();
        assert_eq!(db.lookup(ip("192.0.2.10")), Some(Country::DE));
        assert_eq!(db.lookup(ip("192.0.2.20")), Some(Country::DE));
        assert_eq!(db.lookup(ip("192.0.2.9")), None);
        assert_eq!(db.lookup(ip("192.0.2.21")), None);
    }

    #[test]
    fn override_splits_ranges() {
        let mut b = GeoDbBuilder::new();
        b.assign(ip("10.0.0.0"), ip("10.0.0.255"), Country::RU);
        // Re-assign the middle to NL: the RU range must split around it.
        b.assign(ip("10.0.0.100"), ip("10.0.0.199"), Country::NL);
        let db = b.build();
        assert_eq!(db.lookup(ip("10.0.0.50")), Some(Country::RU));
        assert_eq!(db.lookup(ip("10.0.0.100")), Some(Country::NL));
        assert_eq!(db.lookup(ip("10.0.0.199")), Some(Country::NL));
        assert_eq!(db.lookup(ip("10.0.0.200")), Some(Country::RU));
        assert_eq!(db.range_count(), 3);
    }

    #[test]
    fn override_swallows_contained_ranges() {
        let mut b = GeoDbBuilder::new();
        b.assign(ip("10.0.0.10"), ip("10.0.0.19"), Country::DE);
        b.assign(ip("10.0.0.30"), ip("10.0.0.39"), Country::SE);
        b.assign(ip("10.0.0.0"), ip("10.0.0.255"), Country::RU);
        let db = b.build();
        assert_eq!(db.lookup(ip("10.0.0.15")), Some(Country::RU));
        assert_eq!(db.lookup(ip("10.0.0.35")), Some(Country::RU));
        assert_eq!(db.range_count(), 1);
    }

    #[test]
    fn override_partial_overlap_left_and_right() {
        let mut b = GeoDbBuilder::new();
        b.assign(ip("10.0.0.0"), ip("10.0.0.99"), Country::RU);
        b.assign(ip("10.0.0.50"), ip("10.0.0.149"), Country::NL);
        let db = b.build();
        assert_eq!(db.lookup(ip("10.0.0.49")), Some(Country::RU));
        assert_eq!(db.lookup(ip("10.0.0.50")), Some(Country::NL));
        assert_eq!(db.lookup(ip("10.0.0.149")), Some(Country::NL));
        assert_eq!(db.lookup(ip("10.0.0.150")), None);

        let mut b = GeoDbBuilder::new();
        b.assign(ip("10.0.0.50"), ip("10.0.0.149"), Country::NL);
        b.assign(ip("10.0.0.0"), ip("10.0.0.99"), Country::RU);
        let db = b.build();
        assert_eq!(db.lookup(ip("10.0.0.99")), Some(Country::RU));
        assert_eq!(db.lookup(ip("10.0.0.100")), Some(Country::NL));
    }

    #[test]
    fn adjacent_same_country_merge() {
        let mut b = GeoDbBuilder::new();
        b.assign(ip("10.0.0.0"), ip("10.0.0.127"), Country::RU);
        b.assign(ip("10.0.0.128"), ip("10.0.0.255"), Country::RU);
        let db = b.build();
        assert_eq!(db.range_count(), 1);
        assert_eq!(db.coverage(), 256);
    }

    #[test]
    fn assign_net_matches_prefix() {
        let mut b = GeoDbBuilder::new();
        b.assign_net("198.51.100.0/24".parse().unwrap(), Country::SE);
        let db = b.build();
        assert_eq!(db.lookup(ip("198.51.100.0")), Some(Country::SE));
        assert_eq!(db.lookup(ip("198.51.100.255")), Some(Country::SE));
        assert_eq!(db.lookup(ip("198.51.101.0")), None);
        assert_eq!(db.coverage(), 256);
    }

    #[test]
    fn inverted_range_ignored() {
        let mut b = GeoDbBuilder::new();
        b.assign(ip("10.0.0.10"), ip("10.0.0.5"), Country::RU);
        assert_eq!(b.build().range_count(), 0);
    }

    #[test]
    fn from_topology() {
        use ruwhere_netsim::AsInfo;
        use ruwhere_types::{Asn, SeedTree};
        let mut topo = Topology::new(SeedTree::new(1));
        topo.add_as(AsInfo {
            asn: Asn(1),
            org: "RU-HOST".into(),
            country: Country::RU,
        });
        topo.add_as(AsInfo {
            asn: Asn(2),
            org: "NL-HOST".into(),
            country: Country::NL,
        });
        topo.announce("5.0.0.0/8".parse().unwrap(), Asn(1));
        topo.announce("31.0.0.0/8".parse().unwrap(), Asn(2));
        let db = GeoDbBuilder::from_topology(&topo).build();
        assert_eq!(db.lookup(ip("5.1.1.1")), Some(Country::RU));
        assert_eq!(db.lookup(ip("31.1.1.1")), Some(Country::NL));
        assert_eq!(db.lookup(ip("99.1.1.1")), None);
    }

    #[test]
    fn top_of_address_space() {
        let mut b = GeoDbBuilder::new();
        b.assign(ip("255.255.255.0"), ip("255.255.255.255"), Country::US);
        let db = b.build();
        assert_eq!(db.lookup(ip("255.255.255.255")), Some(Country::US));
    }
}
