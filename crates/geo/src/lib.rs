//! IP geolocation in the style of the IP2Location database the paper uses.
//!
//! The real IP2Location product is a flat table of *address ranges* (not
//! CIDR prefixes) mapped to countries, refreshed periodically. [`GeoDb`]
//! reproduces that: a sorted, non-overlapping set of `u32` ranges with
//! binary-search lookup; [`LongitudinalGeoDb`] stacks effective-dated
//! snapshots so the analysis can ask "where did this IP geolocate *on this
//! date*?" — the paper's footnote 5 caveat (geolocation updates lag
//! infrastructure moves) falls out of the snapshot cadence naturally.

//! ```
//! use ruwhere_geo::{GeoDbBuilder, LongitudinalGeoDb};
//! use ruwhere_types::{Country, Date};
//!
//! let mut l = LongitudinalGeoDb::new();
//! let mut b = GeoDbBuilder::new();
//! b.assign_net("194.85.0.0/16".parse().unwrap(), Country::SE);
//! l.add_snapshot(Date::from_ymd(2022, 1, 1), b.build());
//! let mut b = GeoDbBuilder::new();
//! b.assign_net("194.85.0.0/16".parse().unwrap(), Country::RU);
//! l.add_snapshot(Date::from_ymd(2022, 3, 15), b.build());
//!
//! let ip = "194.85.61.20".parse().unwrap();
//! assert_eq!(l.lookup(Date::from_ymd(2022, 3, 1), ip), Some(Country::SE));
//! assert_eq!(l.lookup(Date::from_ymd(2022, 3, 20), ip), Some(Country::RU));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod longitudinal;

pub use db::{GeoDb, GeoDbBuilder};
pub use longitudinal::LongitudinalGeoDb;
