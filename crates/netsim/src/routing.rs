//! Longest-prefix-match routing table as a binary trie.

use crate::ip::Ipv4Net;
use std::net::Ipv4Addr;

/// A binary (one bit per level) trie mapping IPv4 prefixes to values.
///
/// Lookup walks at most 32 levels and returns the value of the most specific
/// matching prefix — the standard FIB longest-prefix-match.
///
/// ```
/// use ruwhere_netsim::RoutingTable;
/// let mut t = RoutingTable::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// t.insert("10.1.0.0/16".parse().unwrap(), "fine");
/// assert_eq!(t.lookup("10.1.2.3".parse().unwrap()), Some(&"fine"));
/// assert_eq!(t.lookup("10.9.9.9".parse().unwrap()), Some(&"coarse"));
/// assert_eq!(t.lookup("192.0.2.1".parse().unwrap()), None);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    children: [Option<u32>; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn empty() -> Self {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<V> RoutingTable<V> {
    /// Empty table.
    pub fn new() -> Self {
        RoutingTable {
            nodes: vec![Node::empty()],
            len: 0,
        }
    }

    /// Number of prefixes with a value.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) the value at `net`. Returns the previous value.
    pub fn insert(&mut self, net: Ipv4Net, value: V) -> Option<V> {
        let mut idx = 0usize;
        let bits = net.bits();
        for depth in 0..net.prefix_len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            let next = match self.nodes[idx].children[bit] {
                Some(n) => n as usize,
                None => {
                    self.nodes.push(Node::empty());
                    let n = self.nodes.len() - 1;
                    self.nodes[idx].children[bit] = Some(n as u32);
                    n
                }
            };
            idx = next;
        }
        let old = self.nodes[idx].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove the value at exactly `net`. Returns the removed value.
    pub fn remove(&mut self, net: Ipv4Net) -> Option<V> {
        let mut idx = 0usize;
        let bits = net.bits();
        for depth in 0..net.prefix_len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            idx = self.nodes[idx].children[bit]? as usize;
        }
        let old = self.nodes[idx].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&V> {
        let bits = u32::from(ip);
        let mut idx = 0usize;
        let mut best: Option<&V> = self.nodes[0].value.as_ref();
        for depth in 0..32 {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            match self.nodes[idx].children[bit] {
                Some(next) => {
                    idx = next as usize;
                    if let Some(v) = self.nodes[idx].value.as_ref() {
                        best = Some(v);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-match lookup of a prefix (not LPM).
    pub fn get(&self, net: Ipv4Net) -> Option<&V> {
        let mut idx = 0usize;
        let bits = net.bits();
        for depth in 0..net.prefix_len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            idx = self.nodes[idx].children[bit]? as usize;
        }
        self.nodes[idx].value.as_ref()
    }
}

impl<V> Default for RoutingTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = RoutingTable::new();
        t.insert(net("0.0.0.0/0"), 0);
        t.insert(net("10.0.0.0/8"), 8);
        t.insert(net("10.1.0.0/16"), 16);
        t.insert(net("10.1.2.0/24"), 24);
        t.insert(net("10.1.2.3/32"), 32);
        assert_eq!(t.lookup(ip("10.1.2.3")), Some(&32));
        assert_eq!(t.lookup(ip("10.1.2.4")), Some(&24));
        assert_eq!(t.lookup(ip("10.1.3.1")), Some(&16));
        assert_eq!(t.lookup(ip("10.2.0.1")), Some(&8));
        assert_eq!(t.lookup(ip("11.0.0.1")), Some(&0));
    }

    #[test]
    fn insert_replace_and_remove() {
        let mut t = RoutingTable::new();
        assert_eq!(t.insert(net("192.0.2.0/24"), "a"), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert(net("192.0.2.0/24"), "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(net("192.0.2.0/24")), Some(&"b"));
        assert_eq!(t.remove(net("192.0.2.0/24")), Some("b"));
        assert_eq!(t.len(), 0);
        assert_eq!(t.lookup(ip("192.0.2.1")), None);
        assert_eq!(t.remove(net("192.0.2.0/24")), None);
    }

    #[test]
    fn removal_keeps_covering_prefix() {
        let mut t = RoutingTable::new();
        t.insert(net("10.0.0.0/8"), "big");
        t.insert(net("10.1.0.0/16"), "small");
        assert_eq!(t.lookup(ip("10.1.1.1")), Some(&"small"));
        t.remove(net("10.1.0.0/16"));
        assert_eq!(t.lookup(ip("10.1.1.1")), Some(&"big"));
    }

    #[test]
    fn empty_table() {
        let t: RoutingTable<u8> = RoutingTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("1.2.3.4")), None);
    }

    #[test]
    fn exact_get_is_not_lpm() {
        let mut t = RoutingTable::new();
        t.insert(net("10.0.0.0/8"), 1);
        assert_eq!(t.get(net("10.0.0.0/8")), Some(&1));
        assert_eq!(t.get(net("10.0.0.0/16")), None);
    }

    #[test]
    fn dense_random_consistency() {
        // Cross-check the trie against a brute-force scan on random data.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xDA7A);
        let mut t = RoutingTable::new();
        let mut reference: Vec<(Ipv4Net, u32)> = Vec::new();
        for i in 0..500u32 {
            let addr = Ipv4Addr::from(rng.random::<u32>());
            let len = rng.random_range(4..=28);
            let n = Ipv4Net::new(addr, len).unwrap();
            t.insert(n, i);
            reference.retain(|(rn, _)| *rn != n);
            reference.push((n, i));
        }
        for _ in 0..2000 {
            let probe = Ipv4Addr::from(rng.random::<u32>());
            let expected = reference
                .iter()
                .filter(|(n, _)| n.contains(probe))
                .max_by_key(|(n, _)| n.prefix_len())
                .map(|(_, v)| v);
            assert_eq!(t.lookup(probe), expected, "mismatch at {probe}");
        }
    }
}
