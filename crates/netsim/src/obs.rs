//! Transport-level observability: where virtual time and packets go.
//!
//! [`NetObs`] is the instrumented counterpart of [`NetStats`]: instead of
//! five scalar counters it keeps latency distributions, drop counters
//! split by cause, fault-window occupancy, and a per-AS-pair link table.
//! Like `NetStats` it merges by field-wise addition, so per-lane
//! observations fold into a sweep total that is independent of worker
//! count and merge order.
//!
//! [`NetStats`]: crate::sim::NetStats

use ruwhere_obs::Histogram;
use ruwhere_types::Asn;

/// Per-directed-AS-pair link counters.
///
/// Keys are `(source AS, destination AS)`; a request and its reply count
/// on opposite directions. `delay_sum_us / delivered` is the mean one-way
/// latency actually experienced on the link (topology base + jitter +
/// fault degradation), which is how a link-fault window shows up here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkObs {
    /// One-way packet deliveries over this link.
    pub delivered: u64,
    /// Packets dropped on this link (uniform loss or link fault).
    pub dropped: u64,
    /// Sum of one-way delays of the delivered packets, in virtual µs.
    pub delay_sum_us: u64,
}

impl LinkObs {
    fn merge(&mut self, other: &LinkObs) {
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.delay_sum_us += other.delay_sum_us;
    }
}

/// Per-directed-AS-pair link counters, keyed by `(source AS, dest AS)`.
///
/// A sorted vector rather than a tree map: this table is touched on every
/// delivered packet, and a lane's traffic ping-pongs between the two
/// directions of one path, so a hot-index memo plus binary search beats
/// pointer-chasing through tree nodes. Entries stay sorted by key, so
/// iteration order is deterministic and equality of contents implies
/// equality of the backing vector.
#[derive(Debug, Clone, Default)]
pub struct LinkTable {
    entries: Vec<((Asn, Asn), LinkObs)>,
    /// Indices of the two most recently touched entries. A request and
    /// its reply alternate between the two directions of one path, so a
    /// pair of slots covers a whole exchange without searching. Pure
    /// lookup accelerators: never compared, never exported.
    hot: [usize; 2],
}

impl PartialEq for LinkTable {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for LinkTable {}

impl LinkTable {
    /// The counters for `key`, inserting a zero entry if absent.
    #[inline]
    pub fn get_mut(&mut self, key: (Asn, Asn)) -> &mut LinkObs {
        for slot in self.hot {
            if let Some(e) = self.entries.get(slot) {
                if e.0 == key {
                    return &mut self.entries[slot].1;
                }
            }
        }
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => {
                self.hot = [i, self.hot[0]];
                &mut self.entries[i].1
            }
            Err(i) => {
                self.entries.insert(i, (key, LinkObs::default()));
                // Shifted positions invalidate both memo slots.
                self.hot = [i, i];
                &mut self.entries[i].1
            }
        }
    }

    /// The counters for `key`, if the link has seen traffic.
    pub fn get(&self, key: &(Asn, Asn)) -> Option<&LinkObs> {
        self.entries
            .binary_search_by_key(key, |e| e.0)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Links in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(Asn, Asn), &LinkObs)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of links that have seen traffic.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no link has seen traffic.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn merge(&mut self, other: &LinkTable) {
        for (k, l) in &other.entries {
            self.get_mut(*k).merge(l);
        }
    }
}

/// Transport observability aggregates, all in virtual time.
///
/// Every field merges by addition (histograms bucket-wise), so any merge
/// tree over per-lane instances yields identical totals — the same
/// associativity contract the sweep engine's measurement output holds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetObs {
    /// One-way delay of each delivered packet (virtual µs).
    pub delay_us: Histogram,
    /// Virtual duration of each *successful* request, including the
    /// timeouts of its failed attempts (µs).
    pub request_us: Histogram,
    /// Packets eaten by the uniform loss process.
    pub loss_drops: u64,
    /// Packets eaten by an active link fault's extra-loss process.
    pub fault_drops: u64,
    /// Packets black-holed at the box by an active server fault.
    pub fault_blackholes: u64,
    /// Virtual µs burned on request attempts issued while the destination
    /// sat inside an active server-fault window — the cost of probing a
    /// faulted box.
    pub fault_occupied_us: u64,
    /// Per-directed-AS-pair link counters.
    pub links: LinkTable,
    /// Delay samples not yet folded into [`delay_us`](NetObs::delay_us).
    ///
    /// Recording a sample into a log-linear histogram touches several
    /// cache lines that have gone cold by the time the next packet is
    /// delivered, which made the per-hop record the single largest
    /// instrumentation cost. Deliveries therefore append to this flat
    /// buffer (one warm cache line) and [`flush`](NetObs::flush) folds
    /// the samples in bulk at drain points, where the histogram's lines
    /// stay warm across consecutive records. Always empty outside the
    /// recording hot path: `flush` runs before every merge, take or
    /// export.
    delay_staging: Vec<u64>,
}

impl NetObs {
    /// A fresh empty aggregate.
    pub fn new() -> NetObs {
        NetObs::default()
    }

    /// Record a delivered one-way hop.
    #[inline]
    pub fn hop_delivered(&mut self, from: Asn, to: Asn, delay_us: u64) {
        self.delay_staging.push(delay_us);
        let link = self.links.get_mut((from, to));
        link.delivered += 1;
        link.delay_sum_us += delay_us;
    }

    /// Fold staged delay samples into [`delay_us`](NetObs::delay_us).
    /// Called by every drain point ([`merge`](NetObs::merge), the lane
    /// and network `take_obs`), so readers never observe staged samples.
    pub fn flush(&mut self) {
        for v in self.delay_staging.drain(..) {
            self.delay_us.record(v);
        }
    }

    /// Record a dropped one-way hop; `fault` distinguishes a link-fault
    /// drop from the uniform loss process.
    #[inline]
    pub fn hop_dropped(&mut self, from: Asn, to: Asn, fault: bool) {
        if fault {
            self.fault_drops += 1;
        } else {
            self.loss_drops += 1;
        }
        self.links.get_mut((from, to)).dropped += 1;
    }

    /// Fold another aggregate in (commutative, associative). Flushes this
    /// side's staged samples and folds the other side's, so merging is
    /// safe mid-recording on either side.
    pub fn merge(&mut self, other: &NetObs) {
        self.flush();
        self.delay_us.merge(&other.delay_us);
        for &v in &other.delay_staging {
            self.delay_us.record(v);
        }
        self.request_us.merge(&other.request_us);
        self.loss_drops += other.loss_drops;
        self.fault_drops += other.fault_drops;
        self.fault_blackholes += other.fault_blackholes;
        self.fault_occupied_us += other.fault_occupied_us;
        self.links.merge(&other.links);
    }

    /// Total packets dropped in flight (all causes).
    pub fn total_drops(&self) -> u64 {
        self.loss_drops + self.fault_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_fields() {
        let mut a = NetObs::new();
        a.hop_delivered(Asn(1), Asn(2), 30_000);
        a.hop_dropped(Asn(1), Asn(2), false);
        a.fault_occupied_us = 500;
        let mut b = NetObs::new();
        b.hop_delivered(Asn(1), Asn(2), 40_000);
        b.hop_dropped(Asn(2), Asn(1), true);
        b.fault_blackholes = 2;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");

        assert_eq!(ab.delay_us.count(), 2);
        assert_eq!(ab.total_drops(), 2);
        assert_eq!(ab.loss_drops, 1);
        assert_eq!(ab.fault_drops, 1);
        assert_eq!(ab.fault_blackholes, 2);
        assert_eq!(ab.fault_occupied_us, 500);
        let fwd = ab.links.get(&(Asn(1), Asn(2))).unwrap();
        assert_eq!(
            (fwd.delivered, fwd.dropped, fwd.delay_sum_us),
            (2, 1, 70_000)
        );
        let rev = ab.links.get(&(Asn(2), Asn(1))).unwrap();
        assert_eq!((rev.delivered, rev.dropped), (0, 1));
    }
}
