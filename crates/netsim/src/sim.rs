//! The discrete-event core: virtual time, scheduled datagram delivery,
//! services, and a synchronous client facade.
//!
//! All measurement traffic in the workspace is strict request/response
//! (DNS queries, TLS banner grabs), so the public entry point is
//! [`Network::request`]: it injects a datagram, then drives the event loop
//! until the matching reply arrives at the client's ephemeral port or the
//! timeout expires. Latency, jitter and loss are deterministic functions of
//! the topology seed and a per-packet sequence number.

use crate::fault::FaultPlan;
use crate::obs::NetObs;
use crate::topology::Topology;
use parking_lot::RwLock;
use ruwhere_types::{Asn, SeedTree};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::net::Ipv4Addr;

/// Virtual time in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating addition of microseconds.
    #[must_use]
    pub const fn plus_us(self, us: u64) -> Self {
        SimTime(self.0.saturating_add(us))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}s", self.0 / 1_000_000, self.0 % 1_000_000)
    }
}

/// A UDP-like datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Source address and port.
    pub src: (Ipv4Addr, u16),
    /// Destination address and port.
    pub dst: (Ipv4Addr, u16),
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A request/response server bound to an address and port.
///
/// `Send` is required so the service table can be shared across sweep
/// worker threads (each endpoint is guarded by its own mutex; see
/// [`Lane`]).
pub trait Service: Send + Sync {
    /// Handle one datagram payload; return the reply payload, or `None` to
    /// stay silent (the client will time out — how a black-holed or
    /// decommissioned server manifests to a scanner).
    fn handle(&mut self, payload: &[u8], src: (Ipv4Addr, u16), now: SimTime) -> Option<Vec<u8>>;

    /// Shared-access handler for services whose `handle` needs no
    /// exclusive state (e.g. an authoritative DNS server answering from a
    /// shared zone set). Returning `Some(reply)` answers under a read
    /// lock, so parallel sweep lanes querying the same box proceed
    /// concurrently instead of serializing on its endpoint lock — the
    /// single TLD server is on every domain's resolution path. Return
    /// `None` (the default) to fall back to the exclusive
    /// [`handle`](Service::handle) path; the inner option has `handle`'s
    /// semantics (`None` = stay silent).
    fn handle_concurrent(
        &self,
        _payload: &[u8],
        _src: (Ipv4Addr, u16),
        _now: SimTime,
    ) -> Option<Option<Vec<u8>>> {
        None
    }

    /// Server-side processing delay in microseconds (default 100 µs).
    fn processing_us(&self) -> u64 {
        100
    }
}

/// Hand a datagram to a bound service: the concurrent read path when the
/// service supports it, the exclusive write path otherwise. Returns the
/// reply (or silence) and the service's processing delay.
fn dispatch(
    cell: &RwLock<Box<dyn Service>>,
    payload: &[u8],
    src: (Ipv4Addr, u16),
    now: SimTime,
) -> (Option<Vec<u8>>, u64) {
    {
        let svc = cell.read();
        if let Some(reply) = svc.handle_concurrent(payload, src, now) {
            return (reply, svc.processing_us());
        }
    }
    let mut svc = cell.write();
    let reply = svc.handle(payload, src, now);
    (reply, svc.processing_us())
}

/// Transport-level failures visible to a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// No reply within the timeout (loss, silent server, or no server).
    Timeout,
    /// The client source address is not attached to any announced prefix.
    NoRoute,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Timeout => write!(f, "request timed out"),
            NetError::NoRoute => write!(f, "source address has no route"),
        }
    }
}

impl std::error::Error for NetError {}

/// Counters exposed for tests and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams injected (requests + replies).
    pub sent: u64,
    /// Datagrams dropped by the loss process.
    pub dropped: u64,
    /// Datagrams delivered to a service or client.
    pub delivered: u64,
    /// Requests that found no listening service.
    pub unreachable: u64,
    /// Datagrams black-holed by an active server fault (outage/flapping).
    pub faulted: u64,
}

enum Event {
    Deliver(Datagram),
}

/// A synchronous request/response transport: the interface measurement
/// clients (the iterative resolver, scanners) drive.
///
/// Implemented by [`Network`] (the serial engine: requests advance the
/// global virtual clock) and by [`Lane`] (a per-worker view with its own
/// clock, for parallel sweeps).
pub trait Transport {
    /// Current virtual time on this transport's clock.
    fn now(&self) -> SimTime;

    /// Synchronous request/response with retries (see
    /// [`Network::request`] for the semantics).
    fn request(
        &mut self,
        src_ip: Ipv4Addr,
        dst: (Ipv4Addr, u16),
        payload: &[u8],
        timeout_us: u64,
        attempts: u32,
    ) -> Result<Vec<u8>, NetError>;
}

/// The simulated network: topology + services + event queue.
pub struct Network {
    topo: Topology,
    seed: SeedTree,
    services: HashMap<(Ipv4Addr, u16), RwLock<Box<dyn Service>>>,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    pending: HashMap<u64, Event>,
    now: SimTime,
    seq: u64,
    /// Uniform packet loss probability in [0, 1).
    ///
    /// Legacy convenience knob: semantically it compiles down to the trivial
    /// fault plan [`FaultPlan::uniform_loss`] — one always-on link fault
    /// covering the whole address space. Scheduled or localised faults go in
    /// [`faults_mut`](Network::faults_mut) instead.
    pub loss_rate: f64,
    faults: FaultPlan,
    stats: NetStats,
    obs: NetObs,
    obs_enabled: bool,
}

impl Network {
    /// New network over `topo`; `seed` drives the loss process.
    pub fn new(topo: Topology, seed: SeedTree) -> Self {
        Network {
            topo,
            seed,
            services: HashMap::new(),
            queue: BinaryHeap::new(),
            pending: HashMap::new(),
            now: SimTime::ZERO,
            seq: 0,
            loss_rate: 0.0,
            faults: FaultPlan::new(),
            stats: NetStats::default(),
            obs: NetObs::default(),
            obs_enabled: true,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable topology access.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access (provider events re-announce prefixes).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Transport observability aggregates recorded so far on the serial
    /// engine (lanes carry their own; see [`Lane::take_obs`]).
    pub fn obs(&self) -> &NetObs {
        &self.obs
    }

    /// Drain the serial engine's observability aggregates.
    pub fn take_obs(&mut self) -> NetObs {
        self.obs.flush();
        std::mem::take(&mut self.obs)
    }

    /// Enable or disable observability recording (on by default). New
    /// lanes inherit the setting; disabling lets benchmarks measure the
    /// instrumentation's own overhead.
    pub fn set_obs_enabled(&mut self, enabled: bool) {
        self.obs_enabled = enabled;
    }

    /// Whether observability recording is enabled.
    pub fn obs_enabled(&self) -> bool {
        self.obs_enabled
    }

    /// The installed fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Mutable fault plan access (install/expire scheduled faults).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Replace the whole fault plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Bind a service to `addr:port`, replacing any previous binding.
    pub fn bind(&mut self, addr: Ipv4Addr, port: u16, service: Box<dyn Service>) {
        self.services.insert((addr, port), RwLock::new(service));
    }

    /// Remove the service at `addr:port` (the provider shut the box down).
    pub fn unbind(&mut self, addr: Ipv4Addr, port: u16) -> bool {
        self.services.remove(&(addr, port)).is_some()
    }

    /// Whether anything listens at `addr:port`.
    pub fn is_bound(&self, addr: Ipv4Addr, port: u16) -> bool {
        self.services.contains_key(&(addr, port))
    }

    /// All addresses with a service bound on `port`, in sorted order.
    ///
    /// An Internet-wide scanner (Censys-style) conceptually probes the whole
    /// address space and keeps the responders; enumerating the bound
    /// endpoints yields exactly that responder set without simulating
    /// billions of dead probes. Callers still issue a real [`request`]
    /// (latency + loss) per responder.
    ///
    /// [`request`]: Network::request
    pub fn bound_endpoints(&self, port: u16) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self
            .services
            .keys()
            .filter(|(_, p)| *p == port)
            .map(|(a, _)| *a)
            .collect();
        v.sort_unstable();
        v
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Deterministic Bernoulli(loss_rate) draw for packet `seq`.
    fn lost(&self, seq: u64) -> bool {
        if self.loss_rate <= 0.0 {
            return false;
        }
        let h = self.seed.child("loss").child_idx(seq).seed();
        // Map to [0,1) with 53-bit precision.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.loss_rate
    }

    /// Deterministic extra-loss draw for packet `seq` on the path `a`↔`b`:
    /// each active matching link fault contributes an independent Bernoulli
    /// stream keyed by (fault index, seq).
    fn fault_lost(&self, seq: u64, a: Ipv4Addr, b: Ipv4Addr) -> bool {
        if self.faults.is_empty() {
            return false;
        }
        let base = self.seed.child("linkfault").child_idx(seq);
        self.faults
            .active_link_faults(a, b, self.now)
            .any(|(i, f)| {
                if f.extra_loss <= 0.0 {
                    return false;
                }
                let h = base.child_idx(i as u64).seed();
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                u < f.extra_loss
            })
    }

    /// One-way hop for packet `packet_id`: the AS pair it crosses and its
    /// latency, `None` if either side is unrouted.
    fn hop(&self, from: Ipv4Addr, to: Ipv4Addr, packet_id: u64) -> Option<(Asn, Asn, u64)> {
        let a = self.topo.asn_of(from)?;
        let b = self.topo.asn_of(to)?;
        let degraded = self.faults.extra_latency_us(from, to, self.now);
        let lat = self.topo.latency_us(a, b) + self.topo.jitter_us(a, b, packet_id) + degraded;
        Some((a, b, lat))
    }

    fn schedule(&mut self, at: SimTime, ev: Event) {
        let id = self.next_seq();
        self.pending.insert(id, ev);
        self.queue.push(Reverse((at, id)));
    }

    /// Inject a datagram from `dgram.src` at the current time. Applies the
    /// loss process and schedules delivery. Returns `false` if the source
    /// has no route (nothing is scheduled).
    pub fn send(&mut self, dgram: Datagram) -> bool {
        let seq = self.next_seq();
        self.stats.sent += 1;
        let Some((a, b, lat)) = self.hop(dgram.src.0, dgram.dst.0, seq) else {
            return false;
        };
        if self.lost(seq) {
            self.stats.dropped += 1;
            if self.obs_enabled {
                self.obs.hop_dropped(a, b, false);
            }
            return true; // it was sent; the network ate it
        }
        if self.fault_lost(seq, dgram.src.0, dgram.dst.0) {
            self.stats.dropped += 1;
            if self.obs_enabled {
                self.obs.hop_dropped(a, b, true);
            }
            return true;
        }
        if self.obs_enabled {
            self.obs.hop_delivered(a, b, lat);
        }
        let at = self.now.plus_us(lat);
        self.schedule(at, Event::Deliver(dgram));
        true
    }

    /// Process events until `deadline`, watching for a datagram addressed to
    /// `watch` (a client's ephemeral binding). Returns the matching payload
    /// if it arrives. Time advances to the arrival or to the deadline.
    fn run_until(&mut self, deadline: SimTime, watch: (Ipv4Addr, u16)) -> Option<Vec<u8>> {
        while let Some(&Reverse((at, id))) = self.queue.peek() {
            if at > deadline {
                break;
            }
            self.queue.pop();
            let Some(Event::Deliver(dgram)) = self.pending.remove(&id) else {
                continue;
            };
            self.now = at;
            if dgram.dst == watch {
                self.stats.delivered += 1;
                return Some(dgram.payload);
            }
            self.deliver_to_service(dgram);
        }
        self.now = deadline;
        None
    }

    fn deliver_to_service(&mut self, dgram: Datagram) {
        let key = dgram.dst;
        // A server fault black-holes the datagram at the box: the packet
        // crossed the network (latency was paid) but nothing answers.
        if self.faults.server_down(key.0, key.1, self.now) {
            self.stats.faulted += 1;
            if self.obs_enabled {
                self.obs.fault_blackholes += 1;
            }
            return;
        }
        let Some(cell) = self.services.get(&key) else {
            self.stats.unreachable += 1;
            return;
        };
        self.stats.delivered += 1;
        let (reply, proc) = dispatch(cell, &dgram.payload, dgram.src, self.now);
        if let Some(payload) = reply {
            let seq = self.next_seq();
            self.stats.sent += 1;
            // Loss/jitter draws are pure functions of `seq`, so looking the
            // hop up first (for the link key) cannot perturb them.
            let Some((a, b, lat)) = self.hop(dgram.dst.0, dgram.src.0, seq) else {
                return;
            };
            if self.lost(seq) {
                self.stats.dropped += 1;
                if self.obs_enabled {
                    self.obs.hop_dropped(a, b, false);
                }
                return;
            }
            if self.fault_lost(seq, dgram.dst.0, dgram.src.0) {
                self.stats.dropped += 1;
                if self.obs_enabled {
                    self.obs.hop_dropped(a, b, true);
                }
                return;
            }
            if self.obs_enabled {
                self.obs.hop_delivered(a, b, lat);
            }
            let at = self.now.plus_us(proc + lat);
            self.schedule(
                at,
                Event::Deliver(Datagram {
                    src: dgram.dst,
                    dst: dgram.src,
                    payload,
                }),
            );
        }
    }

    /// Synchronous request/response with retries.
    ///
    /// Each attempt waits `timeout_us`; after `attempts` failures the call
    /// returns [`NetError::Timeout`]. On success, virtual time has advanced
    /// by the full round trip (plus any failed attempts' timeouts).
    pub fn request(
        &mut self,
        src_ip: Ipv4Addr,
        dst: (Ipv4Addr, u16),
        payload: &[u8],
        timeout_us: u64,
        attempts: u32,
    ) -> Result<Vec<u8>, NetError> {
        if self.topo.asn_of(src_ip).is_none() {
            return Err(NetError::NoRoute);
        }
        let t0 = self.now;
        for attempt in 0..attempts.max(1) {
            // Fault-window occupancy: was the destination inside an active
            // server-fault window when this attempt was issued?
            let faulted_at_send = self.obs_enabled
                && !self.faults.is_empty()
                && self.faults.server_down(dst.0, dst.1, self.now);
            // Fresh ephemeral port per attempt so a late reply to an earlier
            // attempt is not mistaken for this one.
            let port = 49152 + ((self.seq.wrapping_add(u64::from(attempt))) % 16384) as u16;
            let me = (src_ip, port);
            self.send(Datagram {
                src: me,
                dst,
                payload: payload.to_vec(),
            });
            let deadline = self.now.plus_us(timeout_us);
            if let Some(reply) = self.run_until(deadline, me) {
                if self.obs_enabled {
                    self.obs
                        .request_us
                        .record(self.now.as_micros() - t0.as_micros());
                }
                return Ok(reply);
            }
            if faulted_at_send {
                self.obs.fault_occupied_us += timeout_us;
            }
        }
        Err(NetError::Timeout)
    }

    /// Open a measurement [`Lane`]: an independent virtual clock over this
    /// network's shared topology, services, and fault plan.
    ///
    /// The lane starts at the network's current instant and draws its
    /// loss/jitter streams from `key`, NOT from the network's global packet
    /// sequence — so a lane's traffic is a pure function of (network
    /// snapshot, key, start instant), independent of any other lane and of
    /// which thread drives it. This is the determinism foundation of the
    /// parallel sweep engine.
    pub fn lane(&self, key: &str) -> Lane<'_> {
        let start = self.now;
        Lane {
            net: self,
            stream: self.seed.child("lane").child(key),
            start,
            now: start,
            seq: 0,
            stats: NetStats::default(),
            obs: NetObs::default(),
            obs_on: self.obs_enabled,
        }
    }

    /// Merge a finished lane's transport counters into the global ones.
    pub fn absorb_lane_stats(&mut self, stats: NetStats) {
        self.stats.merge(stats);
    }

    /// Merge a finished lane's observability aggregates into the global
    /// ones.
    pub fn absorb_lane_obs(&mut self, obs: &NetObs) {
        self.obs.merge(obs);
    }

    /// Advance the global clock to `t` (no-op if `t` is in the past),
    /// delivering any still-queued datagrams due by then. Used by the sweep
    /// engine to account the wall-clock of a set of concurrent lanes back
    /// into the serial timeline.
    pub fn advance_to_time(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        // Nobody is watching: every due event is delivered to its service
        // (or dropped as unreachable) and time lands exactly on `t`.
        let _ = self.run_until(t, (Ipv4Addr::UNSPECIFIED, 0));
    }
}

impl Transport for Network {
    fn now(&self) -> SimTime {
        Network::now(self)
    }

    fn request(
        &mut self,
        src_ip: Ipv4Addr,
        dst: (Ipv4Addr, u16),
        payload: &[u8],
        timeout_us: u64,
        attempts: u32,
    ) -> Result<Vec<u8>, NetError> {
        Network::request(self, src_ip, dst, payload, timeout_us, attempts)
    }
}

impl NetStats {
    /// Field-wise sum, for folding per-lane counters into a total.
    pub fn merge(&mut self, other: NetStats) {
        self.sent += other.sent;
        self.dropped += other.dropped;
        self.delivered += other.delivered;
        self.unreachable += other.unreachable;
        self.faulted += other.faulted;
    }
}

/// A per-worker view of a [`Network`] with its own virtual clock.
///
/// All lanes of a sweep start at the same instant and run *logically
/// concurrently*: each models one of the many outstanding resolutions an
/// OpenINTEL-style pipeline keeps in flight. A lane only reads the shared
/// network (`&Network`); stateful services are reached through their
/// per-endpoint mutexes, so any number of lanes may be driven from
/// different threads at once.
///
/// Determinism contract: a lane's entire behaviour (latency, jitter, loss,
/// fault interaction) depends only on the network snapshot, the lane key
/// and the start instant — never on other lanes or scheduling order.
/// Unlike the serial engine, a reply that would land after the attempt
/// deadline is simply a timeout (there is no cross-request event queue for
/// it to linger in).
pub struct Lane<'a> {
    net: &'a Network,
    stream: SeedTree,
    start: SimTime,
    now: SimTime,
    seq: u64,
    stats: NetStats,
    obs: NetObs,
    obs_on: bool,
}

impl Lane<'_> {
    /// Virtual time elapsed on this lane since it was opened.
    pub fn elapsed_us(&self) -> u64 {
        self.now.as_micros() - self.start.as_micros()
    }

    /// The lane's current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Transport counters accumulated on this lane (merge back into the
    /// network with [`Network::absorb_lane_stats`]).
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Observability aggregates accumulated on this lane.
    pub fn obs(&self) -> &NetObs {
        &self.obs
    }

    /// Drain this lane's observability aggregates (merge them into a
    /// per-worker total, and/or back into the network with
    /// [`Network::absorb_lane_obs`]).
    pub fn take_obs(&mut self) -> NetObs {
        self.obs.flush();
        std::mem::take(&mut self.obs)
    }

    /// Hand an already-populated aggregate to this lane to keep recording
    /// into. Paired with [`take_obs`](Lane::take_obs) this threads one
    /// accumulator through a sequence of short-lived lanes instead of
    /// allocating (and merging) fresh histograms per lane — every record
    /// is a commutative integer fold, so totals are identical either way.
    pub fn install_obs(&mut self, obs: NetObs) {
        self.obs = obs;
    }

    /// Deterministic Bernoulli draw for this lane's packet `seq` against
    /// probability `p`.
    fn bernoulli(&self, label: &str, seq: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let h = self.stream.child(label).child_idx(seq).seed();
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Whether packet `seq` on the path `a`→`b` is eaten by an active link
    /// fault's extra-loss process (the uniform loss process is a separate
    /// [`bernoulli`](Lane::bernoulli) draw, so drops can be attributed to
    /// their cause).
    fn fault_lost(&self, seq: u64, a: Ipv4Addr, b: Ipv4Addr, at: SimTime) -> bool {
        if self.net.faults.is_empty() {
            return false;
        }
        let base = self.stream.child("linkfault").child_idx(seq);
        self.net.faults.active_link_faults(a, b, at).any(|(i, f)| {
            if f.extra_loss <= 0.0 {
                return false;
            }
            let h = base.child_idx(i as u64).seed();
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            u < f.extra_loss
        })
    }

    /// One-way hop for this lane's packet `seq`: the AS pair it crosses and
    /// its latency, `None` if either side is unrouted.
    fn hop(&self, from: Ipv4Addr, to: Ipv4Addr, seq: u64) -> Option<(Asn, Asn, u64)> {
        let a = self.net.topo.asn_of(from)?;
        let b = self.net.topo.asn_of(to)?;
        let packet_id = self.stream.child("pkt").child_idx(seq).seed();
        let degraded = self.net.faults.extra_latency_us(from, to, self.now);
        let lat =
            self.net.topo.latency_us(a, b) + self.net.topo.jitter_us(a, b, packet_id) + degraded;
        Some((a, b, lat))
    }

    /// One request attempt against `dst`. On success advances the lane
    /// clock to the reply's arrival and returns the payload; on failure
    /// leaves the clock untouched (the caller burns the attempt timeout).
    fn attempt_once(
        &mut self,
        src_ip: Ipv4Addr,
        dst: (Ipv4Addr, u16),
        payload: &[u8],
        deadline: SimTime,
    ) -> Option<Vec<u8>> {
        self.seq += 1;
        let out_seq = self.seq;
        self.stats.sent += 1;
        let src = (src_ip, 49152 + (out_seq % 16384) as u16);
        // Unrouted destination: nothing is scheduled; the attempt waits out
        // its timeout, as in the serial engine.
        let (a, b, lat) = self.hop(src_ip, dst.0, out_seq)?;
        if self.bernoulli("loss", out_seq, self.net.loss_rate) {
            self.stats.dropped += 1;
            if self.obs_on {
                self.obs.hop_dropped(a, b, false);
            }
            return None;
        }
        if self.fault_lost(out_seq, src_ip, dst.0, self.now) {
            self.stats.dropped += 1;
            if self.obs_on {
                self.obs.hop_dropped(a, b, true);
            }
            return None;
        }
        if self.obs_on {
            self.obs.hop_delivered(a, b, lat);
        }
        let at = self.now.plus_us(lat);
        if at > deadline {
            return None;
        }
        // Arrival at the box: faults first, then the service.
        if self.net.faults.server_down(dst.0, dst.1, at) {
            self.stats.faulted += 1;
            if self.obs_on {
                self.obs.fault_blackholes += 1;
            }
            return None;
        }
        let cell = self.net.services.get(&dst);
        let Some(cell) = cell else {
            self.stats.unreachable += 1;
            return None;
        };
        let (reply, proc) = dispatch(cell, payload, src, at);
        self.stats.delivered += 1;
        // Silent server: wait out the timeout.
        let reply = reply?;
        // The reply datagram pays its own loss draw and latency. Draws are
        // pure functions of the sequence number, so looking the hop up
        // first (for the link key) cannot perturb them.
        self.seq += 1;
        let back_seq = self.seq;
        self.stats.sent += 1;
        let (ra, rb, back_lat) = self.hop(dst.0, src_ip, back_seq)?;
        if self.bernoulli("loss", back_seq, self.net.loss_rate) {
            self.stats.dropped += 1;
            if self.obs_on {
                self.obs.hop_dropped(ra, rb, false);
            }
            return None;
        }
        if self.fault_lost(back_seq, dst.0, src_ip, at) {
            self.stats.dropped += 1;
            if self.obs_on {
                self.obs.hop_dropped(ra, rb, true);
            }
            return None;
        }
        if self.obs_on {
            self.obs.hop_delivered(ra, rb, back_lat);
        }
        let back_at = at.plus_us(proc + back_lat);
        if back_at > deadline {
            // Too late: counts as this attempt's timeout.
            return None;
        }
        self.now = back_at;
        self.stats.delivered += 1;
        Some(reply)
    }
}

impl Transport for Lane<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn request(
        &mut self,
        src_ip: Ipv4Addr,
        dst: (Ipv4Addr, u16),
        payload: &[u8],
        timeout_us: u64,
        attempts: u32,
    ) -> Result<Vec<u8>, NetError> {
        if self.net.topo.asn_of(src_ip).is_none() {
            return Err(NetError::NoRoute);
        }
        let t0 = self.now;
        for _attempt in 0..attempts.max(1) {
            let deadline = self.now.plus_us(timeout_us);
            // Fault-window occupancy: was the destination inside an active
            // server-fault window when this attempt was issued?
            let faulted_at_send = self.obs_on
                && !self.net.faults.is_empty()
                && self.net.faults.server_down(dst.0, dst.1, self.now);
            if let Some(reply) = self.attempt_once(src_ip, dst, payload, deadline) {
                if self.obs_on {
                    self.obs
                        .request_us
                        .record(self.now.as_micros() - t0.as_micros());
                }
                return Ok(reply);
            }
            self.now = deadline;
            if faulted_at_send {
                self.obs.fault_occupied_us += timeout_us;
            }
        }
        Err(NetError::Timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::AsInfo;
    use ruwhere_types::{Asn, Country};

    struct Echo;
    impl Service for Echo {
        fn handle(
            &mut self,
            payload: &[u8],
            _src: (Ipv4Addr, u16),
            _now: SimTime,
        ) -> Option<Vec<u8>> {
            let mut v = payload.to_vec();
            v.reverse();
            Some(v)
        }
    }

    struct Silent;
    impl Service for Silent {
        fn handle(&mut self, _p: &[u8], _s: (Ipv4Addr, u16), _n: SimTime) -> Option<Vec<u8>> {
            None
        }
    }

    fn network() -> Network {
        let mut topo = Topology::new(SeedTree::new(5).child("topo"));
        topo.add_as(AsInfo {
            asn: Asn(100),
            org: "CLIENT".into(),
            country: Country::NL,
        });
        topo.add_as(AsInfo {
            asn: Asn(200),
            org: "SERVER".into(),
            country: Country::RU,
        });
        topo.announce("10.0.0.0/8".parse().unwrap(), Asn(100));
        topo.announce("192.0.2.0/24".parse().unwrap(), Asn(200));
        Network::new(topo, SeedTree::new(5).child("net"))
    }

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 53);

    #[test]
    fn request_reply_roundtrip() {
        let mut net = network();
        net.bind(SERVER, 53, Box::new(Echo));
        let t0 = net.now();
        let reply = net
            .request(CLIENT, (SERVER, 53), b"abc", 5_000_000, 1)
            .unwrap();
        assert_eq!(reply, b"cba");
        // Time advanced by a plausible RTT (2 one-way latencies + proc).
        let elapsed = net.now().as_micros() - t0.as_micros();
        assert!(elapsed > 10_000, "elapsed {elapsed}us too fast");
        assert!(elapsed < 400_000, "elapsed {elapsed}us too slow");
    }

    #[test]
    fn timeout_when_no_service() {
        let mut net = network();
        let t0 = net.now();
        let err = net
            .request(CLIENT, (SERVER, 53), b"x", 1_000_000, 2)
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert_eq!(net.now().as_micros() - t0.as_micros(), 2_000_000);
        assert_eq!(net.stats().unreachable, 2);
    }

    #[test]
    fn timeout_when_server_silent() {
        let mut net = network();
        net.bind(SERVER, 53, Box::new(Silent));
        let err = net
            .request(CLIENT, (SERVER, 53), b"x", 1_000_000, 1)
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn no_route_source() {
        let mut net = network();
        net.bind(SERVER, 53, Box::new(Echo));
        let err = net
            .request(Ipv4Addr::new(203, 0, 113, 1), (SERVER, 53), b"x", 1_000, 1)
            .unwrap_err();
        assert_eq!(err, NetError::NoRoute);
    }

    #[test]
    fn unbind_makes_unreachable() {
        let mut net = network();
        net.bind(SERVER, 53, Box::new(Echo));
        assert!(net.is_bound(SERVER, 53));
        assert!(net
            .request(CLIENT, (SERVER, 53), b"x", 1_000_000, 1)
            .is_ok());
        assert!(net.unbind(SERVER, 53));
        assert!(!net.unbind(SERVER, 53));
        assert!(net
            .request(CLIENT, (SERVER, 53), b"x", 1_000_000, 1)
            .is_err());
    }

    #[test]
    fn loss_causes_retries_and_determinism() {
        let run = |loss: f64| -> (u64, u64) {
            let mut net = network();
            net.loss_rate = loss;
            net.bind(SERVER, 53, Box::new(Echo));
            let mut ok = 0u64;
            for _ in 0..200 {
                if net.request(CLIENT, (SERVER, 53), b"q", 200_000, 3).is_ok() {
                    ok += 1;
                }
            }
            (ok, net.stats().dropped)
        };
        let (ok_lossless, dropped_lossless) = run(0.0);
        assert_eq!(ok_lossless, 200);
        assert_eq!(dropped_lossless, 0);

        let (ok_lossy, dropped_lossy) = run(0.3);
        assert!(dropped_lossy > 0, "loss process never fired");
        // With 3 attempts and 30% per-packet loss, nearly all succeed:
        // P(fail) = (1 - 0.7^2)^3 ≈ 13%.
        assert!(ok_lossy > 140, "only {ok_lossy}/200 succeeded");
        assert!(ok_lossy < 200, "loss had no observable effect");

        // Determinism: identical runs, identical counters.
        assert_eq!(run(0.3), (ok_lossy, dropped_lossy));
    }

    #[test]
    fn stateful_service_sees_all_requests() {
        struct Counter(u64);
        impl Service for Counter {
            fn handle(&mut self, _p: &[u8], _s: (Ipv4Addr, u16), _n: SimTime) -> Option<Vec<u8>> {
                self.0 += 1;
                Some(self.0.to_be_bytes().to_vec())
            }
        }
        let mut net = network();
        net.bind(SERVER, 80, Box::new(Counter(0)));
        for expect in 1..=3u64 {
            let r = net
                .request(CLIENT, (SERVER, 80), b"", 1_000_000, 1)
                .unwrap();
            assert_eq!(r, expect.to_be_bytes());
        }
    }

    #[test]
    fn sim_time_display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimTime::ZERO.to_string(), "0.000000s");
    }

    #[test]
    fn server_outage_window_blackholes_then_recovers() {
        use crate::fault::{FaultWindow, ServerFault, ServerFaultMode};
        let mut net = network();
        net.bind(SERVER, 53, Box::new(Echo));
        // Outage of 10 virtual seconds starting 1s in.
        net.faults_mut().add_server_fault(ServerFault {
            addr: SERVER,
            port: Some(53),
            mode: ServerFaultMode::Outage,
            window: FaultWindow::between(SimTime(1_000_000), SimTime(11_000_000)),
        });
        // Before the window: healthy.
        assert!(net.request(CLIENT, (SERVER, 53), b"a", 500_000, 1).is_ok());
        // Burn time into the window via timeouts, observing the outage.
        let mut failures = 0;
        while net.now().as_micros() < 11_000_000 {
            if net
                .request(CLIENT, (SERVER, 53), b"b", 1_000_000, 1)
                .is_err()
            {
                failures += 1;
            }
        }
        assert!(failures > 5, "outage produced only {failures} timeouts");
        assert!(net.stats().faulted > 0);
        // After the window: healthy again, no rebind needed.
        assert!(net.request(CLIENT, (SERVER, 53), b"c", 500_000, 2).is_ok());
    }

    #[test]
    fn flapping_server_alternates_and_is_deterministic() {
        use crate::fault::{FaultWindow, ServerFault, ServerFaultMode};
        let run = || {
            let mut net = network();
            net.bind(SERVER, 53, Box::new(Echo));
            net.faults_mut().add_server_fault(ServerFault {
                addr: SERVER,
                port: None,
                mode: ServerFaultMode::Flapping {
                    period_us: 2_000_000,
                },
                window: FaultWindow::from(SimTime::ZERO),
            });
            let mut outcomes = Vec::new();
            for _ in 0..20 {
                outcomes.push(net.request(CLIENT, (SERVER, 53), b"q", 500_000, 1).is_ok());
            }
            (outcomes, net.stats())
        };
        let (outcomes, stats) = run();
        let ok = outcomes.iter().filter(|o| **o).count();
        assert!(ok > 0, "flapping server never answered");
        assert!(ok < 20, "flapping server never failed");
        assert!(stats.faulted > 0);
        assert_eq!(run(), (outcomes, stats), "flapping must be deterministic");
    }

    #[test]
    fn degraded_link_raises_loss_and_latency() {
        use crate::fault::{FaultWindow, LinkFault};
        let run = |fault: bool| {
            let mut net = network();
            net.bind(SERVER, 53, Box::new(Echo));
            if fault {
                net.faults_mut().add_link_fault(LinkFault {
                    prefix: "192.0.2.0/24".parse().unwrap(),
                    extra_loss: 0.4,
                    extra_latency_us: 50_000,
                    window: FaultWindow::always(),
                });
            }
            let mut ok = 0u64;
            for _ in 0..200 {
                if net.request(CLIENT, (SERVER, 53), b"q", 400_000, 1).is_ok() {
                    ok += 1;
                }
            }
            (ok, net.stats().dropped, net.now().as_micros())
        };
        let (ok_clean, dropped_clean, _) = run(false);
        let (ok_degraded, dropped_degraded, elapsed_degraded) = run(true);
        assert_eq!(ok_clean, 200);
        assert_eq!(dropped_clean, 0);
        assert!(dropped_degraded > 0, "link fault never dropped a packet");
        assert!(ok_degraded < ok_clean, "link fault had no effect");
        // Surviving round trips each paid 2 × 50ms extra latency.
        assert!(elapsed_degraded > u64::from(ok_degraded as u32) * 100_000);
        // Determinism under faults.
        assert_eq!(run(true), (ok_degraded, dropped_degraded, elapsed_degraded));
    }

    #[test]
    fn uniform_loss_plan_matches_loss_rate_semantics() {
        use crate::fault::FaultPlan;
        // The legacy knob and the trivial plan are the same model: uniform
        // independent loss on every datagram. Streams differ (different seed
        // children) but behaviour must be statistically indistinguishable.
        let run = |knob: f64, plan: f64| {
            let mut net = network();
            net.loss_rate = knob;
            net.set_fault_plan(FaultPlan::uniform_loss(plan));
            net.bind(SERVER, 53, Box::new(Echo));
            let mut ok = 0u64;
            for _ in 0..300 {
                if net.request(CLIENT, (SERVER, 53), b"q", 200_000, 3).is_ok() {
                    ok += 1;
                }
            }
            (ok, net.stats().dropped)
        };
        let (ok_knob, dropped_knob) = run(0.3, 0.0);
        let (ok_plan, dropped_plan) = run(0.0, 0.3);
        assert!(dropped_knob > 0 && dropped_plan > 0);
        let diff = ok_knob.abs_diff(ok_plan);
        assert!(
            diff < 30,
            "knob {ok_knob} vs plan {ok_plan} diverge too far"
        );
    }
}
