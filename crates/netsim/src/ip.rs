//! IPv4 CIDR prefixes and sequential address allocation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 network in CIDR form.
///
/// ```
/// use ruwhere_netsim::Ipv4Net;
/// let net: Ipv4Net = "198.51.100.0/24".parse().unwrap();
/// assert!(net.contains("198.51.100.42".parse().unwrap()));
/// assert!(!net.contains("198.51.101.1".parse().unwrap()));
/// assert_eq!(net.size(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Net {
    addr: u32,
    prefix_len: u8,
}

impl Ipv4Net {
    /// Construct from a network address and prefix length (0-32). The host
    /// bits of `addr` are zeroed.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Option<Self> {
        if prefix_len > 32 {
            return None;
        }
        let bits = u32::from(addr) & Self::mask_bits(prefix_len);
        Some(Ipv4Net {
            addr: bits,
            prefix_len,
        })
    }

    const fn mask_bits(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Prefix length.
    pub const fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// The network address as raw bits.
    pub const fn bits(&self) -> u32 {
        self.addr
    }

    /// Number of addresses covered.
    pub const fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// Whether `ip` is inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask_bits(self.prefix_len) == self.addr
    }

    /// Whether `other` is entirely inside this prefix.
    pub fn contains_net(&self, other: &Ipv4Net) -> bool {
        other.prefix_len >= self.prefix_len && self.contains(other.network())
    }

    /// The `i`-th address in the prefix, or `None` past the end.
    pub fn nth(&self, i: u64) -> Option<Ipv4Addr> {
        (i < self.size()).then(|| Ipv4Addr::from(self.addr + i as u32))
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.prefix_len)
    }
}

/// Error parsing CIDR notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDR prefix {:?}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Ipv4Net {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || PrefixParseError(s.to_owned());
        let (addr, len) = s.split_once('/').ok_or_else(err)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| err())?;
        let len: u8 = len.parse().map_err(|_| err())?;
        Ipv4Net::new(addr, len).ok_or_else(err)
    }
}

/// Sequential address allocator over a prefix, skipping the network and
/// broadcast addresses for prefixes shorter than /31.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpAllocator {
    net: Ipv4Net,
    next: u64,
}

impl IpAllocator {
    /// New allocator over `net`.
    pub fn new(net: Ipv4Net) -> Self {
        let next = if net.prefix_len() < 31 { 1 } else { 0 };
        IpAllocator { net, next }
    }

    /// The prefix being allocated from.
    pub fn net(&self) -> Ipv4Net {
        self.net
    }

    /// Allocate the next address, or `None` when exhausted.
    pub fn alloc(&mut self) -> Option<Ipv4Addr> {
        let last_usable = if self.net.prefix_len() < 31 {
            self.net.size() - 2
        } else {
            self.net.size() - 1
        };
        if self.next > last_usable {
            return None;
        }
        let ip = self.net.nth(self.next);
        self.next += 1;
        ip
    }

    /// How many addresses remain.
    pub fn remaining(&self) -> u64 {
        let last_usable = if self.net.prefix_len() < 31 {
            self.net.size() - 2
        } else {
            self.net.size() - 1
        };
        (last_usable + 1).saturating_sub(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n: Ipv4Net = "10.0.0.0/8".parse().unwrap();
        assert_eq!(n.to_string(), "10.0.0.0/8");
        assert_eq!(n.size(), 1 << 24);
        // Host bits are zeroed.
        let n: Ipv4Net = "10.1.2.3/8".parse().unwrap();
        assert_eq!(n.network(), Ipv4Addr::new(10, 0, 0, 0));
        assert!("10.0.0.0".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Net>().is_err());
    }

    #[test]
    fn containment() {
        let n: Ipv4Net = "192.0.2.0/24".parse().unwrap();
        assert!(n.contains(Ipv4Addr::new(192, 0, 2, 0)));
        assert!(n.contains(Ipv4Addr::new(192, 0, 2, 255)));
        assert!(!n.contains(Ipv4Addr::new(192, 0, 3, 0)));
        let sub: Ipv4Net = "192.0.2.128/25".parse().unwrap();
        assert!(n.contains_net(&sub));
        assert!(!sub.contains_net(&n));
        let all: Ipv4Net = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(all.contains_net(&n));
    }

    #[test]
    fn zero_prefix_mask() {
        let all = Ipv4Net::new(Ipv4Addr::new(1, 2, 3, 4), 0).unwrap();
        assert_eq!(all.network(), Ipv4Addr::new(0, 0, 0, 0));
        assert_eq!(all.size(), 1 << 32);
    }

    #[test]
    fn nth() {
        let n: Ipv4Net = "198.51.100.0/30".parse().unwrap();
        assert_eq!(n.nth(0).unwrap(), Ipv4Addr::new(198, 51, 100, 0));
        assert_eq!(n.nth(3).unwrap(), Ipv4Addr::new(198, 51, 100, 3));
        assert!(n.nth(4).is_none());
    }

    #[test]
    fn allocator_skips_network_and_broadcast() {
        let mut a = IpAllocator::new("198.51.100.0/30".parse().unwrap());
        assert_eq!(a.remaining(), 2);
        assert_eq!(a.alloc().unwrap(), Ipv4Addr::new(198, 51, 100, 1));
        assert_eq!(a.alloc().unwrap(), Ipv4Addr::new(198, 51, 100, 2));
        assert_eq!(a.alloc(), None);
        assert_eq!(a.remaining(), 0);
    }

    #[test]
    fn allocator_31_and_32() {
        let mut a = IpAllocator::new("198.51.100.0/31".parse().unwrap());
        assert_eq!(a.alloc().unwrap(), Ipv4Addr::new(198, 51, 100, 0));
        assert_eq!(a.alloc().unwrap(), Ipv4Addr::new(198, 51, 100, 1));
        assert_eq!(a.alloc(), None);
        let mut a = IpAllocator::new("198.51.100.9/32".parse().unwrap());
        assert_eq!(a.alloc().unwrap(), Ipv4Addr::new(198, 51, 100, 9));
        assert_eq!(a.alloc(), None);
    }
}
