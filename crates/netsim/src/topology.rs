//! AS-level topology: prefixes, origin ASes, countries, latencies.
//!
//! Latency between two ASes is a deterministic function of the pair and the
//! topology seed — stable across a run and across runs with the same seed,
//! like real paths are stable on measurement timescales.

use crate::ip::Ipv4Net;
use crate::routing::RoutingTable;
use ruwhere_types::{Asn, Country, SeedTree};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Registration facts about one autonomous system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Operating organization name (e.g. `"AMAZON-02"`).
    pub org: String,
    /// Country of registration/operation.
    pub country: Country,
}

/// The AS-level map of the simulated Internet.
#[derive(Debug, Clone)]
pub struct Topology {
    seed: SeedTree,
    ases: HashMap<Asn, AsInfo>,
    fib: RoutingTable<Asn>,
    prefixes: Vec<(Ipv4Net, Asn)>,
}

impl Topology {
    /// New topology; `seed` drives latency/jitter derivation.
    pub fn new(seed: SeedTree) -> Self {
        Topology {
            seed,
            ases: HashMap::new(),
            fib: RoutingTable::new(),
            prefixes: Vec::new(),
        }
    }

    /// Register an AS. Returns `false` if it already exists.
    pub fn add_as(&mut self, info: AsInfo) -> bool {
        if self.ases.contains_key(&info.asn) {
            return false;
        }
        self.ases.insert(info.asn, info);
        true
    }

    /// Announce `net` as originated by `asn` (which must be registered).
    /// Re-announcing an existing prefix moves it — this is exactly the
    /// "IP address reconfiguration" mechanism behind the Netnod/RU-CENTER
    /// event of 2022-03-03 (paper §3.2).
    pub fn announce(&mut self, net: Ipv4Net, asn: Asn) -> bool {
        if !self.ases.contains_key(&asn) {
            return false;
        }
        if let Some(old) = self.fib.insert(net, asn) {
            self.prefixes.retain(|(n, a)| !(*n == net && *a == old));
        }
        self.prefixes.push((net, asn));
        true
    }

    /// Withdraw a prefix announcement.
    pub fn withdraw(&mut self, net: Ipv4Net) -> Option<Asn> {
        let old = self.fib.remove(net);
        if let Some(asn) = old {
            self.prefixes.retain(|(n, a)| !(*n == net && *a == asn));
        }
        old
    }

    /// Origin AS of `ip` by longest-prefix match.
    pub fn asn_of(&self, ip: Ipv4Addr) -> Option<Asn> {
        self.fib.lookup(ip).copied()
    }

    /// AS registration info.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.ases.get(&asn)
    }

    /// Country of the AS originating `ip`.
    pub fn country_of(&self, ip: Ipv4Addr) -> Option<Country> {
        self.asn_of(ip)
            .and_then(|a| self.as_info(a))
            .map(|i| i.country)
    }

    /// All announced prefixes with their origin AS.
    pub fn prefixes(&self) -> &[(Ipv4Net, Asn)] {
        &self.prefixes
    }

    /// Number of registered ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Deterministic one-way latency between two ASes, in microseconds.
    ///
    /// Intra-AS traffic is fast (0.2-2 ms); international paths are slower
    /// (5-150 ms) with a per-pair fixed draw, symmetric in its arguments.
    pub fn latency_us(&self, a: Asn, b: Asn) -> u64 {
        if a == b {
            let h = self
                .seed
                .child("lat-intra")
                .child_idx(u64::from(a.value()))
                .seed();
            return 200 + h % 1_800;
        }
        let (lo, hi) = if a.value() <= b.value() {
            (a, b)
        } else {
            (b, a)
        };
        let node = self
            .seed
            .child("lat")
            .child_idx(u64::from(lo.value()))
            .child_idx(u64::from(hi.value()));
        let base = 5_000 + node.seed() % 145_000;
        // Same-country pairs are systematically faster.
        let same_country = match (self.as_info(a), self.as_info(b)) {
            (Some(x), Some(y)) => x.country == y.country,
            _ => false,
        };
        if same_country {
            2_000 + base / 10
        } else {
            base
        }
    }

    /// Deterministic per-packet jitter in microseconds, derived from packet
    /// identity so retransmissions of the same logical packet differ.
    pub fn jitter_us(&self, a: Asn, b: Asn, packet_id: u64) -> u64 {
        let node = self
            .seed
            .child("jitter")
            .child_idx(u64::from(a.value()) << 32 | u64::from(b.value()))
            .child_idx(packet_id);
        node.seed() % 2_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        let mut t = Topology::new(SeedTree::new(1));
        t.add_as(AsInfo {
            asn: Asn::AMAZON,
            org: "AMAZON-02".into(),
            country: Country::US,
        });
        t.add_as(AsInfo {
            asn: Asn::CLOUDFLARE,
            org: "CLOUDFLARENET".into(),
            country: Country::US,
        });
        t.add_as(AsInfo {
            asn: Asn::RU_CENTER,
            org: "RU-CENTER".into(),
            country: Country::RU,
        });
        t.announce("52.0.0.0/8".parse().unwrap(), Asn::AMAZON);
        t.announce("104.16.0.0/12".parse().unwrap(), Asn::CLOUDFLARE);
        t.announce("194.85.0.0/16".parse().unwrap(), Asn::RU_CENTER);
        t
    }

    #[test]
    fn lpm_origin() {
        let t = topo();
        assert_eq!(t.asn_of("52.1.2.3".parse().unwrap()), Some(Asn::AMAZON));
        assert_eq!(
            t.asn_of("104.16.9.9".parse().unwrap()),
            Some(Asn::CLOUDFLARE)
        );
        assert_eq!(t.asn_of("8.8.8.8".parse().unwrap()), None);
        assert_eq!(
            t.country_of("194.85.1.1".parse().unwrap()),
            Some(Country::RU)
        );
    }

    #[test]
    fn duplicate_as_rejected() {
        let mut t = topo();
        assert!(!t.add_as(AsInfo {
            asn: Asn::AMAZON,
            org: "DUP".into(),
            country: Country::DE,
        }));
        assert_eq!(t.as_count(), 3);
    }

    #[test]
    fn announce_requires_registered_as() {
        let mut t = topo();
        assert!(!t.announce("1.0.0.0/8".parse().unwrap(), Asn(64512)));
    }

    #[test]
    fn reannounce_moves_prefix() {
        let mut t = topo();
        let net: Ipv4Net = "194.85.32.0/24".parse().unwrap();
        t.announce(net, Asn::RU_CENTER);
        assert_eq!(
            t.asn_of("194.85.32.1".parse().unwrap()),
            Some(Asn::RU_CENTER)
        );
        // The Netnod-style move: same prefix, new origin.
        t.announce(net, Asn::CLOUDFLARE);
        assert_eq!(
            t.asn_of("194.85.32.1".parse().unwrap()),
            Some(Asn::CLOUDFLARE)
        );
        assert_eq!(
            t.prefixes().iter().filter(|(n, _)| *n == net).count(),
            1,
            "prefix list must not contain duplicates after a move"
        );
    }

    #[test]
    fn withdraw() {
        let mut t = topo();
        assert_eq!(t.withdraw("52.0.0.0/8".parse().unwrap()), Some(Asn::AMAZON));
        assert_eq!(t.asn_of("52.1.2.3".parse().unwrap()), None);
        assert_eq!(t.withdraw("52.0.0.0/8".parse().unwrap()), None);
    }

    #[test]
    fn latency_properties() {
        let t = topo();
        // Symmetric.
        assert_eq!(
            t.latency_us(Asn::AMAZON, Asn::RU_CENTER),
            t.latency_us(Asn::RU_CENTER, Asn::AMAZON)
        );
        // Intra-AS fast.
        assert!(t.latency_us(Asn::AMAZON, Asn::AMAZON) < 2_000);
        // Inter-AS bounded.
        let l = t.latency_us(Asn::AMAZON, Asn::RU_CENTER);
        assert!((5_000..152_000).contains(&l), "latency {l} out of range");
        // Same-country faster than the raw international draw's floor ceiling.
        let same = t.latency_us(Asn::AMAZON, Asn::CLOUDFLARE);
        assert!(same < 17_000, "same-country latency {same} too high");
        // Deterministic.
        assert_eq!(
            t.latency_us(Asn::AMAZON, Asn::RU_CENTER),
            topo().latency_us(Asn::AMAZON, Asn::RU_CENTER)
        );
    }

    #[test]
    fn jitter_varies_by_packet() {
        let t = topo();
        let j1 = t.jitter_us(Asn::AMAZON, Asn::RU_CENTER, 1);
        let j2 = t.jitter_us(Asn::AMAZON, Asn::RU_CENTER, 2);
        assert!(j1 < 2_000 && j2 < 2_000);
        assert_ne!(j1, j2);
    }
}
