//! A deterministic discrete-event network simulator.
//!
//! The paper's measurement systems (OpenINTEL-style DNS sweeps, Censys-style
//! TLS scans) are *active* network measurements. To reproduce the mechanism
//! rather than just the arithmetic, this crate provides a small but real
//! packet-level substrate:
//!
//! * [`ip`] — IPv4 CIDR prefixes and address allocation.
//! * [`routing`] — a bit-trie longest-prefix-match table.
//! * [`topology`] — an AS-level topology mapping prefixes to autonomous
//!   systems with countries and deterministic inter-AS latencies.
//! * [`sim`] — the event core: virtual time, a scheduler, hosts with UDP
//!   services, and a synchronous client request/response facade used by the
//!   resolver and the scanners.
//! * [`fault`] — scheduled fault injection: server outages, flapping boxes
//!   and degraded links active during windows of virtual time, replacing
//!   ad-hoc loss knobs with a declarative, deterministic [`FaultPlan`].
//!
//! Everything is deterministic: latency, jitter and loss are pure functions
//! of a [`ruwhere_types::SeedTree`] seed and packet identity, so a scan run
//! twice produces byte-identical datasets.
//!
//! ```
//! use ruwhere_netsim::{AsInfo, Datagram, Network, Service, SimTime, Topology};
//! use ruwhere_types::{Asn, Country, SeedTree};
//! use std::net::Ipv4Addr;
//!
//! struct Upper;
//! impl Service for Upper {
//!     fn handle(&mut self, p: &[u8], _src: (Ipv4Addr, u16), _now: SimTime) -> Option<Vec<u8>> {
//!         Some(p.to_ascii_uppercase())
//!     }
//! }
//!
//! let mut topo = Topology::new(SeedTree::new(1).child("topo"));
//! topo.add_as(AsInfo { asn: Asn(64500), org: "CLIENT".into(), country: Country::NL });
//! topo.add_as(AsInfo { asn: Asn(64501), org: "SERVER".into(), country: Country::RU });
//! topo.announce("10.0.0.0/8".parse().unwrap(), Asn(64500));
//! topo.announce("192.0.2.0/24".parse().unwrap(), Asn(64501));
//!
//! let mut net = Network::new(topo, SeedTree::new(1).child("net"));
//! net.bind("192.0.2.7".parse().unwrap(), 7, Box::new(Upper));
//! let reply = net
//!     .request("10.0.0.1".parse().unwrap(), ("192.0.2.7".parse().unwrap(), 7), b"ping", 1_000_000, 1)
//!     .unwrap();
//! assert_eq!(reply, b"PING");
//! assert!(net.now().as_micros() > 0); // latency was paid
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod ip;
pub mod obs;
pub mod routing;
pub mod sim;
pub mod topology;

pub use fault::{FaultPlan, FaultWindow, LinkFault, ServerFault, ServerFaultMode};
pub use ip::{IpAllocator, Ipv4Net, PrefixParseError};
pub use obs::{LinkObs, LinkTable, NetObs};
pub use routing::RoutingTable;
pub use ruwhere_obs::Histogram;
pub use sim::{Datagram, Lane, NetError, NetStats, Network, Service, SimTime, Transport};
pub use topology::{AsInfo, Topology};
