//! Scheduled fault injection: outages, flapping servers, degraded links.
//!
//! The paper's central natural experiment — the 2021-03-22 `.ru` TLD server
//! outage behind Figure 1's dip (footnote 8) — is a *scheduled infrastructure
//! fault*, not uniform background packet loss. This module models such
//! faults as first-class simulation objects: a [`FaultPlan`] holds a set of
//! fault declarations, each active during a window of virtual time, and the
//! [`Network`](crate::Network) consults the plan on every datagram.
//!
//! Three fault shapes cover the paper's scenarios:
//!
//! * [`ServerFault`] with [`ServerFaultMode::Outage`] — a black-holed box:
//!   every datagram addressed to it during the window is silently eaten
//!   (clients observe timeouts, exactly like the real outage).
//! * [`ServerFault`] with [`ServerFaultMode::Flapping`] — the box
//!   alternates between dead and alive phases of a fixed period, the
//!   pathology that motivates resolver-side penalty boxes.
//! * [`LinkFault`] — a degraded path: traffic to or from a prefix suffers
//!   elevated loss and extra one-way latency while the window is open.
//!
//! All stochastic draws (link-fault loss) are pure functions of the network
//! seed, the packet sequence number and the fault index, so a run with a
//! fault plan is exactly as reproducible as one without. The legacy
//! `Network::loss_rate` knob is retained as a convenience; semantically it
//! compiles down to the trivial plan [`FaultPlan::uniform_loss`] — one
//! always-on whole-Internet link fault.

use crate::ip::Ipv4Net;
use crate::sim::SimTime;
use std::net::Ipv4Addr;

/// A half-open window of virtual time `[start, end)`; `end = None` means the
/// fault never clears on its own (the world layer expires it explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant at which the fault is active.
    pub start: SimTime,
    /// First instant at which the fault is no longer active, if bounded.
    pub end: Option<SimTime>,
}

impl FaultWindow {
    /// Window covering `[start, end)`.
    pub const fn between(start: SimTime, end: SimTime) -> Self {
        FaultWindow {
            start,
            end: Some(end),
        }
    }

    /// Open-ended window starting at `start`.
    pub const fn from(start: SimTime) -> Self {
        FaultWindow { start, end: None }
    }

    /// Window covering all of virtual time.
    pub const fn always() -> Self {
        FaultWindow {
            start: SimTime::ZERO,
            end: None,
        }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && self.end.is_none_or(|e| t < e)
    }

    /// Whether the window is entirely in the past at `t`.
    pub fn expired_by(&self, t: SimTime) -> bool {
        self.end.is_some_and(|e| e <= t)
    }
}

/// How a faulted server misbehaves at the transport layer.
///
/// Both modes are *silent* from the client's perspective — inbound datagrams
/// are eaten, producing timeouts. Protocol-visible misbehaviour (SERVFAIL,
/// truncation, lame delegation) lives in the application layer
/// (`ruwhere-authdns`), where the server still answers but answers badly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFaultMode {
    /// Hard outage: unreachable for the whole window.
    Outage,
    /// Deterministic flapping: alternating dead/alive phases of
    /// `period_us` each, starting dead at the window start.
    Flapping {
        /// Length of each dead and each alive phase, in microseconds.
        period_us: u64,
    },
}

/// A per-server fault: datagrams addressed to `addr` (and `port`, if set)
/// are black-holed while the fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerFault {
    /// The faulted server's address.
    pub addr: Ipv4Addr,
    /// Restrict to one port; `None` faults the whole host.
    pub port: Option<u16>,
    /// Outage or flapping.
    pub mode: ServerFaultMode,
    /// When the fault is in force.
    pub window: FaultWindow,
}

impl ServerFault {
    /// Whether a datagram to `(addr, port)` arriving at `t` is black-holed.
    fn swallows(&self, addr: Ipv4Addr, port: u16, t: SimTime) -> bool {
        if addr != self.addr || self.port.is_some_and(|p| p != port) || !self.window.contains(t) {
            return false;
        }
        match self.mode {
            ServerFaultMode::Outage => true,
            ServerFaultMode::Flapping { period_us } => {
                let period = period_us.max(1);
                // Phase 0 (dead) first, so the fault bites at onset.
                (t.as_micros().saturating_sub(self.window.start.as_micros()) / period)
                    .is_multiple_of(2)
            }
        }
    }
}

/// A degraded link: extra loss probability and extra one-way latency for any
/// datagram whose source or destination falls inside `prefix`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Affected address range.
    pub prefix: Ipv4Net,
    /// Additional independent loss probability in `[0, 1]`, applied on top
    /// of the network's baseline loss process.
    pub extra_loss: f64,
    /// Additional one-way latency in microseconds.
    pub extra_latency_us: u64,
    /// When the degradation is in force.
    pub window: FaultWindow,
}

impl LinkFault {
    fn applies(&self, a: Ipv4Addr, b: Ipv4Addr, t: SimTime) -> bool {
        self.window.contains(t) && (self.prefix.contains(a) || self.prefix.contains(b))
    }
}

/// A schedule of faults consulted by the [`Network`](crate::Network) on
/// every datagram. Empty by default; faults are installed by tests and by
/// the world layer when a timeline `InfrastructureFault` event fires.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    servers: Vec<ServerFault>,
    links: Vec<LinkFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The trivial plan the legacy `loss_rate` knob corresponds to: one
    /// always-on link fault covering the entire address space.
    pub fn uniform_loss(rate: f64) -> Self {
        let mut plan = FaultPlan::new();
        if rate > 0.0 {
            plan.add_link_fault(LinkFault {
                prefix: Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 0).expect("/0 is valid"),
                extra_loss: rate,
                extra_latency_us: 0,
                window: FaultWindow::always(),
            });
        }
        plan
    }

    /// Whether the plan has no faults at all (fast path for the hot loop).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty() && self.links.is_empty()
    }

    /// Install a server fault.
    pub fn add_server_fault(&mut self, fault: ServerFault) {
        self.servers.push(fault);
    }

    /// Install a link fault.
    pub fn add_link_fault(&mut self, fault: LinkFault) {
        self.links.push(fault);
    }

    /// Remove every server fault targeting exactly `(addr, port)`,
    /// regardless of mode or window. The world layer uses this to lift an
    /// outage at day rollover — virtual time may not have reached the
    /// window end if nothing was measured meanwhile.
    pub fn remove_server_faults(&mut self, addr: Ipv4Addr, port: Option<u16>) {
        self.servers.retain(|f| f.addr != addr || f.port != port);
    }

    /// Installed server faults, in insertion order.
    pub fn server_faults(&self) -> &[ServerFault] {
        &self.servers
    }

    /// Installed link faults, in insertion order.
    pub fn link_faults(&self) -> &[LinkFault] {
        &self.links
    }

    /// Whether a datagram to `(addr, port)` arriving at `t` is black-holed
    /// by some active server fault.
    pub fn server_down(&self, addr: Ipv4Addr, port: u16, t: SimTime) -> bool {
        self.servers.iter().any(|f| f.swallows(addr, port, t))
    }

    /// Active link faults touching a datagram between `a` and `b` at `t`,
    /// with their plan-wide indices (the index keys the loss draw so each
    /// fault has an independent deterministic loss stream).
    pub fn active_link_faults(
        &self,
        a: Ipv4Addr,
        b: Ipv4Addr,
        t: SimTime,
    ) -> impl Iterator<Item = (usize, &LinkFault)> {
        self.links
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.applies(a, b, t))
    }

    /// Total extra one-way latency for a datagram between `a` and `b` at `t`.
    pub fn extra_latency_us(&self, a: Ipv4Addr, b: Ipv4Addr, t: SimTime) -> u64 {
        self.active_link_faults(a, b, t)
            .map(|(_, f)| f.extra_latency_us)
            .sum()
    }

    /// Drop every fault whose window has fully elapsed by `t`. The world
    /// layer calls this at day rollover, because virtual time only advances
    /// while measurements run — an expired fault must not linger just
    /// because nobody sent a packet after its window closed.
    pub fn clear_expired(&mut self, t: SimTime) {
        self.servers.retain(|f| !f.window.expired_by(t));
        self.links.retain(|f| !f.window.expired_by(t));
    }

    /// Remove all faults.
    pub fn clear(&mut self) {
        self.servers.clear();
        self.links.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 53);

    #[test]
    fn window_semantics() {
        let w = FaultWindow::between(SimTime(100), SimTime(200));
        assert!(!w.contains(SimTime(99)));
        assert!(w.contains(SimTime(100)));
        assert!(w.contains(SimTime(199)));
        assert!(!w.contains(SimTime(200)));
        assert!(!w.expired_by(SimTime(199)));
        assert!(w.expired_by(SimTime(200)));
        let open = FaultWindow::from(SimTime(50));
        assert!(open.contains(SimTime(1_000_000_000)));
        assert!(!open.expired_by(SimTime(u64::MAX)));
    }

    #[test]
    fn outage_respects_port_filter() {
        let mut plan = FaultPlan::new();
        plan.add_server_fault(ServerFault {
            addr: S,
            port: Some(53),
            mode: ServerFaultMode::Outage,
            window: FaultWindow::always(),
        });
        assert!(plan.server_down(S, 53, SimTime(5)));
        assert!(!plan.server_down(S, 80, SimTime(5)));
        assert!(!plan.server_down(Ipv4Addr::new(192, 0, 2, 54), 53, SimTime(5)));
    }

    #[test]
    fn flapping_alternates_phases() {
        let f = ServerFault {
            addr: S,
            port: None,
            mode: ServerFaultMode::Flapping { period_us: 100 },
            window: FaultWindow::from(SimTime(1_000)),
        };
        // Dead first phase, alive second, dead third…
        assert!(f.swallows(S, 53, SimTime(1_000)));
        assert!(f.swallows(S, 53, SimTime(1_099)));
        assert!(!f.swallows(S, 53, SimTime(1_100)));
        assert!(!f.swallows(S, 53, SimTime(1_199)));
        assert!(f.swallows(S, 53, SimTime(1_200)));
        // Outside the window: healthy.
        assert!(!f.swallows(S, 53, SimTime(999)));
    }

    #[test]
    fn link_fault_matches_either_endpoint() {
        let f = LinkFault {
            prefix: "192.0.2.0/24".parse().unwrap(),
            extra_loss: 0.5,
            extra_latency_us: 7_000,
            window: FaultWindow::always(),
        };
        let outside = Ipv4Addr::new(10, 0, 0, 1);
        assert!(f.applies(S, outside, SimTime(0)));
        assert!(f.applies(outside, S, SimTime(0)));
        assert!(!f.applies(outside, outside, SimTime(0)));
    }

    #[test]
    fn clear_expired_retains_live_faults() {
        let mut plan = FaultPlan::new();
        plan.add_server_fault(ServerFault {
            addr: S,
            port: None,
            mode: ServerFaultMode::Outage,
            window: FaultWindow::between(SimTime(0), SimTime(100)),
        });
        plan.add_server_fault(ServerFault {
            addr: S,
            port: None,
            mode: ServerFaultMode::Outage,
            window: FaultWindow::from(SimTime(0)),
        });
        plan.add_link_fault(LinkFault {
            prefix: "0.0.0.0/0".parse().unwrap(),
            extra_loss: 0.1,
            extra_latency_us: 0,
            window: FaultWindow::between(SimTime(0), SimTime(50)),
        });
        plan.clear_expired(SimTime(100));
        assert_eq!(plan.server_faults().len(), 1);
        assert!(plan.link_faults().is_empty());
        plan.clear();
        assert!(plan.is_empty());
    }

    #[test]
    fn uniform_loss_is_whole_internet_always_on() {
        let plan = FaultPlan::uniform_loss(0.25);
        let faults: Vec<_> = plan
            .active_link_faults(
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(5, 6, 7, 8),
                SimTime(0),
            )
            .collect();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].1.extra_loss, 0.25);
        assert!(FaultPlan::uniform_loss(0.0).is_empty());
    }
}
