//! Property tests: LPM trie against brute force; CIDR parsing.

use proptest::prelude::*;
use ruwhere_netsim::{Ipv4Net, RoutingTable};
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_matches_bruteforce(
        inserts in proptest::collection::vec((any::<u32>(), 4u8..30), 1..120),
        probes in proptest::collection::vec(any::<u32>(), 64),
    ) {
        let mut trie = RoutingTable::new();
        let mut reference: Vec<(Ipv4Net, usize)> = Vec::new();
        for (i, (addr, len)) in inserts.iter().enumerate() {
            let net = Ipv4Net::new(Ipv4Addr::from(*addr), *len).unwrap();
            trie.insert(net, i);
            reference.retain(|(n, _)| *n != net);
            reference.push((net, i));
        }
        for p in &probes {
            let probe = Ipv4Addr::from(*p);
            let expected = reference
                .iter()
                .filter(|(n, _)| n.contains(probe))
                .max_by_key(|(n, _)| n.prefix_len())
                .map(|(_, v)| v);
            prop_assert_eq!(trie.lookup(probe), expected);
        }
    }

    #[test]
    fn trie_removal_matches_bruteforce(
        inserts in proptest::collection::vec((any::<u32>(), 4u8..24), 2..60),
        remove_idx in proptest::collection::vec(any::<prop::sample::Index>(), 1..10),
        probes in proptest::collection::vec(any::<u32>(), 32),
    ) {
        let mut trie = RoutingTable::new();
        let mut reference: Vec<(Ipv4Net, usize)> = Vec::new();
        for (i, (addr, len)) in inserts.iter().enumerate() {
            let net = Ipv4Net::new(Ipv4Addr::from(*addr), *len).unwrap();
            trie.insert(net, i);
            reference.retain(|(n, _)| *n != net);
            reference.push((net, i));
        }
        for idx in &remove_idx {
            if reference.is_empty() { break; }
            let k = idx.index(reference.len());
            let (net, _) = reference.remove(k);
            prop_assert!(trie.remove(net).is_some());
        }
        prop_assert_eq!(trie.len(), reference.len());
        for p in &probes {
            let probe = Ipv4Addr::from(*p);
            let expected = reference
                .iter()
                .filter(|(n, _)| n.contains(probe))
                .max_by_key(|(n, _)| n.prefix_len())
                .map(|(_, v)| v);
            prop_assert_eq!(trie.lookup(probe), expected);
        }
    }

    #[test]
    fn cidr_display_parse_roundtrip(addr in any::<u32>(), len in 0u8..=32) {
        let net = Ipv4Net::new(Ipv4Addr::from(addr), len).unwrap();
        let s = net.to_string();
        prop_assert_eq!(s.parse::<Ipv4Net>().unwrap(), net);
    }

    #[test]
    fn containment_is_consistent(addr in any::<u32>(), len in 0u8..=32, probe in any::<u32>()) {
        let net = Ipv4Net::new(Ipv4Addr::from(addr), len).unwrap();
        let p = Ipv4Addr::from(probe);
        // An address is contained iff its top `len` bits match.
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        prop_assert_eq!(net.contains(p), probe & mask == net.bits());
        // The network address itself is always contained.
        prop_assert!(net.contains(net.network()));
    }

    #[test]
    fn nth_stays_inside(addr in any::<u32>(), len in 8u8..=32, i in any::<u64>()) {
        let net = Ipv4Net::new(Ipv4Addr::from(addr), len).unwrap();
        match net.nth(i) {
            Some(ip) => prop_assert!(net.contains(ip)),
            None => prop_assert!(i >= net.size()),
        }
    }
}
