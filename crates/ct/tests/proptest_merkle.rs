//! Property tests for the CT log's Merkle machinery.

use proptest::prelude::*;
use ruwhere_ct::ctlog::{verify_consistency, verify_inclusion};
use ruwhere_ct::{Certificate, CtLog, DistinguishedName};
use ruwhere_types::{Country, Date};

fn cert(i: u64) -> Certificate {
    Certificate {
        serial: i,
        issuer: DistinguishedName {
            organization: "Prop CA".into(),
            common_name: "P1".into(),
            country: Country::US,
        },
        subject_cn: format!("prop-{i}.ru"),
        san: vec![],
        not_before: Date::from_ymd(2022, 1, 1),
        not_after: Date::from_ymd(2022, 4, 1),
        chain_orgs: vec![],
        ct_logged: true,
    }
}

fn log_of(n: u64) -> CtLog {
    let mut log = CtLog::new("prop");
    for i in 0..n {
        log.append(
            cert(i),
            Date::from_ymd(2022, 1, 1).add_days((i % 60) as i32),
        );
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inclusion_proofs_always_verify(
        size in 1u64..200,
        idx_seed in any::<u64>(),
    ) {
        let log = log_of(size);
        let idx = idx_seed % size;
        let proof = log.inclusion_proof(idx, size).unwrap();
        let leaf = log.leaf_at(idx).unwrap();
        let root = log.root_at(size).unwrap();
        prop_assert!(verify_inclusion(&leaf, &proof, &root));
    }

    #[test]
    fn inclusion_proofs_reject_wrong_index(
        size in 2u64..150,
        a_seed in any::<u64>(),
        b_seed in any::<u64>(),
    ) {
        let log = log_of(size);
        let a = a_seed % size;
        let b = b_seed % size;
        prop_assume!(a != b);
        let proof = log.inclusion_proof(a, size).unwrap();
        let wrong_leaf = log.leaf_at(b).unwrap();
        let root = log.root_at(size).unwrap();
        prop_assert!(!verify_inclusion(&wrong_leaf, &proof, &root));
    }

    #[test]
    fn consistency_proofs_always_verify(
        new in 1u64..200,
        old_seed in any::<u64>(),
    ) {
        let log = log_of(new);
        let old = 1 + old_seed % new;
        let proof = log.consistency_proof(old, new).unwrap();
        let old_root = log.root_at(old).unwrap();
        let new_root = log.root_at(new).unwrap();
        prop_assert!(verify_consistency(&old_root, &new_root, &proof));
    }

    #[test]
    fn consistency_rejects_tampered_roots(
        new in 2u64..150,
        old_seed in any::<u64>(),
        flip in any::<u8>(),
    ) {
        let log = log_of(new);
        let old = 1 + old_seed % (new - 1);
        prop_assume!(old < new);
        let proof = log.consistency_proof(old, new).unwrap();
        let old_root = log.root_at(old).unwrap();
        let mut bad_new = log.root_at(new).unwrap();
        bad_new[(flip % 32) as usize] ^= 1 | flip;
        prop_assert!(!verify_consistency(&old_root, &bad_new, &proof));
    }

    #[test]
    fn tampered_audit_paths_fail(
        size in 2u64..150,
        idx_seed in any::<u64>(),
        node_seed in any::<u64>(),
        flip in 1u8..,
    ) {
        let log = log_of(size);
        let idx = idx_seed % size;
        let mut proof = log.inclusion_proof(idx, size).unwrap();
        prop_assume!(!proof.audit_path.is_empty());
        let n = node_seed as usize % proof.audit_path.len();
        proof.audit_path[n][0] ^= flip;
        let leaf = log.leaf_at(idx).unwrap();
        let root = log.root_at(size).unwrap();
        prop_assert!(!verify_inclusion(&leaf, &proof, &root));
    }

    #[test]
    fn roots_are_prefix_stable(
        small in 1u64..100,
        extra in 1u64..100,
    ) {
        // Appending entries never changes historical roots.
        let log_small = log_of(small);
        let log_big = log_of(small + extra);
        prop_assert_eq!(log_small.root_at(small), log_big.root_at(small));
        prop_assert_ne!(
            log_big.root_at(small + extra).unwrap(),
            log_big.root_at(small).unwrap()
        );
    }
}
