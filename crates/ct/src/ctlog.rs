//! An RFC 6962 / RFC 9162 Certificate Transparency log.
//!
//! Append-only Merkle tree over certificate entries, with Merkle tree heads,
//! inclusion proofs, and consistency proofs (generation *and* verification).
//! The Censys-style indexer in `ruwhere-scan` reads entries out of logs; a
//! monitor can verify that the log operator never rewrote history.

use crate::cert::Certificate;
use crate::hash::{sha256, Digest, Sha256};
use ruwhere_types::Date;
use serde::{Deserialize, Serialize};

/// One appended entry: the certificate and its log timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtEntry {
    /// The logged certificate.
    pub cert: Certificate,
    /// Submission date.
    pub timestamp: Date,
}

/// A Merkle tree head: size + root hash (+ a stand-in signature).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedTreeHead {
    /// Number of leaves.
    pub tree_size: u64,
    /// Merkle root (RFC 6962 MTH).
    pub root: Digest,
    /// Stand-in signature binding size and root to the log identity.
    pub signature: Digest,
}

/// Audit path proving a leaf is in a tree of a given size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionProof {
    /// The leaf's index.
    pub leaf_index: u64,
    /// Tree size the proof is against.
    pub tree_size: u64,
    /// Sibling hashes from leaf to root.
    pub audit_path: Vec<Digest>,
}

/// Proof that the tree of size `new_size` is an append-only extension of
/// the tree of size `old_size`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyProof {
    /// Earlier tree size.
    pub old_size: u64,
    /// Later tree size.
    pub new_size: u64,
    /// Proof nodes.
    pub path: Vec<Digest>,
}

fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// The log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CtLog {
    name: String,
    entries: Vec<CtEntry>,
    leaves: Vec<Digest>,
}

impl CtLog {
    /// New empty log.
    pub fn new(name: &str) -> Self {
        CtLog {
            name: name.to_owned(),
            entries: Vec::new(),
            leaves: Vec::new(),
        }
    }

    /// Log operator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a certificate; returns its leaf index.
    pub fn append(&mut self, cert: Certificate, timestamp: Date) -> u64 {
        let fp = cert.fingerprint();
        let mut leaf_data = Vec::with_capacity(40);
        leaf_data.extend_from_slice(&fp);
        leaf_data.extend_from_slice(&timestamp.days_since_epoch().to_be_bytes());
        self.leaves.push(leaf_hash(&leaf_data));
        self.entries.push(CtEntry { cert, timestamp });
        self.leaves.len() as u64
    }

    /// Current number of entries.
    pub fn size(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// All entries (index order == append order).
    pub fn entries(&self) -> &[CtEntry] {
        &self.entries
    }

    /// Entries whose timestamp is within `[from, to]`.
    pub fn entries_between(&self, from: Date, to: Date) -> impl Iterator<Item = &CtEntry> {
        self.entries
            .iter()
            .filter(move |e| e.timestamp >= from && e.timestamp <= to)
    }

    fn mth(&self, lo: usize, hi: usize) -> Digest {
        debug_assert!(lo <= hi);
        match hi - lo {
            0 => sha256(b""), // MTH of the empty tree
            1 => self.leaves[lo],
            n => {
                let k = largest_power_of_two_below(n as u64) as usize;
                node_hash(&self.mth(lo, lo + k), &self.mth(lo + k, hi))
            }
        }
    }

    /// Merkle root over the first `size` leaves.
    pub fn root_at(&self, size: u64) -> Option<Digest> {
        (size <= self.size()).then(|| self.mth(0, size as usize))
    }

    /// Current signed tree head.
    pub fn sth(&self) -> SignedTreeHead {
        self.sth_at(self.size()).expect("current size is valid")
    }

    /// Signed tree head for a historical size.
    pub fn sth_at(&self, size: u64) -> Option<SignedTreeHead> {
        let root = self.root_at(size)?;
        let mut sig_input = Vec::new();
        sig_input.extend_from_slice(self.name.as_bytes());
        sig_input.extend_from_slice(&size.to_be_bytes());
        sig_input.extend_from_slice(&root);
        Some(SignedTreeHead {
            tree_size: size,
            root,
            signature: sha256(&sig_input),
        })
    }

    /// The leaf hash at `index`.
    pub fn leaf_at(&self, index: u64) -> Option<Digest> {
        self.leaves.get(index as usize).copied()
    }

    /// RFC 6962 §2.1.1 audit path for `leaf_index` in the tree of
    /// `tree_size` leaves.
    pub fn inclusion_proof(&self, leaf_index: u64, tree_size: u64) -> Option<InclusionProof> {
        if leaf_index >= tree_size || tree_size > self.size() {
            return None;
        }
        let mut path = Vec::new();
        self.audit_path(leaf_index as usize, 0, tree_size as usize, &mut path);
        Some(InclusionProof {
            leaf_index,
            tree_size,
            audit_path: path,
        })
    }

    fn audit_path(&self, m: usize, lo: usize, hi: usize, out: &mut Vec<Digest>) {
        let n = hi - lo;
        if n <= 1 {
            return;
        }
        let k = largest_power_of_two_below(n as u64) as usize;
        if m < k {
            self.audit_path(m, lo, lo + k, out);
            out.push(self.mth(lo + k, hi));
        } else {
            self.audit_path(m - k, lo + k, hi, out);
            out.push(self.mth(lo, lo + k));
        }
    }

    /// RFC 6962 §2.1.2 consistency proof between two historical sizes.
    pub fn consistency_proof(&self, old_size: u64, new_size: u64) -> Option<ConsistencyProof> {
        if old_size == 0 || old_size > new_size || new_size > self.size() {
            return None;
        }
        let mut path = Vec::new();
        self.subproof(old_size as usize, 0, new_size as usize, true, &mut path);
        Some(ConsistencyProof {
            old_size,
            new_size,
            path,
        })
    }

    fn subproof(&self, m: usize, lo: usize, hi: usize, complete: bool, out: &mut Vec<Digest>) {
        let n = hi - lo;
        if m == n {
            if !complete {
                out.push(self.mth(lo, hi));
            }
            return;
        }
        let k = largest_power_of_two_below(n as u64) as usize;
        if m <= k {
            self.subproof(m, lo, lo + k, complete, out);
            out.push(self.mth(lo + k, hi));
        } else {
            self.subproof(m - k, lo + k, hi, false, out);
            out.push(self.mth(lo, lo + k));
        }
    }
}

/// Largest power of two strictly less than `n` (n ≥ 2).
fn largest_power_of_two_below(n: u64) -> u64 {
    debug_assert!(n >= 2);
    let p = n.next_power_of_two();
    if p == n {
        n / 2
    } else {
        p / 2
    }
}

/// Verify an inclusion proof against a root (RFC 9162 §2.1.3.2).
pub fn verify_inclusion(leaf: &Digest, proof: &InclusionProof, root: &Digest) -> bool {
    if proof.leaf_index >= proof.tree_size {
        return false;
    }
    let mut fnode = proof.leaf_index;
    let mut snode = proof.tree_size - 1;
    let mut r = *leaf;
    for c in &proof.audit_path {
        if snode == 0 {
            return false;
        }
        if fnode & 1 == 1 || fnode == snode {
            r = node_hash(c, &r);
            if fnode & 1 == 0 {
                while fnode & 1 == 0 && fnode != 0 {
                    fnode >>= 1;
                    snode >>= 1;
                }
            }
        } else {
            r = node_hash(&r, c);
        }
        fnode >>= 1;
        snode >>= 1;
    }
    snode == 0 && r == *root
}

/// Verify a consistency proof between two roots (RFC 9162 §2.1.4.2).
pub fn verify_consistency(old_root: &Digest, new_root: &Digest, proof: &ConsistencyProof) -> bool {
    let (m, n) = (proof.old_size, proof.new_size);
    if m == 0 || m > n {
        return false;
    }
    if m == n {
        return proof.path.is_empty() && old_root == new_root;
    }
    let mut path = proof.path.iter();
    // If old_size is a power of two, the old root itself is the implicit
    // first element.
    let first = if m.is_power_of_two() {
        *old_root
    } else {
        match path.next() {
            Some(d) => *d,
            None => return false,
        }
    };
    let mut fnode = m - 1;
    let mut snode = n - 1;
    while fnode & 1 == 1 {
        fnode >>= 1;
        snode >>= 1;
    }
    let mut fr = first;
    let mut sr = first;
    for c in path {
        if snode == 0 {
            return false;
        }
        if fnode & 1 == 1 || fnode == snode {
            fr = node_hash(c, &fr);
            sr = node_hash(c, &sr);
            if fnode & 1 == 0 {
                while fnode & 1 == 0 && fnode != 0 {
                    fnode >>= 1;
                    snode >>= 1;
                }
            }
        } else {
            sr = node_hash(&sr, c);
        }
        fnode >>= 1;
        snode >>= 1;
    }
    snode == 0 && fr == *old_root && sr == *new_root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::DistinguishedName;
    use ruwhere_types::Country;

    fn cert(i: u64) -> Certificate {
        Certificate {
            serial: i,
            issuer: DistinguishedName {
                organization: "Let's Encrypt".into(),
                common_name: "R3".into(),
                country: Country::US,
            },
            subject_cn: format!("site{i}.ru"),
            san: vec![],
            not_before: Date::from_ymd(2022, 1, 1),
            not_after: Date::from_ymd(2022, 4, 1),
            chain_orgs: vec![],
            ct_logged: true,
        }
    }

    fn log_of(n: u64) -> CtLog {
        let mut log = CtLog::new("test-log");
        for i in 0..n {
            log.append(cert(i), Date::from_ymd(2022, 1, 1).add_days(i as i32 % 90));
        }
        log
    }

    #[test]
    fn empty_tree_root_is_hash_of_empty() {
        let log = CtLog::new("t");
        assert_eq!(log.root_at(0).unwrap(), sha256(b""));
        assert_eq!(log.size(), 0);
    }

    #[test]
    fn appends_change_root_deterministically() {
        let a = log_of(5);
        let b = log_of(5);
        assert_eq!(a.sth().root, b.sth().root);
        assert_ne!(log_of(5).sth().root, log_of(6).sth().root);
        // Historical roots are stable as the tree grows.
        let big = log_of(10);
        assert_eq!(big.root_at(5).unwrap(), a.sth().root);
    }

    #[test]
    fn inclusion_proofs_verify_exhaustively() {
        // Every leaf in every tree size up to 40: the full proof matrix.
        let log = log_of(40);
        for size in 1..=40u64 {
            let root = log.root_at(size).unwrap();
            for idx in 0..size {
                let proof = log.inclusion_proof(idx, size).unwrap();
                let leaf = log.leaf_at(idx).unwrap();
                assert!(
                    verify_inclusion(&leaf, &proof, &root),
                    "inclusion failed idx={idx} size={size}"
                );
            }
        }
    }

    #[test]
    fn inclusion_proof_rejects_wrong_leaf_and_root() {
        let log = log_of(16);
        let root = log.root_at(16).unwrap();
        let proof = log.inclusion_proof(3, 16).unwrap();
        let wrong_leaf = log.leaf_at(4).unwrap();
        assert!(!verify_inclusion(&wrong_leaf, &proof, &root));
        let right_leaf = log.leaf_at(3).unwrap();
        let wrong_root = log.root_at(15).unwrap();
        assert!(!verify_inclusion(&right_leaf, &proof, &wrong_root));
        // Tampered path.
        let mut tampered = proof.clone();
        tampered.audit_path[0][0] ^= 1;
        assert!(!verify_inclusion(&right_leaf, &tampered, &root));
    }

    #[test]
    fn consistency_proofs_verify_exhaustively() {
        let log = log_of(33);
        for old in 1..=33u64 {
            for new in old..=33u64 {
                let proof = log.consistency_proof(old, new).unwrap();
                let old_root = log.root_at(old).unwrap();
                let new_root = log.root_at(new).unwrap();
                assert!(
                    verify_consistency(&old_root, &new_root, &proof),
                    "consistency failed old={old} new={new}"
                );
            }
        }
    }

    #[test]
    fn consistency_detects_rewritten_history() {
        // Two logs that diverge at entry 5.
        let honest = log_of(20);
        let mut forked = log_of(5);
        for i in 100..115u64 {
            forked.append(cert(i), Date::from_ymd(2022, 2, 1));
        }
        let proof = forked.consistency_proof(5, 20).unwrap();
        let old_root = honest.root_at(5).unwrap(); // same first 5 entries
        let new_root_forked = forked.root_at(20).unwrap();
        // Fork is internally consistent...
        assert!(verify_consistency(&old_root, &new_root_forked, &proof));
        // ...but its head does not match the honest log's head.
        assert_ne!(new_root_forked, honest.root_at(20).unwrap());

        // A proof from the honest log cannot link the forked old root.
        let mut bad_old = old_root;
        bad_old[0] ^= 0xFF;
        let honest_proof = honest.consistency_proof(5, 20).unwrap();
        assert!(!verify_consistency(
            &bad_old,
            &honest.root_at(20).unwrap(),
            &honest_proof
        ));
    }

    #[test]
    fn proof_edge_cases() {
        let log = log_of(8);
        // Out-of-range requests.
        assert!(log.inclusion_proof(8, 8).is_none());
        assert!(log.inclusion_proof(0, 9).is_none());
        assert!(log.consistency_proof(0, 5).is_none());
        assert!(log.consistency_proof(6, 5).is_none());
        assert!(log.consistency_proof(1, 9).is_none());
        // m == n: empty proof, trivially valid.
        let proof = log.consistency_proof(8, 8).unwrap();
        assert!(proof.path.is_empty());
        let root = log.root_at(8).unwrap();
        assert!(verify_consistency(&root, &root, &proof));
        // Single-leaf tree: inclusion proof is empty.
        let proof = log.inclusion_proof(0, 1).unwrap();
        assert!(proof.audit_path.is_empty());
        assert!(verify_inclusion(
            &log.leaf_at(0).unwrap(),
            &proof,
            &log.root_at(1).unwrap()
        ));
    }

    #[test]
    fn entries_between() {
        let log = log_of(10);
        let n = log
            .entries_between(Date::from_ymd(2022, 1, 3), Date::from_ymd(2022, 1, 5))
            .count();
        assert_eq!(n, 3);
        assert_eq!(log.entries().len(), 10);
    }

    #[test]
    fn sth_signature_binds_identity() {
        let a = log_of(5).sth();
        let mut other = CtLog::new("other-log");
        for i in 0..5 {
            other.append(cert(i), Date::from_ymd(2022, 1, 1).add_days(i as i32));
        }
        let b = other.sth();
        assert_eq!(a.root, b.root, "same contents, same root");
        assert_ne!(a.signature, b.signature, "different log identity");
    }

    #[test]
    fn power_of_two_helper() {
        assert_eq!(largest_power_of_two_below(2), 1);
        assert_eq!(largest_power_of_two_below(3), 2);
        assert_eq!(largest_power_of_two_below(4), 2);
        assert_eq!(largest_power_of_two_below(5), 4);
        assert_eq!(largest_power_of_two_below(8), 4);
        assert_eq!(largest_power_of_two_below(9), 8);
    }
}
