//! WebPKI substrate: certificates, CAs, Certificate Transparency, and
//! revocation.
//!
//! Section 4 of the paper studies how Certificate Authorities reacted to the
//! conflict using three data sources, all reproduced here:
//!
//! * **CT logs** ([`CtLog`]) — an RFC 6962 append-only Merkle tree (with a
//!   from-scratch SHA-256 in [`hash`]) recording certificate issuance;
//!   supports signed tree heads, inclusion proofs, and consistency proofs.
//!   The Russian Trusted Root CA famously does *not* log its certificates,
//!   which is why the paper needs IP-wide scans to see them at all.
//! * **Certificates and CAs** ([`cert`], [`ca`]) — an X.509-lite model:
//!   issuer organization + common-name brands (DigiCert issues under
//!   RapidSSL/GeoTrust, etc.), subject CN and SANs, validity windows.
//! * **Revocation** ([`revocation`]) — CRL sets and an OCSP-style status
//!   oracle, used for Table 2 (DigiCert and Sectigo revoked 100 % of their
//!   sanctioned-domain certificates).

//! ```
//! use ruwhere_ct::ctlog::verify_inclusion;
//! use ruwhere_ct::{CertificateAuthority, CtLog};
//! use ruwhere_types::{Country, Date};
//!
//! let mut ca = CertificateAuthority::new("Let's Encrypt", Country::US, &["R3"], true, 90);
//! let mut log = CtLog::new("example-log");
//! for i in 0..10u32 {
//!     let d = format!("site{i}.ru").parse().unwrap();
//!     let cert = ca.issue(&d, vec![], 0, Date::from_ymd(2022, 1, 1), vec![]).unwrap();
//!     log.append(cert, Date::from_ymd(2022, 1, 1));
//! }
//! let sth = log.sth();
//! let proof = log.inclusion_proof(4, sth.tree_size).unwrap();
//! assert!(verify_inclusion(&log.leaf_at(4).unwrap(), &proof, &sth.root));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ca;
pub mod cert;
pub mod ctlog;
pub mod hash;
pub mod revocation;

pub use ca::{CaPolicy, CertificateAuthority};
pub use cert::{Certificate, DistinguishedName};
pub use ctlog::{ConsistencyProof, CtLog, InclusionProof, SignedTreeHead};
pub use hash::{sha256, Digest};
pub use revocation::{CertStatus, Crl, OcspResponder, RevocationReason};
