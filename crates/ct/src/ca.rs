//! Certificate authorities and their issuance policies.

use crate::cert::{Certificate, DistinguishedName};
use ruwhere_types::{Country, Date, DomainName};
use serde::{Deserialize, Serialize};

/// A CA's current stance toward a class of customers. The paper observes
/// three policies after the invasion: keep issuing, stop issuing for
/// `.ru`/`.рф`, and stop issuing *and* revoke sanctioned customers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaPolicy {
    /// Business as usual.
    Issuing,
    /// New issuance suspended (existing certificates untouched).
    Suspended,
}

/// A certificate authority.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CertificateAuthority {
    /// Issuer Organization string as it appears in the Issuer DN — the key
    /// the paper aggregates by ("Let's Encrypt", "DigiCert", …).
    pub organization: String,
    /// Country of the CA (Let's Encrypt is a US entity — the §6 exposure
    /// argument).
    pub country: Country,
    /// Issuing brands (Common Names). DigiCert issues under RapidSSL and
    /// GeoTrust; isolated post-conflict dots in Figure 8 come from brands
    /// that were not shut off with the main CN.
    pub brands: Vec<String>,
    /// Whether issuances are submitted to CT logs. True for all the global
    /// CAs; false for the Russian Trusted Root CA.
    pub logs_to_ct: bool,
    /// Current policy for Russian-TLD customers.
    pub policy: CaPolicy,
    /// Default validity period in days (90 for ACME-style CAs, 365 for the
    /// commercial ones).
    pub validity_days: u32,
    next_serial: u64,
}

impl CertificateAuthority {
    /// New CA with [`CaPolicy::Issuing`].
    pub fn new(
        organization: &str,
        country: Country,
        brands: &[&str],
        logs_to_ct: bool,
        validity_days: u32,
    ) -> Self {
        CertificateAuthority {
            organization: organization.to_owned(),
            country,
            brands: brands.iter().map(|s| (*s).to_owned()).collect(),
            logs_to_ct,
            policy: CaPolicy::Issuing,
            validity_days,
            next_serial: 1,
        }
    }

    /// Issue a certificate for `subject` (CN) with `san`, under brand index
    /// `brand_idx` (wrapped into range), effective `date`.
    ///
    /// Returns `None` if the CA's policy is [`CaPolicy::Suspended`] and the
    /// request names a Russian-TLD domain.
    pub fn issue(
        &mut self,
        subject: &DomainName,
        san: Vec<DomainName>,
        brand_idx: usize,
        date: Date,
        chain_orgs: Vec<String>,
    ) -> Option<Certificate> {
        let is_russian = subject.is_russian_cctld() || san.iter().any(|d| d.is_russian_cctld());
        if self.policy == CaPolicy::Suspended && is_russian {
            return None;
        }
        let brand = if self.brands.is_empty() {
            self.organization.clone()
        } else {
            self.brands[brand_idx % self.brands.len()].clone()
        };
        let serial = self.next_serial;
        self.next_serial += 1;
        Some(Certificate {
            serial,
            issuer: DistinguishedName {
                organization: self.organization.clone(),
                common_name: brand,
                country: self.country,
            },
            subject_cn: subject.as_str().to_owned(),
            san,
            not_before: date,
            not_after: date.add_days(self.validity_days as i32),
            chain_orgs,
            ct_logged: self.logs_to_ct,
        })
    }

    /// Serial that will be assigned next (== 1 + number issued).
    pub fn issued_count(&self) -> u64 {
        self.next_serial - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn lets_encrypt() -> CertificateAuthority {
        CertificateAuthority::new("Let's Encrypt", Country::US, &["R3", "E1"], true, 90)
    }

    #[test]
    fn issuance_basics() {
        let mut ca = lets_encrypt();
        let c = ca
            .issue(
                &d("example.ru"),
                vec![d("www.example.ru")],
                0,
                Date::from_ymd(2022, 1, 10),
                vec!["ISRG".into()],
            )
            .unwrap();
        assert_eq!(c.serial, 1);
        assert_eq!(c.issuer.organization, "Let's Encrypt");
        assert_eq!(c.issuer.common_name, "R3");
        assert_eq!(c.not_after - c.not_before, 90);
        assert!(c.ct_logged);
        assert!(c.matches_russian_tld());
        assert_eq!(ca.issued_count(), 1);

        let c2 = ca
            .issue(
                &d("example.ru"),
                vec![],
                1,
                Date::from_ymd(2022, 1, 11),
                vec![],
            )
            .unwrap();
        assert_eq!(c2.serial, 2);
        assert_eq!(c2.issuer.common_name, "E1");
    }

    #[test]
    fn suspension_blocks_russian_only() {
        let mut ca = lets_encrypt();
        ca.policy = CaPolicy::Suspended;
        assert!(ca
            .issue(
                &d("example.ru"),
                vec![],
                0,
                Date::from_ymd(2022, 3, 1),
                vec![]
            )
            .is_none());
        // SAN-based Russian match is also blocked.
        assert!(ca
            .issue(
                &d("example.com"),
                vec![d("shop.example.ru")],
                0,
                Date::from_ymd(2022, 3, 1),
                vec![]
            )
            .is_none());
        // Non-Russian issuance continues.
        assert!(ca
            .issue(
                &d("example.com"),
                vec![],
                0,
                Date::from_ymd(2022, 3, 1),
                vec![]
            )
            .is_some());
    }

    #[test]
    fn unlogged_ca() {
        let mut russian_ca = CertificateAuthority::new(
            "Russian Trusted Root CA",
            Country::RU,
            &["Russian Trusted Sub CA"],
            false,
            365,
        );
        let c = russian_ca
            .issue(
                &d("sanctioned-bank.ru"),
                vec![],
                0,
                Date::from_ymd(2022, 3, 10),
                vec!["Russian Trusted Root CA".into()],
            )
            .unwrap();
        assert!(!c.ct_logged);
        assert!(c.chain_contains_org("Russian Trusted Root CA"));
        assert_eq!(c.not_after - c.not_before, 365);
    }

    #[test]
    fn brandless_ca_uses_org() {
        let mut ca = CertificateAuthority::new("cPanel", Country::US, &[], true, 90);
        let c = ca
            .issue(&d("x.ru"), vec![], 7, Date::from_ymd(2022, 1, 1), vec![])
            .unwrap();
        assert_eq!(c.issuer.common_name, "cPanel");
    }
}
