//! Revocation state: CRLs and an OCSP-style status oracle.
//!
//! The paper (§4.2) tallies revocations "using the Certificate Revocation
//! Lists (CRLs) and Online Certificate Status Protocol (OCSP) state as
//! indexed by Censys … for certificates securing .ru and .рф domains across
//! all CAs whose validity ended after February 25, 2022."

use ruwhere_types::Date;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// RFC 5280 revocation reasons (the subset that occurs in practice here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RevocationReason {
    /// No reason given.
    Unspecified,
    /// Subscriber's key compromised.
    KeyCompromise,
    /// Subscriber asked for revocation (e.g. a sanctioned operator
    /// "testing different CAs", §4.2).
    CessationOfOperation,
    /// The CA withdrew service for policy/compliance reasons — the
    /// DigiCert/Sectigo sanctioned-domain revocations.
    PrivilegeWithdrawn,
    /// Superseded by a reissued certificate.
    Superseded,
}

/// A revocation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevocationEntry {
    /// Revocation date.
    pub date: Date,
    /// Stated reason.
    pub reason: RevocationReason,
}

/// One CA's certificate revocation list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Crl {
    /// Issuer organization this CRL belongs to.
    pub issuer_org: String,
    revoked: BTreeMap<u64, RevocationEntry>,
}

impl Crl {
    /// Empty CRL for `issuer_org`.
    pub fn new(issuer_org: &str) -> Self {
        Crl {
            issuer_org: issuer_org.to_owned(),
            revoked: BTreeMap::new(),
        }
    }

    /// Revoke `serial` on `date`. Idempotent: the first revocation wins.
    pub fn revoke(&mut self, serial: u64, date: Date, reason: RevocationReason) -> bool {
        if self.revoked.contains_key(&serial) {
            return false;
        }
        self.revoked
            .insert(serial, RevocationEntry { date, reason });
        true
    }

    /// The revocation entry for `serial`, if any.
    pub fn entry(&self, serial: u64) -> Option<RevocationEntry> {
        self.revoked.get(&serial).copied()
    }

    /// Whether `serial` was revoked on or before `as_of`.
    pub fn is_revoked(&self, serial: u64, as_of: Date) -> bool {
        self.entry(serial).is_some_and(|e| e.date <= as_of)
    }

    /// Number of revoked serials.
    pub fn len(&self) -> usize {
        self.revoked.len()
    }

    /// Whether the CRL is empty.
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty()
    }

    /// Iterate `(serial, entry)` in serial order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, RevocationEntry)> + '_ {
        self.revoked.iter().map(|(s, e)| (*s, *e))
    }
}

/// Point-in-time certificate status, as OCSP would report it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertStatus {
    /// Not revoked (as far as this responder knows).
    Good,
    /// Revoked on the given date.
    Revoked(RevocationEntry),
    /// The responder does not know the serial.
    Unknown,
}

/// An OCSP-style status oracle over a set of per-CA CRLs.
#[derive(Debug, Clone, Default)]
pub struct OcspResponder {
    crls: BTreeMap<String, Crl>,
    /// Serials each CA has actually issued (to distinguish Good from
    /// Unknown).
    known: BTreeMap<String, u64>,
}

impl OcspResponder {
    /// Empty responder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register that `issuer_org` has issued serials `1..=max_serial`.
    pub fn register_issuer(&mut self, issuer_org: &str, max_serial: u64) {
        self.known.insert(issuer_org.to_owned(), max_serial);
        self.crls
            .entry(issuer_org.to_owned())
            .or_insert_with(|| Crl::new(issuer_org));
    }

    /// Mutable access to an issuer's CRL (created on demand).
    pub fn crl_mut(&mut self, issuer_org: &str) -> &mut Crl {
        self.crls
            .entry(issuer_org.to_owned())
            .or_insert_with(|| Crl::new(issuer_org))
    }

    /// Read access to an issuer's CRL.
    pub fn crl(&self, issuer_org: &str) -> Option<&Crl> {
        self.crls.get(issuer_org)
    }

    /// OCSP status of `(issuer_org, serial)` as of `date`.
    pub fn status(&self, issuer_org: &str, serial: u64, date: Date) -> CertStatus {
        if let Some(crl) = self.crls.get(issuer_org) {
            if let Some(entry) = crl.entry(serial) {
                if entry.date <= date {
                    return CertStatus::Revoked(entry);
                }
            }
        }
        match self.known.get(issuer_org) {
            Some(&max) if serial >= 1 && serial <= max => CertStatus::Good,
            _ => CertStatus::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crl_basics() {
        let mut crl = Crl::new("DigiCert");
        assert!(crl.is_empty());
        assert!(crl.revoke(
            7,
            Date::from_ymd(2022, 3, 1),
            RevocationReason::PrivilegeWithdrawn
        ));
        assert!(!crl.revoke(7, Date::from_ymd(2022, 4, 1), RevocationReason::Unspecified));
        assert_eq!(crl.len(), 1);
        let e = crl.entry(7).unwrap();
        assert_eq!(e.date, Date::from_ymd(2022, 3, 1));
        assert_eq!(e.reason, RevocationReason::PrivilegeWithdrawn);
        assert!(!crl.is_revoked(7, Date::from_ymd(2022, 2, 28)));
        assert!(crl.is_revoked(7, Date::from_ymd(2022, 3, 1)));
        assert!(!crl.is_revoked(8, Date::from_ymd(2022, 3, 1)));
    }

    #[test]
    fn ocsp_statuses() {
        let mut ocsp = OcspResponder::new();
        ocsp.register_issuer("Sectigo", 100);
        ocsp.crl_mut("Sectigo").revoke(
            42,
            Date::from_ymd(2022, 3, 10),
            RevocationReason::PrivilegeWithdrawn,
        );

        let d = Date::from_ymd(2022, 4, 1);
        assert_eq!(ocsp.status("Sectigo", 1, d), CertStatus::Good);
        assert!(matches!(
            ocsp.status("Sectigo", 42, d),
            CertStatus::Revoked(_)
        ));
        // Before the revocation date the cert was still good.
        assert_eq!(
            ocsp.status("Sectigo", 42, Date::from_ymd(2022, 3, 9)),
            CertStatus::Good
        );
        assert_eq!(ocsp.status("Sectigo", 101, d), CertStatus::Unknown);
        assert_eq!(ocsp.status("Sectigo", 0, d), CertStatus::Unknown);
        assert_eq!(ocsp.status("NoSuchCA", 1, d), CertStatus::Unknown);
    }

    #[test]
    fn iteration_order() {
        let mut crl = Crl::new("X");
        crl.revoke(9, Date::from_ymd(2022, 3, 1), RevocationReason::Unspecified);
        crl.revoke(3, Date::from_ymd(2022, 3, 2), RevocationReason::Superseded);
        let serials: Vec<u64> = crl.iter().map(|(s, _)| s).collect();
        assert_eq!(serials, vec![3, 9]);
    }
}
