//! X.509-lite certificate model.
//!
//! We keep exactly the fields the paper's analysis reads: the Issuer DN's
//! Organization (the CA behind the brand) and Common Name (the brand, e.g.
//! RapidSSL), the subject CN and SANs (for the "matches a `.ru`/`.рф`
//! domain" test of footnote 6), validity, and whether the issuance was
//! logged to CT (the Russian Trusted Root CA does not log).

use crate::hash::{sha256, Digest};
use ruwhere_types::{Country, Date, DomainName};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The subset of an X.509 Distinguished Name we model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DistinguishedName {
    /// Organization (O=) — the paper's "Issuer Organization term from the
    /// Issuer DN field", used to attribute brands to CAs.
    pub organization: String,
    /// Common name (CN=) — the issuing brand, e.g. "RapidSSL TLS RSA CA G1".
    pub common_name: String,
    /// Country (C=).
    pub country: Country,
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C={}, O={}, CN={}",
            self.country, self.organization, self.common_name
        )
    }
}

/// A leaf (end-entity) certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Issuer-scoped serial number.
    pub serial: u64,
    /// Issuer distinguished name.
    pub issuer: DistinguishedName,
    /// Subject common name (usually the primary domain).
    pub subject_cn: String,
    /// Subject alternative names.
    pub san: Vec<DomainName>,
    /// First day of validity.
    pub not_before: Date,
    /// Last day of validity.
    pub not_after: Date,
    /// Organizations in the chain above the issuer (for detecting the
    /// Russian Trusted Root CA in a chain, §4.3).
    pub chain_orgs: Vec<String>,
    /// Whether the issuance was submitted to CT logs.
    pub ct_logged: bool,
}

impl Certificate {
    /// Deterministic certificate fingerprint (stand-in for the SHA-256 of
    /// the DER encoding).
    pub fn fingerprint(&self) -> Digest {
        let mut data = Vec::new();
        data.extend_from_slice(&self.serial.to_be_bytes());
        data.extend_from_slice(self.issuer.organization.as_bytes());
        data.push(0);
        data.extend_from_slice(self.issuer.common_name.as_bytes());
        data.push(0);
        data.extend_from_slice(self.subject_cn.as_bytes());
        for s in &self.san {
            data.push(0);
            data.extend_from_slice(s.as_str().as_bytes());
        }
        data.extend_from_slice(&self.not_before.days_since_epoch().to_be_bytes());
        data.extend_from_slice(&self.not_after.days_since_epoch().to_be_bytes());
        sha256(&data)
    }

    /// All domains this certificate covers: subject CN (when it parses as a
    /// domain) plus SANs, deduplicated.
    pub fn covered_domains(&self) -> Vec<DomainName> {
        let mut out: Vec<DomainName> = Vec::new();
        if let Ok(cn) = DomainName::parse(&self.subject_cn) {
            out.push(cn);
        }
        for s in &self.san {
            if !out.contains(s) {
                out.push(s.clone());
            }
        }
        out
    }

    /// The paper's match rule (footnote 6): the certificate "matches" if
    /// either CN or any SAN is under `.ru` or `.рф`.
    pub fn matches_russian_tld(&self) -> bool {
        self.covered_domains().iter().any(|d| d.is_russian_cctld())
    }

    /// Stricter CN-only matching (used by the ablation bench).
    pub fn matches_russian_tld_cn_only(&self) -> bool {
        DomainName::parse(&self.subject_cn)
            .map(|d| d.is_russian_cctld())
            .unwrap_or(false)
    }

    /// Whether `domain` is covered (exact match; no wildcard logic — the
    /// generator does not emit wildcards).
    pub fn covers(&self, domain: &DomainName) -> bool {
        self.covered_domains().iter().any(|d| d == domain)
    }

    /// Whether the certificate is within validity on `date`.
    pub fn valid_on(&self, date: Date) -> bool {
        self.not_before <= date && date <= self.not_after
    }

    /// Whether any organization in the chain equals `org` (e.g.
    /// "Russian Trusted Root CA").
    pub fn chain_contains_org(&self, org: &str) -> bool {
        self.issuer.organization == org || self.chain_orgs.iter().any(|o| o == org)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(org: &str) -> DistinguishedName {
        DistinguishedName {
            organization: org.into(),
            common_name: format!("{org} RSA CA"),
            country: Country::US,
        }
    }

    fn cert(cn: &str, san: &[&str]) -> Certificate {
        Certificate {
            serial: 1,
            issuer: dn("Let's Encrypt"),
            subject_cn: cn.into(),
            san: san.iter().map(|s| s.parse().unwrap()).collect(),
            not_before: Date::from_ymd(2022, 1, 1),
            not_after: Date::from_ymd(2022, 3, 31),
            chain_orgs: vec!["ISRG".into()],
            ct_logged: true,
        }
    }

    #[test]
    fn russian_tld_matching() {
        assert!(cert("example.ru", &[]).matches_russian_tld());
        assert!(cert("пример.рф", &[]).matches_russian_tld());
        assert!(cert("example.com", &["shop.example.ru"]).matches_russian_tld());
        assert!(!cert("example.com", &["example.org"]).matches_russian_tld());
        // CN-only rule is stricter: a .com CN with .ru SAN does not match.
        assert!(!cert("example.com", &["shop.example.ru"]).matches_russian_tld_cn_only());
        assert!(cert("example.ru", &[]).matches_russian_tld_cn_only());
    }

    #[test]
    fn covered_domains_dedup() {
        let c = cert("example.ru", &["example.ru", "www.example.ru"]);
        let covered = c.covered_domains();
        assert_eq!(covered.len(), 2);
        assert!(c.covers(&"example.ru".parse().unwrap()));
        assert!(c.covers(&"www.example.ru".parse().unwrap()));
        assert!(!c.covers(&"other.ru".parse().unwrap()));
    }

    #[test]
    fn validity_window() {
        let c = cert("example.ru", &[]);
        assert!(!c.valid_on(Date::from_ymd(2021, 12, 31)));
        assert!(c.valid_on(Date::from_ymd(2022, 1, 1)));
        assert!(c.valid_on(Date::from_ymd(2022, 3, 31)));
        assert!(!c.valid_on(Date::from_ymd(2022, 4, 1)));
    }

    #[test]
    fn chain_org_detection() {
        let mut c = cert("sanctioned-bank.ru", &[]);
        c.chain_orgs = vec!["Russian Trusted Root CA".into()];
        assert!(c.chain_contains_org("Russian Trusted Root CA"));
        assert!(!c.chain_contains_org("DigiCert"));
        assert!(
            c.chain_contains_org("Let's Encrypt"),
            "issuer itself counts"
        );
    }

    #[test]
    fn fingerprint_sensitivity() {
        let a = cert("example.ru", &[]);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.serial = 2;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.san.push("extra.ru".parse().unwrap());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn non_domain_cn_tolerated() {
        // Real certs sometimes carry device names or IPs in CN.
        let c = cert("not a domain!!", &["example.ru"]);
        assert_eq!(c.covered_domains().len(), 1);
        assert!(c.matches_russian_tld());
        assert!(!c.matches_russian_tld_cn_only());
    }
}
