//! Property tests for the foundation types.

use proptest::prelude::*;
use ruwhere_types::punycode;
use ruwhere_types::{Date, DomainName};

proptest! {
    #[test]
    fn date_ymd_roundtrip(days in -1_000_000i32..1_000_000) {
        let d = Date::from_days(days);
        let (y, m, dd) = d.ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd), d);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&dd));
    }

    #[test]
    fn date_display_parse_roundtrip(days in -700_000i32..700_000) {
        let d = Date::from_days(days);
        let s = d.to_string();
        prop_assert_eq!(s.parse::<Date>().unwrap(), d);
    }

    #[test]
    fn date_ordering_matches_day_count(a in -10_000i32..10_000, b in -10_000i32..10_000) {
        let (da, db) = (Date::from_days(a), Date::from_days(b));
        prop_assert_eq!(da < db, a < b);
        prop_assert_eq!(db - da, b - a);
    }

    #[test]
    fn punycode_roundtrip_cyrillic(s in "[а-яё]{1,20}") {
        let encoded = punycode::encode(&s).unwrap();
        prop_assert!(encoded.is_ascii());
        prop_assert_eq!(punycode::decode(&encoded).unwrap(), s);
    }

    #[test]
    fn punycode_roundtrip_mixed(s in "[a-zа-я0-9]{1,20}") {
        let encoded = punycode::encode(&s).unwrap();
        prop_assert_eq!(punycode::decode(&encoded).unwrap(), s);
    }

    #[test]
    fn punycode_decode_never_panics(s in "[a-z0-9-]{0,40}") {
        let _ = punycode::decode(&s);
    }

    #[test]
    fn idna_label_roundtrip(s in "[а-я]{1,15}") {
        let ascii = punycode::label_to_ascii(&s).unwrap();
        prop_assert!(ascii.starts_with("xn--"));
        prop_assert_eq!(punycode::label_to_unicode(&ascii).unwrap(), s);
    }

    #[test]
    fn domain_parse_is_idempotent(
        labels in proptest::collection::vec("[a-z0-9]{1,10}", 1..4)
    ) {
        let input = labels.join(".");
        let d1 = DomainName::parse(&input).unwrap();
        let d2 = DomainName::parse(d1.as_str()).unwrap();
        prop_assert_eq!(&d1, &d2);
        prop_assert_eq!(d1.label_count(), labels.len());
    }

    #[test]
    fn domain_unicode_form_roundtrips(sld in "[а-я]{1,12}") {
        let d = DomainName::parse(&format!("{sld}.рф")).unwrap();
        prop_assert!(d.is_russian_cctld());
        let uni = d.to_unicode();
        let reparsed = DomainName::parse(&uni).unwrap();
        prop_assert_eq!(reparsed, d);
    }

    #[test]
    fn domain_parser_never_panics(s in "\\PC{0,60}") {
        let _ = DomainName::parse(&s);
    }
}
