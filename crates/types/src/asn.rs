//! Autonomous-system numbers, with constants for the networks the paper
//! tracks by name.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An autonomous-system number.
///
/// Displayed in the conventional `AS16509` form:
///
/// ```
/// use ruwhere_types::Asn;
/// assert_eq!(Asn::AMAZON.to_string(), "AS16509");
/// assert_eq!("AS13335".parse::<Asn>().unwrap(), Asn::CLOUDFLARE);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// Amazon (AS16509), which announced it would stop new Russian AWS
    /// registrations on 2022-03-08 (paper §3.4, Figure 6).
    pub const AMAZON: Asn = Asn(16509);
    /// Sedo domain parking (AS47846, Germany), which "pulled the plug" on
    /// Russian domains around 2022-03-09 (Figure 7).
    pub const SEDO: Asn = Asn(47846);
    /// Cloudflare (AS13335), which continued serving Russia (§3.4).
    pub const CLOUDFLARE: Asn = Asn(13335);
    /// Google's primary serving ASN (AS15169).
    pub const GOOGLE: Asn = Asn(15169);
    /// Google's secondary cloud ASN (AS396982) that absorbed intra-Google
    /// relocations around 2022-03-16 (§3.4 footnote 11).
    pub const GOOGLE_CLOUD: Asn = Asn(396982);
    /// REG.RU, a large Russian registrar/hoster.
    pub const REG_RU: Asn = Asn(197695);
    /// RU-CENTER (JSC RU-CENTER), Russia's leading registrar (AS48287).
    pub const RU_CENTER: Asn = Asn(48287);
    /// Timeweb (Russian hosting, AS9123).
    pub const TIMEWEB: Asn = Asn(9123);
    /// Beget (Russian hosting, AS198610).
    pub const BEGET: Asn = Asn(198610);
    /// Serverel (Netherlands), the destination of the post-Sedo exodus.
    pub const SERVEREL: Asn = Asn(29802);
    /// Hetzner (Germany, AS24940), saw DNS-hosting migration out in late
    /// March 2022 (§3.2).
    pub const HETZNER: Asn = Asn(24940);
    /// Linode (US, AS63949), likewise.
    pub const LINODE: Asn = Asn(63949);
    /// Netnod (Sweden, AS8674): stopped serving 76 k Russian domains'
    /// DNS on 2022-03-03 after IP reconfigurations (§3.2, §3.3).
    pub const NETNOD: Asn = Asn(8674);

    /// The raw number.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Error parsing an ASN from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsnParseError(pub String);

impl fmt::Display for AsnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid ASN {:?}, expected e.g. \"AS16509\" or \"16509\"",
            self.0
        )
    }
}

impl std::error::Error for AsnParseError {}

impl FromStr for Asn {
    type Err = AsnParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| AsnParseError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Asn(0).to_string(), "AS0");
        assert_eq!(Asn::GOOGLE_CLOUD.to_string(), "AS396982");
    }

    #[test]
    fn parse_variants() {
        assert_eq!("16509".parse::<Asn>().unwrap(), Asn::AMAZON);
        assert_eq!("AS16509".parse::<Asn>().unwrap(), Asn::AMAZON);
        assert_eq!("as16509".parse::<Asn>().unwrap(), Asn::AMAZON);
        assert!("ASN16509".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
        assert!("AS-1".parse::<Asn>().is_err());
    }

    #[test]
    fn paper_constants_are_distinct() {
        let all = [
            Asn::AMAZON,
            Asn::SEDO,
            Asn::CLOUDFLARE,
            Asn::GOOGLE,
            Asn::GOOGLE_CLOUD,
            Asn::REG_RU,
            Asn::RU_CENTER,
            Asn::TIMEWEB,
            Asn::BEGET,
            Asn::SERVEREL,
            Asn::HETZNER,
            Asn::LINODE,
            Asn::NETNOD,
        ];
        let mut dedup: Vec<u32> = all.iter().map(|a| a.0).collect();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }
}
