//! ISO 3166-1 alpha-2 country codes.
//!
//! Geolocation in the paper is country-granular (IP2Location); the analysis
//! only ever asks "is this address in the Russian Federation?", so a compact
//! two-byte code is all we need.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An ISO 3166-1 alpha-2 country code (always stored uppercase).
///
/// ```
/// use ruwhere_types::Country;
/// let ru: Country = "ru".parse().unwrap();
/// assert_eq!(ru, Country::RU);
/// assert!(ru.is_russia());
/// assert_eq!(ru.to_string(), "RU");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Country([u8; 2]);

macro_rules! countries {
    ($($(#[$doc:meta])* $name:ident = $code:literal => $full:literal),+ $(,)?) => {
        impl Country {
            $(
                $(#[$doc])*
                pub const $name: Country = Country(*$code);
            )+

            /// Human-readable English name, if this is one of the countries
            /// the paper discusses; falls back to the raw code.
            pub fn name(self) -> &'static str {
                match self.0.as_ref() {
                    $($code => $full,)+
                    _ => "(other)",
                }
            }
        }
    };
}

countries! {
    /// Russian Federation.
    RU = b"RU" => "Russian Federation",
    /// United States.
    US = b"US" => "United States",
    /// Germany (Sedo, Hetzner).
    DE = b"DE" => "Germany",
    /// Netherlands (Serverel; also a flight destination per §3.1).
    NL = b"NL" => "Netherlands",
    /// Sweden (Netnod).
    SE = b"SE" => "Sweden",
    /// Czech Republic (one sanctioned domain remained hosted here).
    CZ = b"CZ" => "Czech Republic",
    /// Estonia (one sanctioned domain remained hosted here).
    EE = b"EE" => "Estonia",
    /// Poland (prior host of relocated sanctioned domains).
    PL = b"PL" => "Poland",
    /// United Kingdom (sanctions list source).
    GB = b"GB" => "United Kingdom",
    /// Japan (GlobalSign).
    JP = b"JP" => "Japan",
    /// France.
    FR = b"FR" => "France",
    /// Ukraine.
    UA = b"UA" => "Ukraine",
    /// Latvia (GoGetSSL).
    LV = b"LV" => "Latvia",
    /// Austria (ZeroSSL).
    AT = b"AT" => "Austria",
    /// Canada.
    CA = b"CA" => "Canada",
    /// Finland.
    FI = b"FI" => "Finland",
    /// Switzerland.
    CH = b"CH" => "Switzerland",
    /// Singapore.
    SG = b"SG" => "Singapore",
}

impl Country {
    /// Construct from a two-letter ASCII code; normalizes to uppercase.
    pub fn from_code(code: &str) -> Option<Self> {
        let bytes = code.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            return None;
        }
        Some(Country([
            bytes[0].to_ascii_uppercase(),
            bytes[1].to_ascii_uppercase(),
        ]))
    }

    /// The two-letter code as a `&str`.
    pub fn code(&self) -> &str {
        // Invariant: always two ASCII uppercase letters.
        std::str::from_utf8(&self.0).expect("country codes are ASCII")
    }

    /// Whether this is the Russian Federation — the predicate at the heart
    /// of every composition classification in the paper.
    pub const fn is_russia(self) -> bool {
        matches!(self.0, [b'R', b'U'])
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Error returned when parsing an invalid country code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountryParseError(pub String);

impl fmt::Display for CountryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ISO 3166-1 alpha-2 code {:?}", self.0)
    }
}

impl std::error::Error for CountryParseError {}

impl FromStr for Country {
    type Err = CountryParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Country::from_code(s).ok_or_else(|| CountryParseError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_case() {
        assert_eq!(Country::from_code("ru").unwrap(), Country::RU);
        assert_eq!(Country::from_code("Ru").unwrap(), Country::RU);
        assert_eq!(Country::from_code("RU").unwrap(), Country::RU);
    }

    #[test]
    fn rejects_bad_codes() {
        assert!(Country::from_code("").is_none());
        assert!(Country::from_code("R").is_none());
        assert!(Country::from_code("RUS").is_none());
        assert!(Country::from_code("R1").is_none());
        assert!(Country::from_code("рф").is_none());
    }

    #[test]
    fn russia_predicate() {
        assert!(Country::RU.is_russia());
        assert!(!Country::US.is_russia());
        assert!(!Country::SE.is_russia());
    }

    #[test]
    fn names() {
        assert_eq!(Country::SE.name(), "Sweden");
        assert_eq!(Country::from_code("ZZ").unwrap().name(), "(other)");
    }

    #[test]
    fn display_parse_roundtrip() {
        for c in [Country::RU, Country::US, Country::NL] {
            assert_eq!(c.to_string().parse::<Country>().unwrap(), c);
        }
        assert!("xx1".parse::<Country>().is_err());
    }
}
