//! Validated DNS domain names.
//!
//! [`DomainName`] stores the ASCII (wire) presentation form, lowercased and
//! without a trailing dot: `"example.ru"`, `"xn--80ak6aa92e.xn--p1ai"`.
//! Unicode input is converted label-by-label via punycode/IDNA.

use crate::country::Country;
use crate::punycode;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Maximum length of a full domain name in presentation form (RFC 1035
/// limits wire names to 255 octets; 253 presentation characters).
pub const MAX_NAME_LEN: usize = 253;
/// Maximum length of a single label.
pub const MAX_LABEL_LEN: usize = 63;

/// A validated, normalized (lowercase ASCII, no trailing dot) domain name.
///
/// Cheap to clone: the backing string is reference-counted, since domain
/// names are copied into millions of measurement records.
///
/// ```
/// use ruwhere_types::DomainName;
/// let d: DomainName = "Example.RU".parse().unwrap();
/// assert_eq!(d.as_str(), "example.ru");
/// assert_eq!(d.tld(), "ru");
/// assert!(d.is_russian_cctld());
///
/// let idn: DomainName = "кремль.рф".parse().unwrap();
/// assert_eq!(idn.tld(), "xn--p1ai");
/// assert!(idn.is_russian_cctld());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct DomainName(Arc<str>);

/// Errors from [`DomainName`] parsing/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainParseError {
    /// The name was empty (after removing a trailing dot).
    Empty,
    /// The name exceeded [`MAX_NAME_LEN`].
    TooLong,
    /// A label was empty (consecutive dots) or exceeded [`MAX_LABEL_LEN`].
    BadLabel(String),
    /// A label contained a character outside `[a-z0-9-_]` after IDNA
    /// conversion, or had a leading/trailing hyphen.
    BadChar(String),
    /// Punycode conversion of a Unicode label failed.
    Punycode(String),
}

impl fmt::Display for DomainParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainParseError::Empty => write!(f, "empty domain name"),
            DomainParseError::TooLong => write!(f, "domain name exceeds {MAX_NAME_LEN} chars"),
            DomainParseError::BadLabel(l) => write!(f, "bad label {l:?}"),
            DomainParseError::BadChar(l) => write!(f, "invalid character in label {l:?}"),
            DomainParseError::Punycode(l) => write!(f, "punycode failure in label {l:?}"),
        }
    }
}

impl std::error::Error for DomainParseError {}

fn validate_ascii_label(label: &str) -> Result<(), DomainParseError> {
    if label.is_empty() || label.len() > MAX_LABEL_LEN {
        return Err(DomainParseError::BadLabel(label.to_owned()));
    }
    // Underscore is permitted (it occurs in real NS/service names), hyphen
    // must not lead or trail.
    if label.starts_with('-') || label.ends_with('-') {
        return Err(DomainParseError::BadChar(label.to_owned()));
    }
    if !label
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
    {
        return Err(DomainParseError::BadChar(label.to_owned()));
    }
    Ok(())
}

impl DomainName {
    /// Parse and normalize a domain name. Accepts Unicode (IDNA) labels and
    /// an optional trailing dot.
    pub fn parse(input: &str) -> Result<Self, DomainParseError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Err(DomainParseError::Empty);
        }
        let mut labels = Vec::new();
        for raw in trimmed.split('.') {
            let ascii = punycode::label_to_ascii(raw)
                .map_err(|_| DomainParseError::Punycode(raw.to_owned()))?;
            validate_ascii_label(&ascii)?;
            labels.push(ascii);
        }
        let joined = labels.join(".");
        if joined.len() > MAX_NAME_LEN {
            return Err(DomainParseError::TooLong);
        }
        Ok(DomainName(joined.into()))
    }

    /// The normalized ASCII presentation form (no trailing dot).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterate over the labels, most-significant (leftmost) first.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The top-level domain (rightmost label), e.g. `"ru"`, `"xn--p1ai"`.
    pub fn tld(&self) -> &str {
        self.labels().last().expect("names are non-empty")
    }

    /// The registrable (second-level) name: the last two labels, or the
    /// whole name if it has fewer. `ns1.dns.example.ru` → `example.ru`.
    pub fn registrable(&self) -> DomainName {
        let labels: Vec<&str> = self.labels().collect();
        if labels.len() <= 2 {
            self.clone()
        } else {
            DomainName(labels[labels.len() - 2..].join(".").into())
        }
    }

    /// Whether this name is under one of the Russian Federation ccTLDs the
    /// paper studies: `.ru` or `.рф` (`xn--p1ai`).
    ///
    /// Note: `.su`, the legacy Soviet TLD, is deliberately excluded — the
    /// paper's dataset covers only `.ru` and `.рф`.
    pub fn is_russian_cctld(&self) -> bool {
        matches!(self.tld(), "ru" | "xn--p1ai")
    }

    /// Whether the TLD itself is operated under Russian Federation
    /// administration. Used for the TLD-dependency analysis (Figure 2).
    pub fn tld_is_russian(&self) -> bool {
        self.is_russian_cctld()
    }

    /// Unicode (display) form: punycode labels decoded, e.g.
    /// `xn--80ak6aa92e.xn--p1ai` → `аэрофлот.рф` style output.
    pub fn to_unicode(&self) -> String {
        self.labels()
            .map(|l| punycode::label_to_unicode(l).unwrap_or_else(|_| l.to_owned()))
            .collect::<Vec<_>>()
            .join(".")
    }

    /// The name formed by prepending `label` (already ASCII/validated by the
    /// caller via parse of the result).
    pub fn prepend(&self, label: &str) -> Result<DomainName, DomainParseError> {
        DomainName::parse(&format!("{label}.{}", self.0))
    }

    /// Crude country inference for the ccTLD itself (not the hosting!).
    pub fn cctld_country(&self) -> Option<Country> {
        match self.tld() {
            "ru" | "xn--p1ai" | "su" => Some(Country::RU),
            "de" => Some(Country::DE),
            "nl" => Some(Country::NL),
            "se" => Some(Country::SE),
            "us" => Some(Country::US),
            "uk" => Some(Country::GB),
            "ua" => Some(Country::UA),
            _ => None,
        }
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for DomainName {
    type Err = DomainParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl TryFrom<String> for DomainName {
    type Error = DomainParseError;

    fn try_from(s: String) -> Result<Self, Self::Error> {
        DomainName::parse(&s)
    }
}

impl From<DomainName> for String {
    fn from(d: DomainName) -> String {
        d.0.to_string()
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes() {
        let d = DomainName::parse("WWW.Example.RU.").unwrap();
        assert_eq!(d.as_str(), "www.example.ru");
        assert_eq!(d.label_count(), 3);
        assert_eq!(d.tld(), "ru");
        assert_eq!(d.registrable().as_str(), "example.ru");
    }

    #[test]
    fn idna_conversion() {
        let d = DomainName::parse("пример.рф").unwrap();
        assert_eq!(d.as_str(), "xn--e1afmkfd.xn--p1ai");
        assert!(d.is_russian_cctld());
        assert_eq!(d.to_unicode(), "пример.рф");
    }

    #[test]
    fn russian_cctld_predicate() {
        assert!(DomainName::parse("a.ru").unwrap().is_russian_cctld());
        assert!(DomainName::parse("b.xn--p1ai").unwrap().is_russian_cctld());
        assert!(!DomainName::parse("c.su").unwrap().is_russian_cctld());
        assert!(!DomainName::parse("d.com").unwrap().is_russian_cctld());
        assert!(!DomainName::parse("ru.com").unwrap().is_russian_cctld());
    }

    #[test]
    fn rejects_invalid() {
        assert!(DomainName::parse("").is_err());
        assert!(DomainName::parse(".").is_err());
        assert!(DomainName::parse("a..b").is_err());
        assert!(DomainName::parse("-bad.ru").is_err());
        assert!(DomainName::parse("bad-.ru").is_err());
        assert!(DomainName::parse("ba d.ru").is_err());
        let long_label = "a".repeat(64);
        assert!(DomainName::parse(&format!("{long_label}.ru")).is_err());
        let long_name = format!("{}.ru", vec!["a".repeat(63); 5].join("."));
        assert!(long_name.len() > MAX_NAME_LEN);
        assert!(DomainName::parse(&long_name).is_err());
    }

    #[test]
    fn accepts_edge_labels() {
        assert!(DomainName::parse("a").is_ok());
        assert!(DomainName::parse("_dmarc.example.ru").is_ok());
        assert!(DomainName::parse("ns1-2.example.ru").is_ok());
        assert!(DomainName::parse(&format!("{}.ru", "a".repeat(63))).is_ok());
    }

    #[test]
    fn prepend() {
        let d = DomainName::parse("example.ru").unwrap();
        assert_eq!(d.prepend("ns1").unwrap().as_str(), "ns1.example.ru");
        assert!(d.prepend("bad label").is_err());
    }

    #[test]
    fn serde_roundtrip_via_string() {
        let d = DomainName::parse("пример.рф").unwrap();
        let s: String = d.clone().into();
        assert_eq!(DomainName::try_from(s).unwrap(), d);
    }

    #[test]
    fn registrable_of_short_names() {
        assert_eq!(
            DomainName::parse("ru").unwrap().registrable().as_str(),
            "ru"
        );
        assert_eq!(
            DomainName::parse("example.ru")
                .unwrap()
                .registrable()
                .as_str(),
            "example.ru"
        );
    }
}
