//! Civil (proleptic Gregorian) date arithmetic without external crates.
//!
//! Internally a [`Date`] is a day count since 1970-01-01 (the Unix epoch),
//! using Howard Hinnant's `days_from_civil` algorithm, which is exact over
//! the full `i32` year range. All simulation time in the workspace is
//! expressed in whole days; sub-day timing lives in `ruwhere-netsim`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// First day of the paper's study window (June 18, 2017).
pub const STUDY_START: Date = Date::from_ymd(2017, 6, 18);
/// Last day of the paper's study window (May 25, 2022): 1803 days total.
pub const STUDY_END: Date = Date::from_ymd(2022, 5, 25);

/// A civil date, stored as days since 1970-01-01.
///
/// ```
/// use ruwhere_types::Date;
/// let d = Date::from_ymd(2022, 2, 24);
/// assert_eq!(d.to_string(), "2022-02-24");
/// assert_eq!(d.succ().to_string(), "2022-02-25");
/// assert_eq!(Date::from_ymd(2022, 3, 1) - Date::from_ymd(2022, 2, 24), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Date(i32);

impl Date {
    /// Construct from a year / month (1-12) / day (1-31) triple.
    ///
    /// `const` so the paper's milestone dates can be compile-time constants.
    /// Out-of-range months or days are not validated here (the function is
    /// total, following Hinnant's algorithm); use [`Date::new`] for a
    /// validating constructor.
    pub const fn from_ymd(y: i32, m: u32, d: u32) -> Self {
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64; // [0, 399]
        let mp = ((m as i64) + 9) % 12; // [0, 11], Mar=0
        let doy = (153 * mp + 2) / 5 + (d as i64) - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Date((era as i64 * 146097 + doe - 719468) as i32)
    }

    /// Validating constructor; returns `None` for nonexistent dates such as
    /// February 30.
    pub fn new(y: i32, m: u32, d: u32) -> Option<Self> {
        if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return None;
        }
        Some(Self::from_ymd(y, m, d))
    }

    /// Construct directly from a day count since 1970-01-01.
    pub const fn from_days(days: i32) -> Self {
        Date(days)
    }

    /// Day count since 1970-01-01.
    pub const fn days_since_epoch(self) -> i32 {
        self.0
    }

    /// Decompose into `(year, month, day)`.
    pub const fn ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
        ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
    }

    /// Calendar year.
    pub const fn year(self) -> i32 {
        self.ymd().0
    }

    /// Calendar month, 1-12.
    pub const fn month(self) -> u32 {
        self.ymd().1
    }

    /// Day of month, 1-31.
    pub const fn day(self) -> u32 {
        self.ymd().2
    }

    /// The next day.
    #[must_use]
    pub const fn succ(self) -> Self {
        Date(self.0 + 1)
    }

    /// The previous day.
    #[must_use]
    pub const fn pred(self) -> Self {
        Date(self.0 - 1)
    }

    /// This date shifted by `days` (may be negative).
    #[must_use]
    pub const fn add_days(self, days: i32) -> Self {
        Date(self.0 + days)
    }

    /// Inclusive range iterator `self ..= end`.
    pub fn to(self, end: Date) -> DateRange {
        DateRange { next: self, end }
    }

    /// Day of week, 0 = Monday … 6 = Sunday (ISO).
    pub const fn weekday(self) -> u32 {
        (self.0.rem_euclid(7) + 3) as u32 % 7
    }
}

impl std::ops::Sub for Date {
    type Output = i32;
    /// Signed number of days from `rhs` to `self`.
    fn sub(self, rhs: Date) -> i32 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// Error parsing a `YYYY-MM-DD` string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DateParseError(pub String);

impl fmt::Display for DateParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date {:?}, expected YYYY-MM-DD", self.0)
    }
}

impl std::error::Error for DateParseError {}

impl FromStr for Date {
    type Err = DateParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || DateParseError(s.to_owned());
        let mut it = s.split('-');
        let y: i32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let m: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let d: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if it.next().is_some() {
            return Err(err());
        }
        Date::new(y, m, d).ok_or_else(err)
    }
}

/// Whether `y` is a Gregorian leap year.
pub const fn is_leap_year(y: i32) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

/// Number of days in month `m` (1-12) of year `y`.
pub const fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Inclusive iterator over a range of dates, produced by [`Date::to`].
#[derive(Debug, Clone)]
pub struct DateRange {
    next: Date,
    end: Date,
}

impl Iterator for DateRange {
    type Item = Date;

    fn next(&mut self) -> Option<Date> {
        if self.next > self.end {
            None
        } else {
            let d = self.next;
            self.next = d.succ();
            Some(d)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next + 1).max(0) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DateRange {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).days_since_epoch(), 0);
    }

    #[test]
    fn known_day_counts() {
        assert_eq!(Date::from_ymd(2000, 3, 1).days_since_epoch(), 11017);
        assert_eq!(Date::from_ymd(2022, 2, 24).days_since_epoch(), 19047);
    }

    #[test]
    fn study_window_is_1803_days() {
        // The paper reports "a nearly five-year period (1803 days)".
        assert_eq!(STUDY_END - STUDY_START + 1, 1803);
    }

    #[test]
    fn roundtrip_ymd() {
        for days in -800_000..800_000 {
            let d = Date::from_days(days);
            let (y, m, dd) = d.ymd();
            assert_eq!(Date::from_ymd(y, m, dd), d, "roundtrip failed at {days}");
        }
    }

    #[test]
    fn display_and_parse() {
        let d = Date::from_ymd(2022, 3, 26);
        assert_eq!(d.to_string(), "2022-03-26");
        assert_eq!("2022-03-26".parse::<Date>().unwrap(), d);
        assert!("2022-02-30".parse::<Date>().is_err());
        assert!("2022-13-01".parse::<Date>().is_err());
        assert!("not-a-date".parse::<Date>().is_err());
        assert!("2022-03-26-01".parse::<Date>().is_err());
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2020));
        assert!(!is_leap_year(2022));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2022, 2), 28);
        assert_eq!(days_in_month(2022, 13), 0);
    }

    #[test]
    fn weekday_known_values() {
        // 2022-02-24 was a Thursday (ISO weekday 3 when Monday = 0).
        assert_eq!(Date::from_ymd(2022, 2, 24).weekday(), 3);
        // 1970-01-01 was a Thursday.
        assert_eq!(Date::from_ymd(1970, 1, 1).weekday(), 3);
        // 2022-05-25 was a Wednesday.
        assert_eq!(Date::from_ymd(2022, 5, 25).weekday(), 2);
    }

    #[test]
    fn range_iteration() {
        let days: Vec<Date> = Date::from_ymd(2022, 2, 26)
            .to(Date::from_ymd(2022, 3, 2))
            .collect();
        assert_eq!(days.len(), 5);
        assert_eq!(days[0].to_string(), "2022-02-26");
        assert_eq!(days[3].to_string(), "2022-03-01");
        assert_eq!(days[4].to_string(), "2022-03-02");
        // Empty range.
        assert_eq!(
            Date::from_ymd(2022, 1, 2)
                .to(Date::from_ymd(2022, 1, 1))
                .count(),
            0
        );
    }

    #[test]
    fn exact_size_hint() {
        let r = STUDY_START.to(STUDY_END);
        assert_eq!(r.len(), 1803);
    }

    #[test]
    fn validating_constructor() {
        assert!(Date::new(2022, 2, 29).is_none());
        assert!(Date::new(2020, 2, 29).is_some());
        assert!(Date::new(2022, 0, 1).is_none());
        assert!(Date::new(2022, 6, 31).is_none());
    }
}
