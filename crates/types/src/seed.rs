//! Hierarchical deterministic seeding.
//!
//! Every stochastic component in the workspace derives its randomness from a
//! [`SeedTree`]: a path of string labels hashed into a 64-bit seed. Two runs
//! with the same root seed are bit-identical regardless of the order in
//! which subsystems draw, because each subsystem forks its own child stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// splitmix64 finalizer: decorrelates FNV output into a well-mixed seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A node in the deterministic seed hierarchy.
///
/// ```
/// use ruwhere_types::SeedTree;
/// use rand::Rng;
///
/// let root = SeedTree::new(42);
/// let mut dns_rng = root.child("dns").rng();
/// let mut geo_rng = root.child("geo").rng();
/// // Independent streams from the same root:
/// let a: u64 = dns_rng.random();
/// let b: u64 = geo_rng.random();
/// assert_ne!(a, b);
/// // Fully reproducible:
/// let again: u64 = SeedTree::new(42).child("dns").rng().random();
/// assert_eq!(a, again);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    state: u64,
}

impl SeedTree {
    /// Root of the tree.
    pub const fn new(root_seed: u64) -> Self {
        SeedTree { state: root_seed }
    }

    /// Derive a named child node.
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree {
            state: splitmix64(fnv1a(self.state, label.as_bytes())),
        }
    }

    /// Derive an indexed child node (e.g. per-domain, per-day).
    pub fn child_idx(&self, index: u64) -> SeedTree {
        SeedTree {
            state: splitmix64(fnv1a(self.state, &index.to_le_bytes())),
        }
    }

    /// The 64-bit seed at this node.
    pub const fn seed(&self) -> u64 {
        self.state
    }

    /// A `StdRng` seeded from this node.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn children_are_independent() {
        let root = SeedTree::new(7);
        assert_ne!(root.child("a").seed(), root.child("b").seed());
        assert_ne!(root.child("a").seed(), root.seed());
        assert_ne!(root.child_idx(0).seed(), root.child_idx(1).seed());
    }

    #[test]
    fn paths_are_order_free() {
        let root = SeedTree::new(7);
        let p1 = root.child("x").child("y");
        let p2 = root.child("x").child("y");
        assert_eq!(p1.seed(), p2.seed());
        // Different path order gives a different node.
        assert_ne!(root.child("y").child("x").seed(), p1.seed());
    }

    #[test]
    fn label_vs_index_distinct() {
        let root = SeedTree::new(7);
        assert_ne!(root.child("0").seed(), root.child_idx(0).seed());
    }

    #[test]
    fn rng_reproducible() {
        let draws: Vec<u32> = SeedTree::new(99)
            .child("t")
            .rng()
            .random_iter()
            .take(8)
            .collect();
        let again: Vec<u32> = SeedTree::new(99)
            .child("t")
            .rng()
            .random_iter()
            .take(8)
            .collect();
        assert_eq!(draws, again);
    }

    #[test]
    fn different_roots_diverge() {
        let a: u64 = SeedTree::new(1).child("s").rng().random();
        let b: u64 = SeedTree::new(2).child("s").rng().random();
        assert_ne!(a, b);
    }
}
