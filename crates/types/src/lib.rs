//! Foundation types shared by every crate in the `ruwhere` workspace.
//!
//! This crate deliberately has no heavyweight dependencies: civil-date
//! arithmetic is implemented from first principles (no `chrono`), punycode
//! is implemented from RFC 3492 (no `idna`), and deterministic seeding is a
//! small splitmix-based tree (no `rand_chacha`).
//!
//! The types here model the vocabulary of the IMC 2022 paper
//! *"Where .ru? Assessing the Impact of Conflict on Russian Domain
//! Infrastructure"*:
//!
//! * [`Date`] — civil dates; the study window is
//!   [`STUDY_START`] (2017-06-18) through [`STUDY_END`] (2022-05-25).
//! * [`Period`] — the paper's three analysis phases around the 2022
//!   invasion (pre-conflict / pre-sanctions / post-sanctions).
//! * [`Country`] — ISO 3166-1 alpha-2 codes used for geolocation labels.
//! * [`Asn`] — autonomous-system numbers, with constants for the networks
//!   the paper names (Amazon AS16509, Sedo AS47846, Cloudflare AS13335, …).
//! * [`DomainName`] — validated, lowercased DNS names with TLD helpers and
//!   IDNA awareness (`.рф` ⇄ `xn--p1ai`).
//! * [`SeedTree`] — hierarchical deterministic seed derivation so that every
//!   simulation and measurement run is bit-reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod country;
pub mod date;
pub mod domain;
pub mod period;
pub mod punycode;
pub mod seed;

pub use asn::Asn;
pub use country::Country;
pub use date::{Date, DateRange, STUDY_END, STUDY_START};
pub use domain::{DomainName, DomainParseError};
pub use period::{Period, CERT_WINDOW_END, CERT_WINDOW_START, CONFLICT_START, SANCTIONS_EFFECT};
pub use seed::SeedTree;
