//! Punycode (RFC 3492) and minimal IDNA label conversion.
//!
//! The paper studies two ccTLDs: `.ru` and `.рф`. The latter is an
//! internationalized TLD whose ASCII (wire) form is `xn--p1ai`. Zone files,
//! DNS messages and certificate SANs all carry the ASCII form, while
//! human-facing output uses the Cyrillic form, so both directions are
//! exercised throughout the pipeline.
//!
//! This is a from-scratch implementation of the RFC 3492 bootstring
//! algorithm with the standard IDNA parameters. It handles lowercase
//! conversion only (sufficient for DNS labels, which we normalize to
//! lowercase before encoding).

/// IDNA prefix marking a punycode-encoded label.
pub const ACE_PREFIX: &str = "xn--";

const BASE: u32 = 36;
const TMIN: u32 = 1;
const TMAX: u32 = 26;
const SKEW: u32 = 38;
const DAMP: u32 = 700;
const INITIAL_BIAS: u32 = 72;
const INITIAL_N: u32 = 128;
const DELIMITER: char = '-';

/// Errors from punycode conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PunycodeError {
    /// Arithmetic overflow while decoding (malformed or hostile input).
    Overflow,
    /// Invalid basic (ASCII) code point or digit in the input.
    InvalidInput,
}

impl std::fmt::Display for PunycodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PunycodeError::Overflow => write!(f, "punycode overflow"),
            PunycodeError::InvalidInput => write!(f, "invalid punycode input"),
        }
    }
}

impl std::error::Error for PunycodeError {}

fn adapt(mut delta: u32, num_points: u32, first_time: bool) -> u32 {
    delta /= if first_time { DAMP } else { 2 };
    delta += delta / num_points;
    let mut k = 0;
    while delta > ((BASE - TMIN) * TMAX) / 2 {
        delta /= BASE - TMIN;
        k += BASE;
    }
    k + (((BASE - TMIN + 1) * delta) / (delta + SKEW))
}

fn encode_digit(d: u32) -> char {
    // 0..25 -> 'a'..'z', 26..35 -> '0'..'9'
    match d {
        0..=25 => (b'a' + d as u8) as char,
        26..=35 => (b'0' + (d - 26) as u8) as char,
        _ => unreachable!("digit out of range"),
    }
}

fn decode_digit(c: char) -> Option<u32> {
    match c {
        'a'..='z' => Some(c as u32 - 'a' as u32),
        'A'..='Z' => Some(c as u32 - 'A' as u32),
        '0'..='9' => Some(c as u32 - '0' as u32 + 26),
        _ => None,
    }
}

/// Encode a Unicode label to its punycode form (without the `xn--` prefix).
///
/// ```
/// use ruwhere_types::punycode::encode;
/// assert_eq!(encode("рф").unwrap(), "p1ai");
/// ```
pub fn encode(input: &str) -> Result<String, PunycodeError> {
    let chars: Vec<char> = input.chars().collect();
    let mut output: String = chars.iter().filter(|c| c.is_ascii()).collect();
    let basic_len = output.len() as u32;
    let mut handled = basic_len;
    if basic_len > 0 {
        output.push(DELIMITER);
    }

    let mut n = INITIAL_N;
    let mut delta: u32 = 0;
    let mut bias = INITIAL_BIAS;
    let total = chars.len() as u32;

    while handled < total {
        let m = chars
            .iter()
            .map(|&c| c as u32)
            .filter(|&c| c >= n)
            .min()
            .expect("non-ASCII chars remain");
        delta = delta
            .checked_add(
                (m - n)
                    .checked_mul(handled + 1)
                    .ok_or(PunycodeError::Overflow)?,
            )
            .ok_or(PunycodeError::Overflow)?;
        n = m;
        for &c in &chars {
            let c = c as u32;
            if c < n {
                delta = delta.checked_add(1).ok_or(PunycodeError::Overflow)?;
            }
            if c == n {
                let mut q = delta;
                let mut k = BASE;
                loop {
                    let t = if k <= bias {
                        TMIN
                    } else if k >= bias + TMAX {
                        TMAX
                    } else {
                        k - bias
                    };
                    if q < t {
                        break;
                    }
                    output.push(encode_digit(t + (q - t) % (BASE - t)));
                    q = (q - t) / (BASE - t);
                    k += BASE;
                }
                output.push(encode_digit(q));
                bias = adapt(delta, handled + 1, handled == basic_len);
                delta = 0;
                handled += 1;
            }
        }
        delta = delta.checked_add(1).ok_or(PunycodeError::Overflow)?;
        n = n.checked_add(1).ok_or(PunycodeError::Overflow)?;
    }

    Ok(output)
}

/// Decode a punycode label (without the `xn--` prefix) back to Unicode.
///
/// ```
/// use ruwhere_types::punycode::decode;
/// assert_eq!(decode("p1ai").unwrap(), "рф");
/// ```
pub fn decode(input: &str) -> Result<String, PunycodeError> {
    let (mut output, extended): (Vec<char>, &str) = match input.rfind(DELIMITER) {
        Some(pos) => {
            let (basic, ext) = input.split_at(pos);
            if !basic.is_ascii() {
                return Err(PunycodeError::InvalidInput);
            }
            (basic.chars().collect(), &ext[1..])
        }
        None => (Vec::new(), input),
    };

    let mut n = INITIAL_N;
    let mut i: u32 = 0;
    let mut bias = INITIAL_BIAS;
    let mut it = extended.chars();

    while it.as_str() != "" {
        let old_i = i;
        let mut w: u32 = 1;
        let mut k = BASE;
        loop {
            let c = it.next().ok_or(PunycodeError::InvalidInput)?;
            let digit = decode_digit(c).ok_or(PunycodeError::InvalidInput)?;
            i = i
                .checked_add(digit.checked_mul(w).ok_or(PunycodeError::Overflow)?)
                .ok_or(PunycodeError::Overflow)?;
            let t = if k <= bias {
                TMIN
            } else if k >= bias + TMAX {
                TMAX
            } else {
                k - bias
            };
            if digit < t {
                break;
            }
            w = w.checked_mul(BASE - t).ok_or(PunycodeError::Overflow)?;
            k += BASE;
        }
        let len = output.len() as u32 + 1;
        bias = adapt(i - old_i, len, old_i == 0);
        n = n.checked_add(i / len).ok_or(PunycodeError::Overflow)?;
        i %= len;
        let ch = char::from_u32(n).ok_or(PunycodeError::InvalidInput)?;
        if ch.is_ascii() {
            // Basic code points may not be produced by the extended part.
            return Err(PunycodeError::InvalidInput);
        }
        output.insert(i as usize, ch);
        i += 1;
    }

    Ok(output.into_iter().collect())
}

/// Convert a single DNS label to its ASCII (wire) form: non-ASCII labels are
/// punycode-encoded and prefixed with `xn--`; ASCII labels pass through.
pub fn label_to_ascii(label: &str) -> Result<String, PunycodeError> {
    if label.is_ascii() {
        Ok(label.to_ascii_lowercase())
    } else {
        Ok(format!("{}{}", ACE_PREFIX, encode(&label.to_lowercase())?))
    }
}

/// Convert a single DNS label to its Unicode (display) form: `xn--` labels
/// are punycode-decoded; anything else passes through.
pub fn label_to_unicode(label: &str) -> Result<String, PunycodeError> {
    match label.strip_prefix(ACE_PREFIX) {
        Some(rest) => decode(rest),
        None => Ok(label.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_tld() {
        // The headline case for this paper: .рф is xn--p1ai on the wire.
        assert_eq!(encode("рф").unwrap(), "p1ai");
        assert_eq!(decode("p1ai").unwrap(), "рф");
        assert_eq!(label_to_ascii("рф").unwrap(), "xn--p1ai");
        assert_eq!(label_to_unicode("xn--p1ai").unwrap(), "рф");
    }

    #[test]
    fn rfc3492_samples() {
        // Selected official RFC 3492 section 7.1 sample strings.
        // (L) Why can't they just speak in Japanese?
        assert_eq!(encode("президент").unwrap(), "d1abbgf6aiiy");
        assert_eq!(decode("d1abbgf6aiiy").unwrap(), "президент");
        // Mixed ASCII + non-ASCII.
        assert_eq!(encode("bücher").unwrap(), "bcher-kva");
        assert_eq!(decode("bcher-kva").unwrap(), "bücher");
    }

    #[test]
    fn ascii_passthrough() {
        assert_eq!(label_to_ascii("Example").unwrap(), "example");
        assert_eq!(label_to_unicode("example").unwrap(), "example");
        // An ASCII-only label still encodes (trailing delimiter form).
        assert_eq!(encode("abc").unwrap(), "abc-");
        assert_eq!(decode("abc-").unwrap(), "abc");
    }

    #[test]
    fn empty_label() {
        assert_eq!(encode("").unwrap(), "");
        assert_eq!(decode("").unwrap(), "");
    }

    #[test]
    fn invalid_decodes() {
        assert!(decode("p1ai!").is_err());
        // Extended part decoding to an ASCII char is invalid.
        assert!(decode("-").is_ok()); // lone delimiter: empty basic + empty ext
        assert!(decode("99999999999999999999").is_err()); // overflow
    }

    #[test]
    fn realistic_russian_slds() {
        for (uni, puny) in [("пример", "xn--e1afmkfd"), ("россия", "xn--h1alffa9f")] {
            assert_eq!(label_to_ascii(uni).unwrap(), puny);
            assert_eq!(label_to_unicode(puny).unwrap(), uni);
        }
    }
}
