//! The paper's three analysis periods around the 2022 invasion.
//!
//! > "we divide recent months into three time periods: pre-conflict (before
//! > February 24, 2022), post-sanctions (after March 26, 2022), and
//! > pre-sanctions (the period in-between)." — §3.1

use crate::date::Date;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Start of the conflict: the invasion of Ukraine, 2022-02-24.
pub const CONFLICT_START: Date = Date::from_ymd(2022, 2, 24);
/// Sanctions considered in effect after 2022-03-26.
pub const SANCTIONS_EFFECT: Date = Date::from_ymd(2022, 3, 26);
/// Start of the certificate analysis window (§4.1), 2022-01-01.
pub const CERT_WINDOW_START: Date = Date::from_ymd(2022, 1, 1);
/// End of the certificate analysis window (§4.1), 2022-05-15.
pub const CERT_WINDOW_END: Date = Date::from_ymd(2022, 5, 15);

/// One of the paper's three phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Period {
    /// Before 2022-02-24.
    PreConflict,
    /// 2022-02-24 through 2022-03-26 (inclusive).
    PreSanctions,
    /// After 2022-03-26.
    PostSanctions,
}

impl Period {
    /// Classify a date into its period.
    ///
    /// ```
    /// use ruwhere_types::{Date, Period};
    /// assert_eq!(Period::of(Date::from_ymd(2022, 2, 23)), Period::PreConflict);
    /// assert_eq!(Period::of(Date::from_ymd(2022, 2, 24)), Period::PreSanctions);
    /// assert_eq!(Period::of(Date::from_ymd(2022, 3, 26)), Period::PreSanctions);
    /// assert_eq!(Period::of(Date::from_ymd(2022, 3, 27)), Period::PostSanctions);
    /// ```
    pub fn of(date: Date) -> Period {
        if date < CONFLICT_START {
            Period::PreConflict
        } else if date <= SANCTIONS_EFFECT {
            Period::PreSanctions
        } else {
            Period::PostSanctions
        }
    }

    /// All three periods in chronological order.
    pub const ALL: [Period; 3] = [
        Period::PreConflict,
        Period::PreSanctions,
        Period::PostSanctions,
    ];

    /// The period's bounds clipped to a window `[start, end]`, or `None` if
    /// the period does not intersect it.
    pub fn clip(self, start: Date, end: Date) -> Option<(Date, Date)> {
        let (lo, hi) = match self {
            Period::PreConflict => (Date::from_days(i32::MIN / 2), CONFLICT_START.pred()),
            Period::PreSanctions => (CONFLICT_START, SANCTIONS_EFFECT),
            Period::PostSanctions => (SANCTIONS_EFFECT.succ(), Date::from_days(i32::MAX / 2)),
        };
        let lo = lo.max(start);
        let hi = hi.min(end);
        (lo <= hi).then_some((lo, hi))
    }
}

impl fmt::Display for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Period::PreConflict => "Pre-Conflict",
            Period::PreSanctions => "Pre-Sanctions",
            Period::PostSanctions => "Post-Sanctions",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries() {
        assert_eq!(Period::of(CONFLICT_START.pred()), Period::PreConflict);
        assert_eq!(Period::of(CONFLICT_START), Period::PreSanctions);
        assert_eq!(Period::of(SANCTIONS_EFFECT), Period::PreSanctions);
        assert_eq!(Period::of(SANCTIONS_EFFECT.succ()), Period::PostSanctions);
    }

    #[test]
    fn clip_to_cert_window() {
        // §4.1 analyzes certificates from 2022-01-01 to 2022-05-15.
        let (a, b) = Period::PreConflict
            .clip(CERT_WINDOW_START, CERT_WINDOW_END)
            .unwrap();
        assert_eq!(a, CERT_WINDOW_START);
        assert_eq!(b, Date::from_ymd(2022, 2, 23));

        let (a, b) = Period::PreSanctions
            .clip(CERT_WINDOW_START, CERT_WINDOW_END)
            .unwrap();
        assert_eq!(a, CONFLICT_START);
        assert_eq!(b, SANCTIONS_EFFECT);

        let (a, b) = Period::PostSanctions
            .clip(CERT_WINDOW_START, CERT_WINDOW_END)
            .unwrap();
        assert_eq!(a, Date::from_ymd(2022, 3, 27));
        assert_eq!(b, CERT_WINDOW_END);
    }

    #[test]
    fn clip_outside_window_is_none() {
        assert!(Period::PostSanctions
            .clip(Date::from_ymd(2021, 1, 1), Date::from_ymd(2021, 12, 31))
            .is_none());
        assert!(Period::PreConflict
            .clip(Date::from_ymd(2022, 4, 1), Date::from_ymd(2022, 5, 1))
            .is_none());
    }

    #[test]
    fn periods_partition_dates() {
        let days = Date::from_ymd(2022, 1, 1).to(Date::from_ymd(2022, 5, 15));
        let mut counts = [0usize; 3];
        for d in days {
            match Period::of(d) {
                Period::PreConflict => counts[0] += 1,
                Period::PreSanctions => counts[1] += 1,
                Period::PostSanctions => counts[2] += 1,
            }
        }
        assert_eq!(counts[0], 54); // Jan 1 .. Feb 23
        assert_eq!(counts[1], 31); // Feb 24 .. Mar 26
        assert_eq!(counts[2], 50); // Mar 27 .. May 15
        assert_eq!(counts.iter().sum::<usize>(), 135);
    }
}
