//! Instrumentation-overhead probe: what does `collect_metrics(true)` cost?
//!
//! Three measurements, printed in order:
//!
//! 1. **Event counts** for one instrumented tiny-world sweep — how many
//!    histogram records / link-table updates a sweep-day actually
//!    performs. Multiplied by the per-op micro costs below, this gives an
//!    analytic bound on the overhead that does not depend on wall-clock
//!    stability.
//! 2. **Micro costs** of the hot observability operations (histogram
//!    record, link-table update, accumulator move), each timed over 2M
//!    iterations.
//! 3. **Paired sweep floors**: minimum over 150 alternated
//!    instrumented/uninstrumented sweeps. On a contended host the floor
//!    ratio is the most robust wall-clock estimator available; run with
//!    `NULL_TEST=1` to make both arms identical and measure the harness's
//!    own noise floor first.
use ruwhere_scan::{OpenIntelScanner, SweepOptions};
use ruwhere_world::{World, WorldConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn sweep_once(collect: bool) -> Duration {
    let mut world = World::new(WorldConfig::tiny());
    let mut scanner = OpenIntelScanner::with_options(
        &world,
        SweepOptions::new().workers(1).collect_metrics(collect),
    );
    let t = Instant::now();
    black_box(scanner.sweep(&mut world));
    t.elapsed()
}

fn counts() {
    let mut world = World::new(WorldConfig::tiny());
    let mut scanner = OpenIntelScanner::with_options(&world, SweepOptions::new().workers(1));
    let sweep = scanner.sweep(&mut world);
    let m = &sweep.metrics;
    println!(
        "events/sweep: delay {} request {} srtt {} links {} cause-keys {} domains {}",
        m.net.delay_us.count(),
        m.net.request_us.count(),
        m.resolver.srtt_us.count(),
        m.net.links.len(),
        m.causes.histograms().count() + m.causes.counters().count(),
        sweep.domains.len()
    );
}

fn micro() {
    use ruwhere_netsim::{Histogram, NetObs};
    use ruwhere_types::Asn;
    let n = 2_000_000u64;
    let mut h = Histogram::new();
    let t = Instant::now();
    for i in 0..n {
        h.record(black_box(5_000 + (i * 37) % 140_000));
    }
    let per = t.elapsed().as_nanos() as f64 / n as f64;
    println!("hist.record        {per:.1} ns/op (count {})", h.count());
    let mut obs = NetObs::new();
    let t = Instant::now();
    for i in 0..n {
        let (a, b) = if i % 2 == 0 {
            (Asn(1), Asn(2))
        } else {
            (Asn(2), Asn(1))
        };
        obs.hop_delivered(a, b, black_box(5_000 + (i * 37) % 140_000));
    }
    let per = t.elapsed().as_nanos() as f64 / n as f64;
    println!(
        "obs.hop_delivered  {per:.1} ns/op (links {})",
        obs.links.len()
    );
    let mut swap = NetObs::new();
    let t = Instant::now();
    for _ in 0..n {
        std::mem::swap(&mut swap, &mut obs);
        std::mem::swap(&mut obs, &mut swap);
    }
    let per = t.elapsed().as_nanos() as f64 / n as f64;
    println!("netobs move x2     {per:.1} ns/op");
    black_box(&obs);
}

fn main() {
    // SOLO=on|off: single-arm floor for cross-process comparison.
    if let Ok(arm) = std::env::var("SOLO") {
        let collect = arm == "on";
        sweep_once(collect);
        let mut best = Duration::MAX;
        for _ in 0..200 {
            best = best.min(sweep_once(collect));
        }
        println!("solo {arm} floor {:.3}ms", best.as_secs_f64() * 1e3);
        return;
    }
    counts();
    micro();
    let n = 150;
    let null_test = std::env::var("NULL_TEST").is_ok();
    sweep_once(true);
    sweep_once(false);
    let (mut on, mut off) = (Duration::MAX, Duration::MAX);
    for _ in 0..n {
        on = on.min(sweep_once(true));
        off = off.min(sweep_once(null_test));
    }
    println!(
        "min over {n}{}: on {:.3}ms off {:.3}ms  delta {:+.2}%",
        if null_test { " (NULL TEST)" } else { "" },
        on.as_secs_f64() * 1e3,
        off.as_secs_f64() * 1e3,
        (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0
    );
}
