//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p ruwhere-bench --bin repro -- [--scale N] [--full] [--out DIR]
//! ```
//!
//! * `--scale N`  world scale denominator (default 1000 ⇒ ≈5 k domains;
//!   the paper-faithful setting is 100 ⇒ ≈50 k domains, slower).
//! * `--full`     simulate the full 2017-06-18 → 2022-05-25 window with
//!   weekly pre-2022 sweeps (default: 2021-11-01 → 2022-05-25, which
//!   covers every figure's active region).
//! * `--out DIR`  also write each artifact to `DIR/<id>.txt`.
//! * `--ablation-geolag`  instead of the full study, run the footnote-5
//!   A/B comparison (IP reconfiguration vs prefix move for the Netnod
//!   event) as two parallel studies and print the composition around
//!   2022-03-03 under each model.
//! * `--bench-sweep FILE`  instead of the full study, measure sweep
//!   throughput at 1/2/4/8 workers on the pinned CI fixture
//!   (`RUWHERE_BENCH_DAYS` days per count) and write `FILE`
//!   (`BENCH_sweep.json`: wall time, queries/sec, NS-cache hit rate).
//!   Also measures the analysis phase — the single-pass engine walk vs
//!   the legacy eight-pass per-series fold — and embeds the visit counts
//!   and wall times as the artifact's `analysis` line.
//! * `--check-baseline FILE`  after `--bench-sweep`, gate the measured
//!   throughput against the committed baseline `FILE`: exit 1 if any
//!   worker count regresses more than 15% in queries/sec.
//! * `--metrics FILE`  sweep the pinned fixture once with metric
//!   collection on (`RUWHERE_WORKERS` honored) and write the run-level
//!   observability export (`METRICS_sweep.json`: per-cause latency
//!   histograms, per-link transport tables, resolver counters). The file
//!   is byte-identical for any worker count — CI compares a 1-worker and
//!   a 4-worker run with `cmp`. Composes with `--bench-sweep`.
//! * `--report FILE`  run the pinned fixture study (`RUWHERE_BENCH_DAYS`
//!   honored, `RUWHERE_WORKERS` honored) and write every figure/table
//!   artifact plus retained sweep stats, engine work counters and the
//!   full symbol-table dump as one text file. Byte-identical for any
//!   worker count — CI compares a 1-worker and a 4-worker report with
//!   `cmp`. Composes with `--bench-sweep` and `--metrics`.
//! * `--checkpoint-dir DIR`  persist one durable, checksummed segment per
//!   sweep day to `DIR` (the flag beats the `RUWHERE_CHECKPOINT_DIR`
//!   environment variable). Applies to the full study and to `--report`.
//! * `--resume`  continue an interrupted checkpointed run from its last
//!   valid segment; damaged tail segments are quarantined and reported.
//!   The resumed run's output is byte-identical to an uninterrupted one.

use ruwhere_core::figures;
use ruwhere_core::{run_study, try_run_study, StudyConfig, StudyResults};
use ruwhere_types::{Asn, Date};
use ruwhere_world::WorldConfig;
use std::io::Write;

struct Args {
    scale: usize,
    full: bool,
    out: Option<std::path::PathBuf>,
    ablation_geolag: bool,
    bench_sweep: Option<std::path::PathBuf>,
    check_baseline: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
    report: Option<std::path::PathBuf>,
    checkpoint_dir: Option<std::path::PathBuf>,
    resume: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1000,
        full: false,
        out: None,
        ablation_geolag: false,
        bench_sweep: None,
        check_baseline: None,
        metrics: None,
        report: None,
        checkpoint_dir: ruwhere_scan::default_checkpoint_dir(),
        resume: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing value for --scale"));
            }
            "--full" => args.full = true,
            "--ablation-geolag" => args.ablation_geolag = true,
            "--bench-sweep" => {
                args.bench_sweep = Some(
                    it.next()
                        .unwrap_or_else(|| usage("missing value for --bench-sweep"))
                        .into(),
                );
            }
            "--check-baseline" => {
                args.check_baseline = Some(
                    it.next()
                        .unwrap_or_else(|| usage("missing value for --check-baseline"))
                        .into(),
                );
            }
            "--metrics" => {
                args.metrics = Some(
                    it.next()
                        .unwrap_or_else(|| usage("missing value for --metrics"))
                        .into(),
                );
            }
            "--report" => {
                args.report = Some(
                    it.next()
                        .unwrap_or_else(|| usage("missing value for --report"))
                        .into(),
                );
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("missing value for --checkpoint-dir"))
                        .into(),
                );
            }
            "--resume" => args.resume = true,
            "--out" => {
                args.out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("missing value for --out"))
                        .into(),
                );
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale N] [--full] [--out DIR] [--ablation-geolag]\n\
         \x20            [--bench-sweep FILE [--check-baseline BASELINE]]\n\
         \x20            [--metrics FILE] [--report FILE]\n\
         \x20            [--checkpoint-dir DIR] [--resume]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Run a study with the CLI's checkpoint knobs applied, turning every
/// checkpoint-layer failure (unwritable directory, config mismatch,
/// broken segment chain, clobber refusal) into a diagnostic and exit
/// code 2 instead of a panic.
fn run_study_checkpointed(mut cfg: StudyConfig, args: &Args) -> StudyResults {
    cfg.checkpoint_dir = args.checkpoint_dir.clone();
    cfg.resume = args.resume;
    match try_run_study(&cfg) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Sweep-throughput benchmark mode: measure, write the artifact, and
/// optionally gate against the committed baseline.
fn run_bench_sweep(out: &std::path::Path, baseline: Option<&std::path::Path>) {
    const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
    const TOLERANCE: f64 = 0.15;
    eprintln!(
        "bench: sweeping {} days per worker count {:?}…",
        std::env::var(ruwhere_bench::BENCH_DAYS_ENV)
            .unwrap_or_else(|_| ruwhere_bench::DEFAULT_BENCH_DAYS.to_string()),
        WORKER_COUNTS
    );
    let rows = ruwhere_bench::bench_sweep(&WORKER_COUNTS);
    for r in &rows {
        eprintln!(
            "  workers={}  wall={:.3}s  {:>8.0} q/s  ns-cache hit rate {:.1}%",
            r.workers,
            r.wall_seconds,
            r.queries_per_sec,
            100.0 * r.ns_cache_hit_rate
        );
    }
    if let Some(s) = ruwhere_bench::speedup(&rows, 1, 8) {
        eprintln!("  speedup 1→8 workers: {s:.2}×");
    }
    let workers = ruwhere_scan::available_workers();
    eprintln!("bench: analysis fold ({workers} workers, single-pass vs eight-pass)…");
    let analysis = ruwhere_bench::bench_analysis(workers);
    eprintln!(
        "  single-pass engine: {} record visits ({} dispatches) in {:.3}s",
        analysis.single_pass_visits, analysis.observer_dispatches, analysis.single_pass_seconds
    );
    eprintln!(
        "  eight-pass baseline: {} record visits in {:.3}s — {:.1}× more visits, {:.2}× slower",
        analysis.eight_pass_visits,
        analysis.eight_pass_seconds,
        analysis.visit_ratio(),
        analysis.wall_speedup()
    );

    let json = ruwhere_bench::render_bench_json(&rows, Some(&analysis));
    std::fs::write(out, &json).expect("write bench artifact");
    eprintln!("wrote {}", out.display());

    if let Some(baseline_path) = baseline {
        let baseline_json = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline_path.display()));
        match ruwhere_bench::check_baseline(&rows, &baseline_json, TOLERANCE) {
            Ok(()) => eprintln!(
                "baseline check passed (within {:.0}% of {})",
                TOLERANCE * 100.0,
                baseline_path.display()
            ),
            Err(msg) => {
                eprintln!("baseline check FAILED:\n{msg}");
                std::process::exit(1);
            }
        }
    }
}

/// Metrics-export mode: sweep the pinned fixture with metric collection
/// on and write the run-level `METRICS_sweep.json`. Worker count comes
/// from `RUWHERE_WORKERS` (default: available parallelism); the exported
/// bytes do not depend on it.
fn run_metrics_export(out: &std::path::Path) {
    let workers = ruwhere_scan::available_workers();
    eprintln!("metrics: sweeping the fixture with {workers} workers, metrics on…");
    let (metrics, days) = ruwhere_bench::collect_sweep_metrics(workers);
    let json = ruwhere_bench::render_metrics_json(&metrics, days);
    std::fs::write(out, &json).expect("write metrics artifact");
    eprintln!(
        "wrote {} ({} days, {} delivered-packet samples, {} SRTT samples)",
        out.display(),
        days,
        metrics.net.delay_us.count(),
        metrics.resolver.srtt_us.count(),
    );
}

/// Report-export mode: run the pinned fixture study and render every
/// figure/table artifact, the retained sweeps' stats, the engine's work
/// counters and the full symbol-table dump into one text file. The
/// determinism contract makes the bytes independent of the worker count
/// (`RUWHERE_WORKERS` honored) — CI renders a 1-worker and a 4-worker
/// report and compares them with `cmp`.
fn run_report_export(out: &std::path::Path, args: &Args) {
    let cfg = ruwhere_bench::fixture_config();
    eprintln!(
        "report: running the pinned fixture study with {} workers…",
        cfg.workers
    );
    let results = run_study_checkpointed(cfg, args);
    let text = ruwhere_bench::render_report(&results);
    std::fs::write(out, &text).expect("write report artifact");
    eprintln!(
        "wrote {} ({} sections, {} bytes)",
        out.display(),
        text.matches("=== ").count(),
        text.len()
    );
}

/// Run the footnote-5 ablation: two studies in parallel, identical except
/// for how the Netnod event manifests in the network.
fn run_geolag_ablation(scale: usize) {
    let build_cfg = |prefix_move: bool| {
        let mut world = WorldConfig::paper_scale(scale);
        world.start = Date::from_ymd(2022, 2, 1);
        world.cert_start = Date::from_ymd(2022, 2, 1);
        world.end = Date::from_ymd(2022, 4, 15);
        world.netnod_prefix_move = prefix_move;
        // Sparse vendor refreshes make the lag unmistakable.
        world.geo_snapshot_interval_days = 28;
        let mut cfg = StudyConfig::paper_schedule(world);
        cfg.daily_from = Date::from_ymd(2022, 2, 20);
        cfg.ip_scans.clear();
        cfg
    };
    eprintln!("ablation: running both Netnod models in parallel…");
    let t0 = std::time::Instant::now();
    let (reconf, moved) = crossbeam::thread::scope(|s| {
        let a = s.spawn(|_| run_study(&build_cfg(false)));
        let b = s.spawn(|_| run_study(&build_cfg(true)));
        (
            a.join().expect("reconf study"),
            b.join().expect("move study"),
        )
    })
    .expect("scope");
    eprintln!("both studies done in {:.1}s", t0.elapsed().as_secs_f64());

    let mut t = ruwhere_core::Table::new(
        "Footnote-5 ablation: measured partial-NS share around the Netnod event",
        &[
            "date",
            "IP reconfiguration (default)",
            "prefix move (geo lags)",
        ],
    );
    for d in Date::from_ymd(2022, 2, 28).to(Date::from_ymd(2022, 4, 10)) {
        let (Some(a), Some(b)) = (reconf.ns_composition.at(d), moved.ns_composition.at(d)) else {
            continue;
        };
        if d.day() % 3 != 0 && d != Date::from_ymd(2022, 3, 3) {
            continue; // thin the table
        }
        t.row([
            d.to_string(),
            format!("{:.2}%", a.pct_partial()),
            format!("{:.2}%", b.pct_partial()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Under the prefix-move model the partial share only falls at the next\n\
         geolocation snapshot — the measurement 'lags behind' exactly as the\n\
         paper's footnote 5 warns. The default (IP reconfiguration) model\n\
         matches the paper's observed same-day transition."
    );
}

fn main() {
    let args = parse_args();
    if args.resume && args.checkpoint_dir.is_none() {
        usage("--resume requires --checkpoint-dir DIR (or RUWHERE_CHECKPOINT_DIR)");
    }
    // Artifact modes compose: any subset of --bench-sweep / --metrics /
    // --report runs in that order, then exits.
    let mut artifact_mode = false;
    if let Some(out) = &args.bench_sweep {
        run_bench_sweep(out, args.check_baseline.as_deref());
        artifact_mode = true;
    } else if args.check_baseline.is_some() {
        usage("--check-baseline requires --bench-sweep");
    }
    if let Some(m) = &args.metrics {
        run_metrics_export(m);
        artifact_mode = true;
    }
    if let Some(rp) = &args.report {
        run_report_export(rp, &args);
        artifact_mode = true;
    }
    if artifact_mode {
        return;
    }
    if args.ablation_geolag {
        run_geolag_ablation(args.scale.max(1000));
        return;
    }
    let mut world = WorldConfig::paper_scale(args.scale);
    if !args.full {
        // The condensed window still covers: all of the cert analysis
        // (2022-01-01 → 05-15), every §3 event, and enough pre-conflict
        // baseline for composition levels.
        world.start = Date::from_ymd(2021, 11, 1);
        world.cert_start = Date::from_ymd(2021, 11, 1);
    }
    let mut cfg = StudyConfig::paper_schedule(world);
    cfg.verbose = true;

    eprintln!(
        "repro: scale 1:{} ({} initial domains), {} sweeps ({} → {})",
        args.scale,
        cfg.world.initial_population,
        cfg.sweep_dates().len(),
        cfg.world.start,
        cfg.world.end
    );
    let t0 = std::time::Instant::now();
    let results = run_study_checkpointed(cfg, &args);
    eprintln!(
        "study complete in {:.1}s — {} sweeps, {} DNS queries, {} certs indexed",
        t0.elapsed().as_secs_f64(),
        results.sweeps_run,
        results.total_queries,
        results.certs.len()
    );

    let mut artifacts: Vec<(String, String)> = Vec::new();
    let end = results
        .retained
        .keys()
        .next_back()
        .copied()
        .expect("study retained sweeps");

    artifacts.push((
        "dataset_stats".into(),
        figures::dataset_table(&results).render(),
    ));
    artifacts.push((
        "fig1_series".into(),
        figures::fig1_series(&results).render(),
    ));
    artifacts.push((
        "fig1_summary".into(),
        figures::fig1_summary(&results).render(),
    ));
    artifacts.push((
        "hosting_summary".into(),
        figures::hosting_summary(&results).render(),
    ));
    artifacts.push((
        "fig2_series".into(),
        figures::fig2_series(&results).render(),
    ));
    artifacts.push((
        "fig2_summary".into(),
        figures::fig2_summary(&results).render(),
    ));
    artifacts.push((
        "fig3_series".into(),
        figures::fig3_series(&results).render(),
    ));
    artifacts.push((
        "fig3_summary".into(),
        figures::fig3_summary(&results).render(),
    ));
    artifacts.push((
        "fig4_series".into(),
        figures::fig4_series(&results).render(),
    ));
    artifacts.push((
        "fig5_series".into(),
        figures::fig5_series(&results).render(),
    ));
    artifacts.push((
        "fig5_summary".into(),
        figures::fig5_summary(&results).render(),
    ));

    if let Some((t, _)) = figures::movement_table(
        &results,
        Asn::AMAZON,
        "Figure 6",
        Date::from_ymd(2022, 3, 8),
        end,
        ">50% relocated, 43% remained, 574 new + 988 relocated in",
    ) {
        artifacts.push(("fig6_amazon".into(), t.render()));
    }
    if let Some((t, _)) = figures::movement_table(
        &results,
        Asn::SEDO,
        "Figure 7",
        Date::from_ymd(2022, 3, 8),
        end,
        "98% relocated, 2.7k remained, 311 in",
    ) {
        artifacts.push(("fig7_sedo".into(), t.render()));
    }
    artifacts.push((
        "provider_actions".into(),
        figures::provider_actions_table(&results).render(),
    ));

    let (fig8, _) = figures::fig8_table(&results);
    artifacts.push(("fig8_ca_timelines".into(), fig8.render()));
    artifacts.push(("tab1_issuance".into(), figures::table1(&results).render()));
    artifacts.push((
        "cert_volume".into(),
        figures::cert_volume_table(&results).render(),
    ));
    artifacts.push(("tab2_revocation".into(), figures::table2(&results).render()));
    if let Some(t) = figures::russian_ca_table(&results) {
        artifacts.push(("sec4_3_russian_ca".into(), t.render()));
    }
    artifacts.push((
        "transition_flows".into(),
        figures::transition_table(&results).render(),
    ));
    artifacts.push((
        "sec6_discussion".into(),
        figures::discussion_table(&results).render(),
    ));

    for (id, text) in &artifacts {
        println!("=== {id} ===");
        println!("{text}");
    }

    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create output dir");
        for (id, text) in &artifacts {
            let path = dir.join(format!("{id}.txt"));
            let mut f = std::fs::File::create(&path).expect("create artifact file");
            f.write_all(text.as_bytes()).expect("write artifact");
        }
        // Plottable figures: TSV + gnuplot script pairs.
        use ruwhere_core::{gnuplot_script, PlotSpec};
        let plots = [
            (
                figures::fig1_series(&results),
                PlotSpec::percent("fig1.png", "Figure 1: NS country composition"),
            ),
            (
                figures::fig2_series(&results),
                PlotSpec::percent("fig2.png", "Figure 2: NS TLD-dependency composition"),
            ),
            (
                figures::fig3_series(&results),
                PlotSpec::percent("fig3.png", "Figure 3: top-5 NS TLD usage"),
            ),
            (
                figures::fig4_series(&results),
                PlotSpec::percent("fig4.png", "Figure 4: hosting-network shares"),
            ),
            (
                figures::fig5_series(&results),
                PlotSpec::percent("fig5.png", "Figure 5: sanctioned NS composition"),
            ),
        ];
        for (i, (series, spec)) in plots.iter().enumerate() {
            let base = format!("fig{}", i + 1);
            std::fs::write(dir.join(format!("{base}.tsv")), series.render()).expect("write tsv");
            std::fs::write(
                dir.join(format!("{base}.gnuplot")),
                gnuplot_script(series, &format!("{base}.tsv"), spec),
            )
            .expect("write gnuplot script");
        }
        eprintln!(
            "wrote {} artifacts + {} plot scripts to {}",
            artifacts.len(),
            plots.len(),
            dir.display()
        );
    }
}
