//! Shared fixtures for the benchmark harness.
//!
//! Building a world and sweeping it is expensive; benches build one shared
//! fixture per process and measure the per-figure analysis code against it.
//!
//! The module also hosts the sweep-throughput benchmark behind the CI
//! `bench` job: [`bench_sweep`] measures wall-clock sweep time at a set of
//! worker counts on a pinned fixture, [`render_bench_json`] serialises the
//! rows to the committed `BENCH_sweep.json` format, and [`check_baseline`]
//! gates regressions against a committed baseline.

use ruwhere_core::{
    figures, run_study, AnalysisEngine, AsnShareSeries, CompositionSeries, DatasetStats, InfraKind,
    StudyConfig, StudyResults, TldDependencySeries, TldUsageSeries, TransitionFlows,
};
use ruwhere_registry::SanctionsList;
use ruwhere_scan::{DailySweep, OpenIntelScanner, SweepMetrics, SweepOptions};
use ruwhere_store::Interner;
use ruwhere_types::{Asn, Date};
use ruwhere_world::{World, WorldConfig};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Environment variable naming the number of daily-sweep days in the
/// bench fixture (and the sweep-throughput benchmark's day count).
pub const BENCH_DAYS_ENV: &str = "RUWHERE_BENCH_DAYS";

/// Days swept by [`bench_sweep`] per worker count when [`BENCH_DAYS_ENV`]
/// is unset.
pub const DEFAULT_BENCH_DAYS: i32 = 3;

fn bench_days() -> i32 {
    std::env::var(BENCH_DAYS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<i32>().ok())
        .map(|d| d.max(1))
        .unwrap_or(DEFAULT_BENCH_DAYS)
}

/// The fixture's study configuration: the test schedule (tiny world,
/// daily sweeps from 2022-02-20), with the daily window trimmed to the
/// last `$RUWHERE_BENCH_DAYS` days when that variable is set — CI pins it
/// so bench numbers are comparable across runs; locally it shrinks the
/// fixture for quick iterations.
pub fn fixture_config() -> StudyConfig {
    let days = std::env::var(BENCH_DAYS_ENV).is_ok().then(bench_days);
    fixture_config_for_days(days)
}

/// [`fixture_config`] with the daily-window override passed explicitly
/// instead of read from the environment — for harnesses (e.g. the crash
/// harness) that pin `RUWHERE_BENCH_DAYS` on child processes and need
/// the matching sweep schedule in-process.
pub fn fixture_config_for_days(days: Option<i32>) -> StudyConfig {
    let mut cfg = StudyConfig::test_schedule();
    cfg.daily_from = Date::from_ymd(2022, 2, 20);
    if let Some(days) = days {
        cfg.daily_from = cfg
            .world
            .end
            .add_days(-(days.max(1) - 1))
            .max(cfg.world.start);
    }
    cfg
}

/// A cached tiny study spanning the conflict window (see
/// [`fixture_config`] for the `RUWHERE_BENCH_DAYS` override).
pub fn fixture() -> &'static StudyResults {
    static FIXTURE: OnceLock<StudyResults> = OnceLock::new();
    FIXTURE.get_or_init(|| run_study(&fixture_config()))
}

/// One worker-count's measured sweep throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepBenchRow {
    /// Worker-pool size the sweeps ran with.
    pub workers: usize,
    /// Wall-clock seconds for all sweeps (world construction excluded).
    pub wall_seconds: f64,
    /// DNS queries the sweeps emitted (identical for every worker count —
    /// the engine's determinism contract).
    pub queries: u64,
    /// Throughput: queries per wall-clock second.
    pub queries_per_sec: f64,
    /// Shared NS-target cache hit rate across the sweeps.
    pub ns_cache_hit_rate: f64,
}

/// Measure sweep throughput at each worker count on the pinned fixture:
/// a fresh tiny world per count (identical by construction), sweeping
/// `$RUWHERE_BENCH_DAYS` consecutive days (default
/// [`DEFAULT_BENCH_DAYS`]). Only `sweep()` calls are timed. Metrics
/// collection is ON — the CI throughput gate measures the instrumented
/// engine, so instrumentation overhead that regresses throughput past the
/// gate's tolerance fails the bench job.
pub fn bench_sweep(worker_counts: &[usize]) -> Vec<SweepBenchRow> {
    bench_sweep_opts(worker_counts, true)
}

/// [`bench_sweep`] with an explicit metrics switch; `collect_metrics:
/// false` is the uninstrumented baseline of the overhead measurement
/// (EXPERIMENTS.md §observability).
pub fn bench_sweep_opts(worker_counts: &[usize], collect_metrics: bool) -> Vec<SweepBenchRow> {
    let days = bench_days();
    worker_counts
        .iter()
        .map(|&workers| {
            let mut world = World::new(WorldConfig::tiny());
            let mut scanner = OpenIntelScanner::with_options(
                &world,
                SweepOptions::new()
                    .workers(workers)
                    .collect_metrics(collect_metrics),
            );
            let mut wall = 0.0f64;
            let mut queries = 0u64;
            let mut hits = 0u64;
            let mut misses = 0u64;
            for day in 0..days {
                if day > 0 {
                    world.advance_to(world.today().succ());
                }
                let t0 = Instant::now();
                let sweep = scanner.sweep(&mut world);
                wall += t0.elapsed().as_secs_f64();
                queries += sweep.stats.queries;
                hits += sweep.stats.ns_cache_hits;
                misses += sweep.stats.ns_cache_misses;
            }
            SweepBenchRow {
                workers,
                wall_seconds: wall,
                queries,
                queries_per_sec: if wall > 0.0 {
                    queries as f64 / wall
                } else {
                    0.0
                },
                ns_cache_hit_rate: if hits + misses > 0 {
                    hits as f64 / (hits + misses) as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// The analysis-phase measurement: the single-pass [`AnalysisEngine`]
/// walk vs the legacy eight-pass shape where every series folds the
/// row-form sweep independently, over the same swept days.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisBenchReport {
    /// Days analysed.
    pub sweeps: i32,
    /// Total records across the analysed frames.
    pub records: u64,
    /// Records the single-pass engine visited (one per record per frame,
    /// no matter how many observers ride the walk).
    pub single_pass_visits: u64,
    /// Observer hook dispatches the engine made (visits × observers).
    pub observer_dispatches: u64,
    /// Records the eight-pass baseline visits (eight full walks per
    /// frame, one per series).
    pub eight_pass_visits: u64,
    /// Wall-clock seconds of the single engine walk over all frames.
    pub single_pass_seconds: f64,
    /// Wall-clock seconds of the eight independent series folds.
    pub eight_pass_seconds: f64,
}

impl AnalysisBenchReport {
    /// How many times fewer record visits the single pass makes.
    pub fn visit_ratio(&self) -> f64 {
        if self.single_pass_visits > 0 {
            self.eight_pass_visits as f64 / self.single_pass_visits as f64
        } else {
            0.0
        }
    }

    /// Wall-clock speedup of the single pass over the eight-pass fold.
    pub fn wall_speedup(&self) -> f64 {
        if self.single_pass_seconds > 0.0 {
            self.eight_pass_seconds / self.single_pass_seconds
        } else {
            0.0
        }
    }
}

/// The full eight-series observer set `run_study` drives, fresh.
fn study_series(
    sanctions: &SanctionsList,
) -> (
    CompositionSeries,
    CompositionSeries,
    CompositionSeries,
    TldDependencySeries,
    TldUsageSeries,
    AsnShareSeries,
    DatasetStats,
    TransitionFlows,
) {
    (
        CompositionSeries::new(InfraKind::NameServers),
        CompositionSeries::new(InfraKind::Hosting),
        CompositionSeries::sanctioned(InfraKind::NameServers, sanctions.clone()),
        TldDependencySeries::new(),
        TldUsageSeries::new(),
        AsnShareSeries::new(),
        DatasetStats::new(),
        TransitionFlows::new(InfraKind::NameServers),
    )
}

/// Measure the analysis phase on the pinned fixture: sweep
/// `$RUWHERE_BENCH_DAYS` days once (untimed), then feed the eight study
/// series two ways — one [`AnalysisEngine`] walk per frame (what
/// `run_study` does), and the pre-engine shape where each series folds
/// the row-form sweep on its own, re-walking every record eight times
/// per day. Visit counts are exact; wall-clock covers only the folds,
/// never the sweeping.
pub fn bench_analysis(workers: usize) -> AnalysisBenchReport {
    let days = bench_days();
    let mut world = World::new(WorldConfig::tiny());
    let sanctions = world.sanctions().clone();
    let interner = Arc::new(Interner::new());
    let mut scanner = OpenIntelScanner::with_options(
        &world,
        SweepOptions::new()
            .workers(workers)
            .interner(interner.clone()),
    );
    let mut frames = Vec::new();
    for day in 0..days {
        if day > 0 {
            world.advance_to(world.today().succ());
        }
        frames.push(scanner.sweep_frame(&mut world).strip_metrics());
    }
    let records: u64 = frames.iter().map(|f| f.len() as u64).sum();
    // Row-form copies for the eight-pass baseline (how retained data
    // reached the series before the columnar store existed).
    let dailies: Vec<DailySweep> = frames.iter().map(|f| f.to_daily_sweep(&interner)).collect();

    // Single pass: one engine walk per frame feeds all eight observers.
    let (mut c1, mut c2, mut c3, mut td, mut tu, mut asn, mut ds, mut tf) =
        study_series(&sanctions);
    let mut engine = AnalysisEngine::new();
    let t0 = Instant::now();
    for frame in &frames {
        engine.observe_frame(
            frame,
            &interner,
            &mut [
                &mut c1, &mut c2, &mut c3, &mut td, &mut tu, &mut asn, &mut ds, &mut tf,
            ],
        );
    }
    let single_pass_seconds = t0.elapsed().as_secs_f64();

    // Eight passes: every series folds the day independently.
    let (mut c1, mut c2, mut c3, mut td, mut tu, mut asn, mut ds, mut tf) =
        study_series(&sanctions);
    let t0 = Instant::now();
    for sweep in &dailies {
        c1.observe(sweep);
        c2.observe(sweep);
        c3.observe(sweep);
        td.observe(sweep);
        tu.observe(sweep);
        asn.observe(sweep);
        ds.observe(sweep);
        tf.observe(sweep);
    }
    let eight_pass_seconds = t0.elapsed().as_secs_f64();

    AnalysisBenchReport {
        sweeps: days,
        records,
        single_pass_visits: engine.record_visits(),
        observer_dispatches: engine.observer_dispatches(),
        eight_pass_visits: 8 * records,
        single_pass_seconds,
        eight_pass_seconds,
    }
}

/// Sweep the bench fixture's `$RUWHERE_BENCH_DAYS` days once with metrics
/// on and return the run-level merged metric section plus the day count.
///
/// The merge is the same associative fold the sweep engine uses per
/// worker, applied across days — so the run-level section inherits the
/// per-sweep guarantee: identical for any worker count.
pub fn collect_sweep_metrics(workers: usize) -> (SweepMetrics, i32) {
    let days = bench_days();
    let mut world = World::new(WorldConfig::tiny());
    let mut scanner = OpenIntelScanner::with_options(&world, SweepOptions::new().workers(workers));
    let mut merged = SweepMetrics::new();
    for day in 0..days {
        if day > 0 {
            world.advance_to(world.today().succ());
        }
        let sweep = scanner.sweep(&mut world);
        merged.merge(&sweep.metrics);
    }
    (merged, days)
}

/// Serialise the run-level metric section as the `METRICS_sweep.json`
/// artifact. Deliberately carries NO worker count, timestamp or host
/// information: two runs over the same fixture must produce
/// byte-identical files regardless of parallelism, so the CI determinism
/// gate can compare them with `cmp`.
pub fn render_metrics_json(metrics: &SweepMetrics, days: i32) -> String {
    let mut out = format!("{{\"bench\":\"sweep_metrics\",\"days\":{days},\"metrics\":");
    metrics.push_json(&mut out);
    out.push_str("}\n");
    out
}

/// Serialise bench rows as the `BENCH_sweep.json` artifact. Hand-rolled
/// (the build has no JSON dependency); one row object per line so the
/// baseline gate can parse it with plain string scanning. The optional
/// analysis report lands as one extra `"analysis"` line — it carries
/// neither a `workers` nor a `queries_per_sec` key, so [`check_baseline`]
/// skips it by construction.
pub fn render_bench_json(rows: &[SweepBenchRow], analysis: Option<&AnalysisBenchReport>) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!("{{\n  \"bench\": \"sweep\",\n  \"cpus\": {cpus},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"wall_seconds\": {:.6}, \"queries\": {}, \
             \"queries_per_sec\": {:.1}, \"ns_cache_hit_rate\": {:.4}}}{}\n",
            r.workers,
            r.wall_seconds,
            r.queries,
            r.queries_per_sec,
            r.ns_cache_hit_rate,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let speedup = speedup(
        rows,
        1,
        *rows.iter().map(|r| &r.workers).max().unwrap_or(&1),
    );
    out.push_str("  ],\n");
    if let Some(a) = analysis {
        out.push_str(&format!(
            "  \"analysis\": {{\"sweeps\": {}, \"records\": {}, \"single_pass_visits\": {}, \
             \"observer_dispatches\": {}, \"eight_pass_visits\": {}, \"visit_ratio\": {:.2}, \
             \"single_pass_seconds\": {:.6}, \"eight_pass_seconds\": {:.6}}},\n",
            a.sweeps,
            a.records,
            a.single_pass_visits,
            a.observer_dispatches,
            a.eight_pass_visits,
            a.visit_ratio(),
            a.single_pass_seconds,
            a.eight_pass_seconds,
        ));
    }
    out.push_str(&format!(
        "  \"max_speedup\": {:.2}\n}}\n",
        speedup.unwrap_or(1.0)
    ));
    out
}

/// Render every paper artifact the study can produce, plus the retained
/// sweeps' aggregate stats, the engine's work counters and the full
/// symbol-table dump, as one text document. The content is a pure
/// function of the study output, and the determinism contract makes that
/// output byte-identical for any worker count — CI renders a 1-worker
/// and a 4-worker report and compares them with `cmp`.
pub fn render_report(r: &StudyResults) -> String {
    let mut artifacts: Vec<(&str, String)> = vec![
        ("dataset_stats", figures::dataset_table(r).render()),
        ("fig1_series", figures::fig1_series(r).render()),
        ("fig1_summary", figures::fig1_summary(r).render()),
        ("hosting_summary", figures::hosting_summary(r).render()),
        ("fig2_series", figures::fig2_series(r).render()),
        ("fig2_summary", figures::fig2_summary(r).render()),
        ("fig3_series", figures::fig3_series(r).render()),
        ("fig3_summary", figures::fig3_summary(r).render()),
        ("fig4_series", figures::fig4_series(r).render()),
        ("fig5_series", figures::fig5_series(r).render()),
        ("fig5_summary", figures::fig5_summary(r).render()),
    ];
    let end = r.retained.keys().next_back().copied();
    let start = Date::from_ymd(2022, 3, 8);
    if let Some(end) = end {
        if let Some((t, _)) = figures::movement_table(r, Asn::AMAZON, "Figure 6", start, end, "") {
            artifacts.push(("fig6_amazon", t.render()));
        }
        if let Some((t, _)) = figures::movement_table(r, Asn::SEDO, "Figure 7", start, end, "") {
            artifacts.push(("fig7_sedo", t.render()));
        }
    }
    artifacts.push((
        "provider_actions",
        figures::provider_actions_table(r).render(),
    ));
    let (fig8, _) = figures::fig8_table(r);
    artifacts.push(("fig8_ca_timelines", fig8.render()));
    artifacts.push(("tab1_issuance", figures::table1(r).render()));
    artifacts.push(("cert_volume", figures::cert_volume_table(r).render()));
    artifacts.push(("tab2_revocation", figures::table2(r).render()));
    if let Some(t) = figures::russian_ca_table(r) {
        artifacts.push(("sec4_3_russian_ca", t.render()));
    }
    artifacts.push(("transition_flows", figures::transition_table(r).render()));
    artifacts.push(("sec6_discussion", figures::discussion_table(r).render()));

    let mut stats = String::new();
    for (date, frame) in &r.retained {
        stats.push_str(&format!(
            "{date}  records={}  {:?}\n",
            frame.len(),
            frame.stats
        ));
    }
    artifacts.push(("retained_sweep_stats", stats));
    artifacts.push((
        "analysis_engine",
        format!(
            "frames={}  record_visits={}  observer_dispatches={}\n",
            r.analysis.frames(),
            r.analysis.record_visits(),
            r.analysis.observer_dispatches()
        ),
    ));
    // The symbol table is the byte-identity oracle: identical dumps mean
    // identical symbol assignment across the whole study.
    artifacts.push(("interner_dump", r.interner.dump()));

    let mut out = String::new();
    for (id, text) in &artifacts {
        out.push_str(&format!("=== {id} ===\n{text}\n"));
    }
    out
}

/// Speedup of `workers_b` relative to `workers_a` (wall-clock ratio).
pub fn speedup(rows: &[SweepBenchRow], workers_a: usize, workers_b: usize) -> Option<f64> {
    let a = rows.iter().find(|r| r.workers == workers_a)?;
    let b = rows.iter().find(|r| r.workers == workers_b)?;
    if b.wall_seconds > 0.0 {
        Some(a.wall_seconds / b.wall_seconds)
    } else {
        None
    }
}

/// Extract `"key": <number>` from a JSON row line (the line-oriented
/// format [`render_bench_json`] writes).
fn json_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Gate current throughput against a committed baseline JSON: for every
/// worker count present in both, the measured queries/sec must not fall
/// more than `tolerance` (e.g. `0.15`) below the baseline. Returns the
/// list of violations as the error.
pub fn check_baseline(
    current: &[SweepBenchRow],
    baseline_json: &str,
    tolerance: f64,
) -> Result<(), String> {
    let mut checked = 0usize;
    let mut violations = Vec::new();
    for line in baseline_json.lines() {
        let (Some(workers), Some(base_qps)) = (
            json_field(line, "workers"),
            json_field(line, "queries_per_sec"),
        ) else {
            continue;
        };
        let Some(cur) = current.iter().find(|r| r.workers == workers as usize) else {
            continue;
        };
        checked += 1;
        let floor = base_qps * (1.0 - tolerance);
        if cur.queries_per_sec < floor {
            violations.push(format!(
                "workers={}: {:.1} q/s is below the baseline floor {:.1} \
                 (baseline {:.1}, tolerance {:.0}%)",
                cur.workers,
                cur.queries_per_sec,
                floor,
                base_qps,
                tolerance * 100.0
            ));
        }
    }
    if checked == 0 {
        return Err("baseline JSON contained no comparable rows".into());
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SweepBenchRow> {
        vec![
            SweepBenchRow {
                workers: 1,
                wall_seconds: 4.0,
                queries: 4000,
                queries_per_sec: 1000.0,
                ns_cache_hit_rate: 0.9,
            },
            SweepBenchRow {
                workers: 4,
                wall_seconds: 1.0,
                queries: 4000,
                queries_per_sec: 4000.0,
                ns_cache_hit_rate: 0.9,
            },
        ]
    }

    fn analysis() -> AnalysisBenchReport {
        AnalysisBenchReport {
            sweeps: 3,
            records: 1000,
            single_pass_visits: 1000,
            observer_dispatches: 8000,
            eight_pass_visits: 8000,
            single_pass_seconds: 0.5,
            eight_pass_seconds: 2.0,
        }
    }

    #[test]
    fn analysis_line_is_invisible_to_the_gate() {
        let json = render_bench_json(&rows(), Some(&analysis()));
        assert!(json.contains("\"analysis\": {\"sweeps\": 3"));
        assert!(json.contains("\"visit_ratio\": 8.00"));
        // The analysis line adds no comparable row, so the gate result is
        // unchanged: identical numbers still pass…
        assert!(check_baseline(&rows(), &json, 0.15).is_ok());
        // …and a regression still fails.
        let mut slow = rows();
        slow[1].queries_per_sec = 3000.0;
        assert!(check_baseline(&slow, &json, 0.15).is_err());
    }

    #[test]
    fn analysis_ratios() {
        let a = analysis();
        assert_eq!(a.visit_ratio(), 8.0);
        assert_eq!(a.wall_speedup(), 4.0);
    }

    #[test]
    fn json_round_trips_through_the_gate() {
        let json = render_bench_json(&rows(), None);
        assert!(json.contains("\"workers\": 4"));
        assert!(json.contains("\"max_speedup\": 4.00"));
        // Identical numbers pass the gate.
        assert!(check_baseline(&rows(), &json, 0.15).is_ok());
        // A >15% throughput drop fails it.
        let mut slow = rows();
        slow[1].queries_per_sec = 3000.0;
        let err = check_baseline(&slow, &json, 0.15).unwrap_err();
        assert!(err.contains("workers=4"), "unexpected error: {err}");
        // An improvement passes.
        let mut fast = rows();
        fast[1].queries_per_sec = 9000.0;
        assert!(check_baseline(&fast, &json, 0.15).is_ok());
    }

    #[test]
    fn speedup_is_wall_clock_ratio() {
        assert_eq!(speedup(&rows(), 1, 4), Some(4.0));
        assert_eq!(speedup(&rows(), 1, 8), None);
    }

    #[test]
    fn gate_rejects_empty_baseline() {
        assert!(check_baseline(&rows(), "{}", 0.15).is_err());
    }
}
