//! Shared fixtures for the benchmark harness.
//!
//! Building a world and sweeping it is expensive; benches build one shared
//! fixture per process and measure the per-figure analysis code against it.

use ruwhere_core::{run_study, StudyConfig, StudyResults};
use ruwhere_types::Date;
use std::sync::OnceLock;

/// A cached tiny study spanning the conflict window.
pub fn fixture() -> &'static StudyResults {
    static FIXTURE: OnceLock<StudyResults> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut cfg = StudyConfig::test_schedule();
        cfg.daily_from = Date::from_ymd(2022, 2, 20);
        run_study(&cfg)
    })
}
