//! Crash-injection harness: SIGKILL a checkpointed `repro --report` run
//! at a randomized checkpoint boundary, corrupt segments on disk, then
//! resume and assert the recovered report is byte-identical to an
//! uninterrupted baseline — including across worker counts.
//!
//! The harness drives the real binary as a child process, so it
//! exercises the same code path an operator would: atomic segment
//! writes, quarantine-and-salvage on load, and replay-based resume.
//!
//! Gated on `RUWHERE_CRASH_TEST=1` (slow; runs full studies several
//! times). CI runs it in release with a pinned `RUWHERE_BENCH_DAYS`.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

const GATE_ENV: &str = "RUWHERE_CRASH_TEST";

fn gated() -> bool {
    let on = std::env::var(GATE_ENV).map(|v| v == "1").unwrap_or(false);
    if !on {
        eprintln!("crash_recovery: skipped (set {GATE_ENV}=1 to run)");
    }
    on
}

/// Days per study for the child processes. Enough that a kill lands
/// mid-run; overridable so CI can pin a cheaper fixture.
fn study_days() -> i32 {
    std::env::var("RUWHERE_BENCH_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// Segments a complete child run writes: one per sweep of the pinned
/// fixture schedule (weeklies plus the trimmed daily window).
fn total_segments(days: i32) -> u64 {
    ruwhere_bench::fixture_config_for_days(Some(days))
        .sweep_dates()
        .len() as u64
}

/// Fresh work directory under the cargo-managed tmpdir, preserved on
/// failure so CI can upload quarantined segments as artifacts.
fn work_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("crash-recovery")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create work dir");
    dir
}

/// A `repro --report` child with the harness's pinned environment.
fn repro(report: &Path, workers: &str, days: i32) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.arg("--report")
        .arg(report)
        .env("RUWHERE_WORKERS", workers)
        .env("RUWHERE_BENCH_DAYS", days.to_string())
        .env_remove("RUWHERE_CHECKPOINT_DIR");
    cmd
}

fn run_ok(mut cmd: Command, what: &str) -> String {
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {what}: {e}"));
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "{what} failed ({}):\n{stderr}",
        out.status
    );
    stderr
}

/// Assert two report files are byte-identical; on mismatch report the
/// first diverging offset instead of dumping megabytes.
fn assert_reports_identical(baseline: &Path, recovered: &Path, context: &str) {
    let a = std::fs::read(baseline).expect("read baseline report");
    let b = std::fs::read(recovered).expect("read recovered report");
    if a != b {
        let off = a
            .iter()
            .zip(b.iter())
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.len().min(b.len()));
        panic!(
            "{context}: reports diverge at byte {off} (baseline {} B, recovered {} B)",
            a.len(),
            b.len()
        );
    }
}

fn segments(dir: &Path) -> Vec<String> {
    let mut v: Vec<String> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.ends_with(".ckpt"))
                .collect()
        })
        .unwrap_or_default();
    v.sort();
    v
}

/// The uninterrupted 1-worker baseline report, rendered once per days
/// setting into the shared work area.
fn baseline_report(days: i32) -> PathBuf {
    let dir = work_dir(&format!("baseline-{days}"));
    let path = dir.join("report.txt");
    run_ok(repro(&path, "1", days), "baseline repro --report");
    path
}

/// SIGKILL the checkpointed run once a randomized number of segments
/// are durable, resume at 4 workers, and demand byte-identity with the
/// uninterrupted 1-worker baseline.
#[test]
fn sigkill_at_random_boundary_then_resume_is_byte_identical() {
    if !gated() {
        return;
    }
    let days = study_days();
    let total = total_segments(days);
    let baseline = baseline_report(days);
    let dir = work_dir("sigkill");
    let ckpt = dir.join("ckpt");
    let report = dir.join("report.txt");

    // Randomize the kill point across harness runs; the identity
    // assertion must hold at *every* boundary.
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(1);
    let kill_after = 1 + nanos % total.max(1);

    let mut child = repro(&report, "1", days)
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn checkpointed repro");
    let deadline = Instant::now() + Duration::from_secs(600);
    let killed = loop {
        if segments(&ckpt).len() as u64 >= kill_after {
            child.kill().expect("SIGKILL child");
            break true;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            assert!(status.success(), "child exited early with {status}");
            break false; // outran the poll loop — resume still must hold
        }
        assert!(Instant::now() < deadline, "no checkpoint after 600s");
        std::thread::sleep(Duration::from_millis(2));
    };
    let _ = child.wait();
    eprintln!(
        "sigkill: killed={killed} after {} of {total} segments (target {kill_after})",
        segments(&ckpt).len()
    );

    let stderr = run_ok(
        {
            let mut c = repro(&report, "4", days);
            c.arg("--checkpoint-dir").arg(&ckpt).arg("--resume");
            c
        },
        "resume after SIGKILL",
    );
    assert_reports_identical(&baseline, &report, "SIGKILL + resume @4 workers");
    assert_eq!(
        segments(&ckpt).len() as u64,
        total,
        "resume must complete the segment chain:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flip a random byte in a mid-chain segment: the loader must
/// quarantine it (and everything after it), salvage the prefix, and the
/// resumed run must still match the baseline byte-for-byte. Also
/// exercises `RUWHERE_CHECKPOINT_DIR` env parity on the resume leg.
#[test]
fn corrupted_segment_is_quarantined_and_resume_recovers() {
    if !gated() {
        return;
    }
    let days = study_days();
    let total = total_segments(days);
    let baseline = baseline_report(days);
    let dir = work_dir("corrupt");
    let ckpt = dir.join("ckpt");
    let report = dir.join("report.txt");

    run_ok(
        {
            let mut c = repro(&report, "2", days);
            c.arg("--checkpoint-dir").arg(&ckpt);
            c
        },
        "checkpointed repro --report",
    );
    let segs = segments(&ckpt);
    assert_eq!(segs.len() as u64, total, "one segment per sweep day");

    // Corrupt a mid-chain victim at a randomized offset.
    let victim = ckpt.join(&segs[segs.len() / 2]);
    let mut bytes = std::fs::read(&victim).expect("read victim segment");
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as usize)
        .unwrap_or(7);
    let off = nanos % bytes.len();
    bytes[off] ^= 1 << (nanos % 8).max(1);
    std::fs::write(&victim, &bytes).expect("rewrite victim segment");
    eprintln!(
        "corrupt: flipped a bit at byte {off} of {}",
        victim.display()
    );

    let stderr = run_ok(
        {
            let mut c = repro(&report, "1", days);
            c.arg("--resume").env("RUWHERE_CHECKPOINT_DIR", &ckpt);
            c
        },
        "resume after corruption",
    );
    assert_reports_identical(&baseline, &report, "bit-flip + resume");
    let quarantined: Vec<String> = std::fs::read_dir(&ckpt)
        .expect("read ckpt dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".quarantined"))
        .collect();
    assert!(
        !quarantined.is_empty(),
        "damaged segment should be quarantined:\n{stderr}"
    );
    assert!(
        stderr.contains("quarantined"),
        "resume should report the quarantine:\n{stderr}"
    );
    assert_eq!(
        segments(&ckpt).len() as u64,
        total,
        "re-measured days must be re-checkpointed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Guard rails: a non-resume run refuses a directory that already holds
/// segments (exit code 2, no clobber), and `--resume` without a
/// directory is a usage error.
#[test]
fn cli_refuses_clobber_and_flagless_resume() {
    if !gated() {
        return;
    }
    let days = study_days();
    let dir = work_dir("guard");
    let ckpt = dir.join("ckpt");
    let report = dir.join("report.txt");
    run_ok(
        {
            let mut c = repro(&report, "1", days);
            c.arg("--checkpoint-dir").arg(&ckpt);
            c
        },
        "first checkpointed run",
    );
    let before = segments(&ckpt);

    let out = {
        let mut c = repro(&report, "1", days);
        c.arg("--checkpoint-dir").arg(&ckpt);
        c
    }
    .output()
    .expect("spawn clobber attempt");
    assert_eq!(out.status.code(), Some(2), "clobber attempt must exit 2");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--resume"),
        "diagnostic should point at --resume"
    );
    assert_eq!(segments(&ckpt), before, "segments must be untouched");

    let out = {
        let mut c = repro(&report, "1", days);
        c.arg("--resume");
        c
    }
    .output()
    .expect("spawn flagless resume");
    assert_eq!(out.status.code(), Some(2), "flagless --resume must exit 2");
    let _ = std::fs::remove_dir_all(&dir);
}
