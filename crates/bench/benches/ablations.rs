//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. certificate-matching rule: CN-only vs CN+SAN (paper footnote 6);
//! 2. geolocation snapshot cadence (footnote 5's lag artifact);
//! 3. resolver caching on vs off (the cost OpenINTEL's daily re-observation
//!    pays for freshness).

use criterion::{criterion_group, criterion_main, Criterion};
use ruwhere_authdns::IterativeResolver;
use ruwhere_bench::fixture;
use ruwhere_dns::{Name, RType};
use ruwhere_geo::{GeoDbBuilder, LongitudinalGeoDb};
use ruwhere_scan::{CertDataset, MatchRule};
use ruwhere_types::{Country, Date, CERT_WINDOW_END, CERT_WINDOW_START};
use ruwhere_world::{World, WorldConfig};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn bench_match_rule(c: &mut Criterion) {
    // Rebuild a CT log view under both matching rules; the CN+SAN rule
    // scans every SAN so it costs more — the ablation quantifies how much.
    let mut world = World::new(WorldConfig::tiny());
    world.advance_to(Date::from_ymd(2022, 4, 1));
    let log = world.ct_log().clone();
    let mut g = c.benchmark_group("ablation_match_rule");
    g.bench_function("cn_or_san", |b| {
        b.iter(|| {
            black_box(CertDataset::from_log(
                black_box(&log),
                CERT_WINDOW_START,
                CERT_WINDOW_END,
                MatchRule::CnOrSan,
            ))
        })
    });
    g.bench_function("cn_only", |b| {
        b.iter(|| {
            black_box(CertDataset::from_log(
                black_box(&log),
                CERT_WINDOW_START,
                CERT_WINDOW_END,
                MatchRule::CnOnly,
            ))
        })
    });
    g.finish();
}

fn bench_geo_cadence(c: &mut Criterion) {
    // Dense (daily) vs sparse (monthly) snapshot stacks: lookup cost is
    // logarithmic in snapshot count, but the dense stack answers with less
    // lag. The bench measures the lookup side of that trade.
    let build_stack = |interval_days: i32| -> LongitudinalGeoDb {
        let mut l = LongitudinalGeoDb::new();
        let mut d = Date::from_ymd(2021, 6, 1);
        let end = Date::from_ymd(2022, 5, 25);
        let mut flip = false;
        while d <= end {
            let mut b = GeoDbBuilder::new();
            b.assign(
                Ipv4Addr::new(10, 0, 0, 0),
                Ipv4Addr::new(10, 255, 255, 255),
                if flip { Country::RU } else { Country::SE },
            );
            flip = !flip;
            l.add_snapshot(d, b.build());
            d = d.add_days(interval_days);
        }
        l
    };
    let daily = build_stack(1);
    let monthly = build_stack(30);
    let probe: Ipv4Addr = Ipv4Addr::new(10, 1, 2, 3);
    let dates: Vec<Date> = Date::from_ymd(2022, 1, 1)
        .to(Date::from_ymd(2022, 5, 25))
        .collect();
    let mut g = c.benchmark_group("ablation_geo_cadence");
    g.bench_function("daily_snapshots", |b| {
        b.iter(|| {
            let mut ru = 0;
            for d in &dates {
                if daily.lookup(*d, probe) == Some(Country::RU) {
                    ru += 1;
                }
            }
            black_box(ru)
        })
    });
    g.bench_function("monthly_snapshots", |b| {
        b.iter(|| {
            let mut ru = 0;
            for d in &dates {
                if monthly.lookup(*d, probe) == Some(Country::RU) {
                    ru += 1;
                }
            }
            black_box(ru)
        })
    });
    g.finish();
}

fn bench_resolver_cache(c: &mut Criterion) {
    let mut world = World::new(WorldConfig::tiny());
    world.publish_tld_zones();
    let seeds = world.seed_names();
    let batch: Vec<Name> = seeds.iter().take(50).map(Name::from).collect();
    let mut g = c.benchmark_group("ablation_resolver_cache");
    g.sample_size(10);
    g.bench_function("batch50_cache_cleared_each_domain", |b| {
        let mut resolver = IterativeResolver::new(world.scanner_ip(), world.root_hints());
        b.iter(|| {
            for name in &batch {
                resolver.clear_cache();
                let _ = black_box(resolver.resolve(world.network_mut(), name, RType::A));
            }
        })
    });
    g.bench_function("batch50_cache_shared_across_batch", |b| {
        let mut resolver = IterativeResolver::new(world.scanner_ip(), world.root_hints());
        b.iter(|| {
            resolver.clear_cache();
            for name in &batch {
                let _ = black_box(resolver.resolve(world.network_mut(), name, RType::A));
            }
        })
    });
    g.finish();
}

fn bench_sanctioned_filter(c: &mut Criterion) {
    // Figure 5's dated-sanctions filter vs a static set: the dated filter
    // re-evaluates listing dates per record.
    let r = fixture();
    let frame = r.final_sweep().unwrap();
    let static_set: Vec<ruwhere_types::DomainName> =
        r.sanctions.iter().map(|(d, _, _)| d.clone()).collect();
    let mut g = c.benchmark_group("ablation_sanctions_filter");
    g.bench_function("dated_filter", |b| {
        b.iter(|| {
            let mut s = ruwhere_core::composition::CompositionSeries::sanctioned(
                ruwhere_core::composition::InfraKind::NameServers,
                r.sanctions.clone(),
            );
            let mut engine = ruwhere_core::AnalysisEngine::new();
            engine.observe_frame(black_box(frame), &r.interner, &mut [&mut s]);
            black_box(s)
        })
    });
    g.bench_function("static_filter", |b| {
        b.iter(|| {
            let mut s = ruwhere_core::composition::CompositionSeries::filtered(
                ruwhere_core::composition::InfraKind::NameServers,
                static_set.clone(),
            );
            let mut engine = ruwhere_core::AnalysisEngine::new();
            engine.observe_frame(black_box(frame), &r.interner, &mut [&mut s]);
            black_box(s)
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_match_rule,
    bench_geo_cadence,
    bench_resolver_cache,
    bench_sanctioned_filter
);
criterion_main!(benches);
