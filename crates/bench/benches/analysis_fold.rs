//! The analysis-fold ablation behind the columnar-store refactor: one
//! single-pass [`AnalysisEngine`] walk feeding all eight study series vs
//! the pre-engine shape where each series independently folds the
//! row-form sweep (eight full walks over the same records).
//!
//! Both sides build their series fresh inside the timed closure, so the
//! comparison isolates the fold itself: one walk with eight hook
//! dispatches per record vs eight walks with one classification each.

use criterion::{criterion_group, criterion_main, Criterion};
use ruwhere_bench::fixture;
use ruwhere_core::{
    composition::{CompositionSeries, InfraKind},
    AnalysisEngine, AsnShareSeries, DatasetStats, TldDependencySeries, TldUsageSeries,
    TransitionFlows,
};
use std::hint::black_box;

fn bench_analysis_fold(c: &mut Criterion) {
    let r = fixture();
    let frame = r.final_sweep().expect("fixture retains its final sweep");
    let daily = frame.to_daily_sweep(&r.interner);
    let series = || {
        (
            CompositionSeries::new(InfraKind::NameServers),
            CompositionSeries::new(InfraKind::Hosting),
            CompositionSeries::sanctioned(InfraKind::NameServers, r.sanctions.clone()),
            TldDependencySeries::new(),
            TldUsageSeries::new(),
            AsnShareSeries::new(),
            DatasetStats::new(),
            TransitionFlows::new(InfraKind::NameServers),
        )
    };

    let mut g = c.benchmark_group("analysis_fold");
    g.bench_function("single_pass_engine", |b| {
        b.iter(|| {
            let (mut c1, mut c2, mut c3, mut td, mut tu, mut asn, mut ds, mut tf) = series();
            let mut engine = AnalysisEngine::new();
            engine.observe_frame(
                black_box(frame),
                &r.interner,
                &mut [
                    &mut c1, &mut c2, &mut c3, &mut td, &mut tu, &mut asn, &mut ds, &mut tf,
                ],
            );
            black_box(engine.record_visits())
        })
    });
    g.bench_function("eight_pass_row_fold", |b| {
        b.iter(|| {
            let (mut c1, mut c2, mut c3, mut td, mut tu, mut asn, mut ds, mut tf) = series();
            let sweep = black_box(&daily);
            c1.observe(sweep);
            c2.observe(sweep);
            c3.observe(sweep);
            td.observe(sweep);
            tu.observe(sweep);
            asn.observe(sweep);
            ds.observe(sweep);
            tf.observe(sweep);
            black_box(8 * sweep.domains.len())
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_analysis_fold
);
criterion_main!(benches);
