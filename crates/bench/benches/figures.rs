//! One Criterion bench per paper figure and table: each measures the
//! analysis code that regenerates that artifact from measurement data.
//! (The `repro` binary produces the artifacts themselves; these benches
//! time the pipelines.)

use criterion::{criterion_group, criterion_main, Criterion};
use ruwhere_bench::fixture;
use ruwhere_core::composition::{CompositionSeries, InfraKind};
use ruwhere_core::figures;
use ruwhere_core::movement::MovementReport;
use ruwhere_core::revocation::RevocationAnalysis;
use ruwhere_core::russian_ca::RussianCaAnalysis;
use ruwhere_core::tld_dependency::{TldDependencySeries, TldUsageSeries};
use ruwhere_core::{AnalysisEngine, AsnShareSeries, CaIssuanceAnalysis, FrameObserver};
use ruwhere_types::{Asn, Date, CERT_WINDOW_END};
use std::hint::black_box;

/// Run one observer over the fixture's retained final frame via the
/// single-pass engine — the path `run_study` actually takes.
fn fold_final_frame<O: FrameObserver>(r: &ruwhere_core::StudyResults, obs: &mut O) {
    let frame = r.final_sweep().expect("fixture retains final sweep");
    let mut engine = AnalysisEngine::new();
    engine.observe_frame(black_box(frame), &r.interner, &mut [obs]);
}

fn bench_fig1(c: &mut Criterion) {
    let r = fixture();
    c.bench_function("fig1_ns_composition_observe", |b| {
        b.iter(|| {
            let mut s = CompositionSeries::new(InfraKind::NameServers);
            fold_final_frame(r, &mut s);
            black_box(s)
        })
    });
    c.bench_function("fig1_render", |b| {
        b.iter(|| black_box(figures::fig1_series(r).render()))
    });
}

fn bench_fig2_fig3(c: &mut Criterion) {
    let r = fixture();
    c.bench_function("fig2_tld_dependency_observe", |b| {
        b.iter(|| {
            let mut s = TldDependencySeries::new();
            fold_final_frame(r, &mut s);
            black_box(s)
        })
    });
    c.bench_function("fig3_tld_usage_observe", |b| {
        b.iter(|| {
            let mut s = TldUsageSeries::new();
            fold_final_frame(r, &mut s);
            black_box(s)
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    let r = fixture();
    c.bench_function("fig4_asn_share_observe", |b| {
        b.iter(|| {
            let mut s = AsnShareSeries::new();
            fold_final_frame(r, &mut s);
            black_box(s)
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let r = fixture();
    c.bench_function("fig5_sanctioned_composition_observe", |b| {
        b.iter(|| {
            let mut s = CompositionSeries::sanctioned(InfraKind::NameServers, r.sanctions.clone());
            fold_final_frame(r, &mut s);
            black_box(s)
        })
    });
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let r = fixture();
    let a = r.sweep_at(Date::from_ymd(2022, 3, 8)).expect("retained");
    let b_frame = r.final_sweep().unwrap();
    c.bench_function("fig6_amazon_movement", |b| {
        b.iter(|| {
            black_box(MovementReport::analyze_frames(
                black_box(a),
                black_box(b_frame),
                Asn::AMAZON,
                &r.interner,
            ))
        })
    });
    c.bench_function("fig7_sedo_movement", |b| {
        b.iter(|| {
            black_box(MovementReport::analyze_frames(
                black_box(a),
                black_box(b_frame),
                Asn::SEDO,
                &r.interner,
            ))
        })
    });
}

fn bench_fig8_tab1(c: &mut Criterion) {
    let r = fixture();
    c.bench_function("fig8_issuance_timeline", |b| {
        b.iter(|| {
            let a = CaIssuanceAnalysis::new(black_box(&r.certs));
            black_box(a.timeline(10))
        })
    });
    c.bench_function("tab1_period_table", |b| {
        b.iter(|| {
            let a = CaIssuanceAnalysis::new(black_box(&r.certs));
            black_box(a.period_table(3))
        })
    });
}

fn bench_tab2(c: &mut Criterion) {
    let r = fixture();
    // Rebuild OCSP state is not possible from results; measure the join
    // using the analysis that ran — reconstruct from the dataset against an
    // empty responder to time the dominant (scan+join) path.
    let ocsp = ruwhere_ct::OcspResponder::new();
    c.bench_function("tab2_revocation_join", |b| {
        b.iter(|| {
            black_box(RevocationAnalysis::new(
                black_box(&r.certs),
                black_box(&ocsp),
                black_box(&r.sanctions),
                CERT_WINDOW_END,
            ))
        })
    });
}

fn bench_russian_ca(c: &mut Criterion) {
    let r = fixture();
    let scan = r.ip_scans.last().expect("fixture ran IP scans");
    c.bench_function("sec4_3_russian_ca_analysis", |b| {
        b.iter(|| {
            black_box(RussianCaAnalysis::new(
                black_box(scan),
                black_box(&r.certs),
                black_box(&r.sanctions),
                CERT_WINDOW_END,
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig1,
    bench_fig2_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6_fig7,
    bench_fig8_tab1,
    bench_tab2,
    bench_russian_ca
);
criterion_main!(benches);
