//! Sweep-engine throughput: one full daily sweep of the tiny world at
//! 1 / available-parallelism workers. The engine's determinism contract
//! makes the two produce byte-identical output, so this measures the
//! sharding overhead and speedup in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use ruwhere_scan::{available_workers, OpenIntelScanner, SweepOptions};
use ruwhere_world::{World, WorldConfig};
use std::hint::black_box;

fn bench_sweep_workers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    for workers in [1, available_workers()] {
        // Instrumented vs uninstrumented: the pair of series is the
        // observability overhead measurement (EXPERIMENTS.md).
        for (label, collect) in [("", true), ("_nometrics", false)] {
            g.bench_function(&format!("daily_sweep_{workers}w{label}"), |b| {
                b.iter(|| {
                    let mut world = World::new(WorldConfig::tiny());
                    let mut scanner = OpenIntelScanner::with_options(
                        &world,
                        SweepOptions::new()
                            .workers(workers)
                            .collect_metrics(collect),
                    );
                    black_box(scanner.sweep(&mut world))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sweep_workers);
criterion_main!(benches);
