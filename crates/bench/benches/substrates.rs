//! Microbenchmarks for the substrate systems: DNS wire format, LPM
//! routing, geolocation lookup, SHA-256 / Merkle proofs, and full
//! iterative resolution through the simulated network.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ruwhere_authdns::IterativeResolver;
use ruwhere_ct::ctlog::{verify_consistency, verify_inclusion};
use ruwhere_ct::{sha256, CtLog};
use ruwhere_dns::{Message, Name, RData, RType, Rcode, Record};
use ruwhere_geo::GeoDbBuilder;
use ruwhere_netsim::{Ipv4Net, RoutingTable};
use ruwhere_scan::OpenIntelScanner;
use ruwhere_types::{Country, Date};
use ruwhere_world::{World, WorldConfig};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn bench_dns_wire(c: &mut Criterion) {
    let q = Message::query(7, "www.example.ru".parse().unwrap(), RType::A);
    let mut resp = Message::response_to(&q, Rcode::NoError);
    for i in 0..4 {
        resp.answers.push(Record::new(
            "www.example.ru".parse().unwrap(),
            300,
            RData::Ns(format!("ns{i}.hosting-provider.ru").parse().unwrap()),
        ));
    }
    let encoded = resp.encode().unwrap();

    let mut g = c.benchmark_group("dns_wire");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_response", |b| {
        b.iter(|| black_box(black_box(&resp).encode().unwrap()))
    });
    g.bench_function("decode_response", |b| {
        b.iter(|| black_box(Message::decode(black_box(&encoded)).unwrap()))
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut table = RoutingTable::new();
    for i in 0..10_000u32 {
        let addr = Ipv4Addr::from(rng.random::<u32>());
        let len = rng.random_range(8..=24);
        table.insert(Ipv4Net::new(addr, len).unwrap(), i);
    }
    let probes: Vec<Ipv4Addr> = (0..1024)
        .map(|_| Ipv4Addr::from(rng.random::<u32>()))
        .collect();
    let mut g = c.benchmark_group("routing");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("lpm_lookup_10k_prefixes", |b| {
        b.iter(|| {
            let mut hits = 0;
            for p in &probes {
                if table.lookup(black_box(*p)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_geo(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut builder = GeoDbBuilder::new();
    for _ in 0..20_000 {
        let start = rng.random::<u32>() & !0xFFF;
        builder.assign(
            Ipv4Addr::from(start),
            Ipv4Addr::from(start | 0xFFF),
            if rng.random_bool(0.3) {
                Country::RU
            } else {
                Country::US
            },
        );
    }
    let db = builder.build();
    let probes: Vec<Ipv4Addr> = (0..1024)
        .map(|_| Ipv4Addr::from(rng.random::<u32>()))
        .collect();
    let mut g = c.benchmark_group("geo");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("lookup_20k_ranges", |b| {
        b.iter(|| {
            let mut ru = 0;
            for p in &probes {
                if db.lookup(black_box(*p)) == Some(Country::RU) {
                    ru += 1;
                }
            }
            black_box(ru)
        })
    });
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xA5u8; 16 * 1024];
    let mut g = c.benchmark_group("crypto");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_16k", |b| {
        b.iter(|| black_box(sha256(black_box(&data))))
    });
    g.finish();

    // Merkle proofs over a 4096-entry log.
    let mut log = CtLog::new("bench");
    let mut ca = ruwhere_ct::CertificateAuthority::new("Bench CA", Country::US, &["B1"], true, 90);
    for i in 0..4096u64 {
        let d: ruwhere_types::DomainName = format!("bench-{i}.ru").parse().unwrap();
        let cert = ca
            .issue(&d, vec![], 0, Date::from_ymd(2022, 1, 1), vec![])
            .unwrap();
        log.append(cert, Date::from_ymd(2022, 1, 1));
    }
    let root = log.root_at(4096).unwrap();
    let old_root = log.root_at(1000).unwrap();
    c.bench_function("ct_inclusion_proof_4096", |b| {
        b.iter(|| black_box(log.inclusion_proof(black_box(2048), 4096).unwrap()))
    });
    let proof = log.inclusion_proof(2048, 4096).unwrap();
    let leaf = log.leaf_at(2048).unwrap();
    c.bench_function("ct_verify_inclusion", |b| {
        b.iter(|| {
            assert!(verify_inclusion(
                black_box(&leaf),
                black_box(&proof),
                black_box(&root)
            ))
        })
    });
    let cproof = log.consistency_proof(1000, 4096).unwrap();
    c.bench_function("ct_verify_consistency", |b| {
        b.iter(|| {
            assert!(verify_consistency(
                black_box(&old_root),
                black_box(&root),
                black_box(&cproof)
            ))
        })
    });
}

fn bench_resolution(c: &mut Criterion) {
    // Full iterative resolution through the simulated Internet.
    let mut world = World::new(WorldConfig::tiny());
    world.publish_tld_zones();
    let seeds = world.seed_names();
    let mut resolver = IterativeResolver::new(world.scanner_ip(), world.root_hints());
    c.bench_function("iterative_resolve_cold", |b| {
        let mut i = 0usize;
        b.iter(|| {
            resolver.clear_cache();
            let name = ruwhere_dns::Name::from(&seeds[i % seeds.len()]);
            i += 1;
            black_box(resolver.resolve(world.network_mut(), &name, RType::A))
        })
    });
    c.bench_function("iterative_resolve_warm", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let name = Name::from(&seeds[i % seeds.len()]);
            i += 1;
            black_box(resolver.resolve(world.network_mut(), &name, RType::A))
        })
    });
}

fn bench_sweep(c: &mut Criterion) {
    // A complete OpenINTEL sweep of a ~500-domain world.
    let mut world = World::new(WorldConfig::tiny());
    let mut scanner = OpenIntelScanner::new(&world);
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.bench_function("openintel_daily_sweep_tiny", |b| {
        b.iter(|| black_box(scanner.sweep(&mut world)))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dns_wire,
    bench_routing,
    bench_geo,
    bench_crypto,
    bench_resolution,
    bench_sweep
);
criterion_main!(benches);
