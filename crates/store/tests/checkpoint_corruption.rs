//! Property tests for the durable checkpoint format: any truncation and
//! any single flipped bit must decode to a typed [`CheckpointError`] —
//! never a panic, never silently-wrong data.

use proptest::prelude::*;
use ruwhere_store::checkpoint::{
    decode_segment, encode_segment, CheckpointError, DayCheckpoint, InternerDelta, TableSizes,
};
use ruwhere_store::{
    Completeness, CountrySym, FrameBuilder, SweepFrame, SweepMetrics, SweepStats, Sym,
};
use ruwhere_types::{Asn, Country, Date, DomainName};
use std::net::Ipv4Addr;

fn d(s: &str) -> DomainName {
    s.parse().expect("test domain")
}

/// An arbitrary but structurally valid day checkpoint, drawn from small
/// pools so symbol sharing and empty records both occur.
fn arb_checkpoint() -> impl Strategy<Value = DayCheckpoint> {
    let rec = (
        0u32..40,
        proptest::collection::vec(40u32..60, 0..3),
        proptest::collection::vec((0u8..30, 0u32..4, 0u32..4), 0..3),
        proptest::collection::vec((0u8..30, 0u32..4, 0u32..4), 0..2),
    );
    (
        0u32..500,
        0u64..10_000_000_000,
        proptest::collection::vec((0u8..20, 0u8..4), 0..6),
        proptest::collection::vec(0u8..4, 0..3),
        proptest::collection::vec(rec, 0..8),
        any::<bool>(),
        0u64..1_000,
    )
        .prop_map(
            |(day_index, clock, names, countries, records, partial, stat_seed)| {
                let tlds = ["ru", "com", "su", "xn--p1ai"];
                let cs = [Country::RU, Country::US, Country::SE, Country::DE];
                let date = Date::from_ymd(2022, 1, 1).add_days(day_index as i32);
                let base = TableSizes {
                    names: 10,
                    tlds: 2,
                    countries: 1,
                };
                let delta_names: Vec<DomainName> = names
                    .iter()
                    .enumerate()
                    .map(|(i, (n, t))| d(&format!("d{n}x{i}.{}", tlds[*t as usize % 4])))
                    .collect();
                let delta_countries: Vec<Country> =
                    countries.iter().map(|&c| cs[c as usize % 4]).collect();
                let mut b = FrameBuilder::new(date);
                for (dom, nss, ns_addrs, apex_addrs) in &records {
                    b.begin_record(Sym(*dom));
                    for &s in nss {
                        b.push_ns_name(Sym(s));
                    }
                    for &(ip, c, a) in ns_addrs {
                        let country = if c == 0 {
                            CountrySym::NONE
                        } else {
                            CountrySym(c)
                        };
                        let asn = if a == 0 { None } else { Some(Asn(a)) };
                        b.push_ns_addr(Ipv4Addr::new(10, 1, 0, ip), country, asn);
                    }
                    for &(ip, c, a) in apex_addrs {
                        let country = if c == 0 {
                            CountrySym::NONE
                        } else {
                            CountrySym(c)
                        };
                        let asn = if a == 0 { None } else { Some(Asn(a)) };
                        b.push_apex_addr(Ipv4Addr::new(10, 2, 0, ip), country, asn);
                    }
                    b.end_record();
                }
                let frame: SweepFrame = b.finish(
                    SweepStats {
                        seeded: records.len() as u64,
                        queries: stat_seed * 7,
                        timeouts: stat_seed % 5,
                        shards_retried: stat_seed % 2,
                        completeness: if partial {
                            Completeness::Partial
                        } else {
                            Completeness::Full
                        },
                        ..SweepStats::default()
                    },
                    SweepMetrics::new(),
                );
                DayCheckpoint {
                    day_index,
                    date,
                    net_clock_us: clock,
                    interner: InternerDelta {
                        base,
                        post: TableSizes {
                            names: base.names + delta_names.len() as u32,
                            tlds: base.tlds + 1,
                            countries: base.countries + delta_countries.len() as u32,
                        },
                        names: delta_names,
                        countries: delta_countries,
                    },
                    frame,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode → decode is the identity, fingerprint included.
    #[test]
    fn segments_round_trip(ck in arb_checkpoint(), fp in any::<u64>()) {
        let bytes = encode_segment(&ck, fp);
        let (back, got_fp) = decode_segment(&bytes).expect("valid segment must decode");
        prop_assert_eq!(back, ck);
        prop_assert_eq!(got_fp, fp);
    }

    /// Truncation at EVERY byte offset yields a typed error; only the
    /// full length decodes. Exercises torn-write detection exhaustively
    /// per generated segment.
    #[test]
    fn truncation_at_every_offset_is_typed(ck in arb_checkpoint()) {
        let bytes = encode_segment(&ck, 42);
        for cut in 0..bytes.len() {
            match decode_segment(&bytes[..cut]) {
                Err(
                    CheckpointError::Truncated { .. }
                    | CheckpointError::BadMagic
                    | CheckpointError::BadChecksum { .. },
                ) => {}
                other => prop_assert!(false, "cut at {}: got {:?}", cut, other),
            }
        }
        prop_assert!(decode_segment(&bytes).is_ok());
    }

    /// Flipping any single bit anywhere in the segment is detected:
    /// decode returns a typed error (magic, length, body and checksum
    /// bytes are all covered by magic check + CRC32 + strict structural
    /// validation). It must never panic and never return Ok with
    /// different content.
    #[test]
    fn single_bit_corruption_is_detected(
        ck in arb_checkpoint(),
        pos_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let bytes = encode_segment(&ck, 42);
        let pos = pos_seed % bytes.len();
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << bit;
        match decode_segment(&bad) {
            Err(_) => {}
            Ok((back, fp)) => {
                // The only tolerable Ok is exact equality, which a real
                // bit flip precludes — so this must never happen.
                prop_assert!(
                    back == ck && fp == 42,
                    "flip at byte {} bit {} decoded to different content",
                    pos,
                    bit
                );
                prop_assert!(false, "flip at byte {} bit {} went undetected", pos, bit);
            }
        }
    }
}
