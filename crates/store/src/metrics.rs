//! Sweep-level observability: the deterministic metric section a daily
//! sweep carries next to its counters.
//!
//! [`SweepMetrics`] folds together the three instrumented layers of one
//! sweep — transport ([`NetObs`]: per-link delay/drop tables, fault-window
//! occupancy), resolution ([`ResolverObs`]: SRTT distribution, penalty-box
//! churn, cache hits) and the measurement pipeline itself (a
//! [`Recorder`] of per-cause failure latencies and salvage decisions).
//!
//! Everything here obeys the same contract as the sweep's counters: all
//! values are integers in virtual time, every field merges associatively
//! and commutatively, and JSON export is hand-rolled in sorted key order —
//! so the metrics of a merged sweep are **byte-identical for any worker
//! count**, and `repro --metrics` output can be compared with `cmp`.

use ruwhere_authdns::ResolverObs;
use ruwhere_netsim::NetObs;
use ruwhere_obs::{json, Recorder};
use serde::{Deserialize, Serialize};
use std::fmt::Write;

/// Pipeline-level metric keys (the fixed vocabulary of the `causes`
/// recorder). Cause histograms are keyed `"fail.<category>_us"` with the
/// categories of `ScanError::category` (in `ruwhere-scan`).
pub mod keys {
    /// Virtual µs of each successful per-domain measurement.
    pub const OK_US: &str = "ok_us";
    /// 1 iff the sweep was salvaged as partial.
    pub const SALVAGE_PARTIAL: &str = "salvage.partial";
    /// Records dropped by the salvage pass.
    pub const SALVAGE_DROPPED: &str = "salvage.records_dropped";
    /// NS-failure rate of the sweep, in parts-per-million (integer — the
    /// exported file carries no floats).
    pub const SALVAGE_NS_FAILURE_PPM: &str = "salvage.ns_failure_ppm";
    /// Shard workers that panicked and were re-run successfully.
    pub const SHARDS_RETRIED: &str = "salvage.shards_retried";
    /// Shard workers lost for good (panicked twice); their domains become
    /// `worker_lost` failure records.
    pub const SHARDS_LOST: &str = "salvage.shards_lost";
    /// Domains whose measurements were lost with a dead shard.
    pub const DOMAINS_LOST: &str = "salvage.domains_lost";
}

/// Map a failure category (from `ScanError::category` /
/// [`ResolveError`](ruwhere_authdns::ResolveError)) to its static
/// latency-histogram key. `Recorder` keys are `&'static str`, so the
/// vocabulary is enumerated here rather than formatted at runtime.
pub fn fail_key(category: &str) -> &'static str {
    match category {
        "timeouts" => "fail.timeouts_us",
        "servfails" => "fail.servfails_us",
        "lame" => "fail.lame_us",
        "refused" => "fail.refused_us",
        "budget_exhausted" => "fail.budget_exhausted_us",
        "no_nameservers" => "fail.no_nameservers_us",
        "unreachable" => "fail.unreachable_us",
        "bad_payload" => "fail.bad_payload_us",
        "not_found" => "fail.not_found_us",
        "worker_lost" => "fail.worker_lost_us",
        _ => "fail.other_us",
    }
}

/// One sweep's merged observability section.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepMetrics {
    /// Transport-level aggregates (per-link delays, drop causes,
    /// fault-window occupancy) folded over every measurement lane.
    pub net: NetObs,
    /// Resolver-level aggregates (SRTT, penalty-box churn, cache hits)
    /// folded over every per-domain fork.
    pub resolver: ResolverObs,
    /// Pipeline-level counters and per-cause latency histograms (see
    /// [`keys`] and [`fail_key`]).
    pub causes: Recorder,
}

impl SweepMetrics {
    /// A fresh empty section.
    pub fn new() -> SweepMetrics {
        SweepMetrics::default()
    }

    /// Whether nothing was recorded (metrics collection disabled).
    pub fn is_empty(&self) -> bool {
        self.net == NetObs::default()
            && self.resolver == ResolverObs::default()
            && self.causes.is_empty()
    }

    /// Fold another section in (commutative, associative — the worker
    /// fan-in merge).
    pub fn merge(&mut self, other: &SweepMetrics) {
        self.net.merge(&other.net);
        self.resolver.merge(&other.resolver);
        self.causes.merge(&other.causes);
    }

    /// Render the section as deterministic JSON (sorted keys, integers
    /// only) and append to `out`.
    pub fn push_json(&self, out: &mut String) {
        out.push_str("{\"net\":{");
        let _ = write!(
            out,
            "\"loss_drops\":{},\"fault_drops\":{},\"fault_blackholes\":{},\"fault_occupied_us\":{}",
            self.net.loss_drops,
            self.net.fault_drops,
            self.net.fault_blackholes,
            self.net.fault_occupied_us,
        );
        out.push_str(",\"delay_us\":");
        json::push_histogram(out, &self.net.delay_us);
        out.push_str(",\"request_us\":");
        json::push_histogram(out, &self.net.request_us);
        out.push_str(",\"links\":[");
        for (i, ((from, to), l)) in self.net.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from\":{},\"to\":{},\"delivered\":{},\"dropped\":{},\"delay_sum_us\":{}}}",
                from.0, to.0, l.delivered, l.dropped, l.delay_sum_us
            );
        }
        out.push_str("]},\"resolver\":{");
        let _ = write!(
            out,
            "\"penalty_entries\":{},\"penalty_exits\":{},\"answer_cache_hits\":{},\"deps_cache_hits\":{}",
            self.resolver.penalty_entries,
            self.resolver.penalty_exits,
            self.resolver.answer_cache_hits,
            self.resolver.deps_cache_hits,
        );
        out.push_str(",\"srtt_us\":");
        json::push_histogram(out, &self.resolver.srtt_us);
        out.push_str("},\"causes\":");
        json::push_recorder(out, &self.causes);
        out.push('}');
    }

    /// The section as a standalone JSON string.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        self.push_json(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_types::Asn;

    fn sample(seed: u64) -> SweepMetrics {
        let mut m = SweepMetrics::new();
        m.net.hop_delivered(Asn(1), Asn(2), 30_000 + seed);
        m.net.hop_dropped(Asn(2), Asn(1), seed.is_multiple_of(2));
        m.resolver.srtt_us.record(40_000 + seed);
        m.resolver.penalty_entries += seed;
        m.causes.record(fail_key("timeouts"), 250_000 + seed);
        m.causes.incr(keys::SALVAGE_DROPPED);
        m
    }

    #[test]
    fn merge_commutes_and_associates() {
        let (a, b, c) = (sample(1), sample(2), sample(5));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right = c.clone();
        right.merge(&b);
        right.merge(&a);
        assert_eq!(left, right);
        assert_eq!(left.render_json(), right.render_json());
    }

    #[test]
    fn json_is_deterministic_and_integer_only() {
        let m = sample(3);
        let j = m.render_json();
        assert_eq!(j, sample(3).render_json());
        assert!(j.starts_with("{\"net\":{\"loss_drops\":"));
        assert!(j.contains("\"causes\":{\"counters\":{"));
        assert!(!j.contains('.') || !j.contains("e-"), "no float formatting");
        // Spot-check link table renders both AS numbers.
        assert!(j.contains("\"from\":2,\"to\":1"));
    }

    #[test]
    fn empty_section_reports_empty() {
        assert!(SweepMetrics::new().is_empty());
        assert!(!sample(0).is_empty());
    }
}
