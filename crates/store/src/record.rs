//! Row-oriented sweep records: the human-facing view of one measurement
//! day.
//!
//! [`DailySweep`]/[`DomainDay`] are the original per-row representation;
//! the sweep engine now builds the columnar [`SweepFrame`](crate::frame)
//! natively and materialises rows on demand
//! ([`SweepFrame::to_daily_sweep`](crate::SweepFrame::to_daily_sweep)).
//! Both carry the same [`SweepStats`] counters and
//! [`SweepMetrics`](crate::SweepMetrics) section under the same contract:
//! byte-identical for any worker count.

use crate::metrics::SweepMetrics;
use ruwhere_types::{Asn, Country, Date, DomainName};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One resolved address with its measurement-time annotations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrInfo {
    /// The address.
    pub ip: Ipv4Addr,
    /// Country per the geolocation snapshot in force on the sweep date.
    pub country: Option<Country>,
    /// Origin AS per BGP-derived data.
    pub asn: Option<Asn>,
}

/// One domain's daily measurement record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainDay {
    /// The measured domain.
    pub domain: DomainName,
    /// NS RRset targets (name-server host names).
    pub ns_names: Vec<DomainName>,
    /// Resolved, annotated name-server addresses.
    pub ns_addrs: Vec<AddrInfo>,
    /// Resolved, annotated apex A records.
    pub apex_addrs: Vec<AddrInfo>,
}

impl DomainDay {
    /// Whether any name server resolved.
    pub fn has_ns_data(&self) -> bool {
        !self.ns_addrs.is_empty()
    }

    /// Whether the apex resolved.
    pub fn has_apex_data(&self) -> bool {
        !self.apex_addrs.is_empty()
    }
}

/// Whether a sweep's dataset is complete or was salvaged from a day of
/// heavy measurement failure (an infrastructure outage, Figure-1 style).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Completeness {
    /// The sweep resolved normally; failures are kept as unknown-bucket
    /// records.
    #[default]
    Full,
    /// The day's failure rate exceeded the salvage threshold: unresolved
    /// records were dropped, leaving only what actually measured. The raw
    /// daily total visibly dips — exactly how the real dataset records an
    /// outage day.
    Partial,
}

/// Aggregate counters for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Domains seeded from the zone snapshots.
    pub seeded: u64,
    /// Domains with a fully failed NS resolution.
    pub ns_failures: u64,
    /// Domains with a failed apex resolution.
    pub apex_failures: u64,
    /// Total DNS queries emitted.
    pub queries: u64,
    /// Virtual (simulated) time the sweep took, in microseconds, summed
    /// over every measurement lane — the latency cost of active
    /// measurement at this scale (cf. the OpenINTEL infrastructure
    /// paper's throughput engineering).
    pub virtual_elapsed_us: u64,
    /// Queries that timed out (per-cause failure accounting).
    pub timeouts: u64,
    /// Queries answered SERVFAIL.
    pub servfails: u64,
    /// Queries answered lamely.
    pub lame: u64,
    /// Failed exchanges charged to resolver retry budgets — the wasted
    /// query cost of server misbehaviour during this sweep.
    pub retries_spent: u64,
    /// NS-target address lookups served from the shared sweep cache.
    pub ns_cache_hits: u64,
    /// NS-target address lookups that had to resolve (one per distinct
    /// name-server host per sweep).
    pub ns_cache_misses: u64,
    /// Shard workers that panicked and were successfully re-run by the
    /// supervisor (the sweep recovered; output may differ from a clean
    /// run only in cache-cost accounting).
    pub shards_retried: u64,
    /// Shard workers lost for good — panicked twice. Their domains
    /// degrade into per-cause failure records (`worker_lost`) and flow
    /// into the partial-sweep salvage path.
    pub shards_lost: u64,
    /// Whether the sweep is full or a salvaged partial.
    pub completeness: Completeness,
}

/// One day's complete measurement output, row form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DailySweep {
    /// Sweep date.
    pub date: Date,
    /// Per-domain records (zone-snapshot order).
    pub domains: Vec<DomainDay>,
    /// Counters.
    pub stats: SweepStats,
    /// The sweep's observability section: per-cause latency histograms,
    /// transport and resolver aggregates. Empty when the scanner ran with
    /// `SweepOptions::collect_metrics(false)`; byte-identical for any
    /// worker count otherwise (same contract as `stats`).
    pub metrics: SweepMetrics,
}

impl DailySweep {
    /// Whether this sweep was salvaged as partial (outage day).
    pub fn is_partial(&self) -> bool {
        self.stats.completeness == Completeness::Partial
    }
}
