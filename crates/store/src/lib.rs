//! The measurement data plane shared by the sweep engine and every
//! analysis.
//!
//! A five-year daily study is a fold over one record stream, but folding
//! is only cheap if the stream is normalized once. This crate owns that
//! normalization:
//!
//! - [`Interner`] assigns stable `u32` symbols ([`Sym`], [`TldSym`],
//!   [`CountrySym`]) to domain names, name-server host names, TLDs and
//!   countries. Assignment order is deterministic (zone-snapshot order for
//!   seeds, merged-record order for everything discovered during a sweep),
//!   so symbol tables are **byte-identical for any worker count** — the
//!   same contract the sweep engine's counters obey.
//! - [`SweepFrame`] is the columnar (struct-of-arrays) form of one daily
//!   sweep: symbol columns plus offset-delimited address ranges, built
//!   natively by the sweep engine and walked once per sweep by the
//!   analysis engine.
//! - [`DailySweep`]/[`DomainDay`] remain as the row-oriented view for
//!   compatibility and human-facing code; [`SweepFrame::to_daily_sweep`] /
//!   [`SweepFrame::from_daily_sweep`] convert losslessly.
//! - [`SweepMetrics`] is the sweep's observability section (unchanged
//!   semantics; it lives here because both representations carry it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod frame;
pub mod metrics;
pub mod record;
pub mod sym;

pub use checkpoint::{
    decode_segment, encode_segment, CheckpointDir, CheckpointError, DayCheckpoint, InternerDelta,
    LoadOutcome, QuarantinedSegment, TableSizes,
};
pub use frame::{AddrColumns, AddrsView, FrameBuilder, RecordView, SweepFrame};
pub use metrics::{fail_key, keys, SweepMetrics};
pub use record::{AddrInfo, Completeness, DailySweep, DomainDay, SweepStats};
pub use sym::{CountrySym, Interner, InternerSnap, Sym, SymSet, TldSym};
