//! Deterministic symbol interning.
//!
//! Every table in the study — composition counts, TLD shares, movement
//! maps — used to key on owned [`DomainName`] / [`Country`] values,
//! re-hashing the same strings once per analysis per record. The interner
//! collapses each distinct value to a dense `u32` symbol assigned exactly
//! once, so analyses compare and index integers.
//!
//! # Determinism rules
//!
//! Symbol numbering is part of the sweep engine's byte-identity contract
//! (DESIGN.md §10). Two rules keep it independent of the worker count:
//!
//! 1. **Seeds first, in zone-snapshot order.** The scanner interns the
//!    day's full seed list *serially, before any worker starts*, so domain
//!    symbols are a pure function of the zone snapshot — salvage drops and
//!    shard boundaries cannot reorder them.
//! 2. **Discovered names in merged-record order.** NS host names (and
//!    countries) first seen during a sweep are interned in the
//!    *post-merge* frame-build pass, which walks records in zone-snapshot
//!    order — never from inside a worker.
//!
//! Workers therefore only ever *read* the interner; [`Interner::dump`]
//! exists so tests can compare entire symbol tables byte-for-byte across
//! worker counts.

use parking_lot::RwLock;
use ruwhere_types::{Country, DomainName};
use std::collections::HashMap;
use std::fmt::Write;

/// Symbol for an interned name (seed domain or name-server host — one
/// shared namespace, since NS hosts are domains too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The symbol as a dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Symbol for an interned TLD string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TldSym(pub u32);

impl TldSym {
    /// The symbol as a dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Symbol for an interned country, with a reserved sentinel for "no
/// geolocation answer" so address columns stay dense `u32`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountrySym(pub u32);

impl CountrySym {
    /// The "no country" sentinel ([`Interner::intern_country`] of `None`).
    pub const NONE: CountrySym = CountrySym(u32::MAX);

    /// Whether this is the no-country sentinel.
    pub const fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

#[derive(Debug, Default)]
struct Inner {
    names: Vec<DomainName>,
    name_ids: HashMap<DomainName, u32>,
    /// TLD of each interned name, parallel to `names`.
    name_tlds: Vec<TldSym>,
    tlds: Vec<String>,
    tld_ids: HashMap<String, u32>,
    /// Whether each TLD is a Russian ccTLD (`ru` / `xn--p1ai`), parallel
    /// to `tlds` — precomputed so per-record classification is a bit load.
    tld_russian: Vec<bool>,
    countries: Vec<Country>,
    country_ids: HashMap<Country, u32>,
}

impl Inner {
    fn intern_name(&mut self, name: &DomainName) -> Sym {
        if let Some(&id) = self.name_ids.get(name) {
            return Sym(id);
        }
        let tld = self.intern_tld(name.tld());
        let id = self.names.len() as u32;
        self.names.push(name.clone());
        self.name_tlds.push(tld);
        self.name_ids.insert(name.clone(), id);
        Sym(id)
    }

    fn intern_tld(&mut self, tld: &str) -> TldSym {
        if let Some(&id) = self.tld_ids.get(tld) {
            return TldSym(id);
        }
        let id = self.tlds.len() as u32;
        self.tlds.push(tld.to_owned());
        self.tld_russian.push(tld == "ru" || tld == "xn--p1ai");
        self.tld_ids.insert(tld.to_owned(), id);
        TldSym(id)
    }

    fn intern_country(&mut self, country: Option<Country>) -> CountrySym {
        let Some(c) = country else {
            return CountrySym::NONE;
        };
        if let Some(&id) = self.country_ids.get(&c) {
            return CountrySym(id);
        }
        let id = self.countries.len() as u32;
        self.countries.push(c);
        self.country_ids.insert(c, id);
        CountrySym(id)
    }
}

/// The symbol table. One instance spans a whole study: symbols are
/// append-only and never re-numbered, so a symbol interned on day one
/// still names the same value on day five hundred.
///
/// Interning takes a write lock; reads go through a cheap [`snapshot`]
/// guard. Workers share the interner read-only (see the module docs for
/// the determinism rules).
///
/// [`snapshot`]: Interner::snapshot
#[derive(Debug, Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

impl Interner {
    /// An empty symbol table.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern a name (seed domain or NS host), returning its stable
    /// symbol. Idempotent; also interns the name's TLD.
    pub fn intern_name(&self, name: &DomainName) -> Sym {
        self.inner.write().intern_name(name)
    }

    /// Look a name up without interning (`None` if never interned).
    pub fn name_sym(&self, name: &DomainName) -> Option<Sym> {
        self.inner.read().name_ids.get(name).copied().map(Sym)
    }

    /// The name behind a symbol (an `Arc` bump, not a string copy).
    ///
    /// # Panics
    /// If the symbol was not produced by this interner.
    pub fn name(&self, sym: Sym) -> DomainName {
        self.inner.read().names[sym.index()].clone()
    }

    /// Intern a geolocation answer; `None` maps to [`CountrySym::NONE`].
    pub fn intern_country(&self, country: Option<Country>) -> CountrySym {
        self.inner.write().intern_country(country)
    }

    /// The country behind a symbol (`None` for the sentinel).
    pub fn country(&self, sym: CountrySym) -> Option<Country> {
        if sym.is_none() {
            return None;
        }
        Some(self.inner.read().countries[sym.0 as usize])
    }

    /// Number of interned names.
    pub fn names_len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// Number of interned TLDs.
    pub fn tlds_len(&self) -> usize {
        self.inner.read().tlds.len()
    }

    /// Number of interned countries (sentinel excluded).
    pub fn countries_len(&self) -> usize {
        self.inner.read().countries.len()
    }

    /// The interned names from table index `start` on, in symbol order —
    /// the name half of a checkpoint delta (`Arc` bumps, not copies).
    pub fn names_from(&self, start: usize) -> Vec<DomainName> {
        self.inner.read().names[start..].to_vec()
    }

    /// The interned countries from table index `start` on, in symbol
    /// order — the country half of a checkpoint delta.
    pub fn countries_from(&self, start: usize) -> Vec<Country> {
        self.inner.read().countries[start..].to_vec()
    }

    /// A read guard with borrowing accessors — take one per frame walk
    /// instead of re-locking per record.
    pub fn snapshot(&self) -> InternerSnap<'_> {
        InternerSnap {
            inner: self.inner.read(),
        }
    }

    /// Canonical text listing of every symbol table, one entry per line in
    /// symbol order. Two interners fed the same sequence produce identical
    /// dumps — the byte-identity oracle the determinism tests compare.
    pub fn dump(&self) -> String {
        let inner = self.inner.read();
        let mut out = String::new();
        out.push_str("names:\n");
        for (i, n) in inner.names.iter().enumerate() {
            let _ = writeln!(out, "{i} {n} tld={}", inner.name_tlds[i].0);
        }
        out.push_str("tlds:\n");
        for (i, t) in inner.tlds.iter().enumerate() {
            let ru = if inner.tld_russian[i] {
                " ru-cctld"
            } else {
                ""
            };
            let _ = writeln!(out, "{i} {t}{ru}");
        }
        out.push_str("countries:\n");
        for (i, c) in inner.countries.iter().enumerate() {
            let _ = writeln!(out, "{i} {}", c.code());
        }
        out
    }
}

impl Clone for Interner {
    fn clone(&self) -> Interner {
        let src = self.inner.read();
        Interner {
            inner: RwLock::new(Inner {
                names: src.names.clone(),
                name_ids: src.name_ids.clone(),
                name_tlds: src.name_tlds.clone(),
                tlds: src.tlds.clone(),
                tld_ids: src.tld_ids.clone(),
                tld_russian: src.tld_russian.clone(),
                countries: src.countries.clone(),
                country_ids: src.country_ids.clone(),
            }),
        }
    }
}

/// A read snapshot of the symbol tables: borrow-returning accessors over
/// one lock acquisition. All lookups panic on symbols the interner never
/// produced (a cross-interner mixup is a logic error, not data).
pub struct InternerSnap<'a> {
    inner: std::sync::RwLockReadGuard<'a, Inner>,
}

impl InternerSnap<'_> {
    /// The name behind a symbol.
    pub fn name(&self, sym: Sym) -> &DomainName {
        &self.inner.names[sym.index()]
    }

    /// Look a name up without interning (`None` if never interned).
    pub fn name_sym(&self, name: &DomainName) -> Option<Sym> {
        self.inner.name_ids.get(name).copied().map(Sym)
    }

    /// The TLD symbol of an interned name.
    pub fn tld_of(&self, sym: Sym) -> TldSym {
        self.inner.name_tlds[sym.index()]
    }

    /// The TLD string behind a TLD symbol.
    pub fn tld(&self, sym: TldSym) -> &str {
        &self.inner.tlds[sym.index()]
    }

    /// Whether the TLD is a Russian ccTLD (`ru` / `xn--p1ai`).
    pub fn tld_is_russian(&self, sym: TldSym) -> bool {
        self.inner.tld_russian[sym.index()]
    }

    /// The country behind a symbol (`None` for the sentinel).
    pub fn country(&self, sym: CountrySym) -> Option<Country> {
        if sym.is_none() {
            return None;
        }
        Some(self.inner.countries[sym.0 as usize])
    }

    /// Whether the symbol names Russia (the sentinel is not Russia).
    pub fn country_is_russia(&self, sym: CountrySym) -> bool {
        self.country(sym).is_some_and(|c| c.is_russia())
    }

    /// Number of interned names.
    pub fn names_len(&self) -> usize {
        self.inner.names.len()
    }
}

/// A dense bitset over [`Sym`]s — the O(1)-membership companion to the
/// interner for per-frame scratch state (seen-sets, filters).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymSet {
    bits: Vec<u64>,
    len: usize,
}

impl SymSet {
    /// An empty set.
    pub fn new() -> SymSet {
        SymSet::default()
    }

    /// Insert a symbol; returns `true` if it was newly inserted.
    pub fn insert(&mut self, sym: Sym) -> bool {
        let (word, bit) = (sym.index() / 64, sym.index() % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.len += 1;
        true
    }

    /// Whether the symbol is in the set.
    pub fn contains(&self, sym: Sym) -> bool {
        let (word, bit) = (sym.index() / 64, sym.index() % 64);
        self.bits.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Number of symbols in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every symbol (capacity retained).
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().expect("test domain")
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let i = Interner::new();
        let a = i.intern_name(&d("alpha.ru"));
        let b = i.intern_name(&d("beta.com"));
        assert_eq!(a, Sym(0));
        assert_eq!(b, Sym(1));
        assert_eq!(i.intern_name(&d("alpha.ru")), a);
        assert_eq!(i.names_len(), 2);
        assert_eq!(i.name(a), d("alpha.ru"));
        assert_eq!(i.name_sym(&d("beta.com")), Some(b));
        assert_eq!(i.name_sym(&d("gamma.su")), None);
    }

    #[test]
    fn tlds_are_shared_and_classified() {
        let i = Interner::new();
        let a = i.intern_name(&d("alpha.ru"));
        let b = i.intern_name(&d("beta.ru"));
        let c = i.intern_name(&d("gamma.xn--p1ai"));
        let e = i.intern_name(&d("delta.com"));
        let snap = i.snapshot();
        assert_eq!(snap.tld_of(a), snap.tld_of(b));
        assert!(snap.tld_is_russian(snap.tld_of(a)));
        assert!(snap.tld_is_russian(snap.tld_of(c)));
        assert!(!snap.tld_is_russian(snap.tld_of(e)));
        assert_eq!(snap.tld(snap.tld_of(e)), "com");
    }

    #[test]
    fn countries_round_trip_with_sentinel() {
        let i = Interner::new();
        let ru = i.intern_country(Some(Country::RU));
        let none = i.intern_country(None);
        assert_eq!(none, CountrySym::NONE);
        assert_eq!(i.country(ru), Some(Country::RU));
        assert_eq!(i.country(none), None);
        let snap = i.snapshot();
        assert!(snap.country_is_russia(ru));
        assert!(!snap.country_is_russia(none));
    }

    #[test]
    fn dump_is_sequence_deterministic() {
        let build = || {
            let i = Interner::new();
            i.intern_name(&d("alpha.ru"));
            i.intern_name(&d("beta.com"));
            i.intern_country(Some(Country::SE));
            i.intern_country(None);
            i
        };
        assert_eq!(build().dump(), build().dump());
        // A different interleaving numbers differently — the dump sees it.
        let other = Interner::new();
        other.intern_name(&d("beta.com"));
        other.intern_name(&d("alpha.ru"));
        assert_ne!(build().dump(), other.dump());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Symbol assignment is a pure function of the interning
        /// SEQUENCE: replaying any sequence of name/country interns
        /// yields the same symbols, the same dense id space and a
        /// byte-identical dump — and every symbol resolves back to the
        /// value it was assigned for.
        #[test]
        fn symbols_are_a_pure_function_of_the_sequence(
            labels in proptest::collection::vec((0u8..12, 0u8..4), 1..40),
            // 6 is the "no country" sentinel (maps to `None` below).
            countries in proptest::collection::vec(0u8..7, 0..20),
        ) {
            let tlds = ["ru", "com", "net", "xn--p1ai"];
            let cs = [Country::RU, Country::US, Country::DE,
                      Country::SE, Country::NL, Country::FR];
            let names: Vec<DomainName> = labels
                .iter()
                .map(|(n, t)| d(&format!("d{n}.{}", tlds[*t as usize % 4])))
                .collect();
            let run = || {
                let i = Interner::new();
                let syms: Vec<Sym> =
                    names.iter().map(|n| i.intern_name(n)).collect();
                let csyms: Vec<CountrySym> = countries
                    .iter()
                    .map(|&c| i.intern_country(cs.get(c as usize).copied()))
                    .collect();
                (i, syms, csyms)
            };
            let (ia, sa, ca) = run();
            let (ib, sb, cb) = run();
            proptest::prop_assert_eq!(&sa, &sb);
            proptest::prop_assert_eq!(&ca, &cb);
            proptest::prop_assert_eq!(ia.dump(), ib.dump());
            // Dense: ids cover 0..names_len with no gaps.
            let mut seen: Vec<u32> = sa.iter().map(|s| s.0).collect();
            seen.sort_unstable();
            seen.dedup();
            proptest::prop_assert_eq!(seen.len(), ia.names_len());
            proptest::prop_assert_eq!(
                seen.last().map(|&m| m as usize + 1).unwrap_or(0),
                ia.names_len()
            );
            // Every symbol resolves back to its source value.
            for (name, sym) in names.iter().zip(&sa) {
                proptest::prop_assert_eq!(&ia.name(*sym), name);
            }
            for (&country, sym) in countries.iter().zip(&ca) {
                proptest::prop_assert_eq!(
                    ia.country(*sym),
                    cs.get(country as usize).copied()
                );
            }
        }
    }

    #[test]
    fn symset_inserts_and_grows() {
        let mut s = SymSet::new();
        assert!(s.insert(Sym(3)));
        assert!(!s.insert(Sym(3)));
        assert!(s.insert(Sym(200)));
        assert!(s.contains(Sym(3)));
        assert!(s.contains(Sym(200)));
        assert!(!s.contains(Sym(4)));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(Sym(3)));
    }
}
