//! The columnar sweep store: one day's measurement output as
//! struct-of-arrays over interned symbols.
//!
//! A [`SweepFrame`] holds the same information as a [`DailySweep`] but in
//! six flat columns: a domain-symbol column, an NS-name symbol column and
//! two [`AddrColumns`] (name-server and apex addresses), each delimited by
//! a `u32` offset column of length `records + 1`. Record `i` owns the
//! half-open range `offsets[i]..offsets[i+1]` of the data column.
//!
//! The layout buys two things:
//!
//! - **One allocation per column per sweep** instead of four `Vec`s and a
//!   handful of owned strings per record — retaining a frame for movement
//!   analysis costs a few flat buffers.
//! - **Symbol-level analysis**: every per-record hook sees `u32` symbols,
//!   so the eight study analyses compare integers and index dense arrays
//!   where they used to hash owned [`DomainName`]s.
//!
//! Frames are byte-identical for any worker count — the columns are
//! written by a single post-merge pass in zone-snapshot order, and symbol
//! assignment follows the rules in [`crate::sym`].

use crate::record::{AddrInfo, Completeness, DailySweep, DomainDay, SweepStats};
use crate::sym::{CountrySym, Interner, Sym};
use crate::SweepMetrics;
use ruwhere_types::{Asn, Date};
use std::net::Ipv4Addr;

/// A flat address table: three parallel columns, one entry per resolved
/// address. Ranges into it are delimited by a frame offset column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddrColumns {
    /// The addresses.
    pub ips: Vec<Ipv4Addr>,
    /// Geolocation per the sweep date's snapshot (sentinel for none).
    pub countries: Vec<CountrySym>,
    /// Origin AS per BGP-derived data.
    pub asns: Vec<Option<Asn>>,
}

impl AddrColumns {
    fn push(&mut self, ip: Ipv4Addr, country: CountrySym, asn: Option<Asn>) {
        self.ips.push(ip);
        self.countries.push(country);
        self.asns.push(asn);
    }

    fn len(&self) -> usize {
        self.ips.len()
    }
}

/// One day's complete measurement output, columnar form. See the module
/// docs for the layout; use [`SweepFrame::record`]/[`SweepFrame::records`]
/// for row-shaped access without materialising rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepFrame {
    /// Sweep date.
    pub date: Date,
    /// Domain symbol of each record (zone-snapshot order).
    pub domains: Vec<Sym>,
    /// NS-name range delimiters, length `records + 1`.
    pub ns_name_offsets: Vec<u32>,
    /// NS RRset target symbols, concatenated across records.
    pub ns_names: Vec<Sym>,
    /// NS-address range delimiters, length `records + 1`.
    pub ns_addr_offsets: Vec<u32>,
    /// Resolved, annotated name-server addresses.
    pub ns_addrs: AddrColumns,
    /// Apex-address range delimiters, length `records + 1`.
    pub apex_addr_offsets: Vec<u32>,
    /// Resolved, annotated apex A records.
    pub apex_addrs: AddrColumns,
    /// Counters (identical to the row view's).
    pub stats: SweepStats,
    /// Observability section (identical to the row view's).
    pub metrics: SweepMetrics,
}

impl SweepFrame {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the frame has no records.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Whether this sweep was salvaged as partial (outage day).
    pub fn is_partial(&self) -> bool {
        self.stats.completeness == Completeness::Partial
    }

    /// Row-shaped view of record `i` (no allocation).
    pub fn record(&self, idx: usize) -> RecordView<'_> {
        debug_assert!(idx < self.len());
        RecordView { frame: self, idx }
    }

    /// Iterate all records as views, in zone-snapshot order.
    pub fn records(&self) -> impl Iterator<Item = RecordView<'_>> {
        (0..self.len()).map(move |idx| self.record(idx))
    }

    /// Drop the observability payload (for long-term retention: movement
    /// analysis needs the columns, never the histograms).
    pub fn strip_metrics(mut self) -> SweepFrame {
        self.metrics = SweepMetrics::new();
        self
    }

    /// Materialise the row view. Symbols must come from `interner`.
    pub fn to_daily_sweep(&self, interner: &Interner) -> DailySweep {
        let snap = interner.snapshot();
        let domains = self
            .records()
            .map(|rec| {
                let addrs = |v: &AddrsView<'_>| -> Vec<AddrInfo> {
                    (0..v.len())
                        .map(|i| AddrInfo {
                            ip: v.ips()[i],
                            country: snap.country(v.countries()[i]),
                            asn: v.asns()[i],
                        })
                        .collect()
                };
                DomainDay {
                    domain: snap.name(rec.domain_sym()).clone(),
                    ns_names: rec
                        .ns_name_syms()
                        .iter()
                        .map(|&s| snap.name(s).clone())
                        .collect(),
                    ns_addrs: addrs(&rec.ns_addrs()),
                    apex_addrs: addrs(&rec.apex_addrs()),
                }
            })
            .collect();
        DailySweep {
            date: self.date,
            domains,
            stats: self.stats,
            metrics: self.metrics.clone(),
        }
    }

    /// Build the columnar form of a row sweep, interning every name and
    /// country in record order. The inverse of
    /// [`to_daily_sweep`](SweepFrame::to_daily_sweep).
    pub fn from_daily_sweep(sweep: &DailySweep, interner: &Interner) -> SweepFrame {
        let mut b = FrameBuilder::new(sweep.date);
        for rec in &sweep.domains {
            b.begin_record(interner.intern_name(&rec.domain));
            for ns in &rec.ns_names {
                b.push_ns_name(interner.intern_name(ns));
            }
            for a in &rec.ns_addrs {
                b.push_ns_addr(a.ip, interner.intern_country(a.country), a.asn);
            }
            for a in &rec.apex_addrs {
                b.push_apex_addr(a.ip, interner.intern_country(a.country), a.asn);
            }
            b.end_record();
        }
        b.finish(sweep.stats, sweep.metrics.clone())
    }
}

/// Incremental [`SweepFrame`] writer. Call
/// [`begin_record`](FrameBuilder::begin_record), push the record's NS
/// names and addresses, [`end_record`](FrameBuilder::end_record), repeat;
/// then [`finish`](FrameBuilder::finish). The caller drives records in
/// zone-snapshot order — the builder just appends.
#[derive(Debug)]
pub struct FrameBuilder {
    date: Date,
    domains: Vec<Sym>,
    ns_name_offsets: Vec<u32>,
    ns_names: Vec<Sym>,
    ns_addr_offsets: Vec<u32>,
    ns_addrs: AddrColumns,
    apex_addr_offsets: Vec<u32>,
    apex_addrs: AddrColumns,
}

impl FrameBuilder {
    /// An empty frame under construction for `date`.
    pub fn new(date: Date) -> FrameBuilder {
        FrameBuilder {
            date,
            domains: Vec::new(),
            ns_name_offsets: vec![0],
            ns_names: Vec::new(),
            ns_addr_offsets: vec![0],
            ns_addrs: AddrColumns::default(),
            apex_addr_offsets: vec![0],
            apex_addrs: AddrColumns::default(),
        }
    }

    /// Reserve column capacity for an expected record count.
    pub fn reserve(&mut self, records: usize) {
        self.domains.reserve(records);
        self.ns_name_offsets.reserve(records);
        self.ns_addr_offsets.reserve(records);
        self.apex_addr_offsets.reserve(records);
    }

    /// Start the next record.
    pub fn begin_record(&mut self, domain: Sym) {
        self.domains.push(domain);
    }

    /// Append an NS RRset target to the current record.
    pub fn push_ns_name(&mut self, ns: Sym) {
        self.ns_names.push(ns);
    }

    /// Append an annotated name-server address to the current record.
    pub fn push_ns_addr(&mut self, ip: Ipv4Addr, country: CountrySym, asn: Option<Asn>) {
        self.ns_addrs.push(ip, country, asn);
    }

    /// Append an annotated apex address to the current record.
    pub fn push_apex_addr(&mut self, ip: Ipv4Addr, country: CountrySym, asn: Option<Asn>) {
        self.apex_addrs.push(ip, country, asn);
    }

    /// Close the current record (writes its offset delimiters).
    pub fn end_record(&mut self) {
        self.ns_name_offsets.push(self.ns_names.len() as u32);
        self.ns_addr_offsets.push(self.ns_addrs.len() as u32);
        self.apex_addr_offsets.push(self.apex_addrs.len() as u32);
    }

    /// Seal the frame with its counters and metric section.
    pub fn finish(self, stats: SweepStats, metrics: SweepMetrics) -> SweepFrame {
        debug_assert_eq!(self.domains.len() + 1, self.ns_name_offsets.len());
        SweepFrame {
            date: self.date,
            domains: self.domains,
            ns_name_offsets: self.ns_name_offsets,
            ns_names: self.ns_names,
            ns_addr_offsets: self.ns_addr_offsets,
            ns_addrs: self.ns_addrs,
            apex_addr_offsets: self.apex_addr_offsets,
            apex_addrs: self.apex_addrs,
            stats,
            metrics,
        }
    }
}

/// Row-shaped, allocation-free view of one frame record.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    frame: &'a SweepFrame,
    idx: usize,
}

impl<'a> RecordView<'a> {
    /// The record's index within its frame.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// The measured domain's symbol.
    pub fn domain_sym(&self) -> Sym {
        self.frame.domains[self.idx]
    }

    /// NS RRset target symbols.
    pub fn ns_name_syms(&self) -> &'a [Sym] {
        let (s, e) = range(&self.frame.ns_name_offsets, self.idx);
        &self.frame.ns_names[s..e]
    }

    /// Resolved name-server addresses.
    pub fn ns_addrs(&self) -> AddrsView<'a> {
        let (start, end) = range(&self.frame.ns_addr_offsets, self.idx);
        AddrsView {
            cols: &self.frame.ns_addrs,
            start,
            end,
        }
    }

    /// Resolved apex A records.
    pub fn apex_addrs(&self) -> AddrsView<'a> {
        let (start, end) = range(&self.frame.apex_addr_offsets, self.idx);
        AddrsView {
            cols: &self.frame.apex_addrs,
            start,
            end,
        }
    }

    /// Whether any name server resolved (cf. [`DomainDay::has_ns_data`]).
    pub fn has_ns_data(&self) -> bool {
        !self.ns_addrs().is_empty()
    }

    /// Whether the apex resolved (cf. [`DomainDay::has_apex_data`]).
    pub fn has_apex_data(&self) -> bool {
        !self.apex_addrs().is_empty()
    }
}

fn range(offsets: &[u32], idx: usize) -> (usize, usize) {
    (offsets[idx] as usize, offsets[idx + 1] as usize)
}

/// One record's slice of an [`AddrColumns`] table.
#[derive(Debug, Clone, Copy)]
pub struct AddrsView<'a> {
    cols: &'a AddrColumns,
    start: usize,
    end: usize,
}

impl<'a> AddrsView<'a> {
    /// Number of addresses.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the record resolved no addresses.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The addresses.
    pub fn ips(&self) -> &'a [Ipv4Addr] {
        &self.cols.ips[self.start..self.end]
    }

    /// Country symbols, parallel to [`ips`](AddrsView::ips).
    pub fn countries(&self) -> &'a [CountrySym] {
        &self.cols.countries[self.start..self.end]
    }

    /// Origin ASes, parallel to [`ips`](AddrsView::ips).
    pub fn asns(&self) -> &'a [Option<Asn>] {
        &self.cols.asns[self.start..self.end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ruwhere_types::{Country, DomainName};

    fn d(s: &str) -> DomainName {
        s.parse().expect("test domain")
    }

    fn addr(last: u8, country: Option<Country>, asn: Option<u32>) -> AddrInfo {
        AddrInfo {
            ip: Ipv4Addr::new(10, 0, 0, last),
            country,
            asn: asn.map(Asn),
        }
    }

    fn sample_sweep() -> DailySweep {
        DailySweep {
            date: Date::from_ymd(2022, 3, 1),
            domains: vec![
                DomainDay {
                    domain: d("alpha.ru"),
                    ns_names: vec![d("ns1.host.com"), d("ns2.host.com")],
                    ns_addrs: vec![addr(1, Some(Country::RU), Some(1)), addr(2, None, None)],
                    apex_addrs: vec![addr(3, Some(Country::SE), Some(2))],
                },
                DomainDay {
                    domain: d("beta.ru"),
                    ns_names: vec![],
                    ns_addrs: vec![],
                    apex_addrs: vec![],
                },
                DomainDay {
                    domain: d("gamma.com"),
                    ns_names: vec![d("ns1.host.com")],
                    ns_addrs: vec![addr(1, Some(Country::RU), Some(1))],
                    apex_addrs: vec![],
                },
            ],
            stats: SweepStats {
                seeded: 3,
                queries: 17,
                ..SweepStats::default()
            },
            metrics: SweepMetrics::new(),
        }
    }

    #[test]
    fn round_trips_through_the_columnar_form() {
        let sweep = sample_sweep();
        let interner = Interner::new();
        let frame = SweepFrame::from_daily_sweep(&sweep, &interner);
        assert_eq!(frame.len(), 3);
        assert_eq!(frame.stats, sweep.stats);
        assert_eq!(frame.to_daily_sweep(&interner), sweep);
    }

    #[test]
    fn record_views_match_rows() {
        let sweep = sample_sweep();
        let interner = Interner::new();
        let frame = SweepFrame::from_daily_sweep(&sweep, &interner);
        let snap = interner.snapshot();
        for (rec, row) in frame.records().zip(&sweep.domains) {
            assert_eq!(snap.name(rec.domain_sym()), &row.domain);
            assert_eq!(rec.ns_name_syms().len(), row.ns_names.len());
            assert_eq!(rec.has_ns_data(), row.has_ns_data());
            assert_eq!(rec.has_apex_data(), row.has_apex_data());
            assert_eq!(rec.ns_addrs().ips().len(), row.ns_addrs.len());
            for (i, a) in row.apex_addrs.iter().enumerate() {
                let v = rec.apex_addrs();
                assert_eq!(v.ips()[i], a.ip);
                assert_eq!(snap.country(v.countries()[i]), a.country);
                assert_eq!(v.asns()[i], a.asn);
            }
        }
    }

    #[test]
    fn strip_metrics_keeps_columns() {
        let mut sweep = sample_sweep();
        sweep.metrics.resolver.srtt_us.record(1000);
        let interner = Interner::new();
        let frame = SweepFrame::from_daily_sweep(&sweep, &interner);
        let stripped = frame.clone().strip_metrics();
        assert!(stripped.metrics.is_empty());
        assert_eq!(stripped.domains, frame.domains);
        assert_eq!(stripped.stats, frame.stats);
    }

    /// One arbitrary record drawn from small pools (so symbol sharing
    /// actually happens across records).
    fn arb_record() -> impl Strategy<Value = DomainDay> {
        (
            0usize..12,
            proptest::collection::vec(0usize..6, 0..4),
            proptest::collection::vec((0u8..20, 0usize..4, 0usize..4), 0..4),
            proptest::collection::vec((0u8..20, 0usize..4, 0usize..4), 0..3),
        )
            .prop_map(|(dom, nss, ns_addrs, apex_addrs)| {
                let domains = ["a.ru", "b.ru", "c.com", "d.su", "e.xn--p1ai", "f.org"];
                let hosts = ["ns1.h.com", "ns2.h.com", "ns.ru"];
                let countries = [
                    None,
                    Some(Country::RU),
                    Some(Country::SE),
                    Some(Country::DE),
                ];
                let mk = |(ip, c, a): (u8, usize, usize)| AddrInfo {
                    ip: Ipv4Addr::new(10, 0, 0, ip),
                    country: countries[c % countries.len()],
                    asn: if a == 0 { None } else { Some(Asn(a as u32)) },
                };
                DomainDay {
                    domain: d(domains[dom % domains.len()]),
                    ns_names: nss.iter().map(|&i| d(hosts[i % hosts.len()])).collect(),
                    ns_addrs: ns_addrs.into_iter().map(mk).collect(),
                    apex_addrs: apex_addrs.into_iter().map(mk).collect(),
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn arbitrary_sweeps_round_trip(records in proptest::collection::vec(arb_record(), 0..12)) {
            let sweep = DailySweep {
                date: Date::from_ymd(2022, 2, 24),
                domains: records,
                stats: SweepStats::default(),
                metrics: SweepMetrics::new(),
            };
            let interner = Interner::new();
            let frame = SweepFrame::from_daily_sweep(&sweep, &interner);
            prop_assert_eq!(frame.to_daily_sweep(&interner), sweep);
            // Rebuilding against a pre-populated interner is stable too.
            let again = SweepFrame::from_daily_sweep(&frame.to_daily_sweep(&interner), &interner);
            prop_assert_eq!(again, frame);
        }
    }
}
