//! Durable on-disk study checkpoints: crash-safe day segments.
//!
//! A longitudinal study is a long fold over daily sweeps; a host crash
//! mid-study used to lose everything. This module gives the fold a
//! durable spine: after each sweep the runner writes one **day segment**
//! — a length-prefixed, CRC32-checksummed binary file carrying everything
//! needed to replay that day without re-measuring it:
//!
//! - the sweep's metrics-stripped [`SweepFrame`] (columns + stats),
//! - the [`Interner`] *delta* the sweep appended (new names and
//!   countries, with before/after table sizes so the symbol chain can be
//!   verified segment to segment),
//! - the network's post-sweep virtual-clock reading (fault windows anchor
//!   to the absolute clock, so resume must restore it day by day),
//! - a config fingerprint (FNV-1a over the study parameters that shape
//!   measurement), so a directory can't silently resume a different
//!   study.
//!
//! # Segment layout
//!
//! ```text
//! magic "RUWCKPT1" (8 bytes)
//! ┌ section ────────────────────────────────┐  × 3 (meta, interner, frame)
//! │ body length  u32 LE                     │
//! │ body         …                          │
//! │ CRC32(body)  u32 LE                     │
//! └─────────────────────────────────────────┘
//! ```
//!
//! Every failure mode of durable storage maps to a typed
//! [`CheckpointError`], never a panic: truncation (torn write, short
//! read) → [`CheckpointError::Truncated`], bit corruption →
//! [`CheckpointError::BadChecksum`], a foreign or stale file →
//! [`CheckpointError::BadMagic`] / [`CheckpointError::BadVersion`], a
//! directory from a differently-configured study →
//! [`CheckpointError::ConfigMismatch`].
//!
//! # Quarantine policy
//!
//! [`CheckpointDir::load`] walks segments in day order and keeps the
//! longest valid prefix. The first damaged segment — and every segment
//! after it, since interner deltas chain — is **quarantined**: renamed
//! aside to `<name>.quarantined` and reported in the
//! [`LoadOutcome`], so a resumed run re-measures from the last valid day
//! instead of panicking (or worse, trusting corrupt bytes). Writes are
//! atomic (temp file + fsync + rename), so a crash mid-write leaves a
//! stray `.tmp` the loader ignores, never a half-segment under the real
//! name.

use crate::frame::{AddrColumns, SweepFrame};
use crate::record::{Completeness, SweepStats};
use crate::sym::{CountrySym, Interner, Sym};
use crate::SweepMetrics;
use ruwhere_types::{Asn, Country, Date, DomainName};
use std::fmt;
use std::io::Write as _;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Magic bytes opening every day segment ("RUW checkpoint, format 1").
pub const SEGMENT_MAGIC: &[u8; 8] = b"RUWCKPT1";

/// Current segment format version (stored in the meta section).
pub const SEGMENT_VERSION: u32 = 1;

/// File-name extension quarantined segments are renamed to.
pub const QUARANTINE_SUFFIX: &str = "quarantined";

/// Why a checkpoint operation failed. Every variant is a detected,
/// reportable condition — corruption is data here, not a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// The underlying error, stringified.
        detail: String,
    },
    /// The file does not start with [`SEGMENT_MAGIC`].
    BadMagic,
    /// The segment declares a format version this build cannot read.
    BadVersion(u32),
    /// The file ends before a declared length — a torn or truncated
    /// write.
    Truncated {
        /// Byte offset at which more data was expected.
        offset: usize,
    },
    /// A section's CRC32 does not match its body — bit corruption.
    BadChecksum {
        /// Which section failed ("meta", "interner" or "frame").
        section: &'static str,
    },
    /// A checksummed body decoded to structurally invalid data (format
    /// skew or a writer bug — checksums rule out wire corruption).
    Malformed {
        /// Which section failed.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// The segment was written by a study with different parameters.
    ConfigMismatch {
        /// Fingerprint the reader expected.
        expected: u64,
        /// Fingerprint found in the segment.
        found: u64,
    },
    /// The segment is valid in isolation but does not continue the
    /// symbol/day chain of the segments before it.
    ChainBroken {
        /// What was inconsistent.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => write!(f, "checkpoint io ({path}): {detail}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint segment (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported segment version {v}"),
            CheckpointError::Truncated { offset } => {
                write!(f, "segment truncated at byte {offset} (torn write?)")
            }
            CheckpointError::BadChecksum { section } => {
                write!(f, "checksum mismatch in {section} section (bit corruption)")
            }
            CheckpointError::Malformed { section, detail } => {
                write!(f, "malformed {section} section: {detail}")
            }
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "segment belongs to a different study configuration \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            CheckpointError::ChainBroken { detail } => {
                write!(f, "segment chain broken: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn malformed(section: &'static str, detail: impl Into<String>) -> CheckpointError {
    CheckpointError::Malformed {
        section,
        detail: detail.into(),
    }
}

// --- checksums ----------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup table, built at
/// compile time — the build carries no checksum dependency.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the per-section integrity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a 64-bit hash — the study-config fingerprint function.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// --- binary encoding helpers -------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader; every short read is a typed
/// [`CheckpointError::Truncated`] carrying the offset.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.bytes.len() - self.pos < n {
            return Err(CheckpointError::Truncated { offset: self.pos });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().unwrap_or([0; 2]),
        ))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().unwrap_or([0; 4]),
        ))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap_or([0; 8]),
        ))
    }

    fn i32(&mut self) -> Result<i32, CheckpointError> {
        Ok(i32::from_le_bytes(
            self.take(4)?.try_into().unwrap_or([0; 4]),
        ))
    }

    fn str(&mut self, section: &'static str) -> Result<&'a str, CheckpointError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw).map_err(|_| malformed(section, "non-UTF-8 string"))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn push_section(out: &mut Vec<u8>, body: &[u8]) {
    put_u32(out, body.len() as u32);
    out.extend_from_slice(body);
    put_u32(out, crc32(body));
}

/// Read one `len | body | crc` section, verifying length and checksum.
fn read_section<'a>(
    r: &mut Reader<'a>,
    section: &'static str,
) -> Result<&'a [u8], CheckpointError> {
    let len = r.u32()? as usize;
    // Bound the declared length by what the file actually holds (plus the
    // trailing CRC) before any allocation or slice — a bit-flipped length
    // must surface as truncation, not an OOM or panic.
    let body = r.take(len)?;
    let stored = r.u32()?;
    if crc32(body) != stored {
        return Err(CheckpointError::BadChecksum { section });
    }
    Ok(body)
}

// --- interner delta -----------------------------------------------------

/// The three symbol-table sizes at one instant — the chain links between
/// consecutive day segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableSizes {
    /// Interned names.
    pub names: u32,
    /// Interned TLDs.
    pub tlds: u32,
    /// Interned countries.
    pub countries: u32,
}

impl TableSizes {
    /// The interner's current table sizes.
    pub fn of(interner: &Interner) -> TableSizes {
        TableSizes {
            names: interner.names_len() as u32,
            tlds: interner.tlds_len() as u32,
            countries: interner.countries_len() as u32,
        }
    }
}

impl fmt::Display for TableSizes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "names={} tlds={} countries={}",
            self.names, self.tlds, self.countries
        )
    }
}

/// What one sweep appended to the study interner: the new names and
/// countries in symbol order, bracketed by before/after table sizes.
///
/// Replaying deltas in day order reconstructs the interner *exactly* —
/// including the TLD table, which only ever grows through
/// [`Interner::intern_name`], so re-interning the names in order
/// reproduces TLD symbols too. That preserves the seeds-first
/// symbol-assignment invariant (DESIGN.md §10): symbols restored from
/// checkpoints are bit-for-bit the symbols the original run assigned,
/// which [`InternerDelta::replay`] verifies against `post`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternerDelta {
    /// Table sizes before the sweep interned anything.
    pub base: TableSizes,
    /// Table sizes after the sweep's frame-build pass.
    pub post: TableSizes,
    /// Names appended by the sweep, in symbol order.
    pub names: Vec<DomainName>,
    /// Countries appended by the sweep, in symbol order.
    pub countries: Vec<Country>,
}

impl InternerDelta {
    /// Capture the delta between `base` (sizes recorded before the
    /// sweep) and the interner's current state.
    pub fn capture(interner: &Interner, base: TableSizes) -> InternerDelta {
        InternerDelta {
            base,
            post: TableSizes::of(interner),
            names: interner.names_from(base.names as usize),
            countries: interner.countries_from(base.countries as usize),
        }
    }

    /// Re-prime `interner` with this delta: verify its tables currently
    /// sit at `base`, intern the recorded names and countries in symbol
    /// order, and verify the tables land exactly on `post`.
    pub fn replay(&self, interner: &Interner) -> Result<(), CheckpointError> {
        let have = TableSizes::of(interner);
        if have != self.base {
            return Err(CheckpointError::ChainBroken {
                detail: format!("delta expects base ({}), interner has ({have})", self.base),
            });
        }
        for name in &self.names {
            interner.intern_name(name);
        }
        for &country in &self.countries {
            interner.intern_country(Some(country));
        }
        let now = TableSizes::of(interner);
        if now != self.post {
            return Err(CheckpointError::ChainBroken {
                detail: format!("replayed delta landed on ({now}), expected ({})", self.post),
            });
        }
        Ok(())
    }
}

// --- day checkpoint -----------------------------------------------------

/// Everything one study day contributes, in durable form: the sweep's
/// frame (metrics stripped), the interner delta, and the network clock a
/// resumed run must restore before continuing.
#[derive(Debug, Clone, PartialEq)]
pub struct DayCheckpoint {
    /// Position of this day in the study's sweep schedule (0-based).
    pub day_index: u32,
    /// The sweep date.
    pub date: Date,
    /// The network's global virtual clock right after the sweep, in
    /// microseconds. Fault windows anchor to the absolute clock, so
    /// resume restores this after replaying each day.
    pub net_clock_us: u64,
    /// The interner delta this day appended.
    pub interner: InternerDelta,
    /// The day's sweep frame, metrics stripped.
    pub frame: SweepFrame,
}

fn encode_meta(ck: &DayCheckpoint, fingerprint: u64) -> Vec<u8> {
    let mut b = Vec::with_capacity(40);
    put_u32(&mut b, SEGMENT_VERSION);
    put_u64(&mut b, fingerprint);
    put_u32(&mut b, ck.day_index);
    put_i32(&mut b, ck.date.days_since_epoch());
    put_u64(&mut b, ck.net_clock_us);
    b
}

fn encode_interner(d: &InternerDelta) -> Vec<u8> {
    let mut b = Vec::new();
    for s in [d.base, d.post] {
        put_u32(&mut b, s.names);
        put_u32(&mut b, s.tlds);
        put_u32(&mut b, s.countries);
    }
    put_u32(&mut b, d.names.len() as u32);
    for n in &d.names {
        put_str(&mut b, n.as_ref());
    }
    put_u32(&mut b, d.countries.len() as u32);
    for c in &d.countries {
        put_str(&mut b, c.code());
    }
    b
}

fn encode_addrs(b: &mut Vec<u8>, cols: &AddrColumns) {
    put_u32(b, cols.ips.len() as u32);
    for i in 0..cols.ips.len() {
        put_u32(b, u32::from(cols.ips[i]));
        put_u32(b, cols.countries[i].0);
        put_u32(b, cols.asns[i].map(|a| a.0).unwrap_or(u32::MAX));
    }
}

fn encode_frame(f: &SweepFrame) -> Vec<u8> {
    let mut b = Vec::new();
    put_i32(&mut b, f.date.days_since_epoch());
    put_u32(&mut b, f.domains.len() as u32);
    for d in &f.domains {
        put_u32(&mut b, d.0);
    }
    for offsets in [&f.ns_name_offsets, &f.ns_addr_offsets, &f.apex_addr_offsets] {
        for &o in offsets.iter() {
            put_u32(&mut b, o);
        }
    }
    put_u32(&mut b, f.ns_names.len() as u32);
    for s in &f.ns_names {
        put_u32(&mut b, s.0);
    }
    encode_addrs(&mut b, &f.ns_addrs);
    encode_addrs(&mut b, &f.apex_addrs);
    let st = &f.stats;
    for v in [
        st.seeded,
        st.ns_failures,
        st.apex_failures,
        st.queries,
        st.virtual_elapsed_us,
        st.timeouts,
        st.servfails,
        st.lame,
        st.retries_spent,
        st.ns_cache_hits,
        st.ns_cache_misses,
        st.shards_retried,
        st.shards_lost,
    ] {
        put_u64(&mut b, v);
    }
    put_u8(
        &mut b,
        match st.completeness {
            Completeness::Full => 0,
            Completeness::Partial => 1,
        },
    );
    b
}

/// Serialise a day checkpoint to segment bytes.
pub fn encode_segment(ck: &DayCheckpoint, fingerprint: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(SEGMENT_MAGIC);
    push_section(&mut out, &encode_meta(ck, fingerprint));
    push_section(&mut out, &encode_interner(&ck.interner));
    push_section(&mut out, &encode_frame(&ck.frame));
    out
}

fn decode_date(days: i32, section: &'static str) -> Result<Date, CheckpointError> {
    // Dates written by a study are modern; anything wildly out of range
    // is format skew.
    if !(0..=200_000).contains(&days) {
        return Err(malformed(section, format!("date out of range: {days}")));
    }
    Ok(Date::from_days(days))
}

fn decode_meta(body: &[u8]) -> Result<(u64, u32, Date, u64), CheckpointError> {
    let r = &mut Reader::new(body);
    let map = |_| malformed("meta", "short body");
    let version = r.u32().map_err(map)?;
    if version != SEGMENT_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let fingerprint = r.u64().map_err(map)?;
    let day_index = r.u32().map_err(map)?;
    let date = decode_date(r.i32().map_err(map)?, "meta")?;
    let net_clock_us = r.u64().map_err(map)?;
    if !r.done() {
        return Err(malformed("meta", "trailing bytes"));
    }
    Ok((fingerprint, day_index, date, net_clock_us))
}

fn decode_interner(body: &[u8]) -> Result<InternerDelta, CheckpointError> {
    const S: &str = "interner";
    let r = &mut Reader::new(body);
    let map = |_| malformed(S, "short body");
    let mut sizes = [TableSizes::default(); 2];
    for s in &mut sizes {
        s.names = r.u32().map_err(map)?;
        s.tlds = r.u32().map_err(map)?;
        s.countries = r.u32().map_err(map)?;
    }
    let [base, post] = sizes;
    let n_names = r.u32().map_err(map)? as usize;
    if post.names.checked_sub(base.names) != Some(n_names as u32) {
        return Err(malformed(S, "name count disagrees with table sizes"));
    }
    let mut names = Vec::with_capacity(n_names.min(body.len()));
    for _ in 0..n_names {
        let s = r.str(S)?;
        names.push(
            s.parse::<DomainName>()
                .map_err(|e| malformed(S, format!("bad name {s:?}: {e}")))?,
        );
    }
    let n_countries = r.u32().map_err(map)? as usize;
    if post.countries.checked_sub(base.countries) != Some(n_countries as u32) {
        return Err(malformed(S, "country count disagrees with table sizes"));
    }
    let mut countries = Vec::with_capacity(n_countries.min(body.len()));
    for _ in 0..n_countries {
        let s = r.str(S)?;
        countries
            .push(Country::from_code(s).ok_or_else(|| malformed(S, format!("bad country {s:?}")))?);
    }
    if !r.done() {
        return Err(malformed(S, "trailing bytes"));
    }
    Ok(InternerDelta {
        base,
        post,
        names,
        countries,
    })
}

fn decode_addrs(r: &mut Reader<'_>, body_len: usize) -> Result<AddrColumns, CheckpointError> {
    const S: &str = "frame";
    let map = |_| malformed(S, "short body");
    let len = r.u32().map_err(map)? as usize;
    let mut cols = AddrColumns::default();
    cols.ips.reserve(len.min(body_len / 12));
    for _ in 0..len {
        let ip = Ipv4Addr::from(r.u32().map_err(map)?);
        let country = CountrySym(r.u32().map_err(map)?);
        let asn = match r.u32().map_err(map)? {
            u32::MAX => None,
            v => Some(Asn(v)),
        };
        cols.ips.push(ip);
        cols.countries.push(country);
        cols.asns.push(asn);
    }
    Ok(cols)
}

fn check_offsets(offsets: &[u32], records: usize, len: usize) -> Result<(), CheckpointError> {
    const S: &str = "frame";
    if offsets.len() != records + 1 {
        return Err(malformed(S, "offset column length mismatch"));
    }
    if offsets.first() != Some(&0) || offsets.last().copied() != Some(len as u32) {
        return Err(malformed(S, "offset column endpoints mismatch"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(malformed(S, "offsets not monotonic"));
    }
    Ok(())
}

fn decode_frame(body: &[u8]) -> Result<SweepFrame, CheckpointError> {
    const S: &str = "frame";
    let r = &mut Reader::new(body);
    let map = |_| malformed(S, "short body");
    let date = decode_date(r.i32().map_err(map)?, S)?;
    let n = r.u32().map_err(map)? as usize;
    let read_syms = |r: &mut Reader<'_>, count: usize| -> Result<Vec<Sym>, CheckpointError> {
        let mut v = Vec::with_capacity(count.min(body.len() / 4));
        for _ in 0..count {
            v.push(Sym(r.u32().map_err(map)?));
        }
        Ok(v)
    };
    let read_offsets = |r: &mut Reader<'_>| -> Result<Vec<u32>, CheckpointError> {
        let mut v = Vec::with_capacity((n + 1).min(body.len() / 4));
        for _ in 0..n + 1 {
            v.push(r.u32().map_err(map)?);
        }
        Ok(v)
    };
    let domains = read_syms(r, n)?;
    let ns_name_offsets = read_offsets(r)?;
    let ns_addr_offsets = read_offsets(r)?;
    let apex_addr_offsets = read_offsets(r)?;
    let n_ns_names = r.u32().map_err(map)? as usize;
    let ns_names = read_syms(r, n_ns_names)?;
    let ns_addrs = decode_addrs(r, body.len())?;
    let apex_addrs = decode_addrs(r, body.len())?;
    let mut stats = [0u64; 13];
    for v in &mut stats {
        *v = r.u64().map_err(map)?;
    }
    let completeness = match r.u8().map_err(map)? {
        0 => Completeness::Full,
        1 => Completeness::Partial,
        v => return Err(malformed(S, format!("bad completeness tag {v}"))),
    };
    if !r.done() {
        return Err(malformed(S, "trailing bytes"));
    }
    check_offsets(&ns_name_offsets, n, ns_names.len())?;
    check_offsets(&ns_addr_offsets, n, ns_addrs.ips.len())?;
    check_offsets(&apex_addr_offsets, n, apex_addrs.ips.len())?;
    Ok(SweepFrame {
        date,
        domains,
        ns_name_offsets,
        ns_names,
        ns_addr_offsets,
        ns_addrs,
        apex_addr_offsets,
        apex_addrs,
        stats: SweepStats {
            seeded: stats[0],
            ns_failures: stats[1],
            apex_failures: stats[2],
            queries: stats[3],
            virtual_elapsed_us: stats[4],
            timeouts: stats[5],
            servfails: stats[6],
            lame: stats[7],
            retries_spent: stats[8],
            ns_cache_hits: stats[9],
            ns_cache_misses: stats[10],
            shards_retried: stats[11],
            shards_lost: stats[12],
            completeness,
        },
        metrics: SweepMetrics::new(),
    })
}

/// Parse segment bytes back into a day checkpoint and the fingerprint it
/// was written under. Returns a typed error for every corruption mode —
/// truncation at any byte offset, any flipped bit, foreign files — and
/// never panics.
pub fn decode_segment(bytes: &[u8]) -> Result<(DayCheckpoint, u64), CheckpointError> {
    let r = &mut Reader::new(bytes);
    if r.take(SEGMENT_MAGIC.len())? != SEGMENT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let meta = read_section(r, "meta")?;
    let interner = read_section(r, "interner")?;
    let frame = read_section(r, "frame")?;
    if !r.done() {
        return Err(malformed("frame", "trailing bytes after last section"));
    }
    let (fingerprint, day_index, date, net_clock_us) = decode_meta(meta)?;
    let interner = decode_interner(interner)?;
    let frame = decode_frame(frame)?;
    if frame.date != date {
        return Err(malformed("frame", "frame date disagrees with meta date"));
    }
    Ok((
        DayCheckpoint {
            day_index,
            date,
            net_clock_us,
            interner,
            frame,
        },
        fingerprint,
    ))
}

// --- the checkpoint directory ------------------------------------------

/// One quarantined (or unreadable) segment, as reported by
/// [`CheckpointDir::load`].
#[derive(Debug, Clone)]
pub struct QuarantinedSegment {
    /// The segment's original path.
    pub original: PathBuf,
    /// Where it was renamed to (`None` if even the rename failed).
    pub moved_to: Option<PathBuf>,
    /// Why it was quarantined.
    pub reason: String,
}

/// What a directory scan salvaged: the longest valid day prefix, plus a
/// report of everything set aside.
#[derive(Debug, Clone, Default)]
pub struct LoadOutcome {
    /// Valid day checkpoints, contiguous from day 0.
    pub days: Vec<DayCheckpoint>,
    /// Segments renamed aside (damaged, or downstream of damage).
    pub quarantined: Vec<QuarantinedSegment>,
}

/// A directory of day segments (`day-000000.ckpt`, `day-000001.ckpt`, …)
/// with atomic writes and quarantine-on-load.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
}

impl CheckpointDir {
    /// Open (creating if needed) a checkpoint directory, verifying it is
    /// writable by round-tripping a probe file — an unwritable path is a
    /// typed [`CheckpointError::Io`], reported before any sweeping
    /// starts rather than hours in.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointDir, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let probe = dir.join(".ruwhere-probe");
        std::fs::write(&probe, b"probe").map_err(|e| io_err(&probe, e))?;
        std::fs::remove_file(&probe).map_err(|e| io_err(&probe, e))?;
        Ok(CheckpointDir { dir })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The segment file path for a day index.
    pub fn segment_path(&self, day_index: u32) -> PathBuf {
        self.dir.join(format!("day-{day_index:06}.ckpt"))
    }

    /// Day-segment files present, sorted by day index.
    fn segment_files(&self) -> Result<Vec<(u32, PathBuf)>, CheckpointError> {
        let mut files = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(idx) = name
                .strip_prefix("day-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .filter(|s| s.len() == 6)
                .and_then(|s| s.parse::<u32>().ok())
            else {
                continue;
            };
            files.push((idx, entry.path()));
        }
        files.sort_unstable_by_key(|(idx, _)| *idx);
        Ok(files)
    }

    /// Whether any day segment exists.
    pub fn has_segments(&self) -> Result<bool, CheckpointError> {
        Ok(!self.segment_files()?.is_empty())
    }

    /// Durably write one day segment: serialise, write to a temp file,
    /// fsync, rename into place. A crash at any point leaves either the
    /// previous state or the complete new segment — never a torn file
    /// under the segment name.
    pub fn write_day(&self, ck: &DayCheckpoint, fingerprint: u64) -> Result<(), CheckpointError> {
        let bytes = encode_segment(ck, fingerprint);
        let path = self.segment_path(ck.day_index);
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        Ok(())
    }

    fn quarantine(&self, path: &Path, reason: String, out: &mut Vec<QuarantinedSegment>) {
        let target = {
            let mut name = path.file_name().unwrap_or_default().to_os_string();
            name.push(".");
            name.push(QUARANTINE_SUFFIX);
            path.with_file_name(name)
        };
        let (moved_to, reason) = match std::fs::rename(path, &target) {
            Ok(()) => (Some(target), reason),
            Err(e) => (None, format!("{reason} (quarantine rename failed: {e})")),
        };
        out.push(QuarantinedSegment {
            original: path.to_path_buf(),
            moved_to,
            reason,
        });
    }

    /// Scan the directory and salvage the longest valid day prefix.
    ///
    /// Segments are validated in day order: magic, checksums, version,
    /// the day-index chain (0, 1, 2, … with strictly increasing dates)
    /// and the interner-size chain (each delta's `base` must equal the
    /// previous delta's `post`). The first segment that fails — and
    /// every later one, which depends on its symbols — is renamed aside
    /// and reported in [`LoadOutcome::quarantined`].
    ///
    /// A structurally valid segment carrying a different config
    /// fingerprint is a hard [`CheckpointError::ConfigMismatch`]: the
    /// caller pointed at the wrong directory, and silently re-measuring
    /// it would destroy someone else's checkpoints.
    pub fn load(&self, fingerprint: u64) -> Result<LoadOutcome, CheckpointError> {
        let files = self.segment_files()?;
        let mut outcome = LoadOutcome::default();
        let mut chain = TableSizes::default();
        let mut last_date: Option<Date> = None;
        let mut files = files.into_iter();
        for (idx, path) in files.by_ref() {
            let expected = outcome.days.len() as u32;
            let fail = |detail: String| detail;
            let reason: String = if idx != expected {
                fail(format!("expected day {expected}, found day {idx}"))
            } else {
                match std::fs::read(&path) {
                    Err(e) => fail(format!("unreadable: {e}")),
                    Ok(bytes) => match decode_segment(&bytes) {
                        Err(e) => fail(e.to_string()),
                        Ok((ck, found)) => {
                            if found != fingerprint {
                                return Err(CheckpointError::ConfigMismatch {
                                    expected: fingerprint,
                                    found,
                                });
                            }
                            if ck.day_index != idx {
                                fail(format!(
                                    "file is day {idx} but segment says day {}",
                                    ck.day_index
                                ))
                            } else if ck.interner.base != chain {
                                fail(format!(
                                    "interner chain: segment expects base ({}), \
                                     previous segments end at ({chain})",
                                    ck.interner.base
                                ))
                            } else if last_date.is_some_and(|d| ck.date <= d) {
                                fail("dates not strictly increasing".to_string())
                            } else {
                                chain = ck.interner.post;
                                last_date = Some(ck.date);
                                outcome.days.push(ck);
                                continue;
                            }
                        }
                    },
                }
            };
            // This segment is unusable; so is everything after it (their
            // interner deltas chain through it).
            self.quarantine(&path, reason, &mut outcome.quarantined);
            for (later_idx, later_path) in files.by_ref() {
                self.quarantine(
                    &later_path,
                    format!("follows quarantined segment (day {later_idx})"),
                    &mut outcome.quarantined,
                );
            }
            break;
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBuilder;

    fn d(s: &str) -> DomainName {
        s.parse().expect("test domain")
    }

    fn sample_frame(date: Date, syms: &[u32]) -> SweepFrame {
        let mut b = FrameBuilder::new(date);
        for &s in syms {
            b.begin_record(Sym(s));
            b.push_ns_name(Sym(s + 100));
            b.push_ns_addr(
                Ipv4Addr::new(10, 0, 0, s as u8),
                CountrySym(0),
                Some(Asn(7)),
            );
            b.push_apex_addr(Ipv4Addr::new(10, 0, 1, s as u8), CountrySym::NONE, None);
            b.end_record();
        }
        b.finish(
            SweepStats {
                seeded: syms.len() as u64,
                queries: 42,
                ..SweepStats::default()
            },
            SweepMetrics::new(),
        )
    }

    fn sample_day(index: u32, base: TableSizes) -> DayCheckpoint {
        let date = Date::from_ymd(2022, 3, 1).add_days(index as i32);
        DayCheckpoint {
            day_index: index,
            date,
            net_clock_us: 1_000_000 * (index as u64 + 1),
            interner: InternerDelta {
                base,
                post: TableSizes {
                    names: base.names + 2,
                    tlds: base.tlds.max(2),
                    countries: base.countries + 1,
                },
                names: vec![d(&format!("a{index}.ru")), d(&format!("b{index}.com"))],
                countries: vec![Country::RU],
            },
            frame: sample_frame(date, &[0, 1, 2]),
        }
    }

    #[test]
    fn segment_round_trips() {
        let ck = sample_day(3, TableSizes::default());
        let bytes = encode_segment(&ck, 0xDEAD_BEEF);
        let (back, fp) = decode_segment(&bytes).expect("round trip");
        assert_eq!(back, ck);
        assert_eq!(fp, 0xDEAD_BEEF);
    }

    #[test]
    fn truncation_is_typed_never_a_panic() {
        let bytes = encode_segment(&sample_day(0, TableSizes::default()), 1);
        for cut in 0..bytes.len() {
            let err = decode_segment(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. }
                        | CheckpointError::BadMagic
                        | CheckpointError::BadChecksum { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn bit_corruption_is_detected() {
        let bytes = encode_segment(&sample_day(0, TableSizes::default()), 1);
        // Flip one bit in each region: magic, a length, a body, a CRC.
        for &pos in &[0usize, 9, 30, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                decode_segment(&bad).is_err(),
                "flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn delta_replay_rebuilds_interner_exactly() {
        let original = Interner::new();
        original.intern_name(&d("seed.ru"));
        let base = TableSizes::of(&original);
        original.intern_name(&d("ns1.host.com"));
        original.intern_name(&d("other.xn--p1ai"));
        original.intern_country(Some(Country::SE));
        let delta = InternerDelta::capture(&original, base);

        let resumed = Interner::new();
        resumed.intern_name(&d("seed.ru"));
        delta.replay(&resumed).expect("replay");
        assert_eq!(resumed.dump(), original.dump());

        // Replaying against the wrong base is a typed chain error.
        let wrong = Interner::new();
        assert!(matches!(
            delta.replay(&wrong),
            Err(CheckpointError::ChainBroken { .. })
        ));
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ruwhere-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_chain(store: &CheckpointDir, days: u32, fp: u64) -> Vec<DayCheckpoint> {
        let mut base = TableSizes::default();
        let mut out = Vec::new();
        for i in 0..days {
            let ck = sample_day(i, base);
            base = ck.interner.post;
            store.write_day(&ck, fp).expect("write");
            out.push(ck);
        }
        out
    }

    #[test]
    fn directory_round_trips_a_chain() {
        let dir = tmp_dir("chain");
        let store = CheckpointDir::open(&dir).expect("open");
        let written = write_chain(&store, 3, 7);
        let loaded = store.load(7).expect("load");
        assert_eq!(loaded.days, written);
        assert!(loaded.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_tail_is_quarantined_and_prefix_salvaged() {
        let dir = tmp_dir("quarantine");
        let store = CheckpointDir::open(&dir).expect("open");
        let written = write_chain(&store, 4, 7);
        // Corrupt day 2 with a single flipped bit mid-file.
        let victim = store.segment_path(2);
        let mut bytes = std::fs::read(&victim).expect("read victim");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&victim, &bytes).expect("rewrite victim");

        let loaded = store.load(7).expect("load");
        assert_eq!(loaded.days, written[..2]);
        // Day 2 (damaged) and day 3 (depends on it) are both set aside.
        assert_eq!(loaded.quarantined.len(), 2);
        assert!(loaded.quarantined[0].reason.contains("checksum"));
        assert!(loaded.quarantined[1].reason.contains("follows"));
        for q in &loaded.quarantined {
            let moved = q.moved_to.as_ref().expect("renamed aside");
            assert!(moved.exists());
            assert!(!q.original.exists());
        }
        // A second load sees only the salvaged prefix, cleanly.
        let again = store.load(7).expect("reload");
        assert_eq!(again.days.len(), 2);
        assert!(again.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_a_hard_error() {
        let dir = tmp_dir("fp");
        let store = CheckpointDir::open(&dir).expect("open");
        write_chain(&store, 1, 7);
        assert!(matches!(
            store.load(8),
            Err(CheckpointError::ConfigMismatch {
                expected: 8,
                found: 7
            })
        ));
        // The mismatching segment is NOT quarantined — it's not damaged.
        assert!(store.segment_path(0).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_directory_is_a_typed_error() {
        // A path under a regular file can't be a directory.
        let dir = tmp_dir("unwritable");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("not-a-dir");
        std::fs::write(&file, b"x").expect("write file");
        let err = CheckpointDir::open(file.join("sub")).expect_err("must fail");
        assert!(matches!(err, CheckpointError::Io { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
