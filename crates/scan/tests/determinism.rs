//! The parallel sweep engine's determinism contract: for ANY worker
//! count, the merged daily sweep is byte-identical to the 1-worker run —
//! faults, packet loss, partial-sweep salvage, completeness
//! classification AND the embedded observability section (histograms,
//! per-link tables, cause recorders) included. Worker count trades
//! wall-clock time only.

use proptest::prelude::*;
use ruwhere_netsim::fault::{FaultWindow, LinkFault, ServerFault, ServerFaultMode};
use ruwhere_netsim::SimTime;
use ruwhere_scan::{DailySweep, OpenIntelScanner, SweepFrame, SweepOptions};
use ruwhere_world::{ConflictEvent, FaultTarget, InfraFault, World, WorldConfig};
use std::net::Ipv4Addr;

/// One measured day in every representation the engine produces: the
/// columnar frame, the interner's canonical symbol-table dump, and the
/// row-form sweep derived from both.
struct Measured {
    frame: SweepFrame,
    interner_dump: String,
    daily: DailySweep,
}

/// A randomly drawn measurement day: worker count, background loss, and
/// an active fault window (timeline infrastructure fault + direct server
/// fault + link degradation) the sweep runs inside.
#[derive(Debug, Clone)]
struct DaySpec {
    workers: usize,
    loss: f64,
    fault_day_offset: i32,
    target: FaultTarget,
    duration_hours: u32,
    server_octets: (u8, u8),
    server_flaps: bool,
    link_loss: f64,
    link_provider: u8,
}

fn arb_day() -> impl Strategy<Value = DaySpec> {
    (
        2usize..=8,
        0.0f64..0.2,
        1i32..8,
        prop_oneof![
            Just(FaultTarget::RuTldServers),
            Just(FaultTarget::Root),
            Just(FaultTarget::GtldServers),
        ],
        1u32..30,
        (0u8..8, 1u8..255),
        any::<bool>(),
        0.0f64..0.25,
        0u8..8,
    )
        .prop_map(
            |(
                workers,
                loss,
                fault_day_offset,
                target,
                duration_hours,
                server_octets,
                server_flaps,
                link_loss,
                link_provider,
            )| DaySpec {
                workers,
                loss,
                fault_day_offset,
                target,
                duration_hours,
                server_octets,
                server_flaps,
                link_loss,
                link_provider,
            },
        )
}

/// Sweep the spec's fault day with the given worker count.
fn sweep_with_workers(spec: &DaySpec, workers: usize) -> Measured {
    let mut cfg = WorldConfig::tiny();
    let fault_date = cfg.start.add_days(spec.fault_day_offset);
    cfg.extra_events.push((
        fault_date,
        ConflictEvent::InfrastructureFault(InfraFault {
            target: spec.target,
            duration_hours: spec.duration_hours,
        }),
    ));
    let mut world = World::new(cfg);
    world.network_mut().loss_rate = spec.loss;

    let mode = if spec.server_flaps {
        ServerFaultMode::Flapping { period_us: 750_000 }
    } else {
        ServerFaultMode::Outage
    };
    let plan = world.network_mut().faults_mut();
    plan.add_server_fault(ServerFault {
        addr: Ipv4Addr::new(20, spec.server_octets.0, 128, spec.server_octets.1),
        port: None,
        mode,
        window: FaultWindow::from(SimTime::ZERO),
    });
    plan.add_link_fault(LinkFault {
        prefix: format!("20.{}.0.0/16", spec.link_provider).parse().unwrap(),
        extra_loss: spec.link_loss,
        extra_latency_us: 15_000,
        window: FaultWindow::from(SimTime::ZERO),
    });

    world.advance_to(fault_date);
    let mut scanner = OpenIntelScanner::with_options(&world, SweepOptions::new().workers(workers));
    let frame = scanner.sweep_frame(&mut world);
    let interner_dump = scanner.interner().dump();
    let daily = frame.to_daily_sweep(scanner.interner());
    Measured {
        frame,
        interner_dump,
        daily,
    }
}

proptest! {
    // World construction dominates each case, and every case sweeps the
    // world twice; a handful of cases still covers all fault targets,
    // both server-fault modes and a spread of worker counts.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn n_worker_sweep_is_byte_identical_to_serial(spec in arb_day()) {
        let serial = sweep_with_workers(&spec, 1);
        let sharded = sweep_with_workers(&spec, spec.workers);
        // Symbol assignment is a pure function of the zone snapshot and
        // the merged record order — never of the sharding (DESIGN.md
        // §10), so the whole symbol table dumps byte-identically.
        prop_assert_eq!(&serial.interner_dump, &sharded.interner_dump);
        // And with identical symbol tables, the columnar frames (domain
        // syms, offset columns, address/country/ASN columns) are equal
        // wholesale.
        prop_assert_eq!(&serial.frame, &sharded.frame);
        let (serial, sharded) = (serial.daily, sharded.daily);
        prop_assert_eq!(serial.date, sharded.date);
        prop_assert_eq!(serial.stats, sharded.stats);
        prop_assert_eq!(serial.domains, sharded.domains);
        // The observability section merges associatively over whatever
        // sharding the worker count induced: merged histograms, link
        // tables and cause recorders are equal — and their JSON export is
        // byte-identical, which is what the CI determinism gate compares.
        prop_assert_eq!(&serial.metrics, &sharded.metrics);
        prop_assert_eq!(serial.metrics.render_json(), sharded.metrics.render_json());
    }
}

/// Worker counts far beyond the seed count (empty shards) change nothing
/// either.
#[test]
fn more_workers_than_useful_is_still_identical() {
    let sweep = |workers: usize| {
        let mut world = World::new(WorldConfig::tiny());
        world.network_mut().loss_rate = 0.1;
        let mut scanner =
            OpenIntelScanner::with_options(&world, SweepOptions::new().workers(workers));
        scanner.sweep(&mut world)
    };
    let serial = sweep(1);
    let wide = sweep(64);
    assert_eq!(serial, wide);
    assert_eq!(serial.metrics.render_json(), wide.metrics.render_json());
}
