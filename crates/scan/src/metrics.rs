//! Sweep-level observability — re-exported from [`ruwhere_store`], where
//! the section lives alongside both sweep representations (the columnar
//! [`SweepFrame`](ruwhere_store::SweepFrame) and the row-view
//! [`DailySweep`](ruwhere_store::DailySweep) both carry one).
//!
//! The scan crate keeps this module so existing
//! `ruwhere_scan::metrics::…` paths (and the `fail_key` vocabulary, whose
//! categories come from [`ScanError::category`](crate::ScanError::category))
//! continue to work unchanged.

pub use ruwhere_store::metrics::{fail_key, keys, SweepMetrics};
