//! Censys-style certificate datasets: CT-log indexing and IP-wide scans.

use crate::error::ScanError;
use crate::scanner::Scanner;
use ruwhere_ct::CtLog;
use ruwhere_types::{Date, DomainName};
use ruwhere_world::{ChainSummary, World, TLS_PORT};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// How a certificate is matched to the study TLDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchRule {
    /// Paper footnote 6: "either its Common Name (CN) or Subject
    /// Alternative Name (SAN) fields include a domain name under a .ru or
    /// .рф TLD".
    CnOrSan,
    /// Stricter CN-only rule (ablation).
    CnOnly,
}

/// One indexed certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertRecord {
    /// CT log timestamp (issuance date in our pipeline).
    pub date: Date,
    /// Issuer Organization from the Issuer DN — the paper's aggregation
    /// key (§4.1).
    pub issuer_org: String,
    /// Issuer Common Name (the brand).
    pub issuer_cn: String,
    /// Issuer-scoped serial.
    pub serial: u64,
    /// Covered domains (CN + SANs that parse as names).
    pub domains: Vec<DomainName>,
    /// Validity end.
    pub not_after: Date,
}

/// The indexed certificate dataset for an analysis window.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CertDataset {
    /// Matched certificates, log order.
    pub records: Vec<CertRecord>,
}

impl CertDataset {
    /// Index `log` for certificates in `[from, to]` matching the study
    /// TLDs under `rule`.
    pub fn from_log(log: &CtLog, from: Date, to: Date, rule: MatchRule) -> Self {
        Self::from_logs(std::slice::from_ref(log), from, to, rule)
    }

    /// Index several logs, deduplicating certificates that were submitted
    /// to more than one (by issuer organization + serial) — what Censys
    /// does when merging the public log ecosystem.
    pub fn from_logs(logs: &[CtLog], from: Date, to: Date, rule: MatchRule) -> Self {
        let mut seen = std::collections::HashSet::new();
        let mut records = Vec::new();
        for log in logs {
            for e in log.entries_between(from, to) {
                let matched = match rule {
                    MatchRule::CnOrSan => e.cert.matches_russian_tld(),
                    MatchRule::CnOnly => e.cert.matches_russian_tld_cn_only(),
                };
                if !matched {
                    continue;
                }
                if !seen.insert((e.cert.issuer.organization.clone(), e.cert.serial)) {
                    continue;
                }
                records.push(CertRecord {
                    date: e.timestamp,
                    issuer_org: e.cert.issuer.organization.clone(),
                    issuer_cn: e.cert.issuer.common_name.clone(),
                    serial: e.cert.serial,
                    domains: e.cert.covered_domains(),
                    not_after: e.cert.not_after,
                });
            }
        }
        records.sort_by_key(|r| r.date);
        CertDataset { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// One IP-wide TLS scan result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpScanSnapshot {
    /// Scan date.
    pub date: Date,
    /// Responding endpoints with the chains they presented.
    pub endpoints: Vec<(Ipv4Addr, ChainSummary)>,
    /// Probes that yielded no usable chain, each with its failure cause.
    /// The old scanner folded everything into one `silent` counter; a
    /// timeout (the box is gone) and an unparsable banner (the box
    /// answered garbage) are different findings — see
    /// [`IpScanSnapshot::silent`] for the legacy aggregate.
    pub failures: Vec<(Ipv4Addr, ScanError)>,
}

impl IpScanSnapshot {
    /// Probes that got no usable TLS response (all causes) — the legacy
    /// `silent` aggregate.
    pub fn silent(&self) -> u64 {
        self.failures.len() as u64
    }

    /// Failures of one cause category
    /// (see [`ScanError::category`]).
    pub fn failures_by_cause(&self, category: &str) -> u64 {
        self.failures
            .iter()
            .filter(|(_, e)| e.category() == category)
            .count() as u64
    }
}

/// The Censys Universal Internet Data Set stand-in: probe every responding
/// TLS endpoint and record the presented chain.
pub struct IpScanner {
    src: Ipv4Addr,
    probes_sent: u64,
}

impl IpScanner {
    /// Scanner homed at the world's measurement vantage.
    pub fn new(world: &World) -> Self {
        IpScanner {
            src: world.scanner_ip(),
            probes_sent: 0,
        }
    }

    /// Probes sent since construction, summed over all scans.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    /// Probe all TLS endpoints at the world's current date.
    ///
    /// Takes `&mut self` — scanners accumulate run-to-run state (the
    /// probe total), and the unified [`Scanner`] contract gives every
    /// pipeline the same shape.
    pub fn scan(&mut self, world: &mut World) -> IpScanSnapshot {
        let date = world.today();
        let targets = world.network().bound_endpoints(TLS_PORT);
        let mut endpoints = Vec::new();
        let mut failures = Vec::new();
        for addr in targets {
            self.probes_sent += 1;
            match world.network_mut().request(
                self.src,
                (addr, TLS_PORT),
                b"CLIENT-HELLO",
                1_500_000,
                2,
            ) {
                Ok(banner) => match ChainSummary::from_banner(&banner) {
                    Some(chain) => endpoints.push((addr, chain)),
                    None => failures.push((
                        addr,
                        ScanError::BadPayload("unparsable TLS banner".to_owned()),
                    )),
                },
                Err(e) => failures.push((addr, ScanError::from(e))),
            }
        }
        IpScanSnapshot {
            date,
            endpoints,
            failures,
        }
    }
}

impl Scanner for IpScanner {
    type Snapshot = IpScanSnapshot;

    /// One IP-wide TLS scan — [`IpScanner::scan`].
    fn run(&mut self, world: &mut World) -> IpScanSnapshot {
        self.scan(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_types::Period;
    use ruwhere_world::WorldConfig;

    #[test]
    fn ct_index_filters_and_windows() {
        let mut world = World::new(WorldConfig::tiny());
        world.advance_to(Date::from_ymd(2022, 2, 10));
        let from = Date::from_ymd(2022, 1, 1);
        let to = Date::from_ymd(2022, 2, 10);
        let ds = CertDataset::from_log(world.ct_log(), from, to, MatchRule::CnOrSan);
        assert!(!ds.is_empty());
        assert!(ds.records.iter().all(|r| r.date >= from && r.date <= to));
        assert!(ds
            .records
            .iter()
            .all(|r| r.domains.iter().any(|d| d.is_russian_cctld())));
        // In our generator CN == a Russian name, so CnOnly equals CnOrSan.
        let cn_only = CertDataset::from_log(world.ct_log(), from, to, MatchRule::CnOnly);
        assert_eq!(cn_only.len(), ds.len());
    }

    #[test]
    fn multi_log_dedup() {
        let mut world = World::new(WorldConfig::tiny());
        world.advance_to(Date::from_ymd(2022, 2, 1));
        let logs = world.ct_logs();
        assert_eq!(logs.len(), 2, "CAs submit to two logs");
        assert_eq!(
            logs[0].size(),
            logs[1].size(),
            "same submissions everywhere"
        );
        assert_ne!(logs[0].sth().signature, logs[1].sth().signature);
        let from = Date::from_ymd(2022, 1, 1);
        let to = Date::from_ymd(2022, 2, 1);
        let single = CertDataset::from_log(&logs[0], from, to, MatchRule::CnOrSan);
        let merged = CertDataset::from_logs(logs, from, to, MatchRule::CnOrSan);
        assert_eq!(
            merged.len(),
            single.len(),
            "dedup must collapse duplicate submissions"
        );
    }

    #[test]
    fn ip_scan_sees_served_chains_including_russian_ca() {
        let mut world = World::new(WorldConfig::tiny());
        world.advance_to(Date::from_ymd(2022, 4, 20));
        let mut scanner = IpScanner::new(&world);
        let snap = scanner.scan(&mut world);
        assert!(!snap.endpoints.is_empty(), "no TLS endpoints responded");
        assert_eq!(
            scanner.probes_sent(),
            snap.endpoints.len() as u64 + snap.silent()
        );

        // The scan must see Russian Trusted Root CA chains that CT lacks.
        let russian_served = snap
            .endpoints
            .iter()
            .filter(|(_, c)| c.chain_contains_org("Russian Trusted Root CA"))
            .count();
        assert!(russian_served > 0, "IP scan missed the Russian CA");
        let in_ct = CertDataset::from_log(
            world.ct_log(),
            Date::from_ymd(2022, 1, 1),
            Date::from_ymd(2022, 5, 25),
            MatchRule::CnOrSan,
        )
        .records
        .iter()
        .filter(|r| r.issuer_org == "Russian Trusted Root CA")
        .count();
        assert_eq!(in_ct, 0, "Russian CA must be absent from CT");
    }

    #[test]
    fn issuance_volume_tracks_period() {
        let mut world = World::new(WorldConfig::tiny());
        world.advance_to(Date::from_ymd(2022, 4, 30));
        let ds = CertDataset::from_log(
            world.ct_log(),
            Date::from_ymd(2022, 1, 1),
            Date::from_ymd(2022, 4, 30),
            MatchRule::CnOrSan,
        );
        let mut pre = 0u64;
        let mut after = 0u64;
        let mut pre_days = std::collections::HashSet::new();
        let mut after_days = std::collections::HashSet::new();
        for r in &ds.records {
            if Period::of(r.date) == Period::PreConflict {
                pre += 1;
                pre_days.insert(r.date);
            } else {
                after += 1;
                after_days.insert(r.date);
            }
        }
        let pre_rate = pre as f64 / pre_days.len().max(1) as f64;
        let post_rate = after as f64 / after_days.len().max(1) as f64;
        // §4: 130k/day pre-conflict vs 115k/day after — a mild decline.
        assert!(
            post_rate < pre_rate * 1.05,
            "issuance should not grow: pre {pre_rate:.1}/day post {post_rate:.1}/day"
        );
        assert!(post_rate > pre_rate * 0.5, "decline too sharp");
    }
}
