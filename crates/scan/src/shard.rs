//! Shard planning for the parallel sweep engine.
//!
//! A sweep's seed list is split into contiguous shards, one per worker.
//! Contiguity keeps the merge trivial — concatenating shard outputs in
//! shard order reproduces zone-snapshot order exactly — and the near-equal
//! sizes keep workers balanced (per-domain cost is dominated by the same
//! 2–3 queries everywhere, so size balance is load balance).

use std::ops::Range;

/// A shard plan: contiguous, non-overlapping index ranges covering
/// `0..len`, at most `workers` of them, sizes differing by at most one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<Range<usize>>,
}

impl ShardPlan {
    /// Plan `len` items across up to `workers` shards (empty shards are
    /// omitted, so fewer items than workers yields fewer shards).
    pub fn new(len: usize, workers: usize) -> ShardPlan {
        let workers = workers.max(1).min(len.max(1));
        let base = len / workers;
        let extra = len % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let size = base + usize::from(w < extra);
            if size == 0 {
                break;
            }
            ranges.push(start..start + size);
            start += size;
        }
        ShardPlan { ranges }
    }

    /// The planned ranges, in index order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of non-empty shards.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the plan has no shards (zero items).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_indices_in_order() {
        for len in [0usize, 1, 2, 7, 100, 101, 4096] {
            for workers in [1usize, 2, 3, 8, 64] {
                let plan = ShardPlan::new(len, workers);
                let mut next = 0;
                for r in plan.ranges() {
                    assert_eq!(r.start, next, "gap at {len}x{workers}");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len, "coverage at {len}x{workers}");
                assert!(plan.len() <= workers.max(1));
            }
        }
    }

    #[test]
    fn balanced_within_one() {
        let plan = ShardPlan::new(103, 8);
        let sizes: Vec<usize> = plan.ranges().iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 103);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let plan = ShardPlan::new(5, 0);
        assert_eq!(plan.ranges(), std::slice::from_ref(&(0..5)));
    }
}
