//! OpenINTEL-style daily active DNS measurement.
//!
//! > "The DNS measurements were provided by the OpenINTEL project, which
//! > uses daily zone file snapshots as seeds to actively query all
//! > registered domain names under a TLD for a selection of DNS resource
//! > records. The collected data include each domain's NS records …, as
//! > well as the A record resolution for both their name servers and apex
//! > domain. We geolocate each of the resulting IP addresses, using
//! > contemporaneous results from the IP2location service." — §2
//!
//! # The parallel engine and its determinism contract
//!
//! The real OpenINTEL pipeline resolves millions of names per day by
//! fanning the seed list out over a worker cluster. This engine does the
//! same in miniature: the zone snapshot's seed list is cut into contiguous
//! shards ([`crate::shard::ShardPlan`]), one scoped thread per shard, and
//! shard outputs are concatenated back in shard order — reproducing
//! zone-snapshot order exactly.
//!
//! The hard requirement is that the merged sweep is **byte-identical for
//! any worker count**, faults included. Three mechanisms deliver it:
//!
//! 1. *Per-domain measurement lanes.* Each domain resolves on its own
//!    [`ruwhere_netsim::Lane`] keyed by `(date, domain)` and starting at
//!    the sweep base instant, so loss, jitter and fault windows for a
//!    domain are a pure function of the network snapshot and the key —
//!    never of which worker ran it or when.
//! 2. *Warmup-primed resolver forks.* A prototype resolver resolves each
//!    TLD's NS set once (serially, before workers start); every per-domain
//!    resolver is a [`fork`](ruwhere_authdns::IterativeResolver::fork) of
//!    that primed snapshot with zeroed counters. Every domain therefore
//!    starts from identical caches and server-health state regardless of
//!    shard assignment.
//! 3. *Exactly-once shared NS cache.* NS-target A lookups go through the
//!    shared, sharded, date-scoped [`crate::nscache::NsCache`]; an entry
//!    is computed once per sweep, on its own lane keyed by `(date,
//!    ns-name)` from a fresh primed fork, and its query cost is charged
//!    exactly once. Which worker computes is scheduling-dependent; the
//!    value and the summed counters are not.
//!
//! Counters merge associatively (`virtual_elapsed_us` is the sum of all
//! lane times — the aggregate latency cost of the measurement), salvage
//! classification runs post-merge on the merged counters, and the
//! network's global clock advances to the deterministic maximum lane end.

use crate::nscache::{LookupCost, NsCache};
use crate::shard::ShardPlan;
use ruwhere_authdns::{
    IterativeResolver, NoDependencyCache, NsDependencyCache, Resolution, ResolveError,
};
use ruwhere_dns::{Name, RType};
use ruwhere_netsim::{NetStats, Network, SimTime};
use ruwhere_types::{Asn, Country, Date, DomainName};
use ruwhere_world::World;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::net::Ipv4Addr;

/// One resolved address with its measurement-time annotations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrInfo {
    /// The address.
    pub ip: Ipv4Addr,
    /// Country per the geolocation snapshot in force on the sweep date.
    pub country: Option<Country>,
    /// Origin AS per BGP-derived data.
    pub asn: Option<Asn>,
}

/// One domain's daily measurement record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainDay {
    /// The measured domain.
    pub domain: DomainName,
    /// NS RRset targets (name-server host names).
    pub ns_names: Vec<DomainName>,
    /// Resolved, annotated name-server addresses.
    pub ns_addrs: Vec<AddrInfo>,
    /// Resolved, annotated apex A records.
    pub apex_addrs: Vec<AddrInfo>,
}

impl DomainDay {
    /// Whether any name server resolved.
    pub fn has_ns_data(&self) -> bool {
        !self.ns_addrs.is_empty()
    }

    /// Whether the apex resolved.
    pub fn has_apex_data(&self) -> bool {
        !self.apex_addrs.is_empty()
    }
}

/// Whether a sweep's dataset is complete or was salvaged from a day of
/// heavy measurement failure (an infrastructure outage, Figure-1 style).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Completeness {
    /// The sweep resolved normally; failures are kept as unknown-bucket
    /// records.
    #[default]
    Full,
    /// The day's failure rate exceeded the salvage threshold: unresolved
    /// records were dropped, leaving only what actually measured. The raw
    /// daily total visibly dips — exactly how the real dataset records an
    /// outage day.
    Partial,
}

/// Aggregate counters for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Domains seeded from the zone snapshots.
    pub seeded: u64,
    /// Domains with a fully failed NS resolution.
    pub ns_failures: u64,
    /// Domains with a failed apex resolution.
    pub apex_failures: u64,
    /// Total DNS queries emitted.
    pub queries: u64,
    /// Virtual (simulated) time the sweep took, in microseconds, summed
    /// over every measurement lane — the latency cost of active
    /// measurement at this scale (cf. the OpenINTEL infrastructure
    /// paper's throughput engineering).
    pub virtual_elapsed_us: u64,
    /// Queries that timed out (per-cause failure accounting).
    pub timeouts: u64,
    /// Queries answered SERVFAIL.
    pub servfails: u64,
    /// Queries answered lamely.
    pub lame: u64,
    /// Failed exchanges charged to resolver retry budgets — the wasted
    /// query cost of server misbehaviour during this sweep.
    pub retries_spent: u64,
    /// NS-target address lookups served from the shared sweep cache.
    pub ns_cache_hits: u64,
    /// NS-target address lookups that had to resolve (one per distinct
    /// name-server host per sweep).
    pub ns_cache_misses: u64,
    /// Whether the sweep is full or a salvaged partial.
    pub completeness: Completeness,
}

/// One day's complete measurement output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DailySweep {
    /// Sweep date.
    pub date: Date,
    /// Per-domain records (zone-snapshot order).
    pub domains: Vec<DomainDay>,
    /// Counters.
    pub stats: SweepStats,
}

impl DailySweep {
    /// Whether this sweep was salvaged as partial (outage day).
    pub fn is_partial(&self) -> bool {
        self.stats.completeness == Completeness::Partial
    }
}

/// Default worker count: the machine's available parallelism.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Raw (pre-annotation) resolution output for one domain.
struct Raw {
    domain: DomainName,
    ns_names: Vec<DomainName>,
    ns_ips: Vec<Ipv4Addr>,
    apex_ips: Vec<Ipv4Addr>,
}

/// Per-worker counter accumulator; merged associatively post-join, so
/// totals are independent of how domains were sharded.
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    ns_failures: u64,
    apex_failures: u64,
    queries: u64,
    virtual_us: u64,
    timeouts: u64,
    servfails: u64,
    lame: u64,
    retries_spent: u64,
    ns_cache_hits: u64,
    ns_cache_misses: u64,
    net: NetStats,
    max_lane_end_us: u64,
}

impl Tally {
    fn merge(&mut self, other: &Tally) {
        self.ns_failures += other.ns_failures;
        self.apex_failures += other.apex_failures;
        self.queries += other.queries;
        self.virtual_us += other.virtual_us;
        self.timeouts += other.timeouts;
        self.servfails += other.servfails;
        self.lame += other.lame;
        self.retries_spent += other.retries_spent;
        self.ns_cache_hits += other.ns_cache_hits;
        self.ns_cache_misses += other.ns_cache_misses;
        self.net.merge(other.net);
        self.max_lane_end_us = self.max_lane_end_us.max(other.max_lane_end_us);
    }

    fn charge_cost(&mut self, cost: &LookupCost) {
        self.queries += cost.queries;
        self.virtual_us += cost.virtual_us;
        self.timeouts += cost.timeouts;
        self.servfails += cost.servfails;
        self.lame += cost.lame;
        self.retries_spent += cost.retries_spent;
        self.net.merge(cost.net);
        self.max_lane_end_us = self.max_lane_end_us.max(cost.lane_end_us);
    }
}

/// The sweep's [`NsDependencyCache`] implementation: routes the
/// resolver's internal out-of-bailiwick NS-target A lookups through the
/// shared sweep cache, so each hoster name server resolves exactly once
/// per sweep instead of once per customer domain. Costs and hit/miss
/// counts accumulate in a per-domain cell and are folded into the
/// worker's tally after each domain.
struct SharedDeps<'a> {
    net: &'a Network,
    primed: &'a IterativeResolver,
    cache: &'a NsCache,
    date: Date,
    tally: RefCell<Tally>,
}

impl NsDependencyCache for SharedDeps<'_> {
    fn ns_target_a(&self, name: &Name) -> Option<Vec<Ipv4Addr>> {
        let ns = name.to_domain_name()?;
        let hit = self.cache.get_or_compute(&ns, || {
            resolve_ns_target(self.net, self.primed, self.date, &ns)
        });
        let mut tally = self.tally.borrow_mut();
        match hit.computed {
            Some(cost) => {
                tally.ns_cache_misses += 1;
                tally.charge_cost(&cost);
            }
            None => tally.ns_cache_hits += 1,
        }
        if hit.ips.is_empty() {
            // The one-shot central resolution failed (its lane drew bad
            // loss). Don't condemn every domain behind this host to the
            // same draw — fall back to inline resolution on the calling
            // domain's own lane, mirroring how a stand-alone resolver
            // retries transient failures.
            return None;
        }
        Some(hit.ips)
    }
}

/// One measurement-level retry on *transient* resolution errors
/// (timeout / SERVFAIL / budget exhaustion), on the same lane with the
/// same resolver. The pipeline's retry policy: a failed walk leaves the
/// resolver's cut cache deepened, so the retry resumes at the failed
/// stage and re-rolls only that exchange — cheap, and deterministic
/// because the lane's loss stream is a pure function of its key and
/// consumed sequence. Persistent failures (NXDOMAIN, lame delegations,
/// dead server sets) are negative-cached by the resolver, so retrying
/// them is a free no-op and we don't special-case them here.
fn resolve_with_retry<T: ruwhere_netsim::Transport>(
    resolver: &mut IterativeResolver,
    lane: &mut T,
    qname: &Name,
    rtype: RType,
    deps: &dyn NsDependencyCache,
) -> Result<Resolution, ResolveError> {
    match resolver.resolve_with_cache(lane, qname, rtype, deps) {
        Err(ResolveError::Timeout | ResolveError::ServFail | ResolveError::BudgetExhausted) => {
            resolver.resolve_with_cache(lane, qname, rtype, deps)
        }
        r => r,
    }
}

/// Resolve one NS-target host to addresses on its own `(date, name)` lane
/// with a fresh primed fork — a pure function of the sweep-start snapshot,
/// so the cached value is identical no matter which worker computes it.
fn resolve_ns_target(
    net: &Network,
    primed: &IterativeResolver,
    date: Date,
    ns: &DomainName,
) -> (Vec<Ipv4Addr>, LookupCost) {
    let mut lane = net.lane(&format!("ns:{date}/{ns}"));
    let mut resolver = primed.fork();
    let ips = match resolve_with_retry(
        &mut resolver,
        &mut lane,
        &Name::from(ns),
        RType::A,
        &NoDependencyCache,
    ) {
        Ok(res) => res.addresses(),
        Err(_) => Vec::new(),
    };
    let causes = resolver.stats();
    let cost = LookupCost {
        queries: resolver.queries_sent(),
        virtual_us: lane.elapsed_us(),
        timeouts: causes.timeouts,
        servfails: causes.servfails,
        lame: causes.lame,
        retries_spent: causes.retries_spent,
        net: lane.stats(),
        lane_end_us: lane.now().as_micros(),
    };
    (ips, cost)
}

/// Measure one domain: NS set, NS-target addresses (through the shared
/// cache), apex A — all on the domain's own `(date, domain)` lane with a
/// fresh primed fork.
fn measure_domain(
    domain: &DomainName,
    date: Date,
    net: &Network,
    primed: &IterativeResolver,
    ns_cache: &NsCache,
    tally: &mut Tally,
) -> Raw {
    let mut lane = net.lane(&format!("{date}/{domain}"));
    let mut resolver = primed.fork();
    let qname = Name::from(domain);
    let deps = SharedDeps {
        net,
        primed,
        cache: ns_cache,
        date,
        tally: RefCell::new(Tally::default()),
    };

    let ns_names: Vec<DomainName> =
        match resolve_with_retry(&mut resolver, &mut lane, &qname, RType::Ns, &deps) {
            Ok(res) => res
                .ns_targets()
                .iter()
                .filter_map(|n| n.to_domain_name())
                .collect(),
            Err(_) => Vec::new(),
        };
    if ns_names.is_empty() {
        tally.ns_failures += 1;
    }

    let mut ns_ips: Vec<Ipv4Addr> = Vec::new();
    for ns in &ns_names {
        let hit = ns_cache.get_or_compute(ns, || resolve_ns_target(net, primed, date, ns));
        match hit.computed {
            Some(cost) => {
                tally.ns_cache_misses += 1;
                tally.charge_cost(&cost);
            }
            None => tally.ns_cache_hits += 1,
        }
        ns_ips.extend(hit.ips);
    }
    ns_ips.sort_unstable();
    ns_ips.dedup();

    let apex_ips = match resolve_with_retry(&mut resolver, &mut lane, &qname, RType::A, &deps) {
        Ok(res) => res.addresses(),
        Err(_) => Vec::new(),
    };
    if apex_ips.is_empty() {
        tally.apex_failures += 1;
    }

    tally.merge(&deps.tally.into_inner());
    tally.queries += resolver.queries_sent();
    let causes = resolver.stats();
    tally.timeouts += causes.timeouts;
    tally.servfails += causes.servfails;
    tally.lame += causes.lame;
    tally.retries_spent += causes.retries_spent;
    tally.virtual_us += lane.elapsed_us();
    tally.max_lane_end_us = tally.max_lane_end_us.max(lane.now().as_micros());
    tally.net.merge(lane.stats());

    Raw {
        domain: domain.clone(),
        ns_names,
        ns_ips,
        apex_ips,
    }
}

/// The sweep engine. Owns the prototype resolver, the worker-count knob
/// and the shared NS-target cache; create once, call
/// [`OpenIntelScanner::sweep`] per measurement day.
pub struct OpenIntelScanner {
    resolver: IterativeResolver,
    /// NS-failure-rate threshold above which a day is salvaged as a
    /// [`Completeness::Partial`] sweep instead of kept whole. Chosen well
    /// above ordinary packet-loss attrition so only genuine infrastructure
    /// faults trip it.
    partial_threshold: f64,
    workers: usize,
    ns_cache: NsCache,
    total_queries: u64,
}

impl OpenIntelScanner {
    /// Build a scanner homed at the world's measurement vantage, with one
    /// worker per available core.
    pub fn new(world: &World) -> Self {
        OpenIntelScanner {
            resolver: IterativeResolver::new(world.scanner_ip(), world.root_hints()),
            partial_threshold: 0.5,
            workers: available_workers(),
            ns_cache: NsCache::new(),
            total_queries: 0,
        }
    }

    /// Override the partial-sweep salvage threshold (fraction of seeded
    /// domains whose NS resolution must fail before the day is marked
    /// partial).
    pub fn set_partial_threshold(&mut self, threshold: f64) {
        self.partial_threshold = threshold.clamp(0.0, 1.0);
    }

    /// Set the sweep worker count (clamped to at least one). Output is
    /// byte-identical for every value; this knob trades wall-clock time
    /// only.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared NS-target cache (diagnostics/tests).
    pub fn ns_cache(&self) -> &NsCache {
        &self.ns_cache
    }

    /// Run one full sweep at the world's current date.
    ///
    /// Publishes fresh TLD zone snapshots (the daily zone transfer), clears
    /// resolver caches and rebinds the NS cache to the day (a new
    /// measurement day re-observes everything), warms a prototype resolver
    /// on the TLD cuts, then fans the seed list out over the worker pool
    /// and merges shard outputs deterministically.
    pub fn sweep(&mut self, world: &mut World) -> DailySweep {
        let date = world.today();
        world.publish_tld_zones();
        self.resolver.clear_cache();
        self.ns_cache.begin_sweep(date);
        let seeds = world.seed_names();

        let mut stats = SweepStats {
            seeded: seeds.len() as u64,
            ..SweepStats::default()
        };

        // Warmup: prime one resolver on the TLD cuts, serially, before any
        // worker exists. Every per-domain resolver forks from this primed
        // snapshot, so per-domain state is identical for any sharding.
        //
        // Walking each TLD's NS query plants the TLD cut (from the root's
        // referral) in the prototype's cut cache, so per-domain forks
        // start one referral deep instead of at the root. Where a TLD
        // zone publishes an apex NS RRset we additionally resolve the
        // server addresses and seed the cut with the complete rotation;
        // zones that answer NoData at the apex keep the referral glue.
        let mut primed = self.resolver.fork();
        let mut total = Tally::default();
        {
            let net = world.network();
            let mut lane = net.lane(&format!("{date}/warmup"));
            let mut tlds: Vec<&str> = seeds.iter().map(|d| d.tld()).collect();
            tlds.sort_unstable();
            tlds.dedup();
            for tld in tlds {
                let Ok(tld_name) = Name::from_labels([tld]) else {
                    continue;
                };
                let targets = match primed.resolve(&mut lane, &tld_name, RType::Ns) {
                    Ok(res) => res.ns_targets(),
                    Err(_) => Vec::new(),
                };
                let mut addrs: Vec<Ipv4Addr> = Vec::new();
                for t in &targets {
                    if let Ok(res) = primed.resolve(&mut lane, t, RType::A) {
                        addrs.extend(res.addresses());
                    }
                }
                addrs.sort_unstable();
                addrs.dedup();
                primed.seed_cut(tld_name, addrs);
            }
            let causes = primed.stats();
            total.queries = primed.queries_sent();
            total.timeouts = causes.timeouts;
            total.servfails = causes.servfails;
            total.lame = causes.lame;
            total.retries_spent = causes.retries_spent;
            total.virtual_us = lane.elapsed_us();
            total.max_lane_end_us = lane.now().as_micros();
            total.net = lane.stats();
        }

        // Fan out: contiguous shards, one scoped worker each, merged back
        // in shard order (= zone-snapshot order).
        let plan = ShardPlan::new(seeds.len(), self.workers);
        let net: &Network = world.network();
        let primed_ref = &primed;
        let ns_cache = &self.ns_cache;
        let seeds_ref = &seeds;
        let shard_outputs: Vec<(Vec<Raw>, Tally)> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = plan
                .ranges()
                .iter()
                .cloned()
                .map(|range| {
                    s.spawn(move |_| {
                        let mut tally = Tally::default();
                        let mut raws = Vec::with_capacity(range.len());
                        for idx in range {
                            raws.push(measure_domain(
                                &seeds_ref[idx],
                                date,
                                net,
                                primed_ref,
                                ns_cache,
                                &mut tally,
                            ));
                        }
                        (raws, tally)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
        .expect("sweep worker pool");

        let mut raw: Vec<Raw> = Vec::with_capacity(seeds.len());
        for (raws, tally) in shard_outputs {
            total.merge(&tally);
            raw.extend(raws);
        }

        stats.ns_failures = total.ns_failures;
        stats.apex_failures = total.apex_failures;
        stats.queries = total.queries;
        stats.virtual_elapsed_us = total.virtual_us;
        stats.timeouts = total.timeouts;
        stats.servfails = total.servfails;
        stats.lame = total.lame;
        stats.retries_spent = total.retries_spent;
        stats.ns_cache_hits = total.ns_cache_hits;
        stats.ns_cache_misses = total.ns_cache_misses;
        self.total_queries += total.queries;

        // The world's clock advances to the deterministic end of the
        // slowest lane, and the lanes' transport counters fold into the
        // network's globals.
        world
            .network_mut()
            .advance_to_time(SimTime::ZERO.plus_us(total.max_lane_end_us));
        world.network_mut().absorb_lane_stats(total.net);

        // Gap salvage: a day where most NS resolutions failed is not a
        // usable full snapshot (the real pipeline records such days as
        // gaps, cf. the 2021-03-22 .ru outage in Figure 1). Keep whatever
        // actually measured, drop the rest, and flag the sweep partial so
        // downstream analyses can impute rather than misread the dip as
        // mass domain deletion. Runs post-merge on merged counters, so the
        // classification is worker-count-independent too.
        if stats.seeded > 0
            && stats.ns_failures as f64 / stats.seeded as f64 > self.partial_threshold
        {
            stats.completeness = Completeness::Partial;
            raw.retain(|r| !r.ns_ips.is_empty() || !r.apex_ips.is_empty());
        }

        // Annotation pass (immutable world reads).
        let geo = world.geo().snapshot_at(date);
        let topo = world.network().topology();
        let annotate = |ips: &[Ipv4Addr]| -> Vec<AddrInfo> {
            ips.iter()
                .map(|&ip| AddrInfo {
                    ip,
                    country: geo.and_then(|g| g.lookup(ip)),
                    asn: topo.asn_of(ip),
                })
                .collect()
        };
        let domains = raw
            .into_iter()
            .map(|r| DomainDay {
                ns_addrs: annotate(&r.ns_ips),
                apex_addrs: annotate(&r.apex_ips),
                domain: r.domain,
                ns_names: r.ns_names,
            })
            .collect();

        DailySweep {
            date,
            domains,
            stats,
        }
    }

    /// Total queries the scanner has sent since construction (summed over
    /// all sweeps, warmup and cache fills included).
    pub fn queries_sent(&self) -> u64 {
        self.total_queries + self.resolver.queries_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_world::WorldConfig;

    #[test]
    fn sweep_measures_tiny_world() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        let sweep = scanner.sweep(&mut world);

        assert_eq!(sweep.date, world.today());
        assert_eq!(sweep.domains.len() as u64, sweep.stats.seeded);
        assert!(sweep.stats.seeded > 400);
        // The overwhelming majority of a healthy world resolves.
        let resolved = sweep.domains.iter().filter(|d| d.has_ns_data()).count();
        assert!(
            resolved as f64 > sweep.domains.len() as f64 * 0.95,
            "only {resolved}/{} resolved",
            sweep.domains.len()
        );
        // Annotations are present.
        let with_geo = sweep
            .domains
            .iter()
            .flat_map(|d| &d.apex_addrs)
            .filter(|a| a.country.is_some() && a.asn.is_some())
            .count();
        assert!(with_geo > 0);
        assert!(sweep.stats.queries > 0);
        // The sweep consumed virtual time (network latency is being paid).
        assert!(sweep.stats.virtual_elapsed_us > 0);
        // The shared NS cache deduplicated hoster name servers.
        assert!(sweep.stats.ns_cache_hits > 0);
        assert!(sweep.stats.ns_cache_misses > 0);
        assert!(sweep.stats.ns_cache_hits + sweep.stats.ns_cache_misses >= sweep.stats.seeded);
    }

    #[test]
    fn sweep_matches_ground_truth_for_sample() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        let sweep = scanner.sweep(&mut world);

        let mut checked = 0;
        for rec in sweep.domains.iter().take(50) {
            if let Some(truth) = world.domain_state(&rec.domain) {
                if rec.has_apex_data() {
                    assert!(
                        rec.apex_addrs
                            .iter()
                            .any(|a| a.ip == truth.hosting.primary_ip),
                        "{}: measured {:?}, truth {}",
                        rec.domain,
                        rec.apex_addrs,
                        truth.hosting.primary_ip
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "too few ground-truth comparisons: {checked}");
    }

    #[test]
    fn consecutive_sweeps_observe_change() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        let s1 = scanner.sweep(&mut world);
        world.advance_to(world.today().add_days(30));
        let s2 = scanner.sweep(&mut world);
        assert_eq!(s2.date - s1.date, 30);
        // Churn means the seed sets differ a little.
        let set1: std::collections::HashSet<_> =
            s1.domains.iter().map(|d| d.domain.clone()).collect();
        let set2: std::collections::HashSet<_> =
            s2.domains.iter().map(|d| d.domain.clone()).collect();
        assert!(set1 != set2, "thirty days without any churn is implausible");
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let sweep_with = |workers: usize| {
            let mut world = World::new(WorldConfig::tiny());
            let mut scanner = OpenIntelScanner::new(&world);
            scanner.set_workers(workers);
            scanner.sweep(&mut world)
        };
        let serial = sweep_with(1);
        let parallel = sweep_with(4);
        assert_eq!(serial, parallel, "4-worker sweep diverged from 1-worker");
    }

    #[test]
    fn ns_cache_is_rebound_per_sweep_date() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        scanner.sweep(&mut world);
        let d1 = scanner.ns_cache().date();
        assert_eq!(d1, Some(world.today()));
        let filled = scanner.ns_cache().len();
        assert!(filled > 0, "sweep must populate the NS cache");
        world.advance_to(world.today().add_days(1));
        scanner.sweep(&mut world);
        assert_eq!(scanner.ns_cache().date(), Some(world.today()));
        assert_ne!(d1, scanner.ns_cache().date());
    }
}
