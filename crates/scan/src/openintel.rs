//! OpenINTEL-style daily active DNS measurement.
//!
//! > "The DNS measurements were provided by the OpenINTEL project, which
//! > uses daily zone file snapshots as seeds to actively query all
//! > registered domain names under a TLD for a selection of DNS resource
//! > records. The collected data include each domain's NS records …, as
//! > well as the A record resolution for both their name servers and apex
//! > domain. We geolocate each of the resulting IP addresses, using
//! > contemporaneous results from the IP2location service." — §2
//!
//! # The parallel engine and its determinism contract
//!
//! The real OpenINTEL pipeline resolves millions of names per day by
//! fanning the seed list out over a worker cluster. This engine does the
//! same in miniature: the zone snapshot's seed list is cut into contiguous
//! shards ([`crate::shard::ShardPlan`]), one scoped thread per shard, and
//! shard outputs are concatenated back in shard order — reproducing
//! zone-snapshot order exactly.
//!
//! The hard requirement is that the merged sweep is **byte-identical for
//! any worker count**, faults included. Three mechanisms deliver it:
//!
//! 1. *Per-domain measurement lanes.* Each domain resolves on its own
//!    [`ruwhere_netsim::Lane`] keyed by `(date, domain)` and starting at
//!    the sweep base instant, so loss, jitter and fault windows for a
//!    domain are a pure function of the network snapshot and the key —
//!    never of which worker ran it or when.
//! 2. *Warmup-primed resolver forks.* A prototype resolver resolves each
//!    TLD's NS set once (serially, before workers start); every per-domain
//!    resolver is a [`fork`](ruwhere_authdns::IterativeResolver::fork) of
//!    that primed snapshot with zeroed counters. Every domain therefore
//!    starts from identical caches and server-health state regardless of
//!    shard assignment.
//! 3. *Exactly-once shared NS cache.* NS-target A lookups go through the
//!    shared, sharded, date-scoped [`crate::nscache::NsCache`]; an entry
//!    is computed once per sweep, on its own lane keyed by `(date,
//!    ns-name)` from a fresh primed fork, and its query cost is charged
//!    exactly once. Which worker computes is scheduling-dependent; the
//!    value and the summed counters are not.
//!
//! Counters merge associatively (`virtual_elapsed_us` is the sum of all
//! lane times — the aggregate latency cost of the measurement), salvage
//! classification runs post-merge on the merged counters, and the
//! network's global clock advances to the deterministic maximum lane end.
//!
//! # The columnar data plane
//!
//! The engine's native output is a [`SweepFrame`] — the columnar
//! (struct-of-arrays) sweep representation from [`ruwhere_store`] —
//! built by [`OpenIntelScanner::sweep_frame`]. Symbol assignment follows
//! the store's determinism rules: the full seed list is interned
//! *serially, in zone-snapshot order, before any worker starts*, and
//! names/countries discovered during measurement are interned by the
//! sequential post-merge frame-build pass. [`OpenIntelScanner::sweep`]
//! remains as the row-view entry point; it materialises the frame through
//! [`SweepFrame::to_daily_sweep`], so both views are identical by
//! construction.

use crate::error::ScanError;
use crate::metrics::{fail_key, keys, SweepMetrics};
use crate::nscache::{LookupCost, NsCache};
use crate::scanner::Scanner;
use crate::shard::ShardPlan;
use ruwhere_authdns::{
    IterativeResolver, NoDependencyCache, NsDependencyCache, Resolution, ResolveError,
};
use ruwhere_dns::{Name, RType};
use ruwhere_netsim::{NetStats, Network, SimTime};
use ruwhere_obs::Recorder;
use ruwhere_store::{FrameBuilder, Interner, SweepFrame};
use ruwhere_types::{Date, DomainName};
use ruwhere_world::World;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::sync::Arc;

pub use ruwhere_store::{AddrInfo, Completeness, DailySweep, DomainDay, SweepStats};

/// Environment variable overriding the default sweep worker count.
pub const WORKERS_ENV: &str = "RUWHERE_WORKERS";

/// Environment variable supplying a default study checkpoint directory
/// (same precedence shape as [`WORKERS_ENV`]: an explicit
/// `--checkpoint-dir` flag beats the variable; a missing or empty
/// variable means no checkpointing).
pub const CHECKPOINT_DIR_ENV: &str = "RUWHERE_CHECKPOINT_DIR";

/// The checkpoint directory named by [`CHECKPOINT_DIR_ENV`], if the
/// variable is set and non-empty.
pub fn default_checkpoint_dir() -> Option<std::path::PathBuf> {
    std::env::var(CHECKPOINT_DIR_ENV)
        .ok()
        .map(|v| v.trim().to_owned())
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}

/// Default worker count.
///
/// Precedence (documented in DESIGN.md §9): an explicit
/// [`SweepOptions::workers`] call beats everything; absent that, a
/// positive integer in `RUWHERE_WORKERS` beats the machine's available
/// parallelism; a missing or unparsable variable falls through to
/// `available_parallelism` (or 1 if even that is unknown). Output is
/// byte-identical for every value — the knob trades wall-clock time only.
pub fn available_workers() -> usize {
    if let Some(n) = std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sweep-engine configuration, built fluently and handed to
/// [`OpenIntelScanner::with_options`].
///
/// Replaces the old `set_workers` / `set_partial_threshold` mutators: a
/// scanner's configuration is fixed at construction, so a long-lived
/// scanner cannot change semantics between sweeps of one experiment.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    workers: usize,
    partial_threshold: f64,
    collect_metrics: bool,
    interner: Option<Arc<Interner>>,
    panic_inject: Option<PanicInject>,
}

/// Deterministic worker-panic injection (crash-harness knob): panic
/// inside [`measure_domain`] for domains whose name contains `marker`,
/// at most `budget` times across the scanner's lifetime.
#[derive(Debug, Clone)]
struct PanicInject {
    marker: String,
    budget: Arc<std::sync::atomic::AtomicU32>,
}

impl PanicInject {
    fn maybe_panic(&self, domain: &DomainName) {
        use std::sync::atomic::Ordering;
        if !self.marker.is_empty() && !domain.to_string().contains(&self.marker) {
            return;
        }
        if self
            .budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
        {
            panic!("injected worker panic while measuring {domain}");
        }
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions::new()
    }
}

impl SweepOptions {
    /// Defaults: [`available_workers`] workers (which honors
    /// `RUWHERE_WORKERS`), a 0.5 salvage threshold, metrics on, and a
    /// fresh private symbol interner.
    pub fn new() -> Self {
        SweepOptions {
            workers: available_workers(),
            partial_threshold: 0.5,
            collect_metrics: true,
            interner: None,
            panic_inject: None,
        }
    }

    /// Set the worker count (clamped to at least one). Takes precedence
    /// over the `RUWHERE_WORKERS` environment override.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the partial-sweep salvage threshold (fraction of seeded
    /// domains whose NS resolution must fail before the day is marked
    /// [`Completeness::Partial`]; clamped to `[0, 1]`).
    pub fn partial_threshold(mut self, threshold: f64) -> Self {
        self.partial_threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// Enable or disable metric collection. Disabling empties
    /// [`DailySweep::metrics`] and skips every instrumentation branch in
    /// the network engine and resolver — the uninstrumented baseline of
    /// the overhead benchmark.
    pub fn collect_metrics(mut self, on: bool) -> Self {
        self.collect_metrics = on;
        self
    }

    /// Share an existing symbol [`Interner`] with the scanner. A study
    /// passes one interner to every scanner (and to the analysis engine)
    /// so symbols stay comparable across days; when unset, the scanner
    /// creates a private one.
    pub fn interner(mut self, interner: Arc<Interner>) -> Self {
        self.interner = Some(interner);
        self
    }

    /// Crash-injection knob: make the worker measuring any domain whose
    /// name contains `marker` panic, at most `times` times over the
    /// scanner's lifetime (an empty marker matches every domain). Drives
    /// the panic-isolation tests and the crash harness; panicked shards
    /// are retried once by the supervisor and degrade into a gap-aware
    /// partial sweep if lost for good — the study never aborts.
    pub fn inject_worker_panic(mut self, marker: &str, times: u32) -> Self {
        self.panic_inject = Some(PanicInject {
            marker: marker.to_owned(),
            budget: Arc::new(std::sync::atomic::AtomicU32::new(times)),
        });
        self
    }
}

/// Raw (pre-annotation) resolution output for one domain.
struct Raw {
    domain: DomainName,
    ns_names: Vec<DomainName>,
    ns_ips: Vec<Ipv4Addr>,
    apex_ips: Vec<Ipv4Addr>,
}

/// Per-worker counter accumulator; merged associatively post-join, so
/// totals are independent of how domains were sharded.
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    ns_failures: u64,
    apex_failures: u64,
    queries: u64,
    virtual_us: u64,
    timeouts: u64,
    servfails: u64,
    lame: u64,
    retries_spent: u64,
    ns_cache_hits: u64,
    ns_cache_misses: u64,
    net: NetStats,
    max_lane_end_us: u64,
}

impl Tally {
    fn merge(&mut self, other: &Tally) {
        self.ns_failures += other.ns_failures;
        self.apex_failures += other.apex_failures;
        self.queries += other.queries;
        self.virtual_us += other.virtual_us;
        self.timeouts += other.timeouts;
        self.servfails += other.servfails;
        self.lame += other.lame;
        self.retries_spent += other.retries_spent;
        self.ns_cache_hits += other.ns_cache_hits;
        self.ns_cache_misses += other.ns_cache_misses;
        self.net.merge(other.net);
        self.max_lane_end_us = self.max_lane_end_us.max(other.max_lane_end_us);
    }

    fn charge_cost(&mut self, cost: &LookupCost) {
        self.queries += cost.queries;
        self.virtual_us += cost.virtual_us;
        self.timeouts += cost.timeouts;
        self.servfails += cost.servfails;
        self.lame += cost.lame;
        self.retries_spent += cost.retries_spent;
        self.net.merge(cost.net);
        self.max_lane_end_us = self.max_lane_end_us.max(cost.lane_end_us);
    }
}

/// Shared, immutable per-sweep context handed to every worker: the
/// network snapshot, the warmup-primed prototype resolver, the shared NS
/// cache, the sweep date and the metric-collection switch.
struct SweepCtx<'a> {
    net: &'a Network,
    primed: &'a IterativeResolver,
    cache: &'a NsCache,
    date: Date,
    collect: bool,
    panic_inject: Option<&'a PanicInject>,
}

/// The sweep's [`NsDependencyCache`] implementation: routes the
/// resolver's internal out-of-bailiwick NS-target A lookups through the
/// shared sweep cache, so each hoster name server resolves exactly once
/// per sweep instead of once per customer domain. Costs and hit/miss
/// counts accumulate in a per-domain cell and are folded into the
/// worker's tally (and metric section) after each domain.
struct SharedDeps<'a> {
    ctx: &'a SweepCtx<'a>,
    acc: RefCell<(Tally, SweepMetrics)>,
}

impl NsDependencyCache for SharedDeps<'_> {
    fn ns_target_a(&self, name: &Name) -> Option<Vec<Ipv4Addr>> {
        let ns = name.to_domain_name()?;
        let hit = self
            .ctx
            .cache
            .get_or_compute(&ns, || resolve_ns_target(self.ctx, &ns));
        let mut acc = self.acc.borrow_mut();
        let (tally, metrics) = &mut *acc;
        match hit.computed {
            Some(cost) => {
                tally.ns_cache_misses += 1;
                tally.charge_cost(&cost);
                if self.ctx.collect {
                    metrics.net.merge(&cost.net_obs);
                    metrics.resolver.merge(&cost.resolver_obs);
                }
            }
            None => tally.ns_cache_hits += 1,
        }
        if hit.ips.is_empty() {
            // The one-shot central resolution failed (its lane drew bad
            // loss). Don't condemn every domain behind this host to the
            // same draw — fall back to inline resolution on the calling
            // domain's own lane, mirroring how a stand-alone resolver
            // retries transient failures.
            return None;
        }
        Some(hit.ips)
    }
}

/// One measurement-level retry on *transient* resolution errors
/// (timeout / SERVFAIL / budget exhaustion), on the same lane with the
/// same resolver. The pipeline's retry policy: a failed walk leaves the
/// resolver's cut cache deepened, so the retry resumes at the failed
/// stage and re-rolls only that exchange — cheap, and deterministic
/// because the lane's loss stream is a pure function of its key and
/// consumed sequence. Persistent failures (NXDOMAIN, lame delegations,
/// dead server sets) are negative-cached by the resolver, so retrying
/// them is a free no-op and we don't special-case them here.
fn resolve_with_retry<T: ruwhere_netsim::Transport>(
    resolver: &mut IterativeResolver,
    lane: &mut T,
    qname: &Name,
    rtype: RType,
    deps: &dyn NsDependencyCache,
) -> Result<Resolution, ResolveError> {
    match resolver.resolve_with_cache(lane, qname, rtype, deps) {
        Err(ResolveError::Timeout | ResolveError::ServFail | ResolveError::BudgetExhausted) => {
            resolver.resolve_with_cache(lane, qname, rtype, deps)
        }
        r => r,
    }
}

/// Resolve one NS-target host to addresses on its own `(date, name)` lane
/// with a fresh primed fork — a pure function of the sweep-start snapshot,
/// so the cached value is identical no matter which worker computes it.
fn resolve_ns_target(ctx: &SweepCtx<'_>, ns: &DomainName) -> (Vec<Ipv4Addr>, LookupCost) {
    let mut lane = ctx.net.lane(&format!("ns:{}/{}", ctx.date, ns));
    let mut resolver = ctx.primed.fork();
    let ips = match resolve_with_retry(
        &mut resolver,
        &mut lane,
        &Name::from(ns),
        RType::A,
        &NoDependencyCache,
    ) {
        Ok(res) => res.addresses(),
        Err(_) => Vec::new(),
    };
    let causes = resolver.stats();
    let cost = LookupCost {
        queries: resolver.queries_sent(),
        virtual_us: lane.elapsed_us(),
        timeouts: causes.timeouts,
        servfails: causes.servfails,
        lame: causes.lame,
        retries_spent: causes.retries_spent,
        net: lane.stats(),
        lane_end_us: lane.now().as_micros(),
        net_obs: lane.take_obs(),
        resolver_obs: resolver.take_obs(),
    };
    (ips, cost)
}

/// Measure one domain: NS set, NS-target addresses (through the shared
/// cache), apex A — all on the domain's own `(date, domain)` lane with a
/// fresh primed fork. Failure latencies are recorded per cause into the
/// worker's metric section; the span clock is the lane's virtual time, so
/// the recorded values are as deterministic as the measurement itself.
fn measure_domain(
    domain: &DomainName,
    ctx: &SweepCtx<'_>,
    tally: &mut Tally,
    metrics: &mut SweepMetrics,
) -> Raw {
    if let Some(inject) = ctx.panic_inject {
        inject.maybe_panic(domain);
    }
    let mut lane = ctx.net.lane(&format!("{}/{}", ctx.date, domain));
    let mut resolver = ctx.primed.fork();
    if ctx.collect {
        // Thread the worker's accumulators through this domain's lane and
        // fork: records land directly in the running totals, avoiding a
        // per-domain histogram allocation + merge. Every record is a
        // commutative integer fold, so the totals are byte-identical to
        // the merge-per-domain formulation.
        lane.install_obs(std::mem::take(&mut metrics.net));
        resolver.install_obs(std::mem::take(&mut metrics.resolver));
    }
    let qname = Name::from(domain);
    let deps = SharedDeps {
        ctx,
        acc: RefCell::new((Tally::default(), SweepMetrics::default())),
    };

    let ns_span = Recorder::span(lane.elapsed_us());
    let ns_names: Vec<DomainName> =
        match resolve_with_retry(&mut resolver, &mut lane, &qname, RType::Ns, &deps) {
            Ok(res) => res
                .ns_targets()
                .iter()
                .filter_map(|n| n.to_domain_name())
                .collect(),
            Err(e) => {
                if ctx.collect {
                    let key = fail_key(ScanError::from(e).category());
                    ns_span.end(&mut metrics.causes, key, lane.elapsed_us());
                }
                Vec::new()
            }
        };
    if ns_names.is_empty() {
        tally.ns_failures += 1;
    }

    let mut ns_ips: Vec<Ipv4Addr> = Vec::new();
    for ns in &ns_names {
        let hit = ctx.cache.get_or_compute(ns, || resolve_ns_target(ctx, ns));
        match hit.computed {
            Some(cost) => {
                tally.ns_cache_misses += 1;
                tally.charge_cost(&cost);
                if ctx.collect {
                    // `metrics.net`/`.resolver` are installed in the lane
                    // and fork right now, so charge the cache-miss obs
                    // into the deps accumulator merged below.
                    let mut acc = deps.acc.borrow_mut();
                    acc.1.net.merge(&cost.net_obs);
                    acc.1.resolver.merge(&cost.resolver_obs);
                }
            }
            None => tally.ns_cache_hits += 1,
        }
        ns_ips.extend(hit.ips);
    }
    ns_ips.sort_unstable();
    ns_ips.dedup();

    let apex_span = Recorder::span(lane.elapsed_us());
    let apex_ips = match resolve_with_retry(&mut resolver, &mut lane, &qname, RType::A, &deps) {
        Ok(res) => res.addresses(),
        Err(e) => {
            if ctx.collect {
                let key = fail_key(ScanError::from(e).category());
                apex_span.end(&mut metrics.causes, key, lane.elapsed_us());
            }
            Vec::new()
        }
    };
    if apex_ips.is_empty() {
        tally.apex_failures += 1;
    }

    let (deps_tally, deps_metrics) = deps.acc.into_inner();
    tally.merge(&deps_tally);
    tally.queries += resolver.queries_sent();
    let causes = resolver.stats();
    tally.timeouts += causes.timeouts;
    tally.servfails += causes.servfails;
    tally.lame += causes.lame;
    tally.retries_spent += causes.retries_spent;
    tally.virtual_us += lane.elapsed_us();
    tally.max_lane_end_us = tally.max_lane_end_us.max(lane.now().as_micros());
    tally.net.merge(lane.stats());
    if ctx.collect {
        metrics.net = lane.take_obs();
        metrics.resolver = resolver.take_obs();
        metrics.merge(&deps_metrics);
        if !ns_names.is_empty() {
            metrics.causes.record(keys::OK_US, lane.elapsed_us());
        }
    }

    Raw {
        domain: domain.clone(),
        ns_names,
        ns_ips,
        apex_ips,
    }
}

/// Degrade a twice-panicked shard into gap records: every domain in the
/// range becomes an empty [`Raw`] counted as an NS *and* apex failure
/// under the `worker_lost` cause, feeding the same per-cause salvage
/// path an outage day uses. Whatever the dead worker had measured is
/// gone — the gap is explicit, never silently half-reported.
fn lost_shard_output(
    range: std::ops::Range<usize>,
    seeds: &[DomainName],
    collect: bool,
) -> (Vec<Raw>, Tally, SweepMetrics) {
    let mut tally = Tally::default();
    let mut metrics = SweepMetrics::default();
    let mut raws = Vec::with_capacity(range.len());
    let lost_key = fail_key(ScanError::WorkerLost.category());
    for idx in range {
        tally.ns_failures += 1;
        tally.apex_failures += 1;
        if collect {
            // No lane ran for this record: the loss is an accounting
            // event, recorded at zero virtual time.
            metrics.causes.record(lost_key, 0);
        }
        raws.push(Raw {
            domain: seeds[idx].clone(),
            ns_names: Vec::new(),
            ns_ips: Vec::new(),
            apex_ips: Vec::new(),
        });
    }
    if collect {
        metrics.causes.add(keys::DOMAINS_LOST, raws.len() as u64);
    }
    (raws, tally, metrics)
}

/// The sweep engine. Owns the prototype resolver, the worker-count knob
/// and the shared NS-target cache; create once, call
/// [`OpenIntelScanner::sweep`] per measurement day.
pub struct OpenIntelScanner {
    resolver: IterativeResolver,
    opts: SweepOptions,
    ns_cache: NsCache,
    interner: Arc<Interner>,
    total_queries: u64,
    /// Per-shard query counts of the most recent sweep. Deliberately a
    /// scanner-side diagnostic, NOT part of [`DailySweep`]: how queries
    /// split across shards depends on the worker count, and everything a
    /// sweep returns must be worker-count-independent.
    last_shard_queries: Vec<u64>,
}

impl OpenIntelScanner {
    /// Build a scanner homed at the world's measurement vantage with
    /// default [`SweepOptions`].
    pub fn new(world: &World) -> Self {
        Self::with_options(world, SweepOptions::new())
    }

    /// Build a scanner with explicit options.
    pub fn with_options(world: &World, opts: SweepOptions) -> Self {
        let interner = opts
            .interner
            .clone()
            .unwrap_or_else(|| Arc::new(Interner::new()));
        OpenIntelScanner {
            resolver: IterativeResolver::new(world.scanner_ip(), world.root_hints()),
            opts,
            ns_cache: NsCache::new(),
            interner,
            total_queries: 0,
            last_shard_queries: Vec::new(),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.opts.workers
    }

    /// Queries each shard of the most recent sweep sent, in shard order.
    /// Worker-count-dependent by construction (a load-balance
    /// diagnostic); the worker-count-independent total is
    /// [`SweepStats::queries`].
    pub fn last_shard_queries(&self) -> &[u64] {
        &self.last_shard_queries
    }

    /// The shared NS-target cache (diagnostics/tests).
    pub fn ns_cache(&self) -> &NsCache {
        &self.ns_cache
    }

    /// The scanner's symbol interner (shared when
    /// [`SweepOptions::interner`] supplied one).
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Run one full sweep at the world's current date and return the row
    /// view — [`sweep_frame`](OpenIntelScanner::sweep_frame) materialised
    /// through [`SweepFrame::to_daily_sweep`]. Byte-identical to the frame
    /// by construction.
    pub fn sweep(&mut self, world: &mut World) -> DailySweep {
        self.sweep_frame(world).to_daily_sweep(&self.interner)
    }

    /// Run one full sweep at the world's current date, producing the
    /// native columnar frame.
    ///
    /// Publishes fresh TLD zone snapshots (the daily zone transfer), clears
    /// resolver caches and rebinds the NS cache to the day (a new
    /// measurement day re-observes everything), interns the seed list (in
    /// zone-snapshot order — the symbol-determinism anchor), warms a
    /// prototype resolver on the TLD cuts, then fans the seed list out
    /// over the worker pool and merges shard outputs deterministically.
    pub fn sweep_frame(&mut self, world: &mut World) -> SweepFrame {
        let date = world.today();
        let collect = self.opts.collect_metrics;
        world.publish_tld_zones();
        world.network_mut().set_obs_enabled(collect);
        self.resolver.obs_enabled = collect;
        self.resolver.clear_cache();
        self.ns_cache.begin_sweep(date);
        let seeds = world.seed_names();

        // Symbol determinism rule 1: intern every seed serially, in
        // zone-snapshot order, before any worker exists — domain symbols
        // are a pure function of the zone snapshot, never of sharding or
        // salvage.
        for seed in &seeds {
            self.interner.intern_name(seed);
        }

        let mut stats = SweepStats {
            seeded: seeds.len() as u64,
            ..SweepStats::default()
        };

        // Warmup: prime one resolver on the TLD cuts, serially, before any
        // worker exists. Every per-domain resolver forks from this primed
        // snapshot, so per-domain state is identical for any sharding.
        //
        // Walking each TLD's NS query plants the TLD cut (from the root's
        // referral) in the prototype's cut cache, so per-domain forks
        // start one referral deep instead of at the root. Where a TLD
        // zone publishes an apex NS RRset we additionally resolve the
        // server addresses and seed the cut with the complete rotation;
        // zones that answer NoData at the apex keep the referral glue.
        let mut primed = self.resolver.fork();
        let mut total = Tally::default();
        let mut total_metrics = SweepMetrics::default();
        {
            let net = world.network();
            let mut lane = net.lane(&format!("{date}/warmup"));
            let mut tlds: Vec<&str> = seeds.iter().map(|d| d.tld()).collect();
            tlds.sort_unstable();
            tlds.dedup();
            for tld in tlds {
                let Ok(tld_name) = Name::from_labels([tld]) else {
                    continue;
                };
                let targets = match primed.resolve(&mut lane, &tld_name, RType::Ns) {
                    Ok(res) => res.ns_targets(),
                    Err(_) => Vec::new(),
                };
                let mut addrs: Vec<Ipv4Addr> = Vec::new();
                for t in &targets {
                    if let Ok(res) = primed.resolve(&mut lane, t, RType::A) {
                        addrs.extend(res.addresses());
                    }
                }
                addrs.sort_unstable();
                addrs.dedup();
                primed.seed_cut(tld_name, addrs);
            }
            let causes = primed.stats();
            total.queries = primed.queries_sent();
            total.timeouts = causes.timeouts;
            total.servfails = causes.servfails;
            total.lame = causes.lame;
            total.retries_spent = causes.retries_spent;
            total.virtual_us = lane.elapsed_us();
            total.max_lane_end_us = lane.now().as_micros();
            total.net = lane.stats();
            if collect {
                total_metrics.net.merge(&lane.take_obs());
                total_metrics.resolver.merge(&primed.take_obs());
            }
        }

        // Fan out: contiguous shards, one scoped worker each, merged back
        // in shard order (= zone-snapshot order). Each worker carries its
        // own tally AND its own metric section; both merge associatively,
        // so the merged metrics are byte-identical for any worker count.
        //
        // Workers are panic-isolated: a panicked shard is detected at the
        // supervised join (no `.expect` abort), retried once inline, and
        // — if it panics again — degraded into per-domain `worker_lost`
        // gap records that flow into the partial-sweep salvage path
        // below. A worker bug costs records, never the whole study.
        let plan = ShardPlan::new(seeds.len(), self.opts.workers);
        let ctx = SweepCtx {
            net: world.network(),
            primed: &primed,
            cache: &self.ns_cache,
            date,
            collect,
            panic_inject: self.opts.panic_inject.as_ref(),
        };
        let ctx_ref = &ctx;
        let seeds_ref = &seeds;
        let run_range = |range: std::ops::Range<usize>| {
            let mut tally = Tally::default();
            let mut metrics = SweepMetrics::default();
            let mut raws = Vec::with_capacity(range.len());
            for idx in range {
                raws.push(measure_domain(
                    &seeds_ref[idx],
                    ctx_ref,
                    &mut tally,
                    &mut metrics,
                ));
            }
            (raws, tally, metrics)
        };
        let run_range = &run_range;
        type ShardResult = Result<(Vec<Raw>, Tally, SweepMetrics), std::ops::Range<usize>>;
        let joined: Vec<ShardResult> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = plan
                .ranges()
                .iter()
                .cloned()
                .map(|range| (range.clone(), s.spawn(move |_| run_range(range))))
                .collect();
            handles
                .into_iter()
                .map(|(range, h)| h.join().map_err(|_| range))
                .collect()
        })
        // `scope` only errs when an *unjoined* thread panicked; every
        // handle above is joined, but degrade rather than abort anyway.
        .unwrap_or_else(|_| plan.ranges().iter().cloned().map(Err).collect());

        let mut shard_outputs: Vec<(Vec<Raw>, Tally, SweepMetrics)> =
            Vec::with_capacity(joined.len());
        for res in joined {
            match res {
                Ok(out) => shard_outputs.push(out),
                Err(range) => {
                    // Supervisor: re-run the lost shard once, inline.
                    // Per-domain lanes make the re-run deterministic;
                    // only NS-cache cost accounting can differ (entries
                    // the dead worker filled stay filled, their cost
                    // charged to no one).
                    let retried = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_range(range.clone())
                    }));
                    match retried {
                        Ok(out) => {
                            stats.shards_retried += 1;
                            shard_outputs.push(out);
                        }
                        Err(_) => {
                            stats.shards_lost += 1;
                            shard_outputs.push(lost_shard_output(range, seeds_ref, collect));
                        }
                    }
                }
            }
        }

        self.last_shard_queries = shard_outputs.iter().map(|(_, t, _)| t.queries).collect();
        let mut raw: Vec<Raw> = Vec::with_capacity(seeds.len());
        for (raws, tally, metrics) in shard_outputs {
            total.merge(&tally);
            total_metrics.merge(&metrics);
            raw.extend(raws);
        }

        stats.ns_failures = total.ns_failures;
        stats.apex_failures = total.apex_failures;
        stats.queries = total.queries;
        stats.virtual_elapsed_us = total.virtual_us;
        stats.timeouts = total.timeouts;
        stats.servfails = total.servfails;
        stats.lame = total.lame;
        stats.retries_spent = total.retries_spent;
        stats.ns_cache_hits = total.ns_cache_hits;
        stats.ns_cache_misses = total.ns_cache_misses;
        self.total_queries += total.queries;

        // The world's clock advances to the deterministic end of the
        // slowest lane, and the lanes' transport counters (and obs
        // aggregates) fold into the network's globals.
        world
            .network_mut()
            .advance_to_time(SimTime::ZERO.plus_us(total.max_lane_end_us));
        world.network_mut().absorb_lane_stats(total.net);
        if collect {
            world.network_mut().absorb_lane_obs(&total_metrics.net);
        }

        // Gap salvage: a day where most NS resolutions failed is not a
        // usable full snapshot (the real pipeline records such days as
        // gaps, cf. the 2021-03-22 .ru outage in Figure 1). Keep whatever
        // actually measured, drop the rest, and flag the sweep partial so
        // downstream analyses can impute rather than misread the dip as
        // mass domain deletion. Runs post-merge on merged counters, so the
        // classification is worker-count-independent too.
        if collect && stats.seeded > 0 {
            // Integer parts-per-million: the exported metric file carries
            // no floats.
            total_metrics.causes.add(
                keys::SALVAGE_NS_FAILURE_PPM,
                stats.ns_failures * 1_000_000 / stats.seeded,
            );
        }
        if collect && stats.shards_retried > 0 {
            total_metrics
                .causes
                .add(keys::SHARDS_RETRIED, stats.shards_retried);
        }
        if collect && stats.shards_lost > 0 {
            total_metrics
                .causes
                .add(keys::SHARDS_LOST, stats.shards_lost);
        }
        if stats.seeded > 0
            && stats.ns_failures as f64 / stats.seeded as f64 > self.opts.partial_threshold
        {
            stats.completeness = Completeness::Partial;
            let before = raw.len();
            raw.retain(|r| !r.ns_ips.is_empty() || !r.apex_ips.is_empty());
            if collect {
                total_metrics.causes.incr(keys::SALVAGE_PARTIAL);
                total_metrics
                    .causes
                    .add(keys::SALVAGE_DROPPED, (before - raw.len()) as u64);
            }
        }

        // Frame build: annotation pass (immutable world reads) fused with
        // the columnar write. Runs sequentially over merged records in
        // zone-snapshot order — symbol determinism rule 2: NS host names
        // and countries first seen this sweep are interned here, never
        // from inside a worker.
        let geo = world.geo().snapshot_at(date);
        let topo = world.network().topology();
        let mut builder = FrameBuilder::new(date);
        builder.reserve(raw.len());
        for r in raw {
            builder.begin_record(self.interner.intern_name(&r.domain));
            for ns in &r.ns_names {
                builder.push_ns_name(self.interner.intern_name(ns));
            }
            for &ip in &r.ns_ips {
                let country = self.interner.intern_country(geo.and_then(|g| g.lookup(ip)));
                builder.push_ns_addr(ip, country, topo.asn_of(ip));
            }
            for &ip in &r.apex_ips {
                let country = self.interner.intern_country(geo.and_then(|g| g.lookup(ip)));
                builder.push_apex_addr(ip, country, topo.asn_of(ip));
            }
            builder.end_record();
        }
        builder.finish(stats, total_metrics)
    }

    /// Total queries the scanner has sent since construction (summed over
    /// all sweeps, warmup and cache fills included).
    pub fn queries_sent(&self) -> u64 {
        self.total_queries + self.resolver.queries_sent()
    }
}

impl Scanner for OpenIntelScanner {
    type Snapshot = DailySweep;

    /// One full daily sweep — [`OpenIntelScanner::sweep`].
    fn run(&mut self, world: &mut World) -> DailySweep {
        self.sweep(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_world::WorldConfig;

    #[test]
    fn sweep_measures_tiny_world() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        let sweep = scanner.sweep(&mut world);

        assert_eq!(sweep.date, world.today());
        assert_eq!(sweep.domains.len() as u64, sweep.stats.seeded);
        assert!(sweep.stats.seeded > 400);
        // The overwhelming majority of a healthy world resolves.
        let resolved = sweep.domains.iter().filter(|d| d.has_ns_data()).count();
        assert!(
            resolved as f64 > sweep.domains.len() as f64 * 0.95,
            "only {resolved}/{} resolved",
            sweep.domains.len()
        );
        // Annotations are present.
        let with_geo = sweep
            .domains
            .iter()
            .flat_map(|d| &d.apex_addrs)
            .filter(|a| a.country.is_some() && a.asn.is_some())
            .count();
        assert!(with_geo > 0);
        assert!(sweep.stats.queries > 0);
        // The sweep consumed virtual time (network latency is being paid).
        assert!(sweep.stats.virtual_elapsed_us > 0);
        // The shared NS cache deduplicated hoster name servers.
        assert!(sweep.stats.ns_cache_hits > 0);
        assert!(sweep.stats.ns_cache_misses > 0);
        assert!(sweep.stats.ns_cache_hits + sweep.stats.ns_cache_misses >= sweep.stats.seeded);
        // The cache's lock-free counters agree with the merged tallies
        // (warmup deps-lookups also route through the tally, so the
        // counter totals match exactly).
        assert_eq!(scanner.ns_cache().hits(), sweep.stats.ns_cache_hits);
        assert_eq!(scanner.ns_cache().misses(), sweep.stats.ns_cache_misses);
        // The metrics section observed the sweep: every delivered packet
        // left a delay sample, every resolved exchange an SRTT sample.
        assert!(sweep.metrics.net.delay_us.count() > 0);
        assert!(sweep.metrics.resolver.srtt_us.count() > 0);
        assert!(sweep.metrics.resolver.deps_cache_hits > 0);
        assert!(
            sweep.metrics.causes.histogram(keys::OK_US).unwrap().count()
                >= sweep.stats.seeded - sweep.stats.ns_failures
        );
        // Per-shard diagnostics cover the configured worker count and sum
        // to (at most) the sweep total (warmup queries are charged to the
        // sweep, not to any shard).
        assert_eq!(scanner.last_shard_queries().len(), scanner.workers());
        let shard_sum: u64 = scanner.last_shard_queries().iter().sum();
        assert!(shard_sum > 0 && shard_sum <= sweep.stats.queries);
    }

    #[test]
    fn metrics_can_be_disabled() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner =
            OpenIntelScanner::with_options(&world, SweepOptions::new().collect_metrics(false));
        let sweep = scanner.sweep(&mut world);
        assert!(sweep.metrics.is_empty(), "disabled metrics must stay empty");
        // Counters are unaffected: the instrumented and uninstrumented
        // sweeps measure the same world the same way.
        assert!(sweep.stats.queries > 0);
    }

    #[test]
    fn sweep_matches_ground_truth_for_sample() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        let sweep = scanner.sweep(&mut world);

        let mut checked = 0;
        for rec in sweep.domains.iter().take(50) {
            if let Some(truth) = world.domain_state(&rec.domain) {
                if rec.has_apex_data() {
                    assert!(
                        rec.apex_addrs
                            .iter()
                            .any(|a| a.ip == truth.hosting.primary_ip),
                        "{}: measured {:?}, truth {}",
                        rec.domain,
                        rec.apex_addrs,
                        truth.hosting.primary_ip
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "too few ground-truth comparisons: {checked}");
    }

    #[test]
    fn consecutive_sweeps_observe_change() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        let s1 = scanner.sweep(&mut world);
        world.advance_to(world.today().add_days(30));
        let s2 = scanner.sweep(&mut world);
        assert_eq!(s2.date - s1.date, 30);
        // Churn means the seed sets differ a little.
        let set1: std::collections::HashSet<_> =
            s1.domains.iter().map(|d| d.domain.clone()).collect();
        let set2: std::collections::HashSet<_> =
            s2.domains.iter().map(|d| d.domain.clone()).collect();
        assert!(set1 != set2, "thirty days without any churn is implausible");
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let sweep_with = |workers: usize| {
            let mut world = World::new(WorldConfig::tiny());
            let mut scanner =
                OpenIntelScanner::with_options(&world, SweepOptions::new().workers(workers));
            scanner.sweep(&mut world)
        };
        let serial = sweep_with(1);
        let parallel = sweep_with(4);
        assert_eq!(serial, parallel, "4-worker sweep diverged from 1-worker");
        // The embedded metric sections (histograms, link tables, cause
        // recorders) are equal too — and render to byte-identical JSON.
        assert_eq!(serial.metrics, parallel.metrics);
        assert_eq!(serial.metrics.render_json(), parallel.metrics.render_json());
    }

    #[test]
    fn row_view_matches_native_frame() {
        let sweep_of = |frame_path: bool| {
            let mut world = World::new(WorldConfig::tiny());
            let mut scanner = OpenIntelScanner::new(&world);
            if frame_path {
                let frame = scanner.sweep_frame(&mut world);
                assert_eq!(frame.len() as u64, frame.stats.seeded);
                frame.to_daily_sweep(scanner.interner())
            } else {
                scanner.sweep(&mut world)
            }
        };
        assert_eq!(sweep_of(true), sweep_of(false));
    }

    #[test]
    fn shared_interner_numbers_seeds_first() {
        let mut world = World::new(WorldConfig::tiny());
        let interner = Arc::new(Interner::new());
        let mut scanner =
            OpenIntelScanner::with_options(&world, SweepOptions::new().interner(interner.clone()));
        let frame = scanner.sweep_frame(&mut world);
        assert!(Arc::ptr_eq(scanner.interner(), &interner));
        // Seeds occupy the first symbols in zone-snapshot order; NS hosts
        // discovered during measurement come after.
        let seeds = world.seed_names();
        for (i, seed) in seeds.iter().enumerate() {
            assert_eq!(interner.name_sym(seed), Some(ruwhere_store::Sym(i as u32)));
        }
        assert!(interner.names_len() > seeds.len());
        assert_eq!(frame.domains.len() as u64, frame.stats.seeded);
    }

    /// Run `f` with the default panic hook silenced, so deliberately
    /// injected worker panics don't spray backtraces over test output.
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        static QUIET: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = QUIET.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn panicked_shard_is_retried_and_sweep_recovers() {
        let sweep = with_quiet_panics(|| {
            let mut world = World::new(WorldConfig::tiny());
            // One injected panic: the worker dies, the supervisor's
            // single retry succeeds, and the sweep completes fully.
            let mut scanner = OpenIntelScanner::with_options(
                &world,
                SweepOptions::new().workers(2).inject_worker_panic("", 1),
            );
            scanner.sweep(&mut world)
        });
        assert_eq!(sweep.stats.shards_retried, 1);
        assert_eq!(sweep.stats.shards_lost, 0);
        assert_eq!(sweep.stats.completeness, Completeness::Full);
        assert_eq!(sweep.domains.len() as u64, sweep.stats.seeded);
        let resolved = sweep.domains.iter().filter(|d| d.has_ns_data()).count();
        assert!(resolved as f64 > sweep.domains.len() as f64 * 0.95);
        assert_eq!(sweep.metrics.causes.counter(keys::SHARDS_RETRIED), 1);
    }

    #[test]
    fn twice_panicked_shards_degrade_into_a_gap_not_an_abort() {
        let sweep = with_quiet_panics(|| {
            let mut world = World::new(WorldConfig::tiny());
            // Unlimited panics on every domain: both workers die, both
            // retries die — the whole day degrades into worker-lost gap
            // records and a salvaged partial sweep, but the call returns.
            let mut scanner = OpenIntelScanner::with_options(
                &world,
                SweepOptions::new()
                    .workers(2)
                    .inject_worker_panic("", u32::MAX),
            );
            scanner.sweep(&mut world)
        });
        assert_eq!(sweep.stats.shards_lost, 2);
        assert_eq!(sweep.stats.completeness, Completeness::Partial);
        assert_eq!(sweep.stats.ns_failures, sweep.stats.seeded);
        // Salvage drops the empty gap records: nothing measured that day.
        assert!(sweep.domains.is_empty());
        let lost = sweep
            .metrics
            .causes
            .histogram(fail_key(ScanError::WorkerLost.category()))
            .map(|h| h.count())
            .unwrap_or(0);
        assert_eq!(lost, sweep.stats.seeded);
        assert_eq!(
            sweep.metrics.causes.counter(keys::DOMAINS_LOST),
            sweep.stats.seeded
        );
    }

    #[test]
    fn checkpoint_dir_env_is_parsed_like_workers() {
        // Process-global env var: set/remove under one test to avoid
        // cross-test races (cargo runs tests in threads).
        assert_eq!(CHECKPOINT_DIR_ENV, "RUWHERE_CHECKPOINT_DIR");
        assert!(default_checkpoint_dir().is_none() || std::env::var(CHECKPOINT_DIR_ENV).is_ok());
    }

    #[test]
    fn ns_cache_is_rebound_per_sweep_date() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        scanner.sweep(&mut world);
        let d1 = scanner.ns_cache().date();
        assert_eq!(d1, Some(world.today()));
        let filled = scanner.ns_cache().len();
        assert!(filled > 0, "sweep must populate the NS cache");
        world.advance_to(world.today().add_days(1));
        scanner.sweep(&mut world);
        assert_eq!(scanner.ns_cache().date(), Some(world.today()));
        assert_ne!(d1, scanner.ns_cache().date());
    }
}
