//! OpenINTEL-style daily active DNS measurement.
//!
//! > "The DNS measurements were provided by the OpenINTEL project, which
//! > uses daily zone file snapshots as seeds to actively query all
//! > registered domain names under a TLD for a selection of DNS resource
//! > records. The collected data include each domain's NS records …, as
//! > well as the A record resolution for both their name servers and apex
//! > domain. We geolocate each of the resulting IP addresses, using
//! > contemporaneous results from the IP2location service." — §2

use ruwhere_authdns::IterativeResolver;
use ruwhere_dns::{Name, RType};
use ruwhere_types::{Asn, Country, Date, DomainName};
use ruwhere_world::World;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One resolved address with its measurement-time annotations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrInfo {
    /// The address.
    pub ip: Ipv4Addr,
    /// Country per the geolocation snapshot in force on the sweep date.
    pub country: Option<Country>,
    /// Origin AS per BGP-derived data.
    pub asn: Option<Asn>,
}

/// One domain's daily measurement record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainDay {
    /// The measured domain.
    pub domain: DomainName,
    /// NS RRset targets (name-server host names).
    pub ns_names: Vec<DomainName>,
    /// Resolved, annotated name-server addresses.
    pub ns_addrs: Vec<AddrInfo>,
    /// Resolved, annotated apex A records.
    pub apex_addrs: Vec<AddrInfo>,
}

impl DomainDay {
    /// Whether any name server resolved.
    pub fn has_ns_data(&self) -> bool {
        !self.ns_addrs.is_empty()
    }

    /// Whether the apex resolved.
    pub fn has_apex_data(&self) -> bool {
        !self.apex_addrs.is_empty()
    }
}

/// Whether a sweep's dataset is complete or was salvaged from a day of
/// heavy measurement failure (an infrastructure outage, Figure-1 style).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Completeness {
    /// The sweep resolved normally; failures are kept as unknown-bucket
    /// records.
    #[default]
    Full,
    /// The day's failure rate exceeded the salvage threshold: unresolved
    /// records were dropped, leaving only what actually measured. The raw
    /// daily total visibly dips — exactly how the real dataset records an
    /// outage day.
    Partial,
}

/// Aggregate counters for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Domains seeded from the zone snapshots.
    pub seeded: u64,
    /// Domains with a fully failed NS resolution.
    pub ns_failures: u64,
    /// Domains with a failed apex resolution.
    pub apex_failures: u64,
    /// Total DNS queries emitted.
    pub queries: u64,
    /// Virtual (simulated) time the sweep took, in microseconds — the
    /// latency cost of active measurement at this scale (cf. the
    /// OpenINTEL infrastructure paper's throughput engineering).
    pub virtual_elapsed_us: u64,
    /// Queries that timed out (per-cause failure accounting).
    pub timeouts: u64,
    /// Queries answered SERVFAIL.
    pub servfails: u64,
    /// Queries answered lamely.
    pub lame: u64,
    /// Failed exchanges charged to resolver retry budgets — the wasted
    /// query cost of server misbehaviour during this sweep.
    pub retries_spent: u64,
    /// Whether the sweep is full or a salvaged partial.
    pub completeness: Completeness,
}

/// One day's complete measurement output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DailySweep {
    /// Sweep date.
    pub date: Date,
    /// Per-domain records (zone-snapshot order).
    pub domains: Vec<DomainDay>,
    /// Counters.
    pub stats: SweepStats,
}

impl DailySweep {
    /// Whether this sweep was salvaged as partial (outage day).
    pub fn is_partial(&self) -> bool {
        self.stats.completeness == Completeness::Partial
    }
}

/// The sweep engine. Owns the resolver; create once, call
/// [`OpenIntelScanner::sweep`] per measurement day.
pub struct OpenIntelScanner {
    resolver: IterativeResolver,
    /// NS-failure-rate threshold above which a day is salvaged as a
    /// [`Completeness::Partial`] sweep instead of kept whole. Chosen well
    /// above ordinary packet-loss attrition so only genuine infrastructure
    /// faults trip it.
    partial_threshold: f64,
}

impl OpenIntelScanner {
    /// Build a scanner homed at the world's measurement vantage.
    pub fn new(world: &World) -> Self {
        OpenIntelScanner {
            resolver: IterativeResolver::new(world.scanner_ip(), world.root_hints()),
            partial_threshold: 0.5,
        }
    }

    /// Override the partial-sweep salvage threshold (fraction of seeded
    /// domains whose NS resolution must fail before the day is marked
    /// partial).
    pub fn set_partial_threshold(&mut self, threshold: f64) {
        self.partial_threshold = threshold.clamp(0.0, 1.0);
    }

    /// Run one full sweep at the world's current date.
    ///
    /// Publishes fresh TLD zone snapshots (the daily zone transfer), clears
    /// resolver caches (a new measurement day re-observes everything), then
    /// resolves NS / apex A / NS-host A for every seeded name and annotates
    /// the addresses.
    pub fn sweep(&mut self, world: &mut World) -> DailySweep {
        let date = world.today();
        world.publish_tld_zones();
        self.resolver.clear_cache();
        let seeds = world.seed_names();
        let queries_before = self.resolver.queries_sent();
        let causes_before = self.resolver.stats();
        let t_start = world.network().now();

        let mut stats = SweepStats {
            seeded: seeds.len() as u64,
            ..SweepStats::default()
        };
        // Raw resolution pass (needs &mut network).
        struct Raw {
            domain: DomainName,
            ns_names: Vec<DomainName>,
            ns_ips: Vec<Ipv4Addr>,
            apex_ips: Vec<Ipv4Addr>,
        }
        let mut raw: Vec<Raw> = Vec::with_capacity(seeds.len());
        // Per-sweep cache of NS-host address resolutions.
        let mut ns_ip_cache: HashMap<DomainName, Vec<Ipv4Addr>> = HashMap::new();

        for domain in seeds {
            let qname = Name::from(&domain);
            let ns_names: Vec<DomainName> = match self
                .resolver
                .resolve(world.network_mut(), &qname, RType::Ns)
            {
                Ok(res) => res
                    .ns_targets()
                    .iter()
                    .filter_map(|n| n.to_domain_name())
                    .collect(),
                Err(_) => Vec::new(),
            };
            if ns_names.is_empty() {
                stats.ns_failures += 1;
            }

            let mut ns_ips: Vec<Ipv4Addr> = Vec::new();
            for ns in &ns_names {
                let ips = ns_ip_cache.entry(ns.clone()).or_insert_with(|| {
                    match self
                        .resolver
                        .resolve(world.network_mut(), &Name::from(ns), RType::A)
                    {
                        Ok(res) => res.addresses(),
                        Err(_) => Vec::new(),
                    }
                });
                ns_ips.extend(ips.iter().copied());
            }
            ns_ips.sort_unstable();
            ns_ips.dedup();

            let apex_ips = match self
                .resolver
                .resolve(world.network_mut(), &qname, RType::A)
            {
                Ok(res) => res.addresses(),
                Err(_) => Vec::new(),
            };
            if apex_ips.is_empty() {
                stats.apex_failures += 1;
            }

            raw.push(Raw {
                domain,
                ns_names,
                ns_ips,
                apex_ips,
            });
        }
        stats.queries = self.resolver.queries_sent() - queries_before;
        stats.virtual_elapsed_us = world.network().now().as_micros() - t_start.as_micros();
        let causes = self.resolver.stats();
        stats.timeouts = causes.timeouts - causes_before.timeouts;
        stats.servfails = causes.servfails - causes_before.servfails;
        stats.lame = causes.lame - causes_before.lame;
        stats.retries_spent = causes.retries_spent - causes_before.retries_spent;

        // Gap salvage: a day where most NS resolutions failed is not a
        // usable full snapshot (the real pipeline records such days as
        // gaps, cf. the 2021-03-22 .ru outage in Figure 1). Keep whatever
        // actually measured, drop the rest, and flag the sweep partial so
        // downstream analyses can impute rather than misread the dip as
        // mass domain deletion.
        if stats.seeded > 0
            && stats.ns_failures as f64 / stats.seeded as f64 > self.partial_threshold
        {
            stats.completeness = Completeness::Partial;
            raw.retain(|r| !r.ns_ips.is_empty() || !r.apex_ips.is_empty());
        }

        // Annotation pass (immutable world reads).
        let geo = world.geo().snapshot_at(date);
        let topo = world.network().topology();
        let annotate = |ips: &[Ipv4Addr]| -> Vec<AddrInfo> {
            ips.iter()
                .map(|&ip| AddrInfo {
                    ip,
                    country: geo.and_then(|g| g.lookup(ip)),
                    asn: topo.asn_of(ip),
                })
                .collect()
        };
        let domains = raw
            .into_iter()
            .map(|r| DomainDay {
                ns_addrs: annotate(&r.ns_ips),
                apex_addrs: annotate(&r.apex_ips),
                domain: r.domain,
                ns_names: r.ns_names,
            })
            .collect();

        DailySweep {
            date,
            domains,
            stats,
        }
    }

    /// Total queries the scanner has sent since construction.
    pub fn queries_sent(&self) -> u64 {
        self.resolver.queries_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_world::WorldConfig;

    #[test]
    fn sweep_measures_tiny_world() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        let sweep = scanner.sweep(&mut world);

        assert_eq!(sweep.date, world.today());
        assert_eq!(sweep.domains.len() as u64, sweep.stats.seeded);
        assert!(sweep.stats.seeded > 400);
        // The overwhelming majority of a healthy world resolves.
        let resolved = sweep.domains.iter().filter(|d| d.has_ns_data()).count();
        assert!(
            resolved as f64 > sweep.domains.len() as f64 * 0.95,
            "only {resolved}/{} resolved",
            sweep.domains.len()
        );
        // Annotations are present.
        let with_geo = sweep
            .domains
            .iter()
            .flat_map(|d| &d.apex_addrs)
            .filter(|a| a.country.is_some() && a.asn.is_some())
            .count();
        assert!(with_geo > 0);
        assert!(sweep.stats.queries > 0);
        // The sweep consumed virtual time (network latency is being paid).
        assert!(sweep.stats.virtual_elapsed_us > 0);
    }

    #[test]
    fn sweep_matches_ground_truth_for_sample() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        let sweep = scanner.sweep(&mut world);

        let mut checked = 0;
        for rec in sweep.domains.iter().take(50) {
            if let Some(truth) = world.domain_state(&rec.domain) {
                if rec.has_apex_data() {
                    assert!(
                        rec.apex_addrs.iter().any(|a| a.ip == truth.hosting.primary_ip),
                        "{}: measured {:?}, truth {}",
                        rec.domain,
                        rec.apex_addrs,
                        truth.hosting.primary_ip
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "too few ground-truth comparisons: {checked}");
    }

    #[test]
    fn consecutive_sweeps_observe_change() {
        let mut world = World::new(WorldConfig::tiny());
        let mut scanner = OpenIntelScanner::new(&world);
        let s1 = scanner.sweep(&mut world);
        world.advance_to(world.today().add_days(30));
        let s2 = scanner.sweep(&mut world);
        assert_eq!(s2.date - s1.date, 30);
        // Churn means the seed sets differ a little.
        let set1: std::collections::HashSet<_> =
            s1.domains.iter().map(|d| d.domain.clone()).collect();
        let set2: std::collections::HashSet<_> =
            s2.domains.iter().map(|d| d.domain.clone()).collect();
        assert!(set1 != set2, "thirty days without any churn is implausible");
    }
}
