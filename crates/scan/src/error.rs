//! The one failure vocabulary of the measurement layer.
//!
//! Every scanner in this crate used to fail in its own dialect: the zone
//! transfer client had `XfrError`, the WHOIS client returned `Option`
//! (conflating "no such object" with "the wire ate the query"), and the
//! IP-wide TLS scan folded every failure into one `silent` counter.
//! [`ScanError`] replaces all three with a single cause-specific enum
//! whose variants line up with the per-cause counters of
//! [`SweepStats`](crate::SweepStats), so a failure observed by any
//! scanner aggregates into the same vocabulary the sweep engine already
//! reports.

use ruwhere_authdns::ResolveError;
use ruwhere_netsim::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A measurement-layer failure, by cause.
///
/// The first six variants mirror [`ResolveError`] one-to-one so DNS
/// failures keep their cause through the scanner layer; the remainder
/// cover transport and payload failures the non-DNS scanners see.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanError {
    /// The query (or every retry of it) timed out.
    Timeout,
    /// Servers answered SERVFAIL.
    ServFail,
    /// Servers answered but were lame for the zone.
    Lame,
    /// Servers answered but refused.
    Refused,
    /// Query/retry budget exhausted.
    BudgetExhausted,
    /// A referral pointed at unresolvable name servers.
    NoNameservers,
    /// The measurement vantage has no route to the target.
    Unreachable,
    /// The peer answered, but the payload was malformed (bad frame, bad
    /// zone text, unparsable TLS banner, non-UTF-8 WHOIS reply).
    BadPayload(String),
    /// The service answered authoritatively that the object does not
    /// exist (WHOIS: unregistered domain). Not an infrastructure failure.
    NotFound,
    /// The shard worker measuring this domain panicked (twice — the
    /// supervisor retries a lost shard once before recording the gap).
    /// The domain's measurements for the day are lost, not failed: the
    /// record degrades into the gap-aware partial-sweep salvage path.
    WorkerLost,
}

impl ScanError {
    /// Stable category label, aligned with the per-cause counter names of
    /// [`SweepStats`](crate::SweepStats) (`timeouts`, `servfails`,
    /// `lame`, …). Used as the metric-key suffix in
    /// [`SweepMetrics`](crate::SweepMetrics) cause histograms.
    pub fn category(&self) -> &'static str {
        match self {
            ScanError::Timeout => "timeouts",
            ScanError::ServFail => "servfails",
            ScanError::Lame => "lame",
            ScanError::Refused => "refused",
            ScanError::BudgetExhausted => "budget_exhausted",
            ScanError::NoNameservers => "no_nameservers",
            ScanError::Unreachable => "unreachable",
            ScanError::BadPayload(_) => "bad_payload",
            ScanError::NotFound => "not_found",
            ScanError::WorkerLost => "worker_lost",
        }
    }

    /// Whether the failure is transient transport trouble (worth a retry)
    /// as opposed to a definitive answer about the target.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ScanError::Timeout | ScanError::ServFail | ScanError::BudgetExhausted
        )
    }
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::Timeout => write!(f, "request timed out"),
            ScanError::ServFail => write!(f, "servers answered SERVFAIL"),
            ScanError::Lame => write!(f, "servers were lame for the zone"),
            ScanError::Refused => write!(f, "servers refused"),
            ScanError::BudgetExhausted => write!(f, "query budget exhausted"),
            ScanError::NoNameservers => write!(f, "no resolvable name servers"),
            ScanError::Unreachable => write!(f, "no route to target"),
            ScanError::BadPayload(e) => write!(f, "malformed payload: {e}"),
            ScanError::NotFound => write!(f, "object does not exist"),
            ScanError::WorkerLost => write!(f, "shard worker lost (panicked)"),
        }
    }
}

impl std::error::Error for ScanError {}

impl From<ResolveError> for ScanError {
    fn from(e: ResolveError) -> ScanError {
        match e {
            ResolveError::Timeout => ScanError::Timeout,
            ResolveError::ServFail => ScanError::ServFail,
            ResolveError::Lame => ScanError::Lame,
            ResolveError::Refused => ScanError::Refused,
            ResolveError::BudgetExhausted => ScanError::BudgetExhausted,
            ResolveError::NoNameservers => ScanError::NoNameservers,
            ResolveError::BadResponse => ScanError::BadPayload("malformed response".to_owned()),
        }
    }
}

impl From<NetError> for ScanError {
    fn from(e: NetError) -> ScanError {
        match e {
            NetError::Timeout => ScanError::Timeout,
            NetError::NoRoute => ScanError::Unreachable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_stable_and_distinct() {
        let all = [
            ScanError::Timeout,
            ScanError::ServFail,
            ScanError::Lame,
            ScanError::Refused,
            ScanError::BudgetExhausted,
            ScanError::NoNameservers,
            ScanError::Unreachable,
            ScanError::BadPayload("x".into()),
            ScanError::NotFound,
            ScanError::WorkerLost,
        ];
        let cats: std::collections::HashSet<_> = all.iter().map(|e| e.category()).collect();
        assert_eq!(cats.len(), all.len(), "categories must be distinct");
        assert_eq!(ScanError::Timeout.category(), "timeouts");
    }

    #[test]
    fn resolver_and_net_errors_map_by_cause() {
        assert_eq!(ScanError::from(ResolveError::Lame), ScanError::Lame);
        assert_eq!(ScanError::from(NetError::Timeout), ScanError::Timeout);
        assert_eq!(ScanError::from(NetError::NoRoute), ScanError::Unreachable);
        assert!(matches!(
            ScanError::from(ResolveError::BadResponse),
            ScanError::BadPayload(_)
        ));
    }
}
