//! The shared, sharded, date-scoped read-through cache for NS-target A
//! lookups.
//!
//! Thousands of domains park on the same hoster name servers; without a
//! shared cache every worker re-resolves `ns1.reg.ru` for every customer
//! domain in its shard. This cache computes each NS-target address set
//! **exactly once per sweep date** — the first worker to miss holds the
//! entry lock while it resolves, later workers block on that entry (not on
//! the whole cache: the map is sharded by name hash) and then read the
//! finished value.
//!
//! Two properties keep the parallel sweep byte-identical to the serial
//! one:
//!
//! 1. *Values are sharding-independent.* An entry is computed on its own
//!    measurement lane keyed by `(date, ns-name)`, from a warmup-primed
//!    resolver fork — a pure function of the sweep-start snapshot, no
//!    matter which worker computes it or when.
//! 2. *Costs are charged exactly once.* The computing worker (and only
//!    it) accounts the entry's query/latency cost, so summed sweep
//!    counters do not depend on the worker count.
//!
//! The cache is keyed by sweep date and cleared on date change: a daily
//! measurement pipeline must re-observe everything each day (OpenINTEL
//! semantics), so yesterday's addresses must never satisfy today's sweep.

use parking_lot::Mutex;
use ruwhere_netsim::{NetObs, NetStats};
use ruwhere_obs::Counter;
use ruwhere_types::{Date, DomainName};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Number of independently locked map shards.
const SHARDS: usize = 16;

/// The measurement cost of computing one cache entry, charged to the
/// worker that computed it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LookupCost {
    /// Queries the entry's resolution spent.
    pub queries: u64,
    /// Virtual time the entry's lane consumed, in microseconds.
    pub virtual_us: u64,
    /// Per-cause failure counters (timeouts).
    pub timeouts: u64,
    /// SERVFAIL answers.
    pub servfails: u64,
    /// Lame answers.
    pub lame: u64,
    /// Failed exchanges charged to retry budgets.
    pub retries_spent: u64,
    /// Transport-level counters of the entry's lane.
    pub net: NetStats,
    /// The lane's end instant in microseconds (for sweep wall-clock).
    pub lane_end_us: u64,
    /// Transport observability of the entry's lane (empty when metric
    /// collection is off). Charged into the sweep's
    /// [`SweepMetrics`](crate::SweepMetrics) exactly once, alongside the
    /// scalar cost.
    pub net_obs: NetObs,
    /// Resolver observability of the entry's fork (empty when metric
    /// collection is off).
    pub resolver_obs: ruwhere_authdns::ResolverObs,
}

/// One computed entry: the resolved addresses (sorted, deduplicated).
#[derive(Debug, Clone)]
struct CacheValue {
    ips: Vec<Ipv4Addr>,
}

/// An entry cell: the per-name lock that serialises compute-once.
#[derive(Default)]
struct Entry {
    slot: Mutex<Option<CacheValue>>,
}

/// Outcome of a cache lookup.
pub struct CacheHit {
    /// The resolved NS-target addresses.
    pub ips: Vec<Ipv4Addr>,
    /// `Some(cost)` iff this call computed the entry (a miss); the caller
    /// must account the cost into its sweep counters exactly then.
    pub computed: Option<LookupCost>,
}

/// The shared NS-target A cache. One per scanner; lives across sweeps but
/// never serves across a date boundary.
pub struct NsCache {
    date: Option<Date>,
    shards: Vec<Mutex<HashMap<DomainName, Arc<Entry>>>>,
    /// Lock-free sweep-scoped hit counter, bumped by whichever worker
    /// thread hits — a live progress diagnostic that needs no lane or
    /// tally plumbing. The authoritative (worker-count-independent)
    /// counts remain the per-worker tallies merged into
    /// [`SweepStats`](crate::SweepStats).
    hits: Counter,
    /// Lock-free sweep-scoped miss (= compute) counter.
    misses: Counter,
}

impl NsCache {
    /// Empty cache, bound to no date yet.
    pub fn new() -> Self {
        NsCache {
            date: None,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// Bind the cache to a sweep date, clearing every entry if the date
    /// differs from the previous sweep's, and zeroing the hit/miss
    /// counters (they are per-sweep diagnostics). Must be called before
    /// workers start; the borrow rules enforce it (`&mut self` here,
    /// `&self` from workers).
    pub fn begin_sweep(&mut self, date: Date) {
        if self.date != Some(date) {
            for shard in &self.shards {
                shard.lock().clear();
            }
            self.date = Some(date);
        }
        self.hits.reset();
        self.misses.reset();
    }

    /// Lookups served from cache since [`begin_sweep`](Self::begin_sweep).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that computed an entry since
    /// [`begin_sweep`](Self::begin_sweep).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// The date the cache currently serves, if any.
    pub fn date(&self) -> Option<Date> {
        self.date
    }

    /// Number of cached entries (computed or in flight).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peek at a finished entry without computing (tests / diagnostics).
    pub fn peek(&self, name: &DomainName) -> Option<Vec<Ipv4Addr>> {
        let entry = self.shards[Self::shard_of(name)]
            .lock()
            .get(name)
            .cloned()?;
        let slot = entry.slot.lock();
        slot.as_ref().map(|v| v.ips.clone())
    }

    /// Read-through lookup: return the cached addresses for `name`, or
    /// compute them with `compute` (exactly once across all workers; other
    /// callers for the same name block until the value is ready).
    pub fn get_or_compute<F>(&self, name: &DomainName, compute: F) -> CacheHit
    where
        F: FnOnce() -> (Vec<Ipv4Addr>, LookupCost),
    {
        let entry = {
            let mut shard = self.shards[Self::shard_of(name)].lock();
            Arc::clone(shard.entry(name.clone()).or_default())
        };
        // Shard lock released: only this name's entry is held during the
        // (potentially long) resolution below.
        let mut slot = entry.slot.lock();
        if let Some(v) = slot.as_ref() {
            self.hits.incr();
            return CacheHit {
                ips: v.ips.clone(),
                computed: None,
            };
        }
        let (ips, cost) = compute();
        *slot = Some(CacheValue { ips: ips.clone() });
        self.misses.incr();
        CacheHit {
            ips,
            computed: Some(cost),
        }
    }

    fn shard_of(name: &DomainName) -> usize {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

impl Default for NsCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    #[test]
    fn computes_exactly_once() {
        let mut cache = NsCache::new();
        cache.begin_sweep(Date::from_ymd(2022, 3, 1));
        let first = cache.get_or_compute(&name("ns1.hoster.ru"), || {
            (
                vec![ip(1)],
                LookupCost {
                    queries: 3,
                    ..LookupCost::default()
                },
            )
        });
        assert_eq!(first.ips, vec![ip(1)]);
        assert!(first.computed.is_some(), "first lookup must compute");
        let second =
            cache.get_or_compute(&name("ns1.hoster.ru"), || panic!("cached entry recomputed"));
        assert_eq!(second.ips, vec![ip(1)]);
        assert!(second.computed.is_none(), "second lookup must hit");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn counters_reset_per_sweep() {
        let mut cache = NsCache::new();
        cache.begin_sweep(Date::from_ymd(2022, 3, 1));
        cache.get_or_compute(&name("ns1.hoster.ru"), || {
            (vec![ip(1)], LookupCost::default())
        });
        cache.get_or_compute(&name("ns1.hoster.ru"), || panic!("cached"));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.begin_sweep(Date::from_ymd(2022, 3, 2));
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn never_serves_across_a_day_boundary() {
        let mut cache = NsCache::new();
        cache.begin_sweep(Date::from_ymd(2022, 3, 1));
        cache.get_or_compute(&name("ns1.hoster.ru"), || {
            (vec![ip(1)], LookupCost::default())
        });
        assert_eq!(cache.peek(&name("ns1.hoster.ru")), Some(vec![ip(1)]));
        assert_eq!(cache.len(), 1);

        // The next measurement day starts: everything is re-observed.
        cache.begin_sweep(Date::from_ymd(2022, 3, 2));
        assert!(cache.is_empty(), "day boundary must clear the cache");
        assert_eq!(cache.peek(&name("ns1.hoster.ru")), None);
        let relookup = cache.get_or_compute(&name("ns1.hoster.ru"), || {
            (vec![ip(2)], LookupCost::default())
        });
        assert!(relookup.computed.is_some(), "new day must recompute");
        assert_eq!(relookup.ips, vec![ip(2)]);
    }

    #[test]
    fn same_day_begin_is_idempotent() {
        let mut cache = NsCache::new();
        let d = Date::from_ymd(2022, 3, 1);
        cache.begin_sweep(d);
        cache.get_or_compute(&name("ns1.hoster.ru"), || {
            (vec![ip(1)], LookupCost::default())
        });
        cache.begin_sweep(d);
        assert_eq!(cache.len(), 1, "same-date rebind keeps entries");
        assert_eq!(cache.date(), Some(d));
    }

    #[test]
    fn concurrent_lookups_converge() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mut cache = NsCache::new();
        cache.begin_sweep(Date::from_ymd(2022, 3, 1));
        let cache = &cache;
        let computes = AtomicU64::new(0);
        let names: Vec<DomainName> = (0..40)
            .map(|i| name(&format!("ns{}.hoster.ru", i % 5)))
            .collect();
        crossbeam::thread::scope(|s| {
            for chunk in names.chunks(10) {
                let computes = &computes;
                s.spawn(move |_| {
                    for n in chunk {
                        let hit = cache.get_or_compute(n, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            (vec![ip(9)], LookupCost::default())
                        });
                        assert_eq!(hit.ips, vec![ip(9)]);
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(
            computes.load(Ordering::SeqCst),
            5,
            "one compute per unique name"
        );
        assert_eq!(cache.len(), 5);
    }
}
