//! Zone-transfer client: fetch the registry's daily zone file over the
//! wire and extract the sweep seed list from its delegations.
//!
//! OpenINTEL "uses daily zone file snapshots as seeds" (§2), obtained from
//! registry operators. [`OpenIntelScanner`](crate::OpenIntelScanner)
//! normally receives the seed list out-of-band (the data-sharing-agreement
//! model); this client implements the stricter in-band variant — a chunked
//! transfer protocol against the registry's XFR service — and parses the
//! zone text back into delegations.

use crate::error::ScanError;
use ruwhere_dns::Zone;
use ruwhere_types::DomainName;
use ruwhere_world::World;

/// The transfer client.
pub struct ZoneTransferClient {
    src: std::net::Ipv4Addr,
}

impl ZoneTransferClient {
    /// Client homed at the world's measurement vantage.
    pub fn new(world: &World) -> Self {
        ZoneTransferClient {
            src: world.scanner_ip(),
        }
    }

    fn fetch_chunk(
        &self,
        world: &mut World,
        tld: &str,
        chunk: usize,
    ) -> Result<(usize, String), ScanError> {
        let bad_frame = || ScanError::BadPayload("malformed zone transfer frame".to_owned());
        let server = world.xfr_server();
        let req = format!("XFR {tld} {chunk}");
        let reply = world
            .network_mut()
            .request(self.src, server, req.as_bytes(), 3_000_000, 2)
            .map_err(ScanError::from)?;
        let text = String::from_utf8(reply).map_err(|_| bad_frame())?;
        let (header, body) = text.split_once('\n').ok_or_else(bad_frame)?;
        let total: usize = header
            .strip_prefix("XFRHDR ")
            .ok_or_else(bad_frame)?
            .trim()
            .parse()
            .map_err(|_| bad_frame())?;
        Ok((total, body.to_owned()))
    }

    /// Transfer the full zone for `tld` (presentation name, e.g. `"ru"` or
    /// `"xn--p1ai"`). Transport failures surface as
    /// [`ScanError::Timeout`] / [`ScanError::Unreachable`]; framing and
    /// zone-text failures as [`ScanError::BadPayload`].
    pub fn transfer(&self, world: &mut World, tld: &str) -> Result<Zone, ScanError> {
        let (total, first) = self.fetch_chunk(world, tld, 0)?;
        let mut text = first;
        for i in 1..total {
            let (_, body) = self.fetch_chunk(world, tld, i)?;
            text.push_str(&body);
        }
        Zone::from_text(&text)
            .map_err(|e| ScanError::BadPayload(format!("transferred zone failed to parse: {e}")))
    }

    /// Transfer both study zones and extract the seed list (delegated
    /// names, sorted) — byte-for-byte what the out-of-band path yields.
    pub fn seed_names(&self, world: &mut World) -> Result<Vec<DomainName>, ScanError> {
        let mut seeds = Vec::new();
        for tld in ["ru", "xn--p1ai"] {
            let zone = self.transfer(world, tld)?;
            for owner in zone.delegations() {
                if let Some(d) = owner.to_domain_name() {
                    seeds.push(d);
                }
            }
        }
        seeds.sort();
        Ok(seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_world::WorldConfig;

    #[test]
    fn transferred_zone_matches_published_snapshot() {
        let mut world = World::new(WorldConfig::tiny());
        world.publish_tld_zones();
        let client = ZoneTransferClient::new(&world);
        let zone = client
            .transfer(&mut world, "ru")
            .expect("transfer succeeds");
        assert_eq!(zone.origin().to_string(), "ru.");
        assert!(zone.record_count() > 300, "zone should carry delegations");
        // The .рф zone transfers too.
        let rf = client.transfer(&mut world, "xn--p1ai").unwrap();
        assert_eq!(rf.origin().to_string(), "xn--p1ai.");
        assert!(rf.record_count() > 10);
    }

    #[test]
    fn in_band_seeds_equal_out_of_band_seeds() {
        let mut world = World::new(WorldConfig::tiny());
        world.publish_tld_zones();
        let client = ZoneTransferClient::new(&world);
        let in_band = client.seed_names(&mut world).expect("transfer succeeds");
        let out_of_band = world.seed_names();
        // The out-of-band list includes every *registered* name; the zone
        // only carries *delegated* names. In our world every registered
        // name is delegated, so the lists must be identical.
        assert_eq!(in_band, out_of_band);
    }

    #[test]
    fn unknown_tld_fails_cleanly() {
        let mut world = World::new(WorldConfig::tiny());
        world.publish_tld_zones();
        let client = ZoneTransferClient::new(&world);
        // The service stays silent for unknown zones → transport timeout.
        assert_eq!(
            client.transfer(&mut world, "su").unwrap_err(),
            ScanError::Timeout
        );
    }
}
