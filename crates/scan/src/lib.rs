//! Measurement systems: the data-acquisition half of the paper.
//!
//! * [`openintel`] — the OpenINTEL-style pipeline (paper §2): seed a daily
//!   sweep from the `.ru`/`.рф` zone snapshots, actively resolve each
//!   domain's NS set, apex A records and name-server addresses through the
//!   simulated Internet, and annotate every address with contemporaneous
//!   geolocation (IP2Location stand-in) and origin AS.
//! * [`censys`] — the Censys-style pipeline (§4): index CT logs for
//!   certificates matching `.ru`/`.рф` names (CN or SAN, footnote 6), and
//!   run IP-wide TLS banner scans that capture the chains servers actually
//!   present — the only way to see the unlogged Russian Trusted Root CA.
//!
//! Both scanners observe the world exclusively through the network and
//! public datasets; neither reads simulation ground truth.
//!
//! All pipelines share one failure vocabulary ([`ScanError`], variants
//! aligned with the per-cause counters of [`SweepStats`]) and one run
//! shape (the [`Scanner`] trait: `&mut self`, typed snapshot out). The
//! daily sweep additionally embeds a deterministic observability section
//! ([`SweepMetrics`]) that is byte-identical for any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod censys;
pub mod error;
pub mod metrics;
pub mod nscache;
pub mod openintel;
pub mod scanner;
pub mod shard;
pub mod whois;
pub mod xfr;

pub use censys::{CertDataset, CertRecord, IpScanSnapshot, IpScanner, MatchRule};
pub use error::ScanError;
pub use metrics::SweepMetrics;
pub use nscache::NsCache;
pub use openintel::{
    available_workers, default_checkpoint_dir, AddrInfo, Completeness, DailySweep, DomainDay,
    OpenIntelScanner, SweepOptions, SweepStats, CHECKPOINT_DIR_ENV, WORKERS_ENV,
};
pub use ruwhere_store::{Interner, RecordView, SweepFrame};
pub use scanner::Scanner;
pub use shard::ShardPlan;
pub use whois::{ArrivalClassification, WhoisClient};
pub use xfr::ZoneTransferClient;
