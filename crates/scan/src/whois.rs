//! WHOIS client: confirm registration dates over the wire.
//!
//! §3.4 of the paper cross-checks arrivals at Amazon against "Cisco's
//! Whois Domain API" to separate *newly registered* names from existing
//! names that relocated. This client speaks the registry's port-43
//! protocol through the simulated network and classifies arrival lists
//! the same way.

use crate::error::ScanError;
use ruwhere_registry::whois::{parse, WhoisRecord};
use ruwhere_types::{Date, DomainName};
use ruwhere_world::World;
use serde::{Deserialize, Serialize};

/// Arrival classification result (the paper's footnote-10 analysis).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalClassification {
    /// Registered after the comparison date: genuinely new names.
    pub newly_registered: Vec<DomainName>,
    /// Registered before it: existing names that relocated in.
    pub preexisting: Vec<DomainName>,
    /// WHOIS gave no answer (lapsed between sweeps, or lookup failure).
    pub unknown: Vec<DomainName>,
}

/// A WHOIS client homed at the measurement vantage.
pub struct WhoisClient {
    src: std::net::Ipv4Addr,
}

impl WhoisClient {
    /// New client for `world`'s scanner vantage.
    pub fn new(world: &World) -> Self {
        WhoisClient {
            src: world.scanner_ip(),
        }
    }

    /// Look up one domain.
    ///
    /// Returns [`ScanError::NotFound`] when the registry answers
    /// authoritatively that the name is not registered — distinct from
    /// transport failures ([`ScanError::Timeout`] /
    /// [`ScanError::Unreachable`]), which the old `Option` return
    /// conflated with it.
    pub fn lookup(&self, world: &mut World, domain: &DomainName) -> Result<WhoisRecord, ScanError> {
        let server = world.whois_server();
        let query = format!("{}\r\n", domain.as_str());
        let reply = world
            .network_mut()
            .request(self.src, server, query.as_bytes(), 2_000_000, 2)
            .map_err(ScanError::from)?;
        let text = String::from_utf8(reply)
            .map_err(|_| ScanError::BadPayload("non-UTF-8 WHOIS reply".to_owned()))?;
        parse(&text).ok_or(ScanError::NotFound)
    }

    /// Classify `arrivals` by whether WHOIS shows them registered strictly
    /// after `existed_before` (newly registered) or on/before it
    /// (preexisting, i.e. relocated in).
    ///
    /// Takes the arrival list by value: each name is *moved* into its
    /// result bucket ([`DomainName`] is `Arc`-backed, so even the lookup
    /// borrow costs nothing — no string is cloned here).
    pub fn classify_arrivals(
        &self,
        world: &mut World,
        arrivals: Vec<DomainName>,
        existed_before: Date,
    ) -> ArrivalClassification {
        let mut out = ArrivalClassification::default();
        for domain in arrivals {
            match self.lookup(world, &domain) {
                Ok(rec) if rec.created > existed_before => out.newly_registered.push(domain),
                Ok(_) => out.preexisting.push(domain),
                // NotFound (lapsed between sweeps) and transport failures
                // alike: WHOIS could not confirm, so the name stays in
                // the unknown bucket (the paper's footnote-10 handling).
                Err(_) => out.unknown.push(domain),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_world::WorldConfig;

    #[test]
    fn lookup_matches_registry_facts() {
        let mut world = World::new(WorldConfig::tiny());
        world.publish_tld_zones();
        let client = WhoisClient::new(&world);

        let name = world.seed_names()[0].clone();
        let truth_created = world.domain_state(&name).map(|s| s.registered);
        let rec = client.lookup(&mut world, &name).expect("whois answers");
        assert_eq!(rec.domain, name);
        if let Some(created) = truth_created {
            assert_eq!(rec.created, created);
        }
        assert!(!rec.nservers.is_empty(), "delegated domains list NS");

        // Unregistered name: an authoritative miss, not a wire failure.
        let missing: DomainName = "definitely-not-registered-xyz.ru".parse().unwrap();
        assert_eq!(
            client.lookup(&mut world, &missing).unwrap_err(),
            ScanError::NotFound
        );
    }

    #[test]
    fn classify_arrivals_by_creation_date() {
        let mut world = World::new(WorldConfig::tiny());
        // Advance so churn registers some new names after the start.
        let t0 = world.today();
        world.advance_to(t0.add_days(45));
        world.publish_tld_zones();
        let client = WhoisClient::new(&world);

        // Find one old and (if churn produced one) one new domain.
        let seeds = world.seed_names();
        let old: Vec<DomainName> = seeds
            .iter()
            .filter(|d| world.domain_state(d).is_some_and(|s| s.registered <= t0))
            .take(3)
            .cloned()
            .collect();
        let new: Vec<DomainName> = seeds
            .iter()
            .filter(|d| world.domain_state(d).is_some_and(|s| s.registered > t0))
            .take(3)
            .cloned()
            .collect();
        assert!(!old.is_empty());

        let mut arrivals = old.clone();
        arrivals.extend(new.clone());
        arrivals.push("gone-away-domain.ru".parse().unwrap());
        let classified = client.classify_arrivals(&mut world, arrivals, t0);
        assert_eq!(classified.preexisting, old);
        assert_eq!(classified.newly_registered, new);
        assert_eq!(classified.unknown.len(), 1);
    }
}
