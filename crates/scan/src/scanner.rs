//! The unified scanner interface.
//!
//! The two measurement pipelines historically exposed different shapes:
//! `OpenIntelScanner::sweep(&mut self, &mut World)` versus
//! `IpScanner::scan(&self, &mut World)`. [`Scanner`] unifies them: every
//! scanner takes `&mut self` (scanners accumulate run-to-run state —
//! query totals, caches, last-run diagnostics) and returns a typed
//! snapshot of one measurement run at the world's current date.
//!
//! The inherent methods (`sweep`, `scan`) remain the primary entry
//! points; the trait is the generic seam — a driver that runs "every
//! scanner, every day" holds `&mut dyn`-free generic scanners and calls
//! [`Scanner::run`].

use ruwhere_world::World;

/// One measurement pipeline: runs against the world at its current date
/// and returns a dated snapshot.
pub trait Scanner {
    /// The snapshot type one run produces.
    type Snapshot;

    /// Run one full measurement pass at the world's current date.
    fn run(&mut self, world: &mut World) -> Self::Snapshot;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IpScanner, OpenIntelScanner};
    use ruwhere_world::WorldConfig;

    /// A generic daily driver — the reason the trait exists.
    fn run_scanner<S: Scanner>(scanner: &mut S, world: &mut World) -> S::Snapshot {
        scanner.run(world)
    }

    #[test]
    fn both_scanners_run_through_the_trait() {
        let mut world = World::new(WorldConfig::tiny());
        let mut sweep = OpenIntelScanner::new(&world);
        let daily = run_scanner(&mut sweep, &mut world);
        assert_eq!(daily.date, world.today());

        let mut ip = IpScanner::new(&world);
        let snap = run_scanner(&mut ip, &mut world);
        assert_eq!(snap.date, world.today());
    }
}
