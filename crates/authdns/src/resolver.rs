//! Iterative (referral-chasing) resolution, as a measurement client.
//!
//! Beyond the basic referral walk, the resolver is hardened against the
//! server pathologies the fault-injection layer can produce (outages,
//! flapping boxes, SERVFAIL backends, truncated replies, lame
//! delegations): it keeps per-server health state — a smoothed RTT
//! estimate and an exponential-backoff penalty box, in the style of
//! unbound's infra cache — prefers healthy servers, caps the failures any
//! single resolution may absorb, and reports *why* a name failed through
//! distinct [`ResolveError`] variants so the measurement layer can count
//! failure causes instead of lumping everything into "timeout".

use ruwhere_dns::{Message, Name, RData, RType, Rcode, Record};
use ruwhere_netsim::{SimTime, Transport};
use ruwhere_obs::Histogram;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// A root name-server hint: where resolution starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootHint {
    /// Root server host name (informational).
    pub name: Name,
    /// Root server address.
    pub addr: Ipv4Addr,
}

/// Outcome of a successful resolution exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Positive answer: the full answer section (CNAME chain included).
    Records(Vec<Record>),
    /// Authoritative denial: the name does not exist.
    NxDomain,
    /// The name exists but has no records of the queried type.
    NoData,
}

impl Resolution {
    /// All IPv4 addresses in the answer.
    pub fn addresses(&self) -> Vec<Ipv4Addr> {
        match self {
            Resolution::Records(recs) => recs
                .iter()
                .filter_map(|r| match &r.data {
                    RData::A(ip) => Some(*ip),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// All NS target names in the answer.
    pub fn ns_targets(&self) -> Vec<Name> {
        match self {
            Resolution::Records(recs) => recs
                .iter()
                .filter_map(|r| match &r.data {
                    RData::Ns(n) => Some(n.clone()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Whether this is a positive answer.
    pub fn is_positive(&self) -> bool {
        matches!(self, Resolution::Records(_))
    }
}

/// One step in a resolution trace (for diagnostics and the
/// `resolver_trace` example).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A query was sent to `server`.
    Query {
        /// Target server address.
        server: Ipv4Addr,
        /// Queried name.
        qname: Name,
        /// Queried type.
        rtype: RType,
    },
    /// A referral moved resolution below `cut`.
    Referral {
        /// The zone cut.
        cut: Name,
        /// Glue addresses accepted (after bailiwick filtering).
        glue: usize,
        /// Glue records discarded by the bailiwick check.
        rejected_glue: usize,
    },
    /// A server timed out.
    Timeout {
        /// The unresponsive server.
        server: Ipv4Addr,
    },
    /// A server answered SERVFAIL.
    ServFail {
        /// The failing server.
        server: Ipv4Addr,
    },
    /// A server gave a lame (non-authoritative, answerless) response.
    Lame {
        /// The lame server.
        server: Ipv4Addr,
    },
    /// A server sent a truncated reply the client could not use.
    Truncated {
        /// The truncating server.
        server: Ipv4Addr,
    },
    /// A CNAME redirected resolution.
    Cname {
        /// The alias target.
        target: Name,
    },
    /// Terminal outcome (answer / nxdomain / nodata / error), rendered.
    Done {
        /// Human-readable outcome.
        outcome: String,
    },
}

/// Resolution failures, by cause. The measurement pipeline keys its
/// per-sweep failure counters off these variants, so Figure-1-style gap
/// analyses can distinguish "the TLD was down" from "a backend broke".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveError {
    /// Every candidate server timed out.
    Timeout,
    /// Servers answered but returned SERVFAIL.
    ServFail,
    /// Servers answered but were lame for the zone (non-authoritative,
    /// no answer, no referral).
    Lame,
    /// Servers answered but refused.
    Refused,
    /// Query/retry budget exhausted (flapping servers, lame delegation
    /// loop, or a too-deep dependency chain).
    BudgetExhausted,
    /// A referral pointed at name servers whose addresses could not be
    /// resolved.
    NoNameservers,
    /// A malformed response that could not be decoded.
    BadResponse,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Timeout => write!(f, "all name servers timed out"),
            ResolveError::ServFail => write!(f, "all name servers answered SERVFAIL"),
            ResolveError::Lame => write!(f, "all name servers were lame for the zone"),
            ResolveError::Refused => write!(f, "all name servers refused"),
            ResolveError::BudgetExhausted => write!(f, "resolution budget exhausted"),
            ResolveError::NoNameservers => write!(f, "referral with unresolvable name servers"),
            ResolveError::BadResponse => write!(f, "malformed response"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Cumulative failure-cause counters, for measurement accounting.
///
/// Monotone over the resolver's lifetime; callers diff snapshots to get
/// per-sweep numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries that timed out at the transport.
    pub timeouts: u64,
    /// Queries answered with SERVFAIL.
    pub servfails: u64,
    /// Queries answered lamely (non-authoritative, answerless).
    pub lame: u64,
    /// Queries answered with TC=1 (unusable over this transport).
    pub truncated: u64,
    /// Failed queries charged against retry budgets — the resolver-level
    /// cost of server misbehaviour (each one is a wasted exchange).
    pub retries_spent: u64,
}

/// Observability aggregates for one resolver (or one per-domain fork).
///
/// Like [`ResolverStats`] these are monotone and zeroed on
/// [`fork`](IterativeResolver::fork), so a fork's aggregates are exactly
/// one domain's resolution behaviour. All fields merge by addition
/// (histograms bucket-wise), so per-fork instances fold into sweep totals
/// independent of worker count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolverObs {
    /// Smoothed-RTT estimate (µs), sampled after every successful
    /// exchange — the resolver's evolving view of server speed.
    pub srtt_us: Histogram,
    /// Servers entering the penalty box (a first failure after a clean
    /// streak; consecutive failures extend the box, they don't re-enter).
    pub penalty_entries: u64,
    /// Penalized servers observed healthy again (a success that cleared a
    /// non-zero failure streak).
    pub penalty_exits: u64,
    /// Resolutions answered from the in-resolver answer cache.
    pub answer_cache_hits: u64,
    /// NS-target lookups served by the shared [`NsDependencyCache`].
    pub deps_cache_hits: u64,
}

impl ResolverObs {
    /// Fold another aggregate in (commutative, associative).
    pub fn merge(&mut self, other: &ResolverObs) {
        self.srtt_us.merge(&other.srtt_us);
        self.penalty_entries += other.penalty_entries;
        self.penalty_exits += other.penalty_exits;
        self.answer_cache_hits += other.answer_cache_hits;
        self.deps_cache_hits += other.deps_cache_hits;
    }
}

/// Per-server health, unbound-infra-cache style: a smoothed RTT estimate
/// and an exponentially growing penalty box for consecutive failures.
#[derive(Debug, Clone, Copy)]
struct ServerHealth {
    /// Smoothed RTT in µs (EWMA, 1/8 gain). Starts at the optimistic
    /// default so unprobed servers sort after known-fast ones.
    srtt_us: u64,
    /// Consecutive failures since the last success.
    fails: u32,
    /// Penalized (deprioritized) until this virtual instant.
    penalized_until: SimTime,
}

/// Initial SRTT for never-probed servers (µs).
const SRTT_DEFAULT_US: u64 = 120_000;
/// First penalty-box duration; doubles per consecutive failure (µs).
const PENALTY_BASE_US: u64 = 2_000_000;
/// Cap on the penalty exponent (base << 5 = 64 s).
const PENALTY_MAX_SHIFT: u32 = 5;

impl Default for ServerHealth {
    fn default() -> Self {
        ServerHealth {
            srtt_us: SRTT_DEFAULT_US,
            fails: 0,
            penalized_until: SimTime::ZERO,
        }
    }
}

/// Hook for centrally shared NS-target address resolution.
///
/// While chasing a referral the resolver must learn the addresses of
/// out-of-bailiwick NS targets (no usable glue). In a sweep those targets
/// — hoster name servers — are shared by thousands of domains, so the
/// parallel engine routes the lookups through a sweep-wide read-through
/// cache: each target resolves exactly once per sweep, on its own
/// deterministic measurement lane, no matter which worker needs it first.
/// This trait is the seam; the resolver stays ignorant of lanes and
/// worker pools.
pub trait NsDependencyCache {
    /// Addresses for NS target `name`, served or computed centrally.
    /// `Some(vec![])` means "centrally resolved to nothing" (do not retry
    /// inline); `None` delegates back to inline resolution.
    fn ns_target_a(&self, name: &Name) -> Option<Vec<Ipv4Addr>>;
}

/// The no-op hook: every dependency resolves inline, as a stand-alone
/// resolver would.
pub struct NoDependencyCache;

impl NsDependencyCache for NoDependencyCache {
    fn ns_target_a(&self, _name: &Name) -> Option<Vec<Ipv4Addr>> {
        None
    }
}

/// An iterative resolver bound to a client address.
///
/// Caches positive/negative answers and zone-cut server addresses for the
/// lifetime of the cache (the scanner clears it at each daily sweep, so
/// every day re-observes the infrastructure, like OpenINTEL's daily runs).
/// Server *health* state survives [`clear_cache`](Self::clear_cache):
/// like a real resolver's infra cache, it expires by (virtual) time, not
/// by sweep boundary.
pub struct IterativeResolver {
    client_ip: Ipv4Addr,
    roots: Vec<RootHint>,
    /// Max queries for one `resolve` call.
    pub query_budget: u32,
    /// Max *failed* queries one `resolve` call may absorb before giving
    /// up. Bounds the cost of walking a mostly-dead NS set.
    pub retry_budget: u32,
    /// Per-query timeout in simulated microseconds.
    pub timeout_us: u64,
    /// Transport attempts per server.
    pub attempts: u32,
    /// Whether per-server health ordering and the penalty box are active.
    /// Disable to get the naive fixed-order resolver (for ablations: the
    /// flapping-server experiment measures the queries this saves).
    pub penalty_box_enabled: bool,
    /// Whether observability aggregates ([`obs`](Self::obs)) are recorded.
    /// On by default; benchmarks disable it to measure the
    /// instrumentation's own overhead.
    pub obs_enabled: bool,
    next_id: u16,
    answer_cache: HashMap<(Name, RType), Result<Resolution, ResolveError>>,
    cut_cache: HashMap<Name, Vec<Ipv4Addr>>,
    health: HashMap<Ipv4Addr, ServerHealth>,
    queries_sent: u64,
    stats: ResolverStats,
    obs: ResolverObs,
    trace: Option<Vec<TraceEvent>>,
}

/// Classification of one query exchange.
enum QueryOutcome {
    /// A usable response (NoError or NXDOMAIN, not truncated, not lame).
    Usable(Message),
    /// Transport timeout.
    Timeout,
    /// SERVFAIL rcode.
    ServFail,
    /// REFUSED or other error rcode.
    Refused,
    /// TC=1: unusable over this transport.
    Truncated,
    /// NoError but non-authoritative with no answer and no referral.
    Lame,
}

impl IterativeResolver {
    /// New resolver at `client_ip` starting from `roots`.
    pub fn new(client_ip: Ipv4Addr, roots: Vec<RootHint>) -> Self {
        IterativeResolver {
            client_ip,
            roots,
            query_budget: 64,
            retry_budget: 8,
            timeout_us: 2_000_000,
            attempts: 2,
            penalty_box_enabled: true,
            obs_enabled: true,
            next_id: 1,
            answer_cache: HashMap::new(),
            cut_cache: HashMap::new(),
            health: HashMap::new(),
            queries_sent: 0,
            stats: ResolverStats::default(),
            obs: ResolverObs::default(),
            trace: None,
        }
    }

    /// Enable trace recording (cleared on [`IterativeResolver::take_trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take and reset the recorded trace.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    fn record(&mut self, ev: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(ev);
        }
    }

    /// Total queries sent since construction (for harness accounting).
    pub fn queries_sent(&self) -> u64 {
        self.queries_sent
    }

    /// Cumulative failure-cause counters.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// Observability aggregates: SRTT distribution, penalty-box churn,
    /// and cache-hit counters.
    pub fn obs(&self) -> &ResolverObs {
        &self.obs
    }

    /// Drain the observability aggregates (merge a fork's into per-worker
    /// totals).
    pub fn take_obs(&mut self) -> ResolverObs {
        std::mem::take(&mut self.obs)
    }

    /// Hand an already-populated aggregate to this resolver to keep
    /// recording into. Paired with [`take_obs`](Self::take_obs) this lets
    /// a sweep worker thread one accumulator through a sequence of
    /// short-lived forks instead of allocating (and merging) a fresh
    /// histogram per fork — every recorded operation is a commutative
    /// integer fold, so the result is identical either way.
    pub fn install_obs(&mut self, obs: ResolverObs) {
        self.obs = obs;
    }

    /// Drop all cached answers and zone cuts (start of a new daily sweep).
    /// Server health is kept: it expires by virtual time instead.
    pub fn clear_cache(&mut self) {
        self.answer_cache.clear();
        self.cut_cache.clear();
    }

    /// Drop per-server health state too (a cold-started resolver).
    pub fn clear_health(&mut self) {
        self.health.clear();
    }

    /// Seed the zone-cut cache: start resolutions at or below `cut` from
    /// `addrs` instead of the roots.
    ///
    /// Resolving a TLD's NS RRset yields the server *names* as a direct
    /// answer — the referral branch that fills the cut cache never runs —
    /// so a warmup that wants every subsequent resolution to start at the
    /// TLD (with the full server set, not just the root's first glue
    /// record) must plant the cut explicitly. No-op for empty `addrs`.
    pub fn seed_cut(&mut self, cut: Name, addrs: Vec<Ipv4Addr>) {
        if !addrs.is_empty() {
            self.cut_cache.insert(cut, addrs);
        }
    }

    /// A worker-scoped copy of this resolver: same configuration and a
    /// *snapshot* of the current caches and learned SRTT estimates, with
    /// all counters zeroed, transient penalty-box state dropped, and no
    /// trace.
    ///
    /// The parallel sweep engine forks one resolver per domain from a
    /// warmup-primed prototype, so every domain starts its resolution from
    /// an identical, sharding-independent state — the core of the
    /// N-workers ≡ 1-worker determinism contract. Counter diffs of a fork
    /// are exactly that domain's measurement cost.
    ///
    /// Penalty boxes are reset (not copied) because every fork's lane
    /// restarts at the sweep base instant: a penalty the prototype picked
    /// up during warmup would never expire from any lane's point of view,
    /// turning one unlucky warmup timeout into a sweep-wide `attempts=1`
    /// degradation. SRTT survives — it is a rate estimate, not backoff
    /// state — so server ordering stays warm.
    pub fn fork(&self) -> IterativeResolver {
        let health = self
            .health
            .iter()
            .map(|(&ip, h)| {
                (
                    ip,
                    ServerHealth {
                        srtt_us: h.srtt_us,
                        fails: 0,
                        penalized_until: SimTime::ZERO,
                    },
                )
            })
            .collect();
        IterativeResolver {
            client_ip: self.client_ip,
            roots: self.roots.clone(),
            query_budget: self.query_budget,
            retry_budget: self.retry_budget,
            timeout_us: self.timeout_us,
            attempts: self.attempts,
            penalty_box_enabled: self.penalty_box_enabled,
            obs_enabled: self.obs_enabled,
            next_id: self.next_id,
            answer_cache: self.answer_cache.clone(),
            cut_cache: self.cut_cache.clone(),
            health,
            queries_sent: 0,
            stats: ResolverStats::default(),
            obs: ResolverObs::default(),
            trace: None,
        }
    }

    /// Resolve `name`/`rtype`, driving the simulated network (either the
    /// serial [`ruwhere_netsim::Network`] or a per-worker
    /// [`ruwhere_netsim::Lane`]).
    pub fn resolve<T: Transport>(
        &mut self,
        net: &mut T,
        name: &Name,
        rtype: RType,
    ) -> Result<Resolution, ResolveError> {
        self.resolve_with_cache(net, name, rtype, &NoDependencyCache)
    }

    /// [`resolve`](Self::resolve), with NS-target dependency lookups routed
    /// through `deps` (the parallel sweep engine's shared read-through
    /// cache).
    pub fn resolve_with_cache<T: Transport>(
        &mut self,
        net: &mut T,
        name: &Name,
        rtype: RType,
        deps: &dyn NsDependencyCache,
    ) -> Result<Resolution, ResolveError> {
        let mut budget = self.query_budget;
        let mut retries = self.retry_budget;
        let result = self.resolve_inner(net, name, rtype, &mut budget, &mut retries, 0, deps);
        let outcome = match &result {
            Ok(Resolution::Records(r)) => format!("answer ({} records)", r.len()),
            Ok(Resolution::NxDomain) => "NXDOMAIN".to_owned(),
            Ok(Resolution::NoData) => "NODATA".to_owned(),
            Err(e) => format!("error: {e}"),
        };
        self.record(TraceEvent::Done { outcome });
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_inner<T: Transport>(
        &mut self,
        net: &mut T,
        name: &Name,
        rtype: RType,
        budget: &mut u32,
        retries: &mut u32,
        depth: u32,
        deps: &dyn NsDependencyCache,
    ) -> Result<Resolution, ResolveError> {
        if depth > 6 {
            return Err(ResolveError::BudgetExhausted);
        }
        if let Some(cached) = self.answer_cache.get(&(name.clone(), rtype)) {
            let cached = cached.clone();
            if self.obs_enabled {
                self.obs.answer_cache_hits += 1;
            }
            return cached;
        }
        let result = self.resolve_uncached(net, name, rtype, budget, retries, depth, deps);
        // Cache everything except transient failures: timeouts and
        // SERVFAILs may clear within the sweep, and budget exhaustion is a
        // property of this call's budget, not of the name.
        if !matches!(
            result,
            Err(ResolveError::Timeout | ResolveError::ServFail | ResolveError::BudgetExhausted)
        ) {
            self.answer_cache
                .insert((name.clone(), rtype), result.clone());
        }
        result
    }

    fn starting_servers(&self, name: &Name) -> Vec<Ipv4Addr> {
        // Deepest cached cut that is an ancestor of `name`.
        let mut cursor = Some(name.clone());
        while let Some(n) = cursor {
            if let Some(addrs) = self.cut_cache.get(&n) {
                return addrs.clone();
            }
            cursor = n.parent();
        }
        self.roots.iter().map(|r| r.addr).collect()
    }

    /// Candidate servers in query order: healthy before penalized, faster
    /// (smoothed RTT) before slower, original order as the tiebreak.
    /// Penalized servers stay in the list — if everything else fails they
    /// are still tried, so a penalty can never cause a false failure.
    fn order_servers(&self, servers: &[Ipv4Addr], now: SimTime) -> Vec<Ipv4Addr> {
        if !self.penalty_box_enabled {
            return servers.to_vec();
        }
        let mut ordered = servers.to_vec();
        ordered.sort_by_key(|addr| {
            let h = self.health.get(addr).copied().unwrap_or_default();
            let penalized = h.penalized_until > now;
            (penalized, h.srtt_us)
        });
        ordered
    }

    fn note_success(&mut self, server: Ipv4Addr, rtt_us: u64) {
        let h = self.health.entry(server).or_default();
        // EWMA with 1/8 gain, like classic TCP SRTT.
        h.srtt_us = h.srtt_us - h.srtt_us / 8 + rtt_us / 8;
        let srtt = h.srtt_us;
        let was_failing = h.fails > 0;
        h.fails = 0;
        h.penalized_until = SimTime::ZERO;
        if self.obs_enabled {
            self.obs.srtt_us.record(srtt);
            if was_failing {
                self.obs.penalty_exits += 1;
            }
        }
    }

    fn note_failure(&mut self, server: Ipv4Addr, now: SimTime) {
        let h = self.health.entry(server).or_default();
        let entered = h.fails == 0;
        h.fails = h.fails.saturating_add(1);
        let shift = (h.fails - 1).min(PENALTY_MAX_SHIFT);
        h.penalized_until = now.plus_us(PENALTY_BASE_US << shift);
        if self.obs_enabled && entered {
            self.obs.penalty_entries += 1;
        }
    }

    fn send_query<T: Transport>(
        &mut self,
        net: &mut T,
        server: Ipv4Addr,
        name: &Name,
        rtype: RType,
        budget: &mut u32,
    ) -> Result<QueryOutcome, ResolveError> {
        if *budget == 0 {
            return Err(ResolveError::BudgetExhausted);
        }
        *budget -= 1;
        self.queries_sent += 1;
        self.record(TraceEvent::Query {
            server,
            qname: name.clone(),
            rtype,
        });
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let query = Message::query(id, name.clone(), rtype);
        let bytes = query.encode().map_err(|_| ResolveError::BadResponse)?;
        // A penalized server gets one transport attempt, not the full
        // retry schedule: we are probing whether it recovered, not
        // betting the query's latency budget on it.
        let penalized = self.penalty_box_enabled
            && self
                .health
                .get(&server)
                .is_some_and(|h| h.penalized_until > net.now());
        let attempts = if penalized { 1 } else { self.attempts };
        let t0 = net.now();
        match net.request(
            self.client_ip,
            (server, 53),
            &bytes,
            self.timeout_us,
            attempts,
        ) {
            Err(_) => {
                self.stats.timeouts += 1;
                self.note_failure(server, net.now());
                self.record(TraceEvent::Timeout { server });
                Ok(QueryOutcome::Timeout)
            }
            Ok(reply) => {
                let msg = Message::decode(&reply).map_err(|_| ResolveError::BadResponse)?;
                if msg.id != id || !msg.is_response() {
                    return Err(ResolveError::BadResponse);
                }
                let now = net.now();
                if msg.flags.tc {
                    self.stats.truncated += 1;
                    self.note_failure(server, now);
                    self.record(TraceEvent::Truncated { server });
                    return Ok(QueryOutcome::Truncated);
                }
                match msg.flags.rcode {
                    Rcode::NoError | Rcode::NxDomain => {
                        // Lame delegation: the server answered, but
                        // non-authoritatively, with nothing to act on —
                        // it does not actually serve the zone.
                        let lame = msg.flags.rcode == Rcode::NoError
                            && !msg.flags.aa
                            && msg.answers.is_empty()
                            && !msg.authorities.iter().any(|r| r.data.rtype() == RType::Ns);
                        if lame {
                            self.stats.lame += 1;
                            self.note_failure(server, now);
                            self.record(TraceEvent::Lame { server });
                            Ok(QueryOutcome::Lame)
                        } else {
                            self.note_success(server, now.as_micros() - t0.as_micros());
                            Ok(QueryOutcome::Usable(msg))
                        }
                    }
                    Rcode::ServFail => {
                        self.stats.servfails += 1;
                        self.note_failure(server, now);
                        self.record(TraceEvent::ServFail { server });
                        Ok(QueryOutcome::ServFail)
                    }
                    _ => {
                        // REFUSED and friends: a deliberate answer, not a
                        // broken box — no penalty, but not usable either.
                        Ok(QueryOutcome::Refused)
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_uncached<T: Transport>(
        &mut self,
        net: &mut T,
        qname: &Name,
        rtype: RType,
        budget: &mut u32,
        retries: &mut u32,
        depth: u32,
        deps: &dyn NsDependencyCache,
    ) -> Result<Resolution, ResolveError> {
        let mut current_name = qname.clone();
        let mut chain: Vec<Record> = Vec::new();
        let mut servers = self.starting_servers(&current_name);
        let mut saw_refusal = false;
        let mut saw_timeout = false;
        let mut saw_servfail = false;
        let mut saw_lame = false;

        for _step in 0..24 {
            // Try candidate servers, best-health first, until one gives a
            // usable response. Each failure burns a retry token; when the
            // budget is gone the resolution fails fast instead of walking
            // the rest of a dead NS set.
            let ordered = self.order_servers(&servers, net.now());
            let mut response = None;
            for &server in &ordered {
                let outcome = self.send_query(net, server, &current_name, rtype, budget)?;
                match outcome {
                    QueryOutcome::Usable(msg) => {
                        response = Some(msg);
                        break;
                    }
                    QueryOutcome::Timeout => saw_timeout = true,
                    QueryOutcome::ServFail => saw_servfail = true,
                    QueryOutcome::Lame => saw_lame = true,
                    QueryOutcome::Truncated => saw_timeout = true,
                    QueryOutcome::Refused => saw_refusal = true,
                }
                self.stats.retries_spent += 1;
                if *retries == 0 {
                    return Err(ResolveError::BudgetExhausted);
                }
                *retries -= 1;
            }
            let Some(msg) = response else {
                // Classify by the most specific protocol-visible cause.
                return Err(if saw_lame {
                    ResolveError::Lame
                } else if saw_servfail {
                    ResolveError::ServFail
                } else if saw_refusal && !saw_timeout {
                    ResolveError::Refused
                } else {
                    ResolveError::Timeout
                });
            };

            if msg.flags.rcode == Rcode::NxDomain {
                return Ok(Resolution::NxDomain);
            }

            // Positive answer?
            if !msg.answers.is_empty() {
                let has_final = msg.answers.iter().any(|r| r.data.rtype() == rtype);
                chain.extend(msg.answers.iter().cloned());
                if has_final {
                    return Ok(Resolution::Records(chain));
                }
                // Pure CNAME response: chase the last target.
                if let Some(target) = msg.answers.iter().rev().find_map(|r| match &r.data {
                    RData::Cname(t) => Some(t.clone()),
                    _ => None,
                }) {
                    if chain.len() > 16 {
                        return Err(ResolveError::BudgetExhausted);
                    }
                    self.record(TraceEvent::Cname {
                        target: target.clone(),
                    });
                    current_name = target;
                    servers = self.starting_servers(&current_name);
                    continue;
                }
                return Ok(Resolution::Records(chain));
            }

            // Referral?
            let ns_records: Vec<&Record> = msg
                .authorities
                .iter()
                .filter(|r| r.data.rtype() == RType::Ns)
                .collect();
            if !ns_records.is_empty() && !msg.flags.aa {
                let cut = ns_records[0].name.clone();
                let targets: Vec<Name> = ns_records
                    .iter()
                    .filter_map(|r| match &r.data {
                        RData::Ns(t) => Some(t.clone()),
                        _ => None,
                    })
                    .collect();
                // Bailiwick check: only accept glue whose owner is one of
                // the referral's NS targets. Anything else in the
                // additional section (cache-poisoning style extras) is
                // discarded and, if needed, resolved independently.
                let mut rejected_glue = 0usize;
                let mut addrs: Vec<Ipv4Addr> = Vec::new();
                for r in &msg.additionals {
                    if let RData::A(ip) = &r.data {
                        if targets.contains(&r.name) {
                            addrs.push(*ip);
                        } else {
                            rejected_glue += 1;
                        }
                    }
                }
                let glue_accepted = addrs.len();
                if addrs.is_empty() {
                    // Out-of-bailiwick NS: resolve their addresses —
                    // centrally through the dependency cache when the
                    // engine provides one, inline otherwise.
                    for t in &targets {
                        if let Some(shared) = deps.ns_target_a(t) {
                            if self.obs_enabled {
                                self.obs.deps_cache_hits += 1;
                            }
                            addrs.extend(shared);
                        } else if let Ok(res) =
                            self.resolve_inner(net, t, RType::A, budget, retries, depth + 1, deps)
                        {
                            addrs.extend(res.addresses());
                        }
                        if addrs.len() >= 4 {
                            break;
                        }
                    }
                }
                self.record(TraceEvent::Referral {
                    cut: cut.clone(),
                    glue: glue_accepted,
                    rejected_glue,
                });
                if addrs.is_empty() {
                    return Err(ResolveError::NoNameservers);
                }
                self.cut_cache.insert(cut, addrs.clone());
                servers = addrs;
                continue;
            }

            // Authoritative empty answer: NoData.
            if msg.flags.aa {
                return Ok(Resolution::NoData);
            }
            // Neither answer, referral, nor authoritative denial, yet not
            // lame-shaped either (send_query screens those out).
            return Err(ResolveError::BadResponse);
        }
        Err(ResolveError::BudgetExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{shared_zones, AuthServer, ServerBehavior};
    use ruwhere_dns::{RData, Record, SoaData, Zone};
    use ruwhere_netsim::fault::{FaultWindow, ServerFault, ServerFaultMode};
    use ruwhere_netsim::{AsInfo, Network, Topology};
    use ruwhere_types::{Asn, Country, SeedTree};

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn soa(mname: &str) -> SoaData {
        SoaData {
            mname: name(mname),
            rname: name("hostmaster.invalid"),
            serial: 1,
            refresh: 1,
            retry: 1,
            expire: 1,
            minimum: 60,
        }
    }

    const ROOT_IP: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const RU_TLD_IP: Ipv4Addr = Ipv4Addr::new(193, 232, 128, 6);
    const COM_TLD_IP: Ipv4Addr = Ipv4Addr::new(192, 5, 6, 30);
    const HOSTER_DNS_IP: Ipv4Addr = Ipv4Addr::new(194, 85, 61, 20);
    const HOSTER_DNS2_IP: Ipv4Addr = Ipv4Addr::new(194, 85, 61, 21);
    const WEB_IP: Ipv4Addr = Ipv4Addr::new(194, 85, 90, 10);
    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(130, 89, 1, 1);

    /// Build a three-level hierarchy: root → ru/com → example.ru served by
    /// ns1.hoster.ru (in-bailiwick of .ru with glue) and ns2.hoster.com
    /// (out-of-bailiwick, requiring a separate resolution).
    fn build_world() -> (Network, IterativeResolver) {
        let mut topo = Topology::new(SeedTree::new(11).child("topo"));
        for (asn, org, cc) in [
            (Asn(1), "ROOT-OPS", Country::US),
            (Asn(2), "RIPN", Country::RU),
            (Asn(3), "VRSN", Country::US),
            (Asn(4), "RU-HOSTER", Country::RU),
            (Asn(5), "SCANNER", Country::NL),
        ] {
            topo.add_as(AsInfo {
                asn,
                org: org.into(),
                country: cc,
            });
        }
        topo.announce("198.41.0.0/24".parse().unwrap(), Asn(1));
        topo.announce("193.232.128.0/24".parse().unwrap(), Asn(2));
        topo.announce("192.5.6.0/24".parse().unwrap(), Asn(3));
        topo.announce("194.85.0.0/16".parse().unwrap(), Asn(4));
        topo.announce("130.89.0.0/16".parse().unwrap(), Asn(5));
        let mut net = Network::new(topo, SeedTree::new(11).child("net"));

        // Root zone.
        let mut root = Zone::new(Name::root(), soa("a.root-servers.net"), 86400);
        root.add(Record::new(
            name("ru"),
            86400,
            RData::Ns(name("a.dns.ripn.net")),
        ));
        root.add(Record::new(
            name("a.dns.ripn.net"),
            86400,
            RData::A(RU_TLD_IP),
        ));
        root.add(Record::new(
            name("com"),
            86400,
            RData::Ns(name("a.gtld-servers.net")),
        ));
        root.add(Record::new(
            name("a.gtld-servers.net"),
            86400,
            RData::A(COM_TLD_IP),
        ));
        net.bind(ROOT_IP, 53, Box::new(AuthServer::new(shared_zones([root]))));

        // .ru TLD zone: delegation for example.ru + glue for in-bailiwick NS.
        let mut ru = Zone::new(name("ru"), soa("a.dns.ripn.net"), 86400);
        ru.add(Record::new(
            name("example.ru"),
            3600,
            RData::Ns(name("ns1.hoster.ru")),
        ));
        ru.add(Record::new(
            name("example.ru"),
            3600,
            RData::Ns(name("ns2.hoster.com")),
        ));
        ru.add(Record::new(
            name("hoster.ru"),
            3600,
            RData::Ns(name("ns1.hoster.ru")),
        ));
        ru.add(Record::new(
            name("ns1.hoster.ru"),
            3600,
            RData::A(HOSTER_DNS_IP),
        ));
        net.bind(RU_TLD_IP, 53, Box::new(AuthServer::new(shared_zones([ru]))));

        // .com TLD zone: delegation for hoster.com.
        let mut com = Zone::new(name("com"), soa("a.gtld-servers.net"), 86400);
        com.add(Record::new(
            name("hoster.com"),
            3600,
            RData::Ns(name("ns1.hoster.ru")),
        ));
        net.bind(
            COM_TLD_IP,
            53,
            Box::new(AuthServer::new(shared_zones([com]))),
        );

        // The hosting operator serves example.ru, hoster.ru AND hoster.com.
        let mut example = Zone::new(name("example.ru"), soa("ns1.hoster.ru"), 3600);
        example.add(Record::new(name("example.ru"), 300, RData::A(WEB_IP)));
        example.add(Record::new(
            name("example.ru"),
            300,
            RData::Ns(name("ns1.hoster.ru")),
        ));
        example.add(Record::new(
            name("example.ru"),
            300,
            RData::Ns(name("ns2.hoster.com")),
        ));
        example.add(Record::new(
            name("www.example.ru"),
            300,
            RData::Cname(name("example.ru")),
        ));
        let mut hoster_ru = Zone::new(name("hoster.ru"), soa("ns1.hoster.ru"), 3600);
        hoster_ru.add(Record::new(
            name("ns1.hoster.ru"),
            300,
            RData::A(HOSTER_DNS_IP),
        ));
        let mut hoster_com = Zone::new(name("hoster.com"), soa("ns1.hoster.ru"), 3600);
        hoster_com.add(Record::new(
            name("ns2.hoster.com"),
            300,
            RData::A(HOSTER_DNS_IP),
        ));
        net.bind(
            HOSTER_DNS_IP,
            53,
            Box::new(AuthServer::new(shared_zones([
                example, hoster_ru, hoster_com,
            ]))),
        );

        let resolver = IterativeResolver::new(
            CLIENT_IP,
            vec![RootHint {
                name: name("a.root-servers.net"),
                addr: ROOT_IP,
            }],
        );
        (net, resolver)
    }

    /// Variant of [`build_world`] where example.ru has TWO glued name
    /// servers, so server-selection behaviour (fallback, penalty box) is
    /// observable. Returns the network, resolver, and the second server's
    /// behavior handle.
    fn build_two_ns_world() -> (
        Network,
        IterativeResolver,
        std::sync::Arc<parking_lot::RwLock<ServerBehavior>>,
    ) {
        let (mut net, resolver) = build_world();
        // Give example.ru a second, glued, in-bailiwick NS.
        let mut ru = Zone::new(name("ru"), soa("a.dns.ripn.net"), 86400);
        ru.add(Record::new(
            name("example.ru"),
            3600,
            RData::Ns(name("ns1.hoster.ru")),
        ));
        ru.add(Record::new(
            name("example.ru"),
            3600,
            RData::Ns(name("ns3.hoster.ru")),
        ));
        ru.add(Record::new(
            name("ns1.hoster.ru"),
            3600,
            RData::A(HOSTER_DNS_IP),
        ));
        ru.add(Record::new(
            name("ns3.hoster.ru"),
            3600,
            RData::A(HOSTER_DNS2_IP),
        ));
        net.bind(RU_TLD_IP, 53, Box::new(AuthServer::new(shared_zones([ru]))));

        let mut example = Zone::new(name("example.ru"), soa("ns1.hoster.ru"), 3600);
        example.add(Record::new(name("example.ru"), 300, RData::A(WEB_IP)));
        example.add(Record::new(
            name("example.ru"),
            300,
            RData::Ns(name("ns1.hoster.ru")),
        ));
        example.add(Record::new(
            name("example.ru"),
            300,
            RData::Ns(name("ns3.hoster.ru")),
        ));
        let srv2 = AuthServer::new(shared_zones([example]));
        let handle = srv2.behavior_handle();
        net.bind(HOSTER_DNS2_IP, 53, Box::new(srv2));
        (net, resolver, handle)
    }

    #[test]
    fn full_iterative_resolution() {
        let (mut net, mut r) = build_world();
        let res = r.resolve(&mut net, &name("example.ru"), RType::A).unwrap();
        assert_eq!(res.addresses(), vec![WEB_IP]);
    }

    #[test]
    fn ns_resolution() {
        let (mut net, mut r) = build_world();
        let res = r.resolve(&mut net, &name("example.ru"), RType::Ns).unwrap();
        let mut targets: Vec<String> = res.ns_targets().iter().map(|n| n.to_string()).collect();
        targets.sort();
        assert_eq!(targets, vec!["ns1.hoster.ru.", "ns2.hoster.com."]);
    }

    #[test]
    fn cname_chase() {
        let (mut net, mut r) = build_world();
        let res = r
            .resolve(&mut net, &name("www.example.ru"), RType::A)
            .unwrap();
        assert_eq!(res.addresses(), vec![WEB_IP]);
        if let Resolution::Records(recs) = &res {
            assert!(recs.iter().any(|rec| rec.data.rtype() == RType::Cname));
        }
    }

    #[test]
    fn nxdomain_and_nodata() {
        let (mut net, mut r) = build_world();
        assert_eq!(
            r.resolve(&mut net, &name("missing.example.ru"), RType::A)
                .unwrap(),
            Resolution::NxDomain
        );
        assert_eq!(
            r.resolve(&mut net, &name("example.ru"), RType::Mx).unwrap(),
            Resolution::NoData
        );
        assert_eq!(
            r.resolve(&mut net, &name("unregistered.ru"), RType::A)
                .unwrap(),
            Resolution::NxDomain
        );
    }

    #[test]
    fn out_of_bailiwick_ns_resolved_via_com() {
        let (mut net, mut r) = build_world();
        // Resolving ns2.hoster.com requires walking root → com → hoster.
        let res = r
            .resolve(&mut net, &name("ns2.hoster.com"), RType::A)
            .unwrap();
        assert_eq!(res.addresses(), vec![HOSTER_DNS_IP]);
    }

    #[test]
    fn cache_reduces_queries() {
        let (mut net, mut r) = build_world();
        r.resolve(&mut net, &name("example.ru"), RType::A).unwrap();
        let after_first = r.queries_sent();
        r.resolve(&mut net, &name("www.example.ru"), RType::A)
            .unwrap();
        let after_second = r.queries_sent();
        // Second resolution starts from the cached example.ru cut: at most
        // a couple of queries instead of a full walk.
        assert!(
            after_second - after_first <= 2,
            "expected cached walk, used {} queries",
            after_second - after_first
        );
        // Repeated identical resolution is free.
        r.resolve(&mut net, &name("example.ru"), RType::A).unwrap();
        assert_eq!(r.queries_sent(), after_second);
        // After clearing, the walk restarts at the root.
        r.clear_cache();
        r.resolve(&mut net, &name("example.ru"), RType::A).unwrap();
        assert!(r.queries_sent() > after_second + 1);
    }

    #[test]
    fn dead_server_times_out_then_next_is_tried() {
        let (mut net, mut r) = build_world();
        // Kill the hoster's DNS box; resolution of example.ru must fail.
        net.unbind(HOSTER_DNS_IP, 53);
        let err = r
            .resolve(&mut net, &name("example.ru"), RType::A)
            .unwrap_err();
        assert_eq!(err, ResolveError::Timeout);
        assert!(r.stats().timeouts > 0);
    }

    #[test]
    fn refused_surfaces_as_refused() {
        let (mut net, mut r) = build_world();
        let zones = shared_zones([]);
        let srv = AuthServer::new(zones);
        *srv.behavior_handle().write() = ServerBehavior::Refused;
        net.bind(HOSTER_DNS_IP, 53, Box::new(srv));
        let err = r
            .resolve(&mut net, &name("example.ru"), RType::A)
            .unwrap_err();
        assert_eq!(err, ResolveError::Refused);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let (mut net, mut r) = build_world();
        r.query_budget = 1;
        let err = r
            .resolve(&mut net, &name("example.ru"), RType::A)
            .unwrap_err();
        assert_eq!(err, ResolveError::BudgetExhausted);
    }

    #[test]
    fn servfail_surfaces_as_servfail() {
        let (mut net, mut r) = build_world();
        let srv = AuthServer::new(shared_zones([]));
        *srv.behavior_handle().write() = ServerBehavior::ServFail;
        net.bind(HOSTER_DNS_IP, 53, Box::new(srv));
        let err = r
            .resolve(&mut net, &name("example.ru"), RType::A)
            .unwrap_err();
        assert_eq!(err, ResolveError::ServFail);
        assert!(r.stats().servfails > 0);
    }

    #[test]
    fn lame_surfaces_as_lame() {
        let (mut net, mut r) = build_world();
        let srv = AuthServer::new(shared_zones([]));
        *srv.behavior_handle().write() = ServerBehavior::Lame;
        net.bind(HOSTER_DNS_IP, 53, Box::new(srv));
        let err = r
            .resolve(&mut net, &name("example.ru"), RType::A)
            .unwrap_err();
        assert_eq!(err, ResolveError::Lame);
        assert!(r.stats().lame > 0);
    }

    #[test]
    fn servfail_falls_back_to_healthy_ns() {
        // The fallback bugfix: one broken server in the NS set must not
        // sink the resolution while a healthy sibling exists.
        for bad in [
            ServerBehavior::ServFail,
            ServerBehavior::Lame,
            ServerBehavior::Truncated,
        ] {
            let (mut net, mut r, _h2) = build_two_ns_world();
            let srv = AuthServer::new(shared_zones([]));
            *srv.behavior_handle().write() = bad;
            net.bind(HOSTER_DNS_IP, 53, Box::new(srv));
            let res = r.resolve(&mut net, &name("example.ru"), RType::A).unwrap();
            assert_eq!(res.addresses(), vec![WEB_IP], "no fallback past {bad:?}");
        }
    }

    #[test]
    fn truncated_reply_counts_and_fails_alone() {
        let (mut net, mut r) = build_world();
        let srv = AuthServer::new(shared_zones([]));
        *srv.behavior_handle().write() = ServerBehavior::Truncated;
        net.bind(HOSTER_DNS_IP, 53, Box::new(srv));
        assert!(r.resolve(&mut net, &name("example.ru"), RType::A).is_err());
        assert!(r.stats().truncated > 0);
    }

    #[test]
    fn retry_budget_bounds_wasted_queries() {
        let (mut net, mut r, _h2) = build_two_ns_world();
        net.unbind(HOSTER_DNS_IP, 53);
        net.unbind(HOSTER_DNS2_IP, 53);
        r.retry_budget = 1;
        // Both NS of example.ru are dead; the second failure exceeds the
        // retry budget, so the walk stops instead of burning more timeouts.
        let err = r
            .resolve(&mut net, &name("example.ru"), RType::A)
            .unwrap_err();
        assert_eq!(err, ResolveError::BudgetExhausted);
        assert_eq!(r.stats().retries_spent, 2);
    }

    #[test]
    fn penalty_box_prefers_recovered_order_deterministically() {
        // Identical runs produce identical query counts and stats even with
        // health state in play.
        let run = || {
            let (mut net, mut r, h2) = build_two_ns_world();
            *h2.write() = ServerBehavior::Silent;
            for _ in 0..4 {
                r.clear_cache();
                let _ = r.resolve(&mut net, &name("example.ru"), RType::A);
            }
            (r.queries_sent(), r.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn penalty_box_reduces_wasted_queries_under_flapping() {
        // A flapping primary NS plus a healthy secondary: the hardened
        // resolver learns to prefer the healthy box, the naive one keeps
        // re-probing the flapper. Same world, same seed, same workload —
        // only the penalty box differs.
        let run = |hardened: bool| {
            let (mut net, mut r, _h2) = build_two_ns_world();
            r.penalty_box_enabled = hardened;
            net.faults_mut().add_server_fault(ServerFault {
                addr: HOSTER_DNS_IP,
                port: Some(53),
                // Long dead phases relative to the query cadence.
                mode: ServerFaultMode::Flapping {
                    period_us: 120_000_000,
                },
                window: FaultWindow::from(SimTime::ZERO),
            });
            let mut answered = 0u64;
            for _ in 0..12 {
                r.clear_cache();
                if r.resolve(&mut net, &name("example.ru"), RType::A).is_ok() {
                    answered += 1;
                }
            }
            (answered, r.stats().retries_spent, net.now().as_micros())
        };
        let (ok_naive, wasted_naive, time_naive) = run(false);
        let (ok_hard, wasted_hard, time_hard) = run(true);
        // The numbers below are quoted in EXPERIMENTS.md; run with
        // `--nocapture` to see them.
        println!(
            "flapping-NS comparison: naive {ok_naive}/12 answered, {wasted_naive} wasted, \
             {time_naive}us; hardened {ok_hard}/12 answered, {wasted_hard} wasted, {time_hard}us"
        );
        assert!(
            ok_hard >= ok_naive,
            "hardening lost answers: {ok_hard} < {ok_naive}"
        );
        assert!(
            wasted_hard < wasted_naive,
            "penalty box saved nothing: {wasted_hard} vs {wasted_naive} wasted queries"
        );
        assert!(
            time_hard < time_naive,
            "penalty box saved no time: {time_hard}us vs {time_naive}us"
        );
    }
}
