//! Iterative (referral-chasing) resolution, as a measurement client.

use ruwhere_dns::{Message, Name, RData, RType, Rcode, Record};
use ruwhere_netsim::Network;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// A root name-server hint: where resolution starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootHint {
    /// Root server host name (informational).
    pub name: Name,
    /// Root server address.
    pub addr: Ipv4Addr,
}

/// Outcome of a successful resolution exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Positive answer: the full answer section (CNAME chain included).
    Records(Vec<Record>),
    /// Authoritative denial: the name does not exist.
    NxDomain,
    /// The name exists but has no records of the queried type.
    NoData,
}

impl Resolution {
    /// All IPv4 addresses in the answer.
    pub fn addresses(&self) -> Vec<Ipv4Addr> {
        match self {
            Resolution::Records(recs) => recs
                .iter()
                .filter_map(|r| match &r.data {
                    RData::A(ip) => Some(*ip),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// All NS target names in the answer.
    pub fn ns_targets(&self) -> Vec<Name> {
        match self {
            Resolution::Records(recs) => recs
                .iter()
                .filter_map(|r| match &r.data {
                    RData::Ns(n) => Some(n.clone()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Whether this is a positive answer.
    pub fn is_positive(&self) -> bool {
        matches!(self, Resolution::Records(_))
    }
}

/// One step in a resolution trace (for diagnostics and the
/// `resolver_trace` example).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A query was sent to `server`.
    Query {
        /// Target server address.
        server: Ipv4Addr,
        /// Queried name.
        qname: Name,
        /// Queried type.
        rtype: RType,
    },
    /// A referral moved resolution below `cut`.
    Referral {
        /// The zone cut.
        cut: Name,
        /// Glue addresses accepted (after bailiwick filtering).
        glue: usize,
        /// Glue records discarded by the bailiwick check.
        rejected_glue: usize,
    },
    /// A server timed out.
    Timeout {
        /// The unresponsive server.
        server: Ipv4Addr,
    },
    /// A CNAME redirected resolution.
    Cname {
        /// The alias target.
        target: Name,
    },
    /// Terminal outcome (answer / nxdomain / nodata / error), rendered.
    Done {
        /// Human-readable outcome.
        outcome: String,
    },
}

/// Resolution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// Every candidate server timed out.
    Timeout,
    /// Servers answered but refused or failed.
    Refused,
    /// Query/recursion budget exhausted (lame delegation loop or too-deep
    /// dependency chain).
    BudgetExhausted,
    /// A referral pointed at name servers whose addresses could not be
    /// resolved.
    NoNameservers,
    /// A malformed response that could not be decoded.
    BadResponse,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Timeout => write!(f, "all name servers timed out"),
            ResolveError::Refused => write!(f, "all name servers refused"),
            ResolveError::BudgetExhausted => write!(f, "resolution budget exhausted"),
            ResolveError::NoNameservers => write!(f, "referral with unresolvable name servers"),
            ResolveError::BadResponse => write!(f, "malformed response"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// An iterative resolver bound to a client address.
///
/// Caches positive/negative answers and zone-cut server addresses for the
/// lifetime of the cache (the scanner clears it at each daily sweep, so
/// every day re-observes the infrastructure, like OpenINTEL's daily runs).
pub struct IterativeResolver {
    client_ip: Ipv4Addr,
    roots: Vec<RootHint>,
    /// Max queries for one `resolve` call.
    pub query_budget: u32,
    /// Per-query timeout in simulated microseconds.
    pub timeout_us: u64,
    /// Transport attempts per server.
    pub attempts: u32,
    next_id: u16,
    answer_cache: HashMap<(Name, RType), Result<Resolution, ResolveError>>,
    cut_cache: HashMap<Name, Vec<Ipv4Addr>>,
    queries_sent: u64,
    trace: Option<Vec<TraceEvent>>,
}

impl IterativeResolver {
    /// New resolver at `client_ip` starting from `roots`.
    pub fn new(client_ip: Ipv4Addr, roots: Vec<RootHint>) -> Self {
        IterativeResolver {
            client_ip,
            roots,
            query_budget: 64,
            timeout_us: 2_000_000,
            attempts: 2,
            next_id: 1,
            answer_cache: HashMap::new(),
            cut_cache: HashMap::new(),
            queries_sent: 0,
            trace: None,
        }
    }

    /// Enable trace recording (cleared on [`IterativeResolver::take_trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take and reset the recorded trace.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    fn record(&mut self, ev: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(ev);
        }
    }

    /// Total queries sent since construction (for harness accounting).
    pub fn queries_sent(&self) -> u64 {
        self.queries_sent
    }

    /// Drop all cached state (start of a new daily sweep).
    pub fn clear_cache(&mut self) {
        self.answer_cache.clear();
        self.cut_cache.clear();
    }

    /// Resolve `name`/`rtype`, driving the simulated network.
    pub fn resolve(
        &mut self,
        net: &mut Network,
        name: &Name,
        rtype: RType,
    ) -> Result<Resolution, ResolveError> {
        let mut budget = self.query_budget;
        let result = self.resolve_inner(net, name, rtype, &mut budget, 0);
        let outcome = match &result {
            Ok(Resolution::Records(r)) => format!("answer ({} records)", r.len()),
            Ok(Resolution::NxDomain) => "NXDOMAIN".to_owned(),
            Ok(Resolution::NoData) => "NODATA".to_owned(),
            Err(e) => format!("error: {e}"),
        };
        self.record(TraceEvent::Done { outcome });
        result
    }

    fn resolve_inner(
        &mut self,
        net: &mut Network,
        name: &Name,
        rtype: RType,
        budget: &mut u32,
        depth: u32,
    ) -> Result<Resolution, ResolveError> {
        if depth > 6 {
            return Err(ResolveError::BudgetExhausted);
        }
        if let Some(cached) = self.answer_cache.get(&(name.clone(), rtype)) {
            return cached.clone();
        }
        let result = self.resolve_uncached(net, name, rtype, budget, depth);
        // Cache everything except transient transport errors.
        if !matches!(result, Err(ResolveError::Timeout)) {
            self.answer_cache.insert((name.clone(), rtype), result.clone());
        }
        result
    }

    fn starting_servers(&self, name: &Name) -> Vec<Ipv4Addr> {
        // Deepest cached cut that is an ancestor of `name`.
        let mut cursor = Some(name.clone());
        while let Some(n) = cursor {
            if let Some(addrs) = self.cut_cache.get(&n) {
                return addrs.clone();
            }
            cursor = n.parent();
        }
        self.roots.iter().map(|r| r.addr).collect()
    }

    fn send_query(
        &mut self,
        net: &mut Network,
        server: Ipv4Addr,
        name: &Name,
        rtype: RType,
        budget: &mut u32,
    ) -> Result<Option<Message>, ResolveError> {
        if *budget == 0 {
            return Err(ResolveError::BudgetExhausted);
        }
        *budget -= 1;
        self.queries_sent += 1;
        self.record(TraceEvent::Query {
            server,
            qname: name.clone(),
            rtype,
        });
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let query = Message::query(id, name.clone(), rtype);
        let bytes = query.encode().map_err(|_| ResolveError::BadResponse)?;
        match net.request(
            self.client_ip,
            (server, 53),
            &bytes,
            self.timeout_us,
            self.attempts,
        ) {
            Err(_) => {
                self.record(TraceEvent::Timeout { server });
                Ok(None) // timeout: caller tries the next server
            }
            Ok(reply) => {
                let msg = Message::decode(&reply).map_err(|_| ResolveError::BadResponse)?;
                if msg.id != id || !msg.is_response() {
                    return Err(ResolveError::BadResponse);
                }
                Ok(Some(msg))
            }
        }
    }

    fn resolve_uncached(
        &mut self,
        net: &mut Network,
        qname: &Name,
        rtype: RType,
        budget: &mut u32,
        depth: u32,
    ) -> Result<Resolution, ResolveError> {
        let mut current_name = qname.clone();
        let mut chain: Vec<Record> = Vec::new();
        let mut servers = self.starting_servers(&current_name);
        let mut saw_refusal = false;
        let mut saw_timeout = false;

        for _step in 0..24 {
            // Try servers in order until one answers.
            let mut response = None;
            for &server in &servers {
                match self.send_query(net, server, &current_name, rtype, budget)? {
                    Some(msg) => {
                        match msg.flags.rcode {
                            Rcode::NoError | Rcode::NxDomain => {
                                response = Some(msg);
                                break;
                            }
                            _ => {
                                saw_refusal = true;
                                continue; // lame/refusing server: try next
                            }
                        }
                    }
                    None => {
                        saw_timeout = true;
                        continue;
                    }
                }
            }
            let Some(msg) = response else {
                return Err(if saw_refusal && !saw_timeout {
                    ResolveError::Refused
                } else {
                    ResolveError::Timeout
                });
            };

            if msg.flags.rcode == Rcode::NxDomain {
                return Ok(Resolution::NxDomain);
            }

            // Positive answer?
            if !msg.answers.is_empty() {
                let has_final = msg
                    .answers
                    .iter()
                    .any(|r| r.data.rtype() == rtype);
                chain.extend(msg.answers.iter().cloned());
                if has_final {
                    return Ok(Resolution::Records(chain));
                }
                // Pure CNAME response: chase the last target.
                if let Some(target) = msg.answers.iter().rev().find_map(|r| match &r.data {
                    RData::Cname(t) => Some(t.clone()),
                    _ => None,
                }) {
                    if chain.len() > 16 {
                        return Err(ResolveError::BudgetExhausted);
                    }
                    self.record(TraceEvent::Cname {
                        target: target.clone(),
                    });
                    current_name = target;
                    servers = self.starting_servers(&current_name);
                    continue;
                }
                return Ok(Resolution::Records(chain));
            }

            // Referral?
            let ns_records: Vec<&Record> = msg
                .authorities
                .iter()
                .filter(|r| r.data.rtype() == RType::Ns)
                .collect();
            if !ns_records.is_empty() && !msg.flags.aa {
                let cut = ns_records[0].name.clone();
                let targets: Vec<Name> = ns_records
                    .iter()
                    .filter_map(|r| match &r.data {
                        RData::Ns(t) => Some(t.clone()),
                        _ => None,
                    })
                    .collect();
                // Bailiwick check: only accept glue whose owner is one of
                // the referral's NS targets. Anything else in the
                // additional section (cache-poisoning style extras) is
                // discarded and, if needed, resolved independently.
                let mut rejected_glue = 0usize;
                let mut addrs: Vec<Ipv4Addr> = Vec::new();
                for r in &msg.additionals {
                    if let RData::A(ip) = &r.data {
                        if targets.contains(&r.name) {
                            addrs.push(*ip);
                        } else {
                            rejected_glue += 1;
                        }
                    }
                }
                let glue_accepted = addrs.len();
                if addrs.is_empty() {
                    // Out-of-bailiwick NS: resolve their addresses.
                    for t in &targets {
                        if let Ok(res) = self.resolve_inner(net, t, RType::A, budget, depth + 1) {
                            addrs.extend(res.addresses());
                        }
                        if addrs.len() >= 4 {
                            break;
                        }
                    }
                }
                self.record(TraceEvent::Referral {
                    cut: cut.clone(),
                    glue: glue_accepted,
                    rejected_glue,
                });
                if addrs.is_empty() {
                    return Err(ResolveError::NoNameservers);
                }
                self.cut_cache.insert(cut, addrs.clone());
                servers = addrs;
                continue;
            }

            // Authoritative empty answer: NoData.
            if msg.flags.aa {
                return Ok(Resolution::NoData);
            }
            // Neither answer, referral, nor authoritative denial.
            return Err(ResolveError::BadResponse);
        }
        Err(ResolveError::BudgetExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{shared_zones, AuthServer, ServerBehavior};
    use ruwhere_dns::{RData, Record, SoaData, Zone};
    use ruwhere_netsim::{AsInfo, Topology};
    use ruwhere_types::{Asn, Country, SeedTree};

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn soa(mname: &str) -> SoaData {
        SoaData {
            mname: name(mname),
            rname: name("hostmaster.invalid"),
            serial: 1,
            refresh: 1,
            retry: 1,
            expire: 1,
            minimum: 60,
        }
    }

    const ROOT_IP: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const RU_TLD_IP: Ipv4Addr = Ipv4Addr::new(193, 232, 128, 6);
    const COM_TLD_IP: Ipv4Addr = Ipv4Addr::new(192, 5, 6, 30);
    const HOSTER_DNS_IP: Ipv4Addr = Ipv4Addr::new(194, 85, 61, 20);
    const WEB_IP: Ipv4Addr = Ipv4Addr::new(194, 85, 90, 10);
    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(130, 89, 1, 1);

    /// Build a three-level hierarchy: root → ru/com → example.ru served by
    /// ns1.hoster.ru (in-bailiwick of .ru with glue) and ns2.hoster.com
    /// (out-of-bailiwick, requiring a separate resolution).
    fn build_world() -> (Network, IterativeResolver) {
        let mut topo = Topology::new(SeedTree::new(11).child("topo"));
        for (asn, org, cc) in [
            (Asn(1), "ROOT-OPS", Country::US),
            (Asn(2), "RIPN", Country::RU),
            (Asn(3), "VRSN", Country::US),
            (Asn(4), "RU-HOSTER", Country::RU),
            (Asn(5), "SCANNER", Country::NL),
        ] {
            topo.add_as(AsInfo { asn, org: org.into(), country: cc });
        }
        topo.announce("198.41.0.0/24".parse().unwrap(), Asn(1));
        topo.announce("193.232.128.0/24".parse().unwrap(), Asn(2));
        topo.announce("192.5.6.0/24".parse().unwrap(), Asn(3));
        topo.announce("194.85.0.0/16".parse().unwrap(), Asn(4));
        topo.announce("130.89.0.0/16".parse().unwrap(), Asn(5));
        let mut net = Network::new(topo, SeedTree::new(11).child("net"));

        // Root zone.
        let mut root = Zone::new(Name::root(), soa("a.root-servers.net"), 86400);
        root.add(Record::new(name("ru"), 86400, RData::Ns(name("a.dns.ripn.net"))));
        root.add(Record::new(name("a.dns.ripn.net"), 86400, RData::A(RU_TLD_IP)));
        root.add(Record::new(name("com"), 86400, RData::Ns(name("a.gtld-servers.net"))));
        root.add(Record::new(name("a.gtld-servers.net"), 86400, RData::A(COM_TLD_IP)));
        net.bind(ROOT_IP, 53, Box::new(AuthServer::new(shared_zones([root]))));

        // .ru TLD zone: delegation for example.ru + glue for in-bailiwick NS.
        let mut ru = Zone::new(name("ru"), soa("a.dns.ripn.net"), 86400);
        ru.add(Record::new(name("example.ru"), 3600, RData::Ns(name("ns1.hoster.ru"))));
        ru.add(Record::new(name("example.ru"), 3600, RData::Ns(name("ns2.hoster.com"))));
        ru.add(Record::new(name("hoster.ru"), 3600, RData::Ns(name("ns1.hoster.ru"))));
        ru.add(Record::new(name("ns1.hoster.ru"), 3600, RData::A(HOSTER_DNS_IP)));
        net.bind(RU_TLD_IP, 53, Box::new(AuthServer::new(shared_zones([ru]))));

        // .com TLD zone: delegation for hoster.com.
        let mut com = Zone::new(name("com"), soa("a.gtld-servers.net"), 86400);
        com.add(Record::new(name("hoster.com"), 3600, RData::Ns(name("ns1.hoster.ru"))));
        net.bind(COM_TLD_IP, 53, Box::new(AuthServer::new(shared_zones([com]))));

        // The hosting operator serves example.ru, hoster.ru AND hoster.com.
        let mut example = Zone::new(name("example.ru"), soa("ns1.hoster.ru"), 3600);
        example.add(Record::new(name("example.ru"), 300, RData::A(WEB_IP)));
        example.add(Record::new(name("example.ru"), 300, RData::Ns(name("ns1.hoster.ru"))));
        example.add(Record::new(name("example.ru"), 300, RData::Ns(name("ns2.hoster.com"))));
        example.add(Record::new(name("www.example.ru"), 300, RData::Cname(name("example.ru"))));
        let mut hoster_ru = Zone::new(name("hoster.ru"), soa("ns1.hoster.ru"), 3600);
        hoster_ru.add(Record::new(name("ns1.hoster.ru"), 300, RData::A(HOSTER_DNS_IP)));
        let mut hoster_com = Zone::new(name("hoster.com"), soa("ns1.hoster.ru"), 3600);
        hoster_com.add(Record::new(name("ns2.hoster.com"), 300, RData::A(HOSTER_DNS_IP)));
        net.bind(
            HOSTER_DNS_IP,
            53,
            Box::new(AuthServer::new(shared_zones([example, hoster_ru, hoster_com]))),
        );

        let resolver = IterativeResolver::new(
            CLIENT_IP,
            vec![RootHint { name: name("a.root-servers.net"), addr: ROOT_IP }],
        );
        (net, resolver)
    }

    #[test]
    fn full_iterative_resolution() {
        let (mut net, mut r) = build_world();
        let res = r.resolve(&mut net, &name("example.ru"), RType::A).unwrap();
        assert_eq!(res.addresses(), vec![WEB_IP]);
    }

    #[test]
    fn ns_resolution() {
        let (mut net, mut r) = build_world();
        let res = r.resolve(&mut net, &name("example.ru"), RType::Ns).unwrap();
        let mut targets: Vec<String> = res.ns_targets().iter().map(|n| n.to_string()).collect();
        targets.sort();
        assert_eq!(targets, vec!["ns1.hoster.ru.", "ns2.hoster.com."]);
    }

    #[test]
    fn cname_chase() {
        let (mut net, mut r) = build_world();
        let res = r.resolve(&mut net, &name("www.example.ru"), RType::A).unwrap();
        assert_eq!(res.addresses(), vec![WEB_IP]);
        if let Resolution::Records(recs) = &res {
            assert!(recs.iter().any(|rec| rec.data.rtype() == RType::Cname));
        }
    }

    #[test]
    fn nxdomain_and_nodata() {
        let (mut net, mut r) = build_world();
        assert_eq!(
            r.resolve(&mut net, &name("missing.example.ru"), RType::A).unwrap(),
            Resolution::NxDomain
        );
        assert_eq!(
            r.resolve(&mut net, &name("example.ru"), RType::Mx).unwrap(),
            Resolution::NoData
        );
        assert_eq!(
            r.resolve(&mut net, &name("unregistered.ru"), RType::A).unwrap(),
            Resolution::NxDomain
        );
    }

    #[test]
    fn out_of_bailiwick_ns_resolved_via_com() {
        let (mut net, mut r) = build_world();
        // Resolving ns2.hoster.com requires walking root → com → hoster.
        let res = r.resolve(&mut net, &name("ns2.hoster.com"), RType::A).unwrap();
        assert_eq!(res.addresses(), vec![HOSTER_DNS_IP]);
    }

    #[test]
    fn cache_reduces_queries() {
        let (mut net, mut r) = build_world();
        r.resolve(&mut net, &name("example.ru"), RType::A).unwrap();
        let after_first = r.queries_sent();
        r.resolve(&mut net, &name("www.example.ru"), RType::A).unwrap();
        let after_second = r.queries_sent();
        // Second resolution starts from the cached example.ru cut: at most
        // a couple of queries instead of a full walk.
        assert!(
            after_second - after_first <= 2,
            "expected cached walk, used {} queries",
            after_second - after_first
        );
        // Repeated identical resolution is free.
        r.resolve(&mut net, &name("example.ru"), RType::A).unwrap();
        assert_eq!(r.queries_sent(), after_second);
        // After clearing, the walk restarts at the root.
        r.clear_cache();
        r.resolve(&mut net, &name("example.ru"), RType::A).unwrap();
        assert!(r.queries_sent() > after_second + 1);
    }

    #[test]
    fn dead_server_times_out_then_next_is_tried() {
        let (mut net, mut r) = build_world();
        // Kill the hoster's DNS box; resolution of example.ru must fail.
        net.unbind(HOSTER_DNS_IP, 53);
        let err = r.resolve(&mut net, &name("example.ru"), RType::A).unwrap_err();
        assert_eq!(err, ResolveError::Timeout);
    }

    #[test]
    fn refused_surfaces_as_refused() {
        let (mut net, mut r) = build_world();
        let zones = shared_zones([]);
        let srv = AuthServer::new(zones);
        *srv.behavior_handle().write() = ServerBehavior::Refused;
        net.bind(HOSTER_DNS_IP, 53, Box::new(srv));
        let err = r.resolve(&mut net, &name("example.ru"), RType::A).unwrap_err();
        assert_eq!(err, ResolveError::Refused);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let (mut net, mut r) = build_world();
        r.query_budget = 1;
        let err = r.resolve(&mut net, &name("example.ru"), RType::A).unwrap_err();
        assert_eq!(err, ResolveError::BudgetExhausted);
    }
}
