//! Authoritative server: zone storage and query answering.

use parking_lot::RwLock;
use ruwhere_dns::zone::Lookup;
use ruwhere_dns::{Message, Name, Rcode, Zone};
use ruwhere_netsim::{Service, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A set of zones served by one operator, keyed by origin.
#[derive(Debug, Default)]
pub struct ZoneSet {
    zones: BTreeMap<Name, Zone>,
}

impl ZoneSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a zone; keyed by its origin.
    pub fn insert(&mut self, zone: Zone) {
        self.zones.insert(zone.origin().clone(), zone);
    }

    /// Remove the zone with `origin`.
    pub fn remove(&mut self, origin: &Name) -> Option<Zone> {
        self.zones.remove(origin)
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// Whether no zones are present.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Direct access to a zone by origin.
    pub fn get(&self, origin: &Name) -> Option<&Zone> {
        self.zones.get(origin)
    }

    /// Mutable access to a zone by origin.
    pub fn get_mut(&mut self, origin: &Name) -> Option<&mut Zone> {
        self.zones.get_mut(origin)
    }

    /// The zone with the deepest origin that is an ancestor of (or equal
    /// to) `qname` — the zone this operator would answer from.
    pub fn find_best(&self, qname: &Name) -> Option<&Zone> {
        let mut cursor = Some(qname.clone());
        while let Some(n) = cursor {
            if let Some(z) = self.zones.get(&n) {
                return Some(z);
            }
            cursor = n.parent();
        }
        None
    }
}

/// Shared, mutable zone storage: the world driver updates zones while the
/// network holds the serving side.
pub type SharedZoneSet = Arc<RwLock<ZoneSet>>;

/// How the server responds — the observable modes of provider behaviour
/// during the 2022 disengagements, plus the degraded modes the
/// fault-injection layer exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerBehavior {
    /// Answer authoritatively from the zone set.
    Normal,
    /// Respond `REFUSED` to everything (service terminated, box still up).
    Refused,
    /// Never respond (black-holed / decommissioned).
    Silent,
    /// Respond `SERVFAIL` to everything (frontend up, backend broken).
    ServFail,
    /// Respond with `TC=1` and empty sections (reply would not fit; the
    /// UDP-only measurement client cannot use it).
    Truncated,
    /// Lame: answer `NOERROR` non-authoritatively with nothing — the box
    /// is up but does not actually serve the delegated zone.
    Lame,
}

/// The authoritative DNS service bound into the simulated network.
pub struct AuthServer {
    zones: SharedZoneSet,
    behavior: Arc<RwLock<ServerBehavior>>,
}

impl AuthServer {
    /// New server over `zones` with [`ServerBehavior::Normal`].
    pub fn new(zones: SharedZoneSet) -> Self {
        AuthServer {
            zones,
            behavior: Arc::new(RwLock::new(ServerBehavior::Normal)),
        }
    }

    /// Handle to flip behaviour later (provider exits mid-simulation).
    pub fn behavior_handle(&self) -> Arc<RwLock<ServerBehavior>> {
        Arc::clone(&self.behavior)
    }

    /// Answer `query` against the zone set (the wire-independent core).
    pub fn answer(zones: &ZoneSet, query: &Message) -> Message {
        let Some(q) = query.questions.first() else {
            return Message::response_to(query, Rcode::FormErr);
        };
        let Some(zone) = zones.find_best(&q.name) else {
            return Message::response_to(query, Rcode::Refused);
        };
        let mut resp = Message::response_to(query, Rcode::NoError);
        match zone.lookup(&q.name, q.rtype) {
            Lookup::Answer(records) => {
                resp.flags.aa = true;
                resp.answers = records;
            }
            Lookup::Cname(cname) => {
                resp.flags.aa = true;
                // Chase in-zone as far as possible, like real servers do.
                let mut chain = vec![cname.clone()];
                let mut target = match &cname.data {
                    ruwhere_dns::RData::Cname(t) => t.clone(),
                    _ => unreachable!("Lookup::Cname holds a CNAME"),
                };
                for _ in 0..8 {
                    match zone.lookup(&target, q.rtype) {
                        Lookup::Answer(mut recs) => {
                            chain.append(&mut recs);
                            break;
                        }
                        Lookup::Cname(next) => {
                            target = match &next.data {
                                ruwhere_dns::RData::Cname(t) => t.clone(),
                                _ => unreachable!(),
                            };
                            chain.push(next);
                        }
                        _ => break,
                    }
                }
                resp.answers = chain;
            }
            Lookup::Delegation { ns, glue } => {
                resp.flags.aa = false;
                resp.authorities = ns;
                resp.additionals = glue;
            }
            Lookup::NoData => {
                resp.flags.aa = true;
                resp.authorities = vec![zone.soa_record()];
            }
            Lookup::NxDomain => {
                resp.flags.aa = true;
                resp.flags.rcode = Rcode::NxDomain;
                resp.authorities = vec![zone.soa_record()];
            }
            Lookup::OutOfZone => {
                resp.flags.rcode = Rcode::Refused;
            }
        }
        resp
    }
}

impl AuthServer {
    /// The full request path (behaviour gate, decode, answer, encode) —
    /// needs only shared access: zones and behaviour live behind their
    /// own locks.
    fn respond(&self, payload: &[u8]) -> Option<Vec<u8>> {
        let behavior = *self.behavior.read();
        if behavior == ServerBehavior::Silent {
            return None;
        }
        let query = Message::decode(payload).ok()?;
        if query.is_response() || query.questions.is_empty() {
            return None;
        }
        let resp = match behavior {
            ServerBehavior::Refused => Message::response_to(&query, Rcode::Refused),
            ServerBehavior::ServFail => Message::response_to(&query, Rcode::ServFail),
            ServerBehavior::Truncated => {
                let mut m = Message::response_to(&query, Rcode::NoError);
                m.flags.tc = true;
                m
            }
            ServerBehavior::Lame => {
                let mut m = Message::response_to(&query, Rcode::NoError);
                m.flags.aa = false;
                m
            }
            ServerBehavior::Normal | ServerBehavior::Silent => {
                Self::answer(&self.zones.read(), &query)
            }
        };
        resp.encode().ok()
    }
}

impl Service for AuthServer {
    fn handle(&mut self, payload: &[u8], _src: (Ipv4Addr, u16), _now: SimTime) -> Option<Vec<u8>> {
        self.respond(payload)
    }

    fn handle_concurrent(
        &self,
        payload: &[u8],
        _src: (Ipv4Addr, u16),
        _now: SimTime,
    ) -> Option<Option<Vec<u8>>> {
        // Every parallel sweep lane walks through the same root and TLD
        // boxes; answering under shared access keeps them off each
        // other's critical path.
        Some(self.respond(payload))
    }

    fn processing_us(&self) -> u64 {
        250
    }
}

/// Convenience: build a shared zone set from zones.
pub fn shared_zones<I: IntoIterator<Item = Zone>>(zones: I) -> SharedZoneSet {
    let mut set = ZoneSet::new();
    for z in zones {
        set.insert(z);
    }
    Arc::new(RwLock::new(set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_dns::{RData, RType, Record, SoaData};

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn soa() -> SoaData {
        SoaData {
            mname: name("ns.op.ru"),
            rname: name("host.op.ru"),
            serial: 1,
            refresh: 1,
            retry: 1,
            expire: 1,
            minimum: 60,
        }
    }

    fn example_zone() -> Zone {
        let mut z = Zone::new(name("example.ru"), soa(), 3600);
        z.add(Record::new(
            name("example.ru"),
            300,
            RData::A("192.0.2.10".parse().unwrap()),
        ));
        z.add(Record::new(
            name("example.ru"),
            300,
            RData::Ns(name("ns1.dns-op.ru")),
        ));
        z.add(Record::new(
            name("www.example.ru"),
            300,
            RData::Cname(name("example.ru")),
        ));
        z
    }

    #[test]
    fn zoneset_deepest_match() {
        let mut zs = ZoneSet::new();
        zs.insert(Zone::new(name("ru"), soa(), 3600));
        zs.insert(example_zone());
        assert_eq!(
            zs.find_best(&name("www.example.ru")).unwrap().origin(),
            &name("example.ru")
        );
        assert_eq!(
            zs.find_best(&name("other.ru")).unwrap().origin(),
            &name("ru")
        );
        assert!(zs.find_best(&name("example.com")).is_none());
        assert_eq!(zs.len(), 2);
    }

    #[test]
    fn answer_a_query() {
        let zones = shared_zones([example_zone()]);
        let q = Message::query(1, name("example.ru"), RType::A);
        let resp = AuthServer::answer(&zones.read(), &q);
        assert_eq!(resp.flags.rcode, Rcode::NoError);
        assert!(resp.flags.aa);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn answer_cname_chases_in_zone() {
        let zones = shared_zones([example_zone()]);
        let q = Message::query(1, name("www.example.ru"), RType::A);
        let resp = AuthServer::answer(&zones.read(), &q);
        // CNAME plus the chased A record.
        assert_eq!(resp.answers.len(), 2);
        assert_eq!(resp.answers[0].data.rtype(), RType::Cname);
        assert_eq!(resp.answers[1].data.rtype(), RType::A);
    }

    #[test]
    fn answer_nxdomain_and_nodata() {
        let zones = shared_zones([example_zone()]);
        let q = Message::query(1, name("missing.example.ru"), RType::A);
        let resp = AuthServer::answer(&zones.read(), &q);
        assert_eq!(resp.flags.rcode, Rcode::NxDomain);
        assert_eq!(resp.authorities.len(), 1, "negative answers carry the SOA");

        let q = Message::query(1, name("example.ru"), RType::Mx);
        let resp = AuthServer::answer(&zones.read(), &q);
        assert_eq!(resp.flags.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities.len(), 1);
    }

    #[test]
    fn answer_refused_outside_authority() {
        let zones = shared_zones([example_zone()]);
        let q = Message::query(1, name("example.com"), RType::A);
        let resp = AuthServer::answer(&zones.read(), &q);
        assert_eq!(resp.flags.rcode, Rcode::Refused);
    }

    #[test]
    fn service_behaviors() {
        let zones = shared_zones([example_zone()]);
        let mut srv = AuthServer::new(Arc::clone(&zones));
        let behavior = srv.behavior_handle();
        let q = Message::query(9, name("example.ru"), RType::A)
            .encode()
            .unwrap();
        let src = ("10.0.0.1".parse().unwrap(), 40000);

        let out = srv.handle(&q, src, SimTime::ZERO).unwrap();
        assert_eq!(Message::decode(&out).unwrap().flags.rcode, Rcode::NoError);

        *behavior.write() = ServerBehavior::Refused;
        let out = srv.handle(&q, src, SimTime::ZERO).unwrap();
        assert_eq!(Message::decode(&out).unwrap().flags.rcode, Rcode::Refused);

        *behavior.write() = ServerBehavior::ServFail;
        let out = srv.handle(&q, src, SimTime::ZERO).unwrap();
        assert_eq!(Message::decode(&out).unwrap().flags.rcode, Rcode::ServFail);

        *behavior.write() = ServerBehavior::Truncated;
        let out = srv.handle(&q, src, SimTime::ZERO).unwrap();
        let m = Message::decode(&out).unwrap();
        assert!(m.flags.tc);
        assert!(m.answers.is_empty());

        *behavior.write() = ServerBehavior::Lame;
        let out = srv.handle(&q, src, SimTime::ZERO).unwrap();
        let m = Message::decode(&out).unwrap();
        assert_eq!(m.flags.rcode, Rcode::NoError);
        assert!(!m.flags.aa);
        assert!(m.answers.is_empty() && m.authorities.is_empty());

        *behavior.write() = ServerBehavior::Silent;
        assert!(srv.handle(&q, src, SimTime::ZERO).is_none());
    }

    #[test]
    fn service_ignores_garbage_and_responses() {
        let zones = shared_zones([example_zone()]);
        let mut srv = AuthServer::new(zones);
        let src = ("10.0.0.1".parse().unwrap(), 40000);
        assert!(srv.handle(b"not dns", src, SimTime::ZERO).is_none());
        let q = Message::query(9, name("example.ru"), RType::A);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.flags.qr = true;
        assert!(srv
            .handle(&resp.encode().unwrap(), src, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn zone_updates_visible_through_shared_set() {
        let zones = shared_zones([example_zone()]);
        let mut srv = AuthServer::new(Arc::clone(&zones));
        let src = ("10.0.0.1".parse().unwrap(), 40000);
        let q = Message::query(9, name("example.ru"), RType::A)
            .encode()
            .unwrap();

        // Mutate the zone from "outside" (the world driver's daily update).
        {
            let mut g = zones.write();
            let z = g.get_mut(&name("example.ru")).unwrap();
            z.remove(&name("example.ru"), Some(RType::A));
            z.add(Record::new(
                name("example.ru"),
                300,
                RData::A("198.51.100.99".parse().unwrap()),
            ));
        }
        let out = srv.handle(&q, src, SimTime::ZERO).unwrap();
        let resp = Message::decode(&out).unwrap();
        assert_eq!(
            resp.answers[0].data,
            RData::A("198.51.100.99".parse().unwrap())
        );
    }
}
