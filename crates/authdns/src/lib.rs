//! Authoritative DNS service and iterative resolution over the simulated
//! network.
//!
//! * [`ZoneSet`] — a collection of zones served by one operator, with
//!   deepest-origin matching (a hosting provider serves many customer
//!   zones from the same addresses).
//! * [`AuthServer`] — a [`ruwhere_netsim::Service`] that answers DNS
//!   queries from a shared, mutable [`ZoneSet`]; its [`ServerBehavior`]
//!   models provider disengagement (answer normally, answer `REFUSED`, or
//!   go silent) — the three ways the 2022 exits manifested to scanners.
//! * [`IterativeResolver`] — referral-chasing resolution from the root,
//!   with glue use, out-of-bailiwick NS resolution, CNAME chasing and
//!   loop/budget protection. This is the measurement client used by the
//!   OpenINTEL-style sweep. It is hardened against misbehaving servers:
//!   per-server health (smoothed RTT + exponential-backoff penalty box),
//!   a per-resolution retry budget, and cause-specific failures
//!   ([`resolver::ResolveError`]) with cumulative counters
//!   ([`ResolverStats`]) for the measurement layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod resolver;
pub mod server;

pub use resolver::{
    IterativeResolver, NoDependencyCache, NsDependencyCache, Resolution, ResolveError, ResolverObs,
    ResolverStats, RootHint, TraceEvent,
};
pub use server::{AuthServer, ServerBehavior, SharedZoneSet, ZoneSet};
