//! Bailiwick hardening: the resolver must discard additional-section
//! records that do not belong to the referral's NS targets (the classic
//! cache-poisoning vector) — and the trace facility must expose what
//! happened.

use parking_lot::RwLock;
use ruwhere_authdns::{AuthServer, IterativeResolver, RootHint, TraceEvent, ZoneSet};
use ruwhere_dns::{Message, Name, RData, RType, Rcode, Record, SoaData, Zone};
use ruwhere_netsim::{AsInfo, Network, Service, SimTime, Topology};
use ruwhere_types::{Asn, Country, SeedTree};
use std::net::Ipv4Addr;
use std::sync::Arc;

const ROOT_IP: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
const POISONER_IP: Ipv4Addr = Ipv4Addr::new(193, 232, 128, 6);
const REAL_NS_IP: Ipv4Addr = Ipv4Addr::new(194, 85, 61, 20);
const HONEYPOT_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 66);
const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(130, 89, 1, 1);

fn name(s: &str) -> Name {
    s.parse().unwrap()
}

fn soa() -> SoaData {
    SoaData {
        mname: name("ns.op.invalid"),
        rname: name("host.op.invalid"),
        serial: 1,
        refresh: 1,
        retry: 1,
        expire: 1,
        minimum: 60,
    }
}

/// A TLD server whose referrals carry a poisoned additional section: the
/// legitimate glue for `ns1.example.ru` plus an unrelated A record that
/// tries to draw the resolver to a honeypot address.
struct PoisoningTld;

impl Service for PoisoningTld {
    fn handle(&mut self, payload: &[u8], _src: (Ipv4Addr, u16), _now: SimTime) -> Option<Vec<u8>> {
        let query = Message::decode(payload).ok()?;
        let mut resp = Message::response_to(&query, Rcode::NoError);
        resp.flags.aa = false;
        resp.authorities.push(Record::new(
            name("example.ru"),
            3600,
            RData::Ns(name("ns1.example.ru")),
        ));
        // Legitimate in-bailiwick glue.
        resp.additionals.push(Record::new(
            name("ns1.example.ru"),
            3600,
            RData::A(REAL_NS_IP),
        ));
        // Poison: an additional record for a name that is NOT an NS target.
        resp.additionals.push(Record::new(
            name("www.victim-bank.ru"),
            3600,
            RData::A(HONEYPOT_IP),
        ));
        // Poison variant: extra A record for an unrelated host name.
        resp.additionals.push(Record::new(
            name("evil.attacker.com"),
            3600,
            RData::A(HONEYPOT_IP),
        ));
        resp.encode().ok()
    }
}

/// Records whether anyone ever talks to the honeypot.
struct Honeypot(Arc<RwLock<u64>>);

impl Service for Honeypot {
    fn handle(&mut self, _p: &[u8], _s: (Ipv4Addr, u16), _n: SimTime) -> Option<Vec<u8>> {
        *self.0.write() += 1;
        None
    }
}

fn build() -> (Network, IterativeResolver, Arc<RwLock<u64>>) {
    let mut topo = Topology::new(SeedTree::new(3).child("topo"));
    for (asn, cc, net) in [
        (Asn(1), Country::US, "198.41.0.0/24"),
        (Asn(2), Country::RU, "193.232.128.0/24"),
        (Asn(3), Country::RU, "194.85.0.0/16"),
        (Asn(4), Country::US, "203.0.113.0/24"),
        (Asn(5), Country::NL, "130.89.0.0/16"),
    ] {
        topo.add_as(AsInfo {
            asn,
            org: format!("AS{}", asn.value()),
            country: cc,
        });
        topo.announce(net.parse().unwrap(), asn);
    }
    let mut net = Network::new(topo, SeedTree::new(3).child("net"));

    // Root delegating .ru to the poisoning TLD server.
    let mut root = Zone::new(Name::root(), soa(), 86400);
    root.add(Record::new(
        name("ru"),
        86400,
        RData::Ns(name("a.dns.ripn.net")),
    ));
    root.add(Record::new(
        name("a.dns.ripn.net"),
        86400,
        RData::A(POISONER_IP),
    ));
    let mut zs = ZoneSet::new();
    zs.insert(root);
    net.bind(
        ROOT_IP,
        53,
        Box::new(AuthServer::new(Arc::new(RwLock::new(zs)))),
    );

    net.bind(POISONER_IP, 53, Box::new(PoisoningTld));

    // The legitimate authoritative server.
    let mut example = Zone::new(name("example.ru"), soa(), 3600);
    example.add(Record::new(
        name("example.ru"),
        300,
        RData::A("194.85.90.10".parse().unwrap()),
    ));
    let mut zs = ZoneSet::new();
    zs.insert(example);
    net.bind(
        REAL_NS_IP,
        53,
        Box::new(AuthServer::new(Arc::new(RwLock::new(zs)))),
    );

    // Honeypot listening where the poison points.
    let hits = Arc::new(RwLock::new(0u64));
    net.bind(HONEYPOT_IP, 53, Box::new(Honeypot(Arc::clone(&hits))));

    let resolver = IterativeResolver::new(
        CLIENT_IP,
        vec![RootHint {
            name: name("a.root-servers.invalid"),
            addr: ROOT_IP,
        }],
    );
    (net, resolver, hits)
}

#[test]
fn poisoned_glue_is_discarded_and_honeypot_never_contacted() {
    let (mut net, mut resolver, hits) = build();
    resolver.enable_trace();
    let res = resolver
        .resolve(&mut net, &name("example.ru"), RType::A)
        .expect("resolution succeeds through legitimate glue");
    assert_eq!(
        res.addresses(),
        vec!["194.85.90.10".parse::<Ipv4Addr>().unwrap()]
    );
    assert_eq!(*hits.read(), 0, "the honeypot must never be queried");

    // The trace shows the referral with exactly one accepted glue record
    // and two rejected.
    let trace = resolver.take_trace();
    let referral = trace
        .iter()
        .find_map(|e| match e {
            TraceEvent::Referral {
                cut,
                glue,
                rejected_glue,
            } if *cut == name("example.ru") => Some((*glue, *rejected_glue)),
            _ => None,
        })
        .expect("referral recorded");
    assert_eq!(referral, (1, 2));
    // No query in the trace ever targeted the honeypot.
    assert!(trace.iter().all(|e| !matches!(
        e,
        TraceEvent::Query { server, .. } if *server == HONEYPOT_IP
    )));
    // Terminal outcome recorded.
    assert!(matches!(trace.last(), Some(TraceEvent::Done { .. })));
}

#[test]
fn trace_structure_of_a_clean_walk() {
    let (mut net, mut resolver, _) = build();
    resolver.enable_trace();
    let _ = resolver.resolve(&mut net, &name("example.ru"), RType::A);
    let trace = resolver.take_trace();
    // Query(root) → Referral(ru…) happens via the poisoning TLD, then the
    // final auth query. At minimum: 3 queries, 1+ referral, 1 done.
    let queries = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Query { .. }))
        .count();
    assert!(queries >= 3, "expected a full walk, got {queries} queries");
    assert!(trace
        .iter()
        .any(|e| matches!(e, TraceEvent::Referral { .. })));
    // take_trace resets.
    assert!(resolver.take_trace().is_empty());
}
