//! Deterministic synthetic domain-name generation.
//!
//! Populating a scaled-down `.ru`/`.рф` registry requires tens of thousands
//! of distinct, plausible second-level names. The generator composes
//! transliterated-Russian-flavoured syllables, guarantees uniqueness via an
//! internal counter suffix when a collision would occur, and is fully
//! deterministic for a given seed.

use rand::rngs::StdRng;
use rand::Rng;
use ruwhere_types::{DomainName, SeedTree};
use std::collections::HashSet;

const ONSETS: &[&str] = &[
    "b", "v", "g", "d", "zh", "z", "k", "l", "m", "n", "p", "r", "s", "t", "f", "kh", "ts", "ch",
    "sh", "st", "pr", "kr", "tr", "vl", "gr", "sl", "dr", "br",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "y", "ya", "yu", "ia"];
const SUFFIXES: &[&str] = &[
    "ov", "ev", "in", "sky", "stroy", "torg", "prom", "grad", "service", "market", "bank", "media",
    "group", "trans", "tech", "invest", "snab", "mash", "les", "gaz",
];

/// Cyrillic syllables for `.рф` names (converted to punycode by
/// [`DomainName::parse`]).
const CYR_SYLLABLES: &[&str] = &[
    "ра", "ко", "ми", "ло", "не", "ва", "до", "си", "те", "бу", "га", "зо", "ле", "ны", "пра",
    "сто", "мир", "дом", "град",
];

/// Deterministic generator of unique registrable names.
pub struct NameGenerator {
    rng: StdRng,
    seen: HashSet<DomainName>,
    counter: u64,
}

impl NameGenerator {
    /// New generator; all output derives from `seed`.
    pub fn new(seed: SeedTree) -> Self {
        NameGenerator {
            rng: seed.child("namegen").rng(),
            seen: HashSet::new(),
            counter: 0,
        }
    }

    fn ascii_sld(&mut self) -> String {
        let syllables = self.rng.random_range(2..=3);
        let mut s = String::new();
        for _ in 0..syllables {
            s.push_str(ONSETS[self.rng.random_range(0..ONSETS.len())]);
            s.push_str(VOWELS[self.rng.random_range(0..VOWELS.len())]);
        }
        if self.rng.random_bool(0.6) {
            s.push_str(SUFFIXES[self.rng.random_range(0..SUFFIXES.len())]);
        }
        s
    }

    fn cyrillic_sld(&mut self) -> String {
        let syllables = self.rng.random_range(2..=4);
        let mut s = String::new();
        for _ in 0..syllables {
            s.push_str(CYR_SYLLABLES[self.rng.random_range(0..CYR_SYLLABLES.len())]);
        }
        s
    }

    /// Generate one unique name under `tld` (`"ru"` or `"рф"`).
    ///
    /// Uniqueness is global across the generator's lifetime, so a single
    /// generator can feed both registries and the churn process.
    pub fn generate(&mut self, tld: &str) -> DomainName {
        let cyrillic = tld == "рф" || tld == "xn--p1ai";
        loop {
            let sld = if cyrillic {
                self.cyrillic_sld()
            } else {
                self.ascii_sld()
            };
            let candidate = format!("{sld}.{tld}");
            let name = match DomainName::parse(&candidate) {
                Ok(n) => n,
                Err(_) => continue,
            };
            if self.seen.insert(name.clone()) {
                return name;
            }
            // Collision: disambiguate with a counter, never spin forever.
            self.counter += 1;
            let candidate = format!("{sld}{}.{tld}", self.counter);
            if let Ok(name) = DomainName::parse(&candidate) {
                if self.seen.insert(name.clone()) {
                    return name;
                }
            }
        }
    }

    /// Generate `n` unique names under `tld`.
    pub fn generate_many(&mut self, tld: &str, n: usize) -> Vec<DomainName> {
        (0..n).map(|_| self.generate(tld)).collect()
    }

    /// Mark an externally chosen name as taken so the generator never
    /// produces it.
    pub fn reserve(&mut self, name: DomainName) {
        self.seen.insert(name);
    }

    /// How many unique names have been produced or reserved.
    pub fn issued(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_at_scale() {
        let mut g = NameGenerator::new(SeedTree::new(42));
        let names = g.generate_many("ru", 20_000);
        let set: HashSet<&DomainName> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert!(names.iter().all(|n| n.tld() == "ru"));
        assert!(names.iter().all(|n| n.label_count() == 2));
    }

    #[test]
    fn cyrillic_names_are_punycoded() {
        let mut g = NameGenerator::new(SeedTree::new(42));
        let names = g.generate_many("рф", 500);
        assert!(names.iter().all(|n| n.tld() == "xn--p1ai"));
        assert!(names.iter().all(|n| n.as_str().starts_with("xn--")));
        assert!(names.iter().all(|n| n.is_russian_cctld()));
        let set: HashSet<&DomainName> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn deterministic() {
        let a = NameGenerator::new(SeedTree::new(7)).generate_many("ru", 100);
        let b = NameGenerator::new(SeedTree::new(7)).generate_many("ru", 100);
        assert_eq!(a, b);
        let c = NameGenerator::new(SeedTree::new(8)).generate_many("ru", 100);
        assert_ne!(a, c);
    }

    #[test]
    fn reserve_blocks_reuse() {
        let mut g = NameGenerator::new(SeedTree::new(7));
        let first = NameGenerator::new(SeedTree::new(7)).generate("ru");
        g.reserve(first.clone());
        let next = g.generate("ru");
        assert_ne!(next, first);
        assert_eq!(g.issued(), 2);
    }
}
