//! ccTLD registry simulation.
//!
//! The paper's DNS dataset is seeded from daily `.ru` and `.рф` zone-file
//! snapshots. This crate provides the registry side of that pipeline:
//!
//! * [`Registry`] — per-TLD domain lifecycle (registration, renewal,
//!   expiration, deletion) and delegation data (NS sets plus glue).
//! * [`Registry::zone_snapshot`] — the daily zone file, as a
//!   [`ruwhere_dns::Zone`] with a date-derived SOA serial.
//! * [`sanctions`] — dated US OFAC SDN / UK sanctions-list entries
//!   (107 unique domains in the paper, §2).
//! * [`namegen`] — deterministic synthetic domain-name generation for
//!   populating the registry at scale.

//! ```
//! use ruwhere_registry::{Delegation, Registry};
//! use ruwhere_types::Date;
//!
//! let mut ru = Registry::new("ru".parse().unwrap());
//! ru.register("example.ru".parse().unwrap(), Date::from_ymd(2020, 1, 1), 5).unwrap();
//! ru.set_delegation(
//!     &"example.ru".parse().unwrap(),
//!     Delegation {
//!         nameservers: vec!["ns1.reg.ru".parse().unwrap()],
//!         glue: Default::default(),
//!     },
//! )
//! .unwrap();
//! let zone = ru.zone_snapshot(Date::from_ymd(2022, 2, 24));
//! assert_eq!(zone.delegations().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod namegen;
pub mod registry;
pub mod sanctions;
pub mod whois;

pub use namegen::NameGenerator;
pub use registry::{Delegation, Registration, Registry, RegistryError};
pub use sanctions::{SanctionSource, SanctionsList};
pub use whois::{WhoisRecord, WHOIS_PORT};
