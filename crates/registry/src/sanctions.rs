//! Sanctions lists: dated entries from the US OFAC SDN and UK lists.
//!
//! The paper labels "107 unique domains as being specifically sanctioned
//! based on their appearance on either US OFAC SDN or UK sanctions lists"
//! (§2). A [`SanctionsList`] is the analysis-side join key: given a date it
//! answers which domains are considered sanctioned.

use ruwhere_types::{Date, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which list an entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SanctionSource {
    /// US OFAC Specially Designated Nationals list.
    UsOfacSdn,
    /// UK sanctions list.
    UkSanctions,
}

impl std::fmt::Display for SanctionSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SanctionSource::UsOfacSdn => write!(f, "US OFAC SDN"),
            SanctionSource::UkSanctions => write!(f, "UK Sanctions List"),
        }
    }
}

/// A set of sanctioned domains with listing dates and sources.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SanctionsList {
    /// domain → (first listing date, sources that list it)
    entries: BTreeMap<DomainName, (Date, Vec<SanctionSource>)>,
}

impl SanctionsList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `domain` as listed by `source` on `date`. A domain on both lists
    /// is counted once (the paper's 107 are *unique* domains); the earliest
    /// listing date wins.
    pub fn add(&mut self, domain: DomainName, source: SanctionSource, date: Date) {
        self.entries
            .entry(domain)
            .and_modify(|(d, sources)| {
                if date < *d {
                    *d = date;
                }
                if !sources.contains(&source) {
                    sources.push(source);
                }
            })
            .or_insert((date, vec![source]));
    }

    /// Whether `domain` is listed on or before `date`.
    pub fn is_sanctioned(&self, domain: &DomainName, date: Date) -> bool {
        self.entries.get(domain).is_some_and(|(d, _)| *d <= date)
    }

    /// All domains listed on or before `date`.
    pub fn sanctioned_at(&self, date: Date) -> Vec<&DomainName> {
        self.entries
            .iter()
            .filter(|(_, (d, _))| *d <= date)
            .map(|(n, _)| n)
            .collect()
    }

    /// Total unique domains across all dates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(domain, first listing date, sources)`.
    pub fn iter(&self) -> impl Iterator<Item = (&DomainName, Date, &[SanctionSource])> {
        self.entries.iter().map(|(n, (d, s))| (n, *d, s.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn dated_membership() {
        let mut l = SanctionsList::new();
        l.add(
            d("bank.ru"),
            SanctionSource::UsOfacSdn,
            Date::from_ymd(2022, 2, 26),
        );
        assert!(!l.is_sanctioned(&d("bank.ru"), Date::from_ymd(2022, 2, 25)));
        assert!(l.is_sanctioned(&d("bank.ru"), Date::from_ymd(2022, 2, 26)));
        assert!(l.is_sanctioned(&d("bank.ru"), Date::from_ymd(2022, 5, 25)));
        assert!(!l.is_sanctioned(&d("other.ru"), Date::from_ymd(2022, 5, 25)));
    }

    #[test]
    fn unique_across_sources() {
        let mut l = SanctionsList::new();
        l.add(
            d("dual.ru"),
            SanctionSource::UsOfacSdn,
            Date::from_ymd(2022, 3, 1),
        );
        l.add(
            d("dual.ru"),
            SanctionSource::UkSanctions,
            Date::from_ymd(2022, 2, 26),
        );
        assert_eq!(l.len(), 1);
        // Earliest date wins.
        assert!(l.is_sanctioned(&d("dual.ru"), Date::from_ymd(2022, 2, 26)));
        let (_, _, sources) = l.iter().next().unwrap();
        assert_eq!(sources.len(), 2);
        // Re-adding the same source does not duplicate.
        l.add(
            d("dual.ru"),
            SanctionSource::UkSanctions,
            Date::from_ymd(2022, 4, 1),
        );
        let (_, _, sources) = l.iter().next().unwrap();
        assert_eq!(sources.len(), 2);
    }

    #[test]
    fn sanctioned_at_grows_over_time() {
        let mut l = SanctionsList::new();
        l.add(
            d("a.ru"),
            SanctionSource::UsOfacSdn,
            Date::from_ymd(2022, 2, 26),
        );
        l.add(
            d("b.ru"),
            SanctionSource::UkSanctions,
            Date::from_ymd(2022, 3, 10),
        );
        assert_eq!(l.sanctioned_at(Date::from_ymd(2022, 2, 20)).len(), 0);
        assert_eq!(l.sanctioned_at(Date::from_ymd(2022, 3, 1)).len(), 1);
        assert_eq!(l.sanctioned_at(Date::from_ymd(2022, 3, 10)).len(), 2);
        assert_eq!(l.len(), 2);
        assert!(!l.is_empty());
    }
}
