//! Domain lifecycle and zone snapshot generation.

use ruwhere_dns::{Name, RData, Record, SoaData, Zone};
use ruwhere_types::{Date, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Delegation data for one registered domain: its NS set and any glue the
/// registrant supplied for in-bailiwick name servers.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Delegation {
    /// Name-server host names.
    pub nameservers: Vec<DomainName>,
    /// Glue A records for name servers under the delegated domain itself.
    pub glue: BTreeMap<DomainName, Vec<Ipv4Addr>>,
}

/// One registration in the registry database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registration {
    /// First registration date.
    pub registered: Date,
    /// Paid-through date; the domain drops from the zone after this.
    pub expires: Date,
    /// Current delegation.
    pub delegation: Delegation,
}

/// Registry operation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is not directly under this registry's TLD.
    WrongTld,
    /// The name is already registered.
    AlreadyRegistered,
    /// The name is not registered.
    NotRegistered,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::WrongTld => write!(f, "name is not under this TLD"),
            RegistryError::AlreadyRegistered => write!(f, "name already registered"),
            RegistryError::NotRegistered => write!(f, "name not registered"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The registry for one ccTLD (`.ru` or `.рф` in this study).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Registry {
    tld: DomainName,
    domains: BTreeMap<DomainName, Registration>,
    /// Cumulative count of every name ever registered (the paper reports
    /// 11.7 M unique names over the study window against ~5 M live).
    ever_registered: u64,
}

impl Registry {
    /// New registry for `tld` (e.g. `"ru"` or `"рф"`).
    pub fn new(tld: DomainName) -> Self {
        Registry {
            tld,
            domains: BTreeMap::new(),
            ever_registered: 0,
        }
    }

    /// The TLD this registry administers.
    pub fn tld(&self) -> &DomainName {
        &self.tld
    }

    fn check_tld(&self, name: &DomainName) -> Result<(), RegistryError> {
        if name.label_count() == 2 && name.tld() == self.tld.as_str() {
            Ok(())
        } else {
            Err(RegistryError::WrongTld)
        }
    }

    /// Register `name` on `date` for `years` years.
    pub fn register(
        &mut self,
        name: DomainName,
        date: Date,
        years: u32,
    ) -> Result<(), RegistryError> {
        self.check_tld(&name)?;
        if self.domains.contains_key(&name) {
            return Err(RegistryError::AlreadyRegistered);
        }
        self.domains.insert(
            name,
            Registration {
                registered: date,
                expires: date.add_days((365 * years) as i32),
                delegation: Delegation::default(),
            },
        );
        self.ever_registered += 1;
        Ok(())
    }

    /// Renew `name` for `years` more years from its current expiry.
    pub fn renew(&mut self, name: &DomainName, years: u32) -> Result<Date, RegistryError> {
        let reg = self
            .domains
            .get_mut(name)
            .ok_or(RegistryError::NotRegistered)?;
        reg.expires = reg.expires.add_days((365 * years) as i32);
        Ok(reg.expires)
    }

    /// Delete `name` immediately (registrant action).
    pub fn delete(&mut self, name: &DomainName) -> Result<Registration, RegistryError> {
        self.domains
            .remove(name)
            .ok_or(RegistryError::NotRegistered)
    }

    /// Replace the delegation for `name`.
    pub fn set_delegation(
        &mut self,
        name: &DomainName,
        delegation: Delegation,
    ) -> Result<(), RegistryError> {
        let reg = self
            .domains
            .get_mut(name)
            .ok_or(RegistryError::NotRegistered)?;
        reg.delegation = delegation;
        Ok(())
    }

    /// The registration record for `name`.
    pub fn get(&self, name: &DomainName) -> Option<&Registration> {
        self.domains.get(name)
    }

    /// Whether `name` is currently registered.
    pub fn is_registered(&self, name: &DomainName) -> bool {
        self.domains.contains_key(&name.clone())
    }

    /// Live registration count.
    pub fn count(&self) -> usize {
        self.domains.len()
    }

    /// Cumulative unique registrations ever.
    pub fn ever_registered(&self) -> u64 {
        self.ever_registered
    }

    /// Iterate live registrations in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&DomainName, &Registration)> {
        self.domains.iter()
    }

    /// Drop every registration whose expiry is before `today`; returns the
    /// dropped names. Run once per simulated day.
    pub fn process_expirations(&mut self, today: Date) -> Vec<DomainName> {
        let expired: Vec<DomainName> = self
            .domains
            .iter()
            .filter(|(_, r)| r.expires < today)
            .map(|(n, _)| n.clone())
            .collect();
        for n in &expired {
            self.domains.remove(n);
        }
        expired
    }

    /// Produce the TLD zone as of `date`: one NS RRset per delegated name
    /// plus glue, under a SOA whose serial encodes the date (so consecutive
    /// snapshots are ordered, like production zone serials).
    pub fn zone_snapshot(&self, date: Date) -> Zone {
        let origin = Name::from(&self.tld);
        let soa = SoaData {
            mname: Name::from_labels(["a", "dns", "ripn", "net"]).expect("static labels"),
            rname: Name::from_labels(["hostmaster", "ripn", "net"]).expect("static labels"),
            serial: date.days_since_epoch() as u32,
            refresh: 86_400,
            retry: 14_400,
            expire: 2_592_000,
            minimum: 3_600,
        };
        let mut zone = Zone::new(origin, soa, 86_400);
        for (name, reg) in &self.domains {
            if reg.delegation.nameservers.is_empty() {
                continue; // registered but not delegated: not in the zone
            }
            let owner = Name::from(name);
            for ns in &reg.delegation.nameservers {
                zone.add(Record::new(
                    owner.clone(),
                    345_600,
                    RData::Ns(Name::from(ns)),
                ));
            }
            for (host, addrs) in &reg.delegation.glue {
                let glue_owner = Name::from(host);
                for addr in addrs {
                    zone.add(Record::new(glue_owner.clone(), 345_600, RData::A(*addr)));
                }
            }
        }
        zone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn registry() -> Registry {
        Registry::new(d("ru"))
    }

    #[test]
    fn register_and_lookup() {
        let mut r = registry();
        let day = Date::from_ymd(2020, 1, 1);
        r.register(d("example.ru"), day, 1).unwrap();
        assert!(r.is_registered(&d("example.ru")));
        assert_eq!(r.count(), 1);
        assert_eq!(r.ever_registered(), 1);
        let reg = r.get(&d("example.ru")).unwrap();
        assert_eq!(reg.registered, day);
        assert_eq!(reg.expires, day.add_days(365));
    }

    #[test]
    fn register_validation() {
        let mut r = registry();
        let day = Date::from_ymd(2020, 1, 1);
        assert_eq!(
            r.register(d("example.com"), day, 1),
            Err(RegistryError::WrongTld)
        );
        assert_eq!(
            r.register(d("sub.example.ru"), day, 1),
            Err(RegistryError::WrongTld),
            "only second-level names are registrable"
        );
        r.register(d("example.ru"), day, 1).unwrap();
        assert_eq!(
            r.register(d("example.ru"), day, 1),
            Err(RegistryError::AlreadyRegistered)
        );
    }

    #[test]
    fn renewal_extends() {
        let mut r = registry();
        let day = Date::from_ymd(2020, 1, 1);
        r.register(d("example.ru"), day, 1).unwrap();
        let new_expiry = r.renew(&d("example.ru"), 2).unwrap();
        assert_eq!(new_expiry, day.add_days(365 * 3));
        assert_eq!(
            r.renew(&d("missing.ru"), 1),
            Err(RegistryError::NotRegistered)
        );
    }

    #[test]
    fn expiration_processing() {
        let mut r = registry();
        let day = Date::from_ymd(2020, 1, 1);
        r.register(d("expiring.ru"), day, 1).unwrap();
        r.register(d("longlived.ru"), day, 5).unwrap();

        assert!(
            r.process_expirations(day.add_days(365)).is_empty(),
            "expiry day itself keeps the name"
        );
        let dropped = r.process_expirations(day.add_days(366));
        assert_eq!(dropped, vec![d("expiring.ru")]);
        assert_eq!(r.count(), 1);
        // Cumulative count unaffected by expiry.
        assert_eq!(r.ever_registered(), 2);
        // Name becomes available again.
        r.register(d("expiring.ru"), day.add_days(400), 1).unwrap();
        assert_eq!(r.ever_registered(), 3);
    }

    #[test]
    fn zone_snapshot_contents() {
        let mut r = registry();
        let day = Date::from_ymd(2022, 2, 24);
        r.register(d("delegated.ru"), day, 1).unwrap();
        r.register(d("parked.ru"), day, 1).unwrap();
        r.set_delegation(
            &d("delegated.ru"),
            Delegation {
                nameservers: vec![d("ns1.delegated.ru"), d("ns2.hoster.com")],
                glue: BTreeMap::from([(
                    d("ns1.delegated.ru"),
                    vec!["198.51.100.1".parse().unwrap()],
                )]),
            },
        )
        .unwrap();

        let zone = r.zone_snapshot(day);
        assert_eq!(zone.origin().to_string(), "ru.");
        assert_eq!(zone.soa().serial, day.days_since_epoch() as u32);
        // Only the delegated name appears.
        let delegs: Vec<String> = zone.delegations().map(|n| n.to_string()).collect();
        assert_eq!(delegs, vec!["delegated.ru."]);
        // 2 NS + 1 glue A.
        assert_eq!(zone.record_count(), 3);
    }

    #[test]
    fn zone_serial_monotonic() {
        let mut r = registry();
        r.register(d("a.ru"), Date::from_ymd(2020, 1, 1), 10)
            .unwrap();
        let s1 = r.zone_snapshot(Date::from_ymd(2022, 1, 1)).soa().serial;
        let s2 = r.zone_snapshot(Date::from_ymd(2022, 1, 2)).soa().serial;
        assert_eq!(s2, s1 + 1);
    }

    #[test]
    fn idn_tld_registry() {
        let mut r = Registry::new(d("рф"));
        assert_eq!(r.tld().as_str(), "xn--p1ai");
        r.register(d("пример.рф"), Date::from_ymd(2020, 1, 1), 1)
            .unwrap();
        assert!(r.is_registered(&d("пример.рф")));
        let zone = r.zone_snapshot(Date::from_ymd(2020, 1, 2));
        assert_eq!(zone.origin().to_string(), "xn--p1ai.");
    }

    #[test]
    fn delete() {
        let mut r = registry();
        r.register(d("gone.ru"), Date::from_ymd(2020, 1, 1), 1)
            .unwrap();
        assert!(r.delete(&d("gone.ru")).is_ok());
        assert!(!r.is_registered(&d("gone.ru")));
        assert_eq!(r.delete(&d("gone.ru")), Err(RegistryError::NotRegistered));
    }
}
