//! A WHOIS service over the registry database.
//!
//! The paper confirms whether domains that appeared at Amazon after its
//! halt were *newly registered* "using Cisco's Whois Domain API"
//! (§3.4, footnote 10). This module provides the equivalent mechanism: a
//! port-43-style text protocol serving registration facts straight from
//! the registry, plus a client-side parser.
//!
//! Protocol (classic WHOIS flavour):
//!
//! ```text
//! >> example.ru\r\n
//! << domain:     EXAMPLE.RU
//! << state:      REGISTERED, DELEGATED
//! << created:    2019-05-01
//! << paid-till:  2029-04-28
//! << nserver:    ns1.reg.ru.
//! << nserver:    ns2.reg.ru.
//! << source:     RU-TLD
//! ```
//!
//! Unregistered names answer `No entries found`.

use crate::registry::Registry;
use ruwhere_types::{Date, DomainName};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The canonical WHOIS port.
pub const WHOIS_PORT: u16 = 43;

/// A parsed WHOIS answer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhoisRecord {
    /// The queried domain.
    pub domain: DomainName,
    /// First registration date.
    pub created: Date,
    /// Paid-through date.
    pub paid_till: Date,
    /// Delegated name servers.
    pub nservers: Vec<DomainName>,
}

/// Render the WHOIS response for `query` against a set of registries.
pub fn respond(registries: &[Registry], query: &str) -> String {
    let Ok(domain) = DomainName::parse(query.trim()) else {
        return "query format error\r\n".to_owned();
    };
    for registry in registries {
        if let Some(reg) = registry.get(&domain) {
            let mut out = String::new();
            let _ = writeln!(out, "domain:     {}", domain.as_str().to_uppercase());
            let state = if reg.delegation.nameservers.is_empty() {
                "REGISTERED, NOT DELEGATED"
            } else {
                "REGISTERED, DELEGATED"
            };
            let _ = writeln!(out, "state:      {state}");
            let _ = writeln!(out, "created:    {}", reg.registered);
            let _ = writeln!(out, "paid-till:  {}", reg.expires);
            for ns in &reg.delegation.nameservers {
                let _ = writeln!(out, "nserver:    {ns}.");
            }
            let _ = writeln!(out, "source:     RU-TLD");
            return out;
        }
    }
    "No entries found for the selected source.\r\n".to_owned()
}

/// Parse a WHOIS response produced by [`respond`].
pub fn parse(response: &str) -> Option<WhoisRecord> {
    if response.contains("No entries found") || response.contains("query format error") {
        return None;
    }
    let mut domain = None;
    let mut created = None;
    let mut paid_till = None;
    let mut nservers = Vec::new();
    for line in response.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match key.trim() {
            "domain" => domain = DomainName::parse(value).ok(),
            "created" => created = value.parse().ok(),
            "paid-till" => paid_till = value.parse().ok(),
            "nserver" => {
                if let Ok(ns) = DomainName::parse(value.trim_end_matches('.')) {
                    nservers.push(ns);
                }
            }
            _ => {}
        }
    }
    Some(WhoisRecord {
        domain: domain?,
        created: created?,
        paid_till: paid_till?,
        nservers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Delegation;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn registries() -> Vec<Registry> {
        let mut ru = Registry::new(d("ru"));
        ru.register(d("example.ru"), Date::from_ymd(2019, 5, 1), 10)
            .unwrap();
        ru.set_delegation(
            &d("example.ru"),
            Delegation {
                nameservers: vec![d("ns1.reg.ru"), d("ns2.reg.ru")],
                glue: Default::default(),
            },
        )
        .unwrap();
        ru.register(d("parked.ru"), Date::from_ymd(2022, 3, 10), 1)
            .unwrap();
        let mut rf = Registry::new(d("рф"));
        rf.register(d("пример.рф"), Date::from_ymd(2020, 2, 2), 5)
            .unwrap();
        vec![ru, rf]
    }

    #[test]
    fn roundtrip_delegated() {
        let regs = registries();
        let resp = respond(&regs, "example.ru");
        assert!(resp.contains("domain:     EXAMPLE.RU"));
        assert!(resp.contains("state:      REGISTERED, DELEGATED"));
        let rec = parse(&resp).unwrap();
        assert_eq!(rec.domain, d("example.ru"));
        assert_eq!(rec.created, Date::from_ymd(2019, 5, 1));
        assert_eq!(rec.paid_till, Date::from_ymd(2019, 5, 1).add_days(3650));
        assert_eq!(rec.nservers, vec![d("ns1.reg.ru"), d("ns2.reg.ru")]);
    }

    #[test]
    fn undelegated_and_idn() {
        let regs = registries();
        let resp = respond(&regs, "parked.ru");
        assert!(resp.contains("NOT DELEGATED"));
        assert!(parse(&resp).unwrap().nservers.is_empty());

        // Queries in Unicode or punycode both resolve.
        let uni = respond(&regs, "пример.рф");
        let puny = respond(&regs, "xn--e1afmkfd.xn--p1ai");
        assert_eq!(uni, puny);
        assert_eq!(parse(&uni).unwrap().created, Date::from_ymd(2020, 2, 2));
    }

    #[test]
    fn misses_and_garbage() {
        let regs = registries();
        assert!(parse(&respond(&regs, "missing.ru")).is_none());
        assert!(parse(&respond(&regs, "!!!")).is_none());
        assert!(parse(&respond(&regs, "")).is_none());
        assert!(parse("totally unrelated text").is_none());
    }

    #[test]
    fn whitespace_tolerated() {
        let regs = registries();
        let rec = parse(&respond(&regs, "  example.ru \r\n")).unwrap();
        assert_eq!(rec.domain, d("example.ru"));
    }
}
