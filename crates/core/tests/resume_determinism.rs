//! Resume byte-identity: an interrupted-then-resumed checkpointed study
//! must be indistinguishable — interner `dump()`, retained frames,
//! query totals, every rendered figure — from an uninterrupted run, for
//! any interruption point and any worker count on either side of the
//! interruption. The uninterrupted baseline runs at 1 worker; resumed
//! runs draw 1, 2 or 4 (the workers-1-vs-N half of the contract).
//!
//! The in-process interruption knob is `StudyConfig::stop_after_sweeps`;
//! the SIGKILL version of the same assertion lives in the crash harness
//! (`crates/bench/tests/crash_recovery.rs`).

use proptest::prelude::*;
use ruwhere_core::experiments::{try_run_study, StudyConfig, StudyError, StudyResults};
use ruwhere_core::figures;
use ruwhere_core::AnalysisEngine;
use ruwhere_store::{CheckpointError, SweepFrame};
use ruwhere_types::Date;
use ruwhere_world::WorldConfig;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::OnceLock;

/// A five-day, all-daily shrink of the tiny-world study: long enough to
/// have interesting interruption points, short enough for debug-profile
/// proptest cases.
fn shrunk_config(workers: usize) -> StudyConfig {
    let mut world = WorldConfig::tiny();
    world.start = Date::from_ymd(2022, 3, 1);
    world.end = Date::from_ymd(2022, 3, 5);
    let mut cfg = StudyConfig::paper_schedule(world);
    cfg.daily_from = cfg.world.start;
    cfg.retain = vec![Date::from_ymd(2022, 3, 2)];
    cfg.ip_scans = vec![Date::from_ymd(2022, 3, 3)];
    cfg.extra_sweeps.clear();
    cfg.workers = workers;
    cfg
}

/// Everything the byte-identity oracle compares.
struct Snapshot {
    dump: String,
    retained: BTreeMap<Date, SweepFrame>,
    total_queries: u64,
    sweeps_run: usize,
    engine: AnalysisEngine,
    fig1: String,
    dataset: String,
}

fn snapshot(r: &StudyResults) -> Snapshot {
    Snapshot {
        dump: r.interner.dump(),
        retained: r.retained.clone(),
        total_queries: r.total_queries,
        sweeps_run: r.sweeps_run,
        engine: r.analysis.clone(),
        fig1: figures::fig1_series(r).render(),
        dataset: figures::dataset_table(r).render(),
    }
}

/// The uninterrupted, checkpoint-free baseline at 1 worker.
fn baseline() -> &'static Snapshot {
    static BASE: OnceLock<Snapshot> = OnceLock::new();
    BASE.get_or_init(|| {
        let r = try_run_study(&shrunk_config(1)).expect("baseline study");
        snapshot(&r)
    })
}

fn assert_matches_baseline(r: &StudyResults, context: &str) {
    let base = baseline();
    let got = snapshot(r);
    assert_eq!(got.dump, base.dump, "{context}: interner dump diverged");
    assert_eq!(
        got.retained, base.retained,
        "{context}: retained frames diverged"
    );
    assert_eq!(
        got.total_queries, base.total_queries,
        "{context}: query totals diverged"
    );
    assert_eq!(got.sweeps_run, base.sweeps_run, "{context}: sweep count");
    assert_eq!(got.engine, base.engine, "{context}: engine counters");
    assert_eq!(got.fig1, base.fig1, "{context}: Figure 1 render diverged");
    assert_eq!(got.dataset, base.dataset, "{context}: dataset table");
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruwhere-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn segment_count(dir: &PathBuf) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
                .count()
        })
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Interrupt after 1–4 of the 5 study days at one worker count,
    /// resume at another: report-level output is byte-identical to the
    /// uninterrupted 1-worker baseline.
    #[test]
    fn interrupted_resumed_run_is_byte_identical(
        stop in 1usize..5,
        w_interrupt_idx in 0usize..3,
        w_resume_idx in 0usize..3,
    ) {
        let pool = [1usize, 2, 4];
        let (w_int, w_res) = (pool[w_interrupt_idx], pool[w_resume_idx]);
        let dir = tmp_dir(&format!("prop-{stop}-{w_int}-{w_res}"));

        let mut interrupted = shrunk_config(w_int);
        interrupted.checkpoint_dir = Some(dir.clone());
        interrupted.stop_after_sweeps = Some(stop);
        let partial = try_run_study(&interrupted).expect("interrupted run");
        prop_assert_eq!(partial.sweeps_run, stop);
        prop_assert_eq!(segment_count(&dir), stop);

        let mut resumed = shrunk_config(w_res);
        resumed.checkpoint_dir = Some(dir.clone());
        resumed.resume = true;
        let full = try_run_study(&resumed).expect("resumed run");
        assert_matches_baseline(
            &full,
            &format!("stop={stop} workers {w_int}->{w_res}"),
        );
        prop_assert_eq!(segment_count(&dir), 5, "resume must complete the chain");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A corrupted mid-chain segment is quarantined (typed, reported), the
/// valid prefix is salvaged, and the resumed run — re-measuring from the
/// first quarantined day — still matches the baseline byte-for-byte.
#[test]
fn corrupted_segment_is_quarantined_and_resume_still_matches() {
    let dir = tmp_dir("corrupt");
    let mut interrupted = shrunk_config(2);
    interrupted.checkpoint_dir = Some(dir.clone());
    interrupted.stop_after_sweeps = Some(3);
    try_run_study(&interrupted).expect("interrupted run");

    // Flip one bit in the middle segment of days 0..3.
    let victim = dir.join("day-000001.ckpt");
    let mut bytes = std::fs::read(&victim).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&victim, &bytes).expect("rewrite segment");

    let mut resumed = shrunk_config(1);
    resumed.checkpoint_dir = Some(dir.clone());
    resumed.resume = true;
    let full = try_run_study(&resumed).expect("resume after corruption");
    assert_matches_baseline(&full, "corrupted day 1");

    // Day 1 (damaged) and day 2 (chained after it) were renamed aside.
    assert!(dir.join("day-000001.ckpt.quarantined").exists());
    assert!(dir.join("day-000002.ckpt.quarantined").exists());
    // The resume rewrote the re-measured days durably.
    assert_eq!(segment_count(&dir), 5);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Refusing to clobber: pointing a non-resume checkpointed run at a
/// directory that already holds segments is a typed validation error.
#[test]
fn non_resume_run_refuses_nonempty_directory() {
    let dir = tmp_dir("clobber");
    let mut first = shrunk_config(1);
    first.checkpoint_dir = Some(dir.clone());
    first.stop_after_sweeps = Some(1);
    try_run_study(&first).expect("first run");

    let mut second = shrunk_config(1);
    second.checkpoint_dir = Some(dir.clone());
    match try_run_study(&second) {
        Err(StudyError::InvalidConfig(msg)) => {
            assert!(
                msg.contains("--resume"),
                "message should mention --resume: {msg}"
            )
        }
        other => panic!(
            "expected InvalidConfig, got {:?}",
            other.map(|r| r.sweeps_run)
        ),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming with a differently-configured study is a hard config
/// mismatch — the directory is not silently re-measured or clobbered.
#[test]
fn mismatched_config_is_a_hard_error() {
    let dir = tmp_dir("mismatch");
    let mut first = shrunk_config(1);
    first.checkpoint_dir = Some(dir.clone());
    first.stop_after_sweeps = Some(1);
    try_run_study(&first).expect("first run");

    let mut other = shrunk_config(1);
    other.world.seed ^= 1;
    other.checkpoint_dir = Some(dir.clone());
    other.resume = true;
    match try_run_study(&other) {
        Err(StudyError::Checkpoint(CheckpointError::ConfigMismatch { .. })) => {}
        other => panic!(
            "expected ConfigMismatch, got {:?}",
            other.map(|r| r.sweeps_run)
        ),
    }
    // The foreign run's segment is untouched.
    assert_eq!(segment_count(&dir), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unwritable checkpoint path is a typed validation error before any
/// sweeping starts.
#[test]
fn unwritable_checkpoint_dir_is_a_typed_error() {
    let dir = tmp_dir("unwritable");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("occupied");
    std::fs::write(&file, b"x").expect("write");
    let mut cfg = shrunk_config(1);
    cfg.checkpoint_dir = Some(file.join("nested"));
    match try_run_study(&cfg) {
        Err(StudyError::Checkpoint(CheckpointError::Io { .. })) => {}
        other => panic!("expected Io error, got {:?}", other.map(|r| r.sweeps_run)),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
