//! Property tests on analysis invariants: whatever the measurement data
//! looks like, the classifications must partition, percentages must add
//! up, and movement accounting must conserve domains.

use proptest::prelude::*;
use ruwhere_core::composition::{Composition, CompositionSeries, InfraKind};
use ruwhere_core::movement::{Movement, MovementReport};
use ruwhere_core::AsnShareSeries;
use ruwhere_scan::{AddrInfo, DailySweep, DomainDay, SweepStats};
use ruwhere_types::{Asn, Country, Date};

const COUNTRIES: [Option<&str>; 5] = [Some("RU"), Some("US"), Some("DE"), Some("SE"), None];

fn addr(i: usize, cc_idx: usize, asn: u32) -> AddrInfo {
    AddrInfo {
        ip: format!("10.{}.{}.{}", asn % 256, i, 1).parse().unwrap(),
        country: COUNTRIES[cc_idx % COUNTRIES.len()].map(|c| c.parse::<Country>().unwrap()),
        asn: if asn == 0 { None } else { Some(Asn(asn)) },
    }
}

prop_compose! {
    fn arb_record(idx: usize)(
        n_ns in 0usize..4,
        n_apex in 0usize..3,
        cc_seed in any::<usize>(),
        asn_seed in 0u32..6,
    ) -> DomainDay {
        DomainDay {
            domain: format!("prop-{idx}.ru").parse().unwrap(),
            ns_names: (0..n_ns).map(|i| format!("ns{i}.prop-{idx}.ru").parse().unwrap()).collect(),
            ns_addrs: (0..n_ns).map(|i| addr(i, cc_seed.wrapping_add(i), asn_seed + i as u32)).collect(),
            apex_addrs: (0..n_apex).map(|i| addr(i + 8, cc_seed.wrapping_mul(3).wrapping_add(i), asn_seed * 2 + i as u32)).collect(),
        }
    }
}

fn arb_sweep(date: Date) -> impl Strategy<Value = DailySweep> {
    proptest::collection::vec(any::<u8>(), 1..40).prop_flat_map(move |seeds| {
        let strategies: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, _)| arb_record(i))
            .collect();
        strategies.prop_map(move |domains| DailySweep {
            date,
            domains,
            stats: SweepStats::default(),
            metrics: Default::default(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn composition_partitions_every_domain(sweep in arb_sweep(Date::from_ymd(2022, 3, 1))) {
        for kind in [InfraKind::NameServers, InfraKind::Hosting] {
            let mut series = CompositionSeries::new(kind);
            series.observe(&sweep);
            let c = series.at(sweep.date).unwrap();
            // Partition: every domain lands in exactly one bucket.
            prop_assert_eq!(c.total() as usize, sweep.domains.len());
            prop_assert_eq!(c.known() + c.unknown, c.total());
            // Percentages over the known set sum to 100 (when any known).
            if c.known() > 0 {
                let sum = c.pct_full() + c.pct_partial() + c.pct_non();
                prop_assert!((sum - 100.0).abs() < 1e-9, "pct sum {sum}");
            }
        }
    }

    #[test]
    fn classification_matches_manual_rule(sweep in arb_sweep(Date::from_ymd(2022, 3, 1))) {
        let series = CompositionSeries::new(InfraKind::NameServers);
        for rec in &sweep.domains {
            let ru = rec.ns_addrs.iter().filter(|a| a.country.map(|c| c.is_russia()).unwrap_or(false)).count();
            let known = rec.ns_addrs.iter().filter(|a| a.country.is_some()).count();
            let expected = match (ru, known) {
                (_, 0) => Composition::Unknown,
                (r, k) if r == k => Composition::Full,
                (0, _) => Composition::Non,
                _ => Composition::Partial,
            };
            prop_assert_eq!(series.classify_record(rec), expected);
        }
    }

    #[test]
    fn movement_conserves_domains(
        a in arb_sweep(Date::from_ymd(2022, 3, 8)),
        b in arb_sweep(Date::from_ymd(2022, 5, 25)),
        asn in 1u32..8,
    ) {
        let report = MovementReport::analyze(&a, &b, Asn(asn));
        // Conservation: every original domain has exactly one outcome.
        prop_assert_eq!(
            report.original(),
            report.remained() + report.relocated() + report.lost()
        );
        // Arrivals are disjoint from the original set.
        for d in report.relocated_in.iter().chain(&report.newly_registered) {
            prop_assert!(!report.outcomes.contains_key(d));
        }
        // Destination histogram covers only relocated domains.
        let dest_total: usize = report.destinations().values().sum();
        prop_assert!(dest_total >= report.relocated());
        // Share-to is a fraction.
        let share = report.relocated_share_to(Asn(99));
        prop_assert!((0.0..=1.0).contains(&share));
    }

    #[test]
    fn movement_outcomes_are_consistent_with_sweeps(
        a in arb_sweep(Date::from_ymd(2022, 3, 8)),
        b in arb_sweep(Date::from_ymd(2022, 5, 25)),
    ) {
        let asn = Asn(2);
        let report = MovementReport::analyze(&a, &b, asn);
        for (domain, outcome) in &report.outcomes {
            let in_b = b.domains.iter().find(|r| &r.domain == domain);
            match outcome {
                Movement::Gone => prop_assert!(in_b.is_none()),
                Movement::Remained => {
                    prop_assert!(in_b.unwrap().apex_addrs.iter().any(|x| x.asn == Some(asn)));
                }
                Movement::RelocatedTo(dests) => {
                    prop_assert!(!dests.contains(&asn));
                    prop_assert!(!dests.is_empty());
                }
                Movement::Unresolved => {
                    prop_assert!(in_b.unwrap().apex_addrs.iter().all(|x| x.asn.is_none())
                        || in_b.unwrap().apex_addrs.is_empty());
                }
            }
        }
    }

    #[test]
    fn asn_share_totals_are_bounded(sweep in arb_sweep(Date::from_ymd(2022, 3, 1))) {
        let mut s = AsnShareSeries::new();
        s.observe(&sweep);
        let date = sweep.date;
        let total = s.total(date).unwrap();
        // The denominator counts only resolving domains.
        let resolving = sweep.domains.iter().filter(|d| !d.apex_addrs.is_empty()).count() as u64;
        prop_assert_eq!(total, resolving);
        // Each individual ASN count is ≤ total; shares are percentages.
        for asn in 0..8u32 {
            prop_assert!(s.count(date, Asn(asn)) <= total);
            let share = s.share(date, Asn(asn)).unwrap();
            prop_assert!((0.0..=100.0).contains(&share));
        }
    }
}
