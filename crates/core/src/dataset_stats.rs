//! Dataset-scale statistics (paper §2):
//!
//! > "Our dataset contains 11.7 M unique Russian Federation domain names,
//! > and 13.3 k and 9.5 k unique networks (AS numbers) that, respectively,
//! > hosted domain apexes or authoritative DNS infrastructure."

use crate::engine::FrameObserver;
use ruwhere_scan::DailySweep;
use ruwhere_store::{Interner, InternerSnap, RecordView, SweepFrame, SymSet};
use ruwhere_types::{Asn, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Accumulates unique names and networks across all sweeps.
///
/// One instance must be fed frames from **one** interner (the engine
/// contract) — the symbol seen-set below pre-filters on that assumption.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DatasetStats {
    unique_domains: BTreeSet<DomainName>,
    hosting_asns: BTreeSet<Asn>,
    dns_asns: BTreeSet<Asn>,
    sweeps: u64,
    records: u64,
    partial_sweeps: u64,
    timeouts: u64,
    servfails: u64,
    lame: u64,
    retries_spent: u64,
    /// Domain symbols already folded into `unique_domains`: an O(1) bitset
    /// pre-filter so the steady state (every domain seen on day one) skips
    /// the tree insert entirely.
    seen_syms: SymSet,
    /// Interner behind the compatibility row path — persistent so symbols
    /// stay stable across `observe` calls.
    row_interner: Interner,
}

impl DatasetStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one row-form sweep (columnarised through the instance's own
    /// persistent interner; the fold itself is the [`FrameObserver`] impl).
    pub fn observe(&mut self, sweep: &DailySweep) {
        let interner = std::mem::take(&mut self.row_interner);
        let frame = SweepFrame::from_daily_sweep(sweep, &interner);
        crate::engine::drive_one(self, &frame, &interner);
        self.row_interner = interner;
    }

    /// Unique domain names ever observed (paper: 11.7 M).
    pub fn unique_domains(&self) -> usize {
        self.unique_domains.len()
    }

    /// Unique apex-hosting ASNs (paper: 13.3 k).
    pub fn hosting_asns(&self) -> usize {
        self.hosting_asns.len()
    }

    /// Unique authoritative-DNS ASNs (paper: 9.5 k).
    pub fn dns_asns(&self) -> usize {
        self.dns_asns.len()
    }

    /// Total sweeps consumed.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Total domain-day records consumed.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Sweeps salvaged as partial (measurement-gap days, footnote 8).
    pub fn partial_sweeps(&self) -> u64 {
        self.partial_sweeps
    }

    /// Query timeouts across all sweeps.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// SERVFAIL answers across all sweeps.
    pub fn servfails(&self) -> u64 {
        self.servfails
    }

    /// Lame answers across all sweeps.
    pub fn lame(&self) -> u64 {
        self.lame
    }

    /// Failed exchanges charged to resolver retry budgets — the study's
    /// total wasted-query bill.
    pub fn retries_spent(&self) -> u64 {
        self.retries_spent
    }
}

impl FrameObserver for DatasetStats {
    fn begin_frame(&mut self, frame: &SweepFrame, _snap: &InternerSnap<'_>) {
        self.sweeps += 1;
        if frame.is_partial() {
            self.partial_sweeps += 1;
        }
        self.timeouts += frame.stats.timeouts;
        self.servfails += frame.stats.servfails;
        self.lame += frame.stats.lame;
        self.retries_spent += frame.stats.retries_spent;
    }

    fn observe_record(&mut self, rec: &RecordView<'_>, snap: &InternerSnap<'_>) {
        self.records += 1;
        let sym = rec.domain_sym();
        if self.seen_syms.insert(sym) {
            self.unique_domains.insert(snap.name(sym).clone());
        }
        for asn in rec.apex_addrs().asns().iter().flatten() {
            self.hosting_asns.insert(*asn);
        }
        for asn in rec.ns_addrs().asns().iter().flatten() {
            self.dns_asns.insert(*asn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_scan::{AddrInfo, DomainDay, SweepStats};
    use ruwhere_types::Date;

    fn rec(domain: &str, apex_asn: u32, ns_asn: u32) -> DomainDay {
        let mk = |asn: u32| AddrInfo {
            ip: "10.0.0.1".parse().unwrap(),
            country: None,
            asn: Some(Asn(asn)),
        };
        DomainDay {
            domain: domain.parse().unwrap(),
            ns_names: vec![],
            ns_addrs: vec![mk(ns_asn)],
            apex_addrs: vec![mk(apex_asn)],
        }
    }

    #[test]
    fn accumulates_across_sweeps() {
        let mut stats = DatasetStats::new();
        stats.observe(&DailySweep {
            date: Date::from_ymd(2022, 1, 1),
            domains: vec![rec("a.ru", 1, 10), rec("b.ru", 2, 10)],
            stats: SweepStats::default(),
            metrics: Default::default(),
        });
        stats.observe(&DailySweep {
            date: Date::from_ymd(2022, 1, 2),
            domains: vec![rec("a.ru", 1, 11), rec("c.ru", 3, 12)],
            stats: SweepStats {
                timeouts: 5,
                servfails: 2,
                lame: 1,
                retries_spent: 8,
                completeness: ruwhere_scan::Completeness::Partial,
                ..SweepStats::default()
            },
            metrics: Default::default(),
        });
        assert_eq!(stats.unique_domains(), 3);
        assert_eq!(stats.hosting_asns(), 3);
        assert_eq!(stats.dns_asns(), 3);
        assert_eq!(stats.sweeps(), 2);
        assert_eq!(stats.records(), 4);
        assert_eq!(stats.partial_sweeps(), 1);
        assert_eq!(stats.timeouts(), 5);
        assert_eq!(stats.servfails(), 2);
        assert_eq!(stats.lame(), 1);
        assert_eq!(stats.retries_spent(), 8);
    }
}
