//! Russian Trusted Root CA analysis (§4.3).
//!
//! The state CA does not log to CT and is not browser-trusted, so the only
//! way to observe it is IP-wide scanning of *served* chains. This module
//! joins an [`IpScanSnapshot`] with the CT view and the sanctions list to
//! reproduce the §4.3 findings: few certificates in absolute terms, all
//! securing Russian-related entities, about a third of the sanctions list
//! covered.

use ruwhere_registry::SanctionsList;
use ruwhere_scan::{CertDataset, IpScanSnapshot};
use ruwhere_types::{Date, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The organization string of the state CA.
pub const RUSSIAN_CA_ORG: &str = "Russian Trusted Root CA";

/// §4.3 summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RussianCaAnalysis {
    /// Unique certificates (by issuer serial) seen in scans with the
    /// Russian CA in their chain.
    pub unique_certs: usize,
    /// Distinct domains covered, by TLD.
    pub domains_by_tld: BTreeMap<String, usize>,
    /// Sanctioned domains among the covered set.
    pub sanctioned_covered: usize,
    /// Size of the sanctions list at analysis time.
    pub sanctions_total: usize,
    /// Certificates from the Russian CA present in the CT dataset (should
    /// be zero — the CA does not log).
    pub in_ct: usize,
    /// Unique certificates from all *other* CAs seen in the same scan, for
    /// the paper's "for context" comparison.
    pub other_ca_certs: usize,
}

impl RussianCaAnalysis {
    /// Run the analysis over one scan snapshot.
    pub fn new(
        scan: &IpScanSnapshot,
        ct: &CertDataset,
        sanctions: &SanctionsList,
        as_of: Date,
    ) -> Self {
        let mut russian_serials: BTreeSet<u64> = BTreeSet::new();
        let mut other_serials: BTreeSet<(String, u64)> = BTreeSet::new();
        let mut covered: BTreeSet<DomainName> = BTreeSet::new();
        for (_, chain) in &scan.endpoints {
            if chain.chain_contains_org(RUSSIAN_CA_ORG) {
                russian_serials.insert(chain.serial);
                if let Ok(d) = DomainName::parse(&chain.subject_cn) {
                    covered.insert(d);
                }
                for d in &chain.san {
                    covered.insert(d.clone());
                }
            } else {
                other_serials.insert((chain.issuer_org.clone(), chain.serial));
            }
        }

        let mut domains_by_tld: BTreeMap<String, usize> = BTreeMap::new();
        let mut sanctioned_covered = 0;
        for d in &covered {
            *domains_by_tld.entry(d.tld().to_owned()).or_default() += 1;
            if sanctions.is_sanctioned(d, as_of) {
                sanctioned_covered += 1;
            }
        }

        let in_ct = ct
            .records
            .iter()
            .filter(|r| r.issuer_org == RUSSIAN_CA_ORG)
            .count();

        RussianCaAnalysis {
            unique_certs: russian_serials.len(),
            domains_by_tld,
            sanctioned_covered,
            sanctions_total: sanctions.sanctioned_at(as_of).len(),
            in_ct,
            other_ca_certs: other_serials.len(),
        }
    }

    /// Domains under the study ccTLDs.
    pub fn russian_tld_domains(&self) -> usize {
        self.domains_by_tld.get("ru").copied().unwrap_or(0)
            + self.domains_by_tld.get("xn--p1ai").copied().unwrap_or(0)
    }

    /// Fraction of the sanctions list covered (paper: 34 %).
    pub fn sanctioned_coverage(&self) -> f64 {
        self.sanctioned_covered as f64 / self.sanctions_total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_registry::SanctionSource;
    use ruwhere_world::ChainSummary;

    fn chain(cn: &str, issuer: &str, chain_orgs: &[&str], serial: u64) -> ChainSummary {
        ChainSummary {
            subject_cn: cn.into(),
            san: DomainName::parse(cn).ok().into_iter().collect(),
            issuer_org: issuer.into(),
            chain_orgs: chain_orgs.iter().map(|s| (*s).to_string()).collect(),
            serial,
            not_before: Date::from_ymd(2022, 3, 10),
            not_after: Date::from_ymd(2023, 3, 10),
        }
    }

    #[test]
    fn analysis_counts() {
        let snap = IpScanSnapshot {
            date: Date::from_ymd(2022, 5, 15),
            endpoints: vec![
                (
                    "10.0.0.1".parse().unwrap(),
                    chain("bank.ru", RUSSIAN_CA_ORG, &[RUSSIAN_CA_ORG], 1),
                ),
                (
                    "10.0.0.2".parse().unwrap(),
                    chain("site.ru", RUSSIAN_CA_ORG, &[RUSSIAN_CA_ORG], 2),
                ),
                (
                    "10.0.0.3".parse().unwrap(),
                    chain("corp.com", RUSSIAN_CA_ORG, &[RUSSIAN_CA_ORG], 3),
                ),
                (
                    "10.0.0.4".parse().unwrap(),
                    chain("пример.рф", RUSSIAN_CA_ORG, &[RUSSIAN_CA_ORG], 4),
                ),
                (
                    "10.0.0.5".parse().unwrap(),
                    chain("ord.ru", "Let's Encrypt", &["ISRG"], 99),
                ),
                // Duplicate serial from a second endpoint: counted once.
                (
                    "10.0.0.6".parse().unwrap(),
                    chain("bank.ru", RUSSIAN_CA_ORG, &[RUSSIAN_CA_ORG], 1),
                ),
            ],
            failures: Vec::new(),
        };
        let mut sanctions = SanctionsList::new();
        sanctions.add(
            "bank.ru".parse().unwrap(),
            SanctionSource::UsOfacSdn,
            Date::from_ymd(2022, 2, 25),
        );
        sanctions.add(
            "unseen.ru".parse().unwrap(),
            SanctionSource::UsOfacSdn,
            Date::from_ymd(2022, 2, 25),
        );
        let ct = CertDataset::default();
        let a = RussianCaAnalysis::new(&snap, &ct, &sanctions, Date::from_ymd(2022, 5, 15));

        assert_eq!(a.unique_certs, 4);
        assert_eq!(a.other_ca_certs, 1);
        assert_eq!(a.russian_tld_domains(), 3);
        assert_eq!(a.domains_by_tld.get("com"), Some(&1));
        assert_eq!(a.sanctioned_covered, 1);
        assert_eq!(a.sanctions_total, 2);
        assert!((a.sanctioned_coverage() - 0.5).abs() < 1e-9);
        assert_eq!(a.in_ct, 0);
    }
}
