//! Hosting-network shares (Figure 4).
//!
//! For each date and each ASN, the fraction of Russian Federation domains
//! whose apex A records resolve into that ASN.

use crate::engine::FrameObserver;
use ruwhere_scan::DailySweep;
use ruwhere_store::{Interner, InternerSnap, RecordView, SweepFrame};
use ruwhere_types::{Asn, Date};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Longitudinal per-ASN share accumulator.
///
/// A domain counts toward every ASN any of its apex A records resolves
/// into (split-hosted domains count in both, as in the paper's "domains
/// resolving to Amazon's ASN").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsnShareSeries {
    days: BTreeMap<Date, BTreeMap<Asn, u64>>,
    totals: BTreeMap<Date, u64>,
    scratch: BTreeMap<Asn, u64>,
    scratch_total: u64,
}

impl AsnShareSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one row-form sweep (columnarised through an ephemeral
    /// interner; the fold itself is the [`FrameObserver`] impl).
    pub fn observe(&mut self, sweep: &DailySweep) {
        let interner = Interner::new();
        let frame = SweepFrame::from_daily_sweep(sweep, &interner);
        crate::engine::drive_one(self, &frame, &interner);
    }

    /// Number of domains in `asn` on `date`.
    pub fn count(&self, date: Date, asn: Asn) -> u64 {
        self.days
            .get(&date)
            .and_then(|m| m.get(&asn))
            .copied()
            .unwrap_or(0)
    }

    /// Share (%) of resolving domains in `asn` on `date`.
    pub fn share(&self, date: Date, asn: Asn) -> Option<f64> {
        let total = *self.totals.get(&date)? as f64;
        Some(100.0 * self.count(date, asn) as f64 / total.max(1.0))
    }

    /// Distinct ASNs hosting at least one domain across all dates — the
    /// paper's "13.3 k unique networks" statistic (§2), scaled.
    pub fn distinct_asns(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for m in self.days.values() {
            set.extend(m.keys().copied());
        }
        set.len()
    }

    /// The top `n` ASNs by count on the final observed date.
    pub fn top_asns(&self, n: usize) -> Vec<Asn> {
        let Some(last) = self.days.values().next_back() else {
            return Vec::new();
        };
        let mut v: Vec<(&Asn, &u64)> = last.iter().collect();
        v.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        v.into_iter().take(n).map(|(a, _)| *a).collect()
    }

    /// Observed dates in order.
    pub fn dates(&self) -> impl Iterator<Item = Date> + '_ {
        self.days.keys().copied()
    }

    /// Total resolving domains on `date`.
    pub fn total(&self, date: Date) -> Option<u64> {
        self.totals.get(&date).copied()
    }
}

impl FrameObserver for AsnShareSeries {
    fn begin_frame(&mut self, _frame: &SweepFrame, _snap: &InternerSnap<'_>) {
        self.scratch.clear();
        self.scratch_total = 0;
    }

    fn observe_record(&mut self, rec: &RecordView<'_>, _snap: &InternerSnap<'_>) {
        let apex = rec.apex_addrs();
        if apex.is_empty() {
            return;
        }
        self.scratch_total += 1;
        let mut asns: Vec<Asn> = apex.asns().iter().filter_map(|a| *a).collect();
        asns.sort_unstable();
        asns.dedup();
        for a in asns {
            *self.scratch.entry(a).or_default() += 1;
        }
    }

    fn end_frame(&mut self, frame: &SweepFrame, _snap: &InternerSnap<'_>) {
        self.days
            .insert(frame.date, std::mem::take(&mut self.scratch));
        self.totals.insert(frame.date, self.scratch_total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_scan::{AddrInfo, DomainDay, SweepStats};

    fn rec(domain: &str, asns: &[u32]) -> DomainDay {
        DomainDay {
            domain: domain.parse().unwrap(),
            ns_names: vec![],
            ns_addrs: vec![],
            apex_addrs: asns
                .iter()
                .enumerate()
                .map(|(i, a)| AddrInfo {
                    ip: format!("10.0.0.{}", i + 1).parse().unwrap(),
                    country: None,
                    asn: Some(Asn(*a)),
                })
                .collect(),
        }
    }

    fn sweep(date: Date, domains: Vec<DomainDay>) -> DailySweep {
        DailySweep {
            date,
            domains,
            stats: SweepStats::default(),
            metrics: Default::default(),
        }
    }

    #[test]
    fn shares() {
        let d = Date::from_ymd(2022, 3, 8);
        let mut s = AsnShareSeries::new();
        s.observe(&sweep(
            d,
            vec![
                rec("a.ru", &[16509]),
                rec("b.ru", &[16509]),
                rec("c.ru", &[13335]),
                rec("d.ru", &[]), // unresolved: excluded from the total
            ],
        ));
        assert_eq!(s.total(d), Some(3));
        assert_eq!(s.count(d, Asn(16509)), 2);
        assert!((s.share(d, Asn(16509)).unwrap() - 66.666).abs() < 0.01);
        assert!((s.share(d, Asn(13335)).unwrap() - 33.333).abs() < 0.01);
        assert_eq!(s.share(d, Asn(1)), Some(0.0));
        assert_eq!(s.distinct_asns(), 2);
    }

    #[test]
    fn split_hosting_counts_in_both() {
        let d = Date::from_ymd(2022, 3, 8);
        let mut s = AsnShareSeries::new();
        s.observe(&sweep(d, vec![rec("a.ru", &[16509, 47846])]));
        assert_eq!(s.count(d, Asn(16509)), 1);
        assert_eq!(s.count(d, Asn(47846)), 1);
        assert_eq!(s.total(d), Some(1));
    }

    #[test]
    fn duplicate_asn_counts_once() {
        let d = Date::from_ymd(2022, 3, 8);
        let mut s = AsnShareSeries::new();
        s.observe(&sweep(d, vec![rec("a.ru", &[16509, 16509])]));
        assert_eq!(s.count(d, Asn(16509)), 1);
    }

    #[test]
    fn top_asns_on_last_date() {
        let mut s = AsnShareSeries::new();
        s.observe(&sweep(
            Date::from_ymd(2022, 3, 1),
            vec![rec("a.ru", &[1]), rec("b.ru", &[1]), rec("c.ru", &[2])],
        ));
        s.observe(&sweep(
            Date::from_ymd(2022, 4, 1),
            vec![rec("a.ru", &[2]), rec("b.ru", &[2]), rec("c.ru", &[1])],
        ));
        assert_eq!(s.top_asns(1), vec![Asn(2)]);
        assert_eq!(s.dates().count(), 2);
    }
}
