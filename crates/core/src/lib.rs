//! The paper's analysis pipeline — the primary contribution of
//! *"Where .ru? Assessing the Impact of Conflict on Russian Domain
//! Infrastructure"* (IMC 2022), reimplemented as a library.
//!
//! Input is measurement data only (daily sweeps from `ruwhere-scan`, CT
//! datasets, IP-scan snapshots, sanctions lists); no analysis reads
//! simulation ground truth. Each module reproduces one family of results:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`composition`] | Figures 1 and 5, §3.1 hosting-composition text |
//! | [`tld_dependency`] | Figures 2 and 3 |
//! | [`asn_share`] | Figure 4 |
//! | [`movement`] | Figures 6 and 7, §3.4 Cloudflare/Google text |
//! | [`ca_issuance`] | Figure 8, Table 1, §4 issuance-volume text |
//! | [`revocation`] | Table 2 |
//! | [`russian_ca`] | §4.3 |
//! | [`report`] | ASCII tables and TSV series for all of the above |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn_share;
pub mod ca_issuance;
pub mod composition;
pub mod dataset_stats;
pub mod engine;
pub mod experiments;
pub mod figures;
pub mod movement;
pub mod plots;
pub mod report;
pub mod revocation;
pub mod russian_ca;
pub mod tld_dependency;
pub mod transitions;

pub use asn_share::AsnShareSeries;
pub use ca_issuance::{CaIssuanceAnalysis, IssuanceTimeline, PeriodTable};
pub use composition::{Composition, CompositionCounts, CompositionSeries, InfraKind};
pub use dataset_stats::DatasetStats;
pub use engine::{AnalysisEngine, FrameObserver};
pub use experiments::{run_study, try_run_study, StudyConfig, StudyError, StudyResults};
pub use movement::{Movement, MovementReport};
pub use plots::{gnuplot_script, PlotSpec};
pub use report::{format_count, format_pct, Series, Table};
pub use revocation::{RevocationAnalysis, RevocationRow};
pub use russian_ca::RussianCaAnalysis;
pub use tld_dependency::{TldDependencySeries, TldUsageSeries};
pub use transitions::TransitionFlows;
