//! Composition transition flows between consecutive sweeps.
//!
//! Figure 1's aggregate curves hide *which* domains moved. This module
//! tracks per-domain composition across sweeps and counts transitions
//! (full→partial, partial→full, …) per date — the evidence behind §3.1's
//! "many domains with name servers partially outside Russia clearly
//! transition towards fully Russian" and the Netnod attribution in §3.2.

use crate::composition::{classify_record_view, Composition, InfraKind};
use crate::engine::FrameObserver;
use ruwhere_scan::DailySweep;
use ruwhere_store::{Interner, InternerSnap, RecordView, SweepFrame, Sym};
use ruwhere_types::Date;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A directed composition transition.
pub type Transition = (Composition, Composition);

/// Sentinel in `prev_codes` for "not present in the previous sweep".
const ABSENT: u8 = u8::MAX;

/// Per-date transition counts plus appearance/disappearance tallies.
///
/// Cross-sweep state is symbol-indexed, so one instance must see frames
/// from **one** interner (the engine contract); the row path keeps its
/// own persistent interner for exactly that reason.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TransitionFlows {
    kind_series: Option<InfraKind>,
    /// Previous sweep's composition code per domain symbol ([`ABSENT`] if
    /// the domain was not in that sweep), indexed by `Sym`.
    prev_codes: Vec<u8>,
    /// Symbols present in the previous sweep (for O(prev) clearing and the
    /// disappearance count).
    prev_syms: Vec<Sym>,
    prev_date: Option<Date>,
    /// date → (from, to) → count; only changed domains are recorded.
    flows: BTreeMap<Date, BTreeMap<(u8, u8), u64>>,
    appeared: BTreeMap<Date, u64>,
    disappeared: BTreeMap<Date, u64>,
    /// Per-frame scratch: `(sym, code)` per record of the current frame.
    cur: Vec<(Sym, u8)>,
    /// Interner behind the compatibility row path.
    row_interner: Interner,
}

fn code(c: Composition) -> u8 {
    match c {
        Composition::Full => 0,
        Composition::Partial => 1,
        Composition::Non => 2,
        Composition::Unknown => 3,
    }
}

fn uncode(v: u8) -> Composition {
    match v {
        0 => Composition::Full,
        1 => Composition::Partial,
        2 => Composition::Non,
        _ => Composition::Unknown,
    }
}

impl TransitionFlows {
    /// Track transitions of `kind`.
    pub fn new(kind: InfraKind) -> Self {
        TransitionFlows {
            kind_series: Some(kind),
            ..Self::default()
        }
    }

    /// Consume one row-form sweep, in date order (columnarised through the
    /// instance's own persistent interner; the fold itself is the
    /// [`FrameObserver`] impl).
    pub fn observe(&mut self, sweep: &DailySweep) {
        let interner = std::mem::take(&mut self.row_interner);
        let frame = SweepFrame::from_daily_sweep(sweep, &interner);
        crate::engine::drive_one(self, &frame, &interner);
        self.row_interner = interner;
    }

    /// Count of `from → to` transitions landing on `date`.
    pub fn count(&self, date: Date, from: Composition, to: Composition) -> u64 {
        self.flows
            .get(&date)
            .and_then(|m| m.get(&(code(from), code(to))))
            .copied()
            .unwrap_or(0)
    }

    /// All transitions on `date`, largest first.
    pub fn on(&self, date: Date) -> Vec<(Transition, u64)> {
        let Some(m) = self.flows.get(&date) else {
            return Vec::new();
        };
        let mut v: Vec<(Transition, u64)> = m
            .iter()
            .map(|(&(f, t), &n)| ((uncode(f), uncode(t)), n))
            .collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v
    }

    /// The date with the most transitions of `from → to` — e.g. the Netnod
    /// day for partial→full.
    pub fn peak(&self, from: Composition, to: Composition) -> Option<(Date, u64)> {
        self.flows
            .iter()
            .map(|(d, m)| (*d, m.get(&(code(from), code(to))).copied().unwrap_or(0)))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .filter(|(_, n)| *n > 0)
    }

    /// Total transitions of `from → to` across all dates.
    pub fn total(&self, from: Composition, to: Composition) -> u64 {
        self.flows
            .values()
            .filter_map(|m| m.get(&(code(from), code(to))))
            .sum()
    }

    /// New domains appearing on `date` (registrations since last sweep).
    pub fn appeared(&self, date: Date) -> u64 {
        self.appeared.get(&date).copied().unwrap_or(0)
    }

    /// Domains disappearing by `date` (lapsed since last sweep).
    pub fn disappeared(&self, date: Date) -> u64 {
        self.disappeared.get(&date).copied().unwrap_or(0)
    }

    /// Dates with transition data (all but the first sweep).
    pub fn dates(&self) -> impl Iterator<Item = Date> + '_ {
        self.flows.keys().copied()
    }
}

impl FrameObserver for TransitionFlows {
    fn begin_frame(&mut self, _frame: &SweepFrame, _snap: &InternerSnap<'_>) {
        self.cur.clear();
    }

    fn observe_record(&mut self, rec: &RecordView<'_>, snap: &InternerSnap<'_>) {
        let kind = self.kind_series.unwrap_or(InfraKind::NameServers);
        self.cur.push((
            rec.domain_sym(),
            code(classify_record_view(kind, rec, snap)),
        ));
    }

    fn end_frame(&mut self, frame: &SweepFrame, _snap: &InternerSnap<'_>) {
        if self.prev_date.is_some() {
            let mut flows: BTreeMap<(u8, u8), u64> = BTreeMap::new();
            let mut appeared = 0u64;
            let mut matched = 0u64;
            for &(sym, now) in &self.cur {
                let before = self.prev_codes.get(sym.index()).copied().unwrap_or(ABSENT);
                if before == ABSENT {
                    appeared += 1;
                } else {
                    matched += 1;
                    if before != now {
                        *flows.entry((before, now)).or_default() += 1;
                    }
                }
            }
            // Each sweep holds one record per domain, so the previous
            // domains not matched by the current sweep are exactly the
            // disappearances.
            let disappeared = self.prev_syms.len() as u64 - matched;
            self.flows.insert(frame.date, flows);
            self.appeared.insert(frame.date, appeared);
            self.disappeared.insert(frame.date, disappeared);
        }

        for &sym in &self.prev_syms {
            self.prev_codes[sym.index()] = ABSENT;
        }
        self.prev_syms.clear();
        for &(sym, now) in &self.cur {
            if self.prev_codes.len() <= sym.index() {
                self.prev_codes.resize(sym.index() + 1, ABSENT);
            }
            self.prev_codes[sym.index()] = now;
            self.prev_syms.push(sym);
        }
        self.prev_date = Some(frame.date);
        self.cur.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_scan::{AddrInfo, DomainDay, SweepStats};
    use ruwhere_types::Asn;

    fn rec(domain: &str, countries: &[&str]) -> DomainDay {
        DomainDay {
            domain: domain.parse().unwrap(),
            ns_names: vec![],
            ns_addrs: countries
                .iter()
                .enumerate()
                .map(|(i, cc)| AddrInfo {
                    ip: format!("10.0.0.{}", i + 1).parse().unwrap(),
                    country: Some(cc.parse().unwrap()),
                    asn: Some(Asn(1)),
                })
                .collect(),
            apex_addrs: vec![],
        }
    }

    fn sweep(date: Date, domains: Vec<DomainDay>) -> DailySweep {
        DailySweep {
            date,
            domains,
            stats: SweepStats::default(),
            metrics: Default::default(),
        }
    }

    #[test]
    fn flows_track_changes_only() {
        let mut flows = TransitionFlows::new(InfraKind::NameServers);
        let d1 = Date::from_ymd(2022, 3, 2);
        let d2 = Date::from_ymd(2022, 3, 3);
        flows.observe(&sweep(
            d1,
            vec![
                rec("a.ru", &["RU", "SE"]),
                rec("b.ru", &["RU", "SE"]),
                rec("c.ru", &["RU"]),
                rec("d.ru", &["US"]),
            ],
        ));
        // No transitions recorded for the first sweep.
        assert_eq!(flows.dates().count(), 0);

        flows.observe(&sweep(
            d2,
            vec![
                rec("a.ru", &["RU", "RU"]), // partial → full
                rec("b.ru", &["RU"]),       // partial → full
                rec("c.ru", &["RU"]),       // unchanged
                rec("e.ru", &["RU"]),       // appeared
                                            // d.ru disappeared
            ],
        ));
        assert_eq!(flows.count(d2, Composition::Partial, Composition::Full), 2);
        assert_eq!(flows.count(d2, Composition::Full, Composition::Partial), 0);
        assert_eq!(flows.appeared(d2), 1);
        assert_eq!(flows.disappeared(d2), 1);
        let on = flows.on(d2);
        assert_eq!(on.len(), 1);
        assert_eq!(on[0], ((Composition::Partial, Composition::Full), 2));
    }

    #[test]
    fn peak_finds_the_event_day() {
        let mut flows = TransitionFlows::new(InfraKind::NameServers);
        let days = [
            (
                Date::from_ymd(2022, 3, 1),
                vec![
                    rec("a.ru", &["RU", "SE"]),
                    rec("b.ru", &["RU", "SE"]),
                    rec("c.ru", &["RU", "SE"]),
                ],
            ),
            (
                Date::from_ymd(2022, 3, 2),
                vec![
                    rec("a.ru", &["RU", "SE"]),
                    rec("b.ru", &["RU", "SE"]),
                    rec("c.ru", &["RU"]),
                ],
            ),
            (
                Date::from_ymd(2022, 3, 3),
                vec![
                    rec("a.ru", &["RU"]),
                    rec("b.ru", &["RU"]),
                    rec("c.ru", &["RU"]),
                ],
            ),
        ];
        for (d, recs) in days {
            flows.observe(&sweep(d, recs));
        }
        let (peak_date, n) = flows.peak(Composition::Partial, Composition::Full).unwrap();
        assert_eq!(peak_date, Date::from_ymd(2022, 3, 3));
        assert_eq!(n, 2);
        assert_eq!(flows.total(Composition::Partial, Composition::Full), 3);
        assert!(flows.peak(Composition::Non, Composition::Partial).is_none());
    }
}
