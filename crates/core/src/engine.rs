//! Single-pass analysis engine over columnar sweep frames.
//!
//! The study used to walk every [`DailySweep`] once *per series* — eight
//! full passes over the same records per day. The engine inverts that:
//! each series implements [`FrameObserver`], and [`AnalysisEngine`]
//! makes **one** walk per [`SweepFrame`], dispatching every record view
//! to all registered observers under a single interner snapshot.
//!
//! # Contract
//!
//! * Every frame handed to one engine (and the observers behind it) must
//!   come from **one** [`Interner`] — symbols are only comparable within
//!   the interner that assigned them. `run_study` threads a single
//!   `Arc<Interner>` from the scanner through every observer.
//! * `begin_frame` → `observe_record`×n → `end_frame` is called in that
//!   order, records in frame (zone-snapshot) order, so observers may
//!   keep per-frame scratch without further synchronisation.
//!
//! The engine also counts record visits and observer dispatches, which
//! is how `repro --bench-sweep` substantiates the "≥2× fewer visits
//! than the eight-pass baseline" claim in EXPERIMENTS.md.
//!
//! [`DailySweep`]: ruwhere_scan::DailySweep

use ruwhere_store::{Interner, InternerSnap, RecordView, SweepFrame};

/// Per-record hooks a series implements to join the single-pass walk.
///
/// Only [`observe_record`] is required; the frame-boundary hooks default
/// to no-ops for observers without per-frame scratch.
///
/// [`observe_record`]: FrameObserver::observe_record
pub trait FrameObserver {
    /// Called once before the record walk of each frame.
    fn begin_frame(&mut self, _frame: &SweepFrame, _snap: &InternerSnap<'_>) {}

    /// Called for every record of the frame, in frame order.
    fn observe_record(&mut self, rec: &RecordView<'_>, snap: &InternerSnap<'_>);

    /// Called once after the record walk of each frame.
    fn end_frame(&mut self, _frame: &SweepFrame, _snap: &InternerSnap<'_>) {}
}

/// Drives all observers through a frame in one record walk, counting
/// the work it does.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisEngine {
    frames: u64,
    record_visits: u64,
    observer_dispatches: u64,
}

impl AnalysisEngine {
    /// A fresh engine with zeroed counters.
    pub fn new() -> AnalysisEngine {
        AnalysisEngine::default()
    }

    /// Walk `frame` once, dispatching each record to every observer.
    ///
    /// Takes one interner snapshot for the whole walk; `interner` must be
    /// the interner that built `frame` (see the module docs).
    pub fn observe_frame(
        &mut self,
        frame: &SweepFrame,
        interner: &Interner,
        observers: &mut [&mut dyn FrameObserver],
    ) {
        let snap = interner.snapshot();
        self.frames += 1;
        for obs in observers.iter_mut() {
            obs.begin_frame(frame, &snap);
        }
        for rec in frame.records() {
            self.record_visits += 1;
            self.observer_dispatches += observers.len() as u64;
            for obs in observers.iter_mut() {
                obs.observe_record(&rec, &snap);
            }
        }
        for obs in observers.iter_mut() {
            obs.end_frame(frame, &snap);
        }
    }

    /// Frames walked so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Records visited so far — one per record per frame, *not* per
    /// observer. The multi-pass baseline visits `observers × records`.
    pub fn record_visits(&self) -> u64 {
        self.record_visits
    }

    /// Observer dispatches so far (`record_visits × observers`): the same
    /// per-record work the old design did, minus the extra walks.
    pub fn observer_dispatches(&self) -> u64 {
        self.observer_dispatches
    }

    /// Fold counters from another engine (used when merging study stats).
    pub fn absorb(&mut self, other: &AnalysisEngine) {
        self.frames += other.frames;
        self.record_visits += other.record_visits;
        self.observer_dispatches += other.observer_dispatches;
    }
}

/// Drive a single observer through one frame — the compatibility shim
/// behind every series' row-level `observe(&DailySweep)` path, so the
/// row and frame paths share one fold implementation.
pub(crate) fn drive_one<O: FrameObserver + ?Sized>(
    obs: &mut O,
    frame: &SweepFrame,
    interner: &Interner,
) {
    let snap = interner.snapshot();
    obs.begin_frame(frame, &snap);
    for rec in frame.records() {
        obs.observe_record(&rec, &snap);
    }
    obs.end_frame(frame, &snap);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        begins: u32,
        records: u32,
        ends: u32,
    }

    impl FrameObserver for Counter {
        fn begin_frame(&mut self, _frame: &SweepFrame, _snap: &InternerSnap<'_>) {
            self.begins += 1;
        }
        fn observe_record(&mut self, _rec: &RecordView<'_>, _snap: &InternerSnap<'_>) {
            self.records += 1;
        }
        fn end_frame(&mut self, _frame: &SweepFrame, _snap: &InternerSnap<'_>) {
            self.ends += 1;
        }
    }

    #[test]
    fn one_walk_dispatches_to_all_observers() {
        use ruwhere_store::FrameBuilder;
        let interner = Interner::new();
        let mut b = FrameBuilder::new("2022-03-01".parse().expect("date"));
        for name in ["a.ru", "b.ru", "c.ru"] {
            b.begin_record(interner.intern_name(&name.parse().expect("domain")));
            b.end_record();
        }
        let frame = b.finish(Default::default(), Default::default());

        let mut engine = AnalysisEngine::new();
        let (mut x, mut y) = (Counter::default(), Counter::default());
        engine.observe_frame(&frame, &interner, &mut [&mut x, &mut y]);

        for c in [&x, &y] {
            assert_eq!((c.begins, c.records, c.ends), (1, 3, 1));
        }
        assert_eq!(engine.frames(), 1);
        assert_eq!(engine.record_visits(), 3, "one visit per record, shared");
        assert_eq!(engine.observer_dispatches(), 6);

        let mut total = AnalysisEngine::new();
        total.absorb(&engine);
        total.absorb(&engine);
        assert_eq!(total.record_visits(), 6);
    }
}
