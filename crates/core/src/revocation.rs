//! Revocation analysis (Table 2).
//!
//! > "we tallied the revocations for certificates securing .ru and .рф
//! > domains across all CAs whose validity ended after February 25, 2022
//! > … all CAs have significantly higher revocation rates for sanctioned
//! > domains than other .ru and .рф domains." — §4.2

use ruwhere_ct::OcspResponder;
use ruwhere_registry::SanctionsList;
use ruwhere_scan::CertDataset;
use ruwhere_types::Date;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Validity cutoff: certificates whose validity ended on or before this
/// date are excluded (paper: February 25, 2022).
pub const VALIDITY_CUTOFF: Date = Date::from_ymd(2022, 2, 25);

/// One CA's row in the Table 2 layout.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RevocationRow {
    /// Issuer organization.
    pub org: String,
    /// Certificates issued (validity ending after the cutoff).
    pub issued: u64,
    /// Of those, revoked.
    pub revoked: u64,
    /// Certificates covering sanctioned domains.
    pub sanctioned_issued: u64,
    /// Of those, revoked.
    pub sanctioned_revoked: u64,
}

impl RevocationRow {
    /// Overall revocation rate (%).
    pub fn rate(&self) -> f64 {
        100.0 * self.revoked as f64 / self.issued.max(1) as f64
    }

    /// Sanctioned revocation rate (%).
    pub fn sanctioned_rate(&self) -> f64 {
        100.0 * self.sanctioned_revoked as f64 / self.sanctioned_issued.max(1) as f64
    }
}

/// The full revocation analysis.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RevocationAnalysis {
    rows: BTreeMap<String, RevocationRow>,
}

impl RevocationAnalysis {
    /// Join the certificate dataset with CRL/OCSP state and the sanctions
    /// list, as of `as_of`.
    pub fn new(
        ds: &CertDataset,
        ocsp: &OcspResponder,
        sanctions: &SanctionsList,
        as_of: Date,
    ) -> Self {
        let mut rows: BTreeMap<String, RevocationRow> = BTreeMap::new();
        for r in &ds.records {
            if r.not_after <= VALIDITY_CUTOFF {
                continue;
            }
            let row = rows
                .entry(r.issuer_org.clone())
                .or_insert_with(|| RevocationRow {
                    org: r.issuer_org.clone(),
                    ..RevocationRow::default()
                });
            let sanctioned = r.domains.iter().any(|d| sanctions.is_sanctioned(d, as_of));
            let revoked = ocsp
                .crl(&r.issuer_org)
                .is_some_and(|crl| crl.is_revoked(r.serial, as_of));
            row.issued += 1;
            if revoked {
                row.revoked += 1;
            }
            if sanctioned {
                row.sanctioned_issued += 1;
                if revoked {
                    row.sanctioned_revoked += 1;
                }
            }
        }
        RevocationAnalysis { rows }
    }

    /// All rows, keyed by organization.
    pub fn rows(&self) -> &BTreeMap<String, RevocationRow> {
        &self.rows
    }

    /// The `n` CAs with the most revocations (Table 2's "top five CAs with
    /// the most revocations").
    pub fn top_by_revocations(&self, n: usize) -> Vec<&RevocationRow> {
        let mut v: Vec<&RevocationRow> = self.rows.values().collect();
        v.sort_by(|a, b| b.revoked.cmp(&a.revoked).then(a.org.cmp(&b.org)));
        v.into_iter().take(n).collect()
    }

    /// CAs that revoked 100 % of their sanctioned-domain certificates
    /// (DigiCert and Sectigo in the paper).
    pub fn full_sanctioned_revokers(&self) -> Vec<&str> {
        self.rows
            .values()
            .filter(|r| r.sanctioned_issued > 0 && r.sanctioned_issued == r.sanctioned_revoked)
            .map(|r| r.org.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_ct::revocation::RevocationReason;
    use ruwhere_registry::SanctionSource;
    use ruwhere_scan::CertRecord;

    fn record(org: &str, serial: u64, domain: &str, not_after: Date) -> CertRecord {
        CertRecord {
            date: Date::from_ymd(2022, 1, 10),
            issuer_org: org.into(),
            issuer_cn: format!("{org} CA"),
            serial,
            domains: vec![domain.parse().unwrap()],
            not_after,
        }
    }

    fn setup() -> (CertDataset, OcspResponder, SanctionsList) {
        let ds = CertDataset {
            records: vec![
                record("DigiCert", 1, "bank.ru", Date::from_ymd(2022, 12, 1)),
                record("DigiCert", 2, "shop.ru", Date::from_ymd(2022, 12, 1)),
                record("DigiCert", 3, "old.ru", Date::from_ymd(2022, 2, 1)), // expired: excluded
                record("Let's Encrypt", 1, "bank.ru", Date::from_ymd(2022, 4, 1)),
                record("Let's Encrypt", 2, "blog.ru", Date::from_ymd(2022, 4, 1)),
            ],
        };
        let mut ocsp = OcspResponder::new();
        ocsp.register_issuer("DigiCert", 3);
        ocsp.register_issuer("Let's Encrypt", 2);
        ocsp.crl_mut("DigiCert").revoke(
            1,
            Date::from_ymd(2022, 3, 11),
            RevocationReason::PrivilegeWithdrawn,
        );
        let mut sanctions = SanctionsList::new();
        sanctions.add(
            "bank.ru".parse().unwrap(),
            SanctionSource::UsOfacSdn,
            Date::from_ymd(2022, 2, 25),
        );
        (ds, ocsp, sanctions)
    }

    #[test]
    fn table2_joins() {
        let (ds, ocsp, sanctions) = setup();
        let a = RevocationAnalysis::new(&ds, &ocsp, &sanctions, Date::from_ymd(2022, 5, 15));
        let dc = &a.rows()["DigiCert"];
        assert_eq!(dc.issued, 2, "expired cert excluded");
        assert_eq!(dc.revoked, 1);
        assert_eq!(dc.sanctioned_issued, 1);
        assert_eq!(dc.sanctioned_revoked, 1);
        assert!((dc.rate() - 50.0).abs() < 1e-9);
        assert!((dc.sanctioned_rate() - 100.0).abs() < 1e-9);

        let le = &a.rows()["Let's Encrypt"];
        assert_eq!(le.issued, 2);
        assert_eq!(le.revoked, 0);
        assert_eq!(le.sanctioned_issued, 1);
        assert_eq!(le.sanctioned_revoked, 0);
    }

    #[test]
    fn rankings_and_full_revokers() {
        let (ds, ocsp, sanctions) = setup();
        let a = RevocationAnalysis::new(&ds, &ocsp, &sanctions, Date::from_ymd(2022, 5, 15));
        let top = a.top_by_revocations(1);
        assert_eq!(top[0].org, "DigiCert");
        assert_eq!(a.full_sanctioned_revokers(), vec!["DigiCert"]);
    }

    #[test]
    fn as_of_respects_revocation_dates() {
        let (ds, ocsp, sanctions) = setup();
        // Before the revocation date nothing is revoked.
        let a = RevocationAnalysis::new(&ds, &ocsp, &sanctions, Date::from_ymd(2022, 3, 1));
        assert_eq!(a.rows()["DigiCert"].revoked, 0);
    }
}
