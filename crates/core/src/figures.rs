//! Per-figure / per-table renderers: map [`StudyResults`] to the exact
//! artifacts the paper reports, with the paper's own numbers alongside for
//! comparison (EXPERIMENTS.md is generated from these).

use crate::ca_issuance::IssuanceTimeline;
use crate::experiments::StudyResults;
use crate::movement::MovementReport;
use crate::report::{format_count, format_pct, Series, Table};
use ruwhere_types::{Asn, Date, Period};

/// §2 dataset statistics vs the paper.
pub fn dataset_table(r: &StudyResults) -> Table {
    let mut t = Table::new(
        "§2 dataset statistics (paper: 11.7M unique names; 13.3k hosting / 9.5k DNS ASNs — scale with 1:N)",
        &["metric", "measured", "paper (1:1)"],
    );
    t.row([
        "unique domain names".to_owned(),
        r.dataset.unique_domains().to_string(),
        "11.7M".into(),
    ]);
    t.row([
        "hosting ASNs".to_owned(),
        r.dataset.hosting_asns().to_string(),
        "13.3k".into(),
    ]);
    t.row([
        "authoritative-DNS ASNs".to_owned(),
        r.dataset.dns_asns().to_string(),
        "9.5k".into(),
    ]);
    t.row([
        "sweeps / records".to_owned(),
        format!("{} / {}", r.dataset.sweeps(), r.dataset.records()),
        "1803 daily".into(),
    ]);
    t.row([
        "partial (gap) sweeps".to_owned(),
        r.dataset.partial_sweeps().to_string(),
        "1 (2021-03-22, fn. 8)".into(),
    ]);
    t.row([
        "query failures (timeout/servfail/lame)".to_owned(),
        format!(
            "{} / {} / {}",
            r.dataset.timeouts(),
            r.dataset.servfails(),
            r.dataset.lame()
        ),
        "—".into(),
    ]);
    t.row([
        "retry budget spent".to_owned(),
        r.dataset.retries_spent().to_string(),
        "—".into(),
    ]);
    t
}

/// Figure 1: country composition of DNS (NS) infrastructure over time.
pub fn fig1_series(r: &StudyResults) -> Series {
    let mut s = Series::new(
        "Figure 1: NS country composition of .ru/.рф domains",
        &["date", "full_pct", "partial_pct", "non_pct", "domains"],
    );
    for (date, c) in r.ns_composition.rows() {
        s.push([
            date.to_string(),
            format!("{:.2}", c.pct_full()),
            format!("{:.2}", c.pct_partial()),
            format!("{:.2}", c.pct_non()),
            c.total().to_string(),
        ]);
    }
    s
}

/// Figure 1 headline numbers vs the paper.
pub fn fig1_summary(r: &StudyResults) -> Table {
    let mut t = Table::new(
        "Figure 1 summary: NS composition (paper: full 67.0% → 73.9%)",
        &["metric", "measured", "paper"],
    );
    if let Some(((d0, c0), (d1, c1))) = r.ns_composition.extrema() {
        t.row([
            format!("full% at {d0}"),
            format!("{:.1}%", c0.pct_full()),
            "67.0%".into(),
        ]);
        t.row([
            format!("full% at {d1}"),
            format!("{:.1}%", c1.pct_full()),
            "73.9%".into(),
        ]);
        t.row([
            "net change (pts)".into(),
            format!("{:+.1}", c1.pct_full() - c0.pct_full()),
            "+6.9".into(),
        ]);
    }
    t
}

/// §3.1 text: hosting composition at study start.
pub fn hosting_summary(r: &StudyResults) -> Table {
    let mut t = Table::new(
        "§3.1 hosting composition (paper at 2017-06-18: 71.0% / 0.19% / 28.81%)",
        &["date", "full", "partial", "non"],
    );
    if let Some(((d0, c0), (d1, c1))) = r.hosting_composition.extrema() {
        for (d, c) in [(d0, c0), (d1, c1)] {
            t.row([
                d.to_string(),
                format_pct(c.pct_full()),
                format_pct(c.pct_partial()),
                format_pct(c.pct_non()),
            ]);
        }
    }
    t
}

/// Figure 2: TLD-dependency composition series.
pub fn fig2_series(r: &StudyResults) -> Series {
    let mut s = Series::new(
        "Figure 2: NS TLD-dependency composition",
        &["date", "full_pct", "partial_pct", "non_pct"],
    );
    for (date, c) in r.tld_dependency.rows() {
        s.push([
            date.to_string(),
            format!("{:.2}", c.pct_full()),
            format!("{:.2}", c.pct_partial()),
            format!("{:.2}", c.pct_non()),
        ]);
    }
    s
}

/// Figure 2 net changes vs the paper.
pub fn fig2_summary(r: &StudyResults) -> Table {
    let mut t = Table::new(
        "Figure 2 summary: TLD-dependency net change (paper: full −6.3 pts, partial +7.9 pts)",
        &["metric", "measured", "paper"],
    );
    if let Some((df, dp, dn)) = r.tld_dependency.net_change() {
        t.row(["full (pts)".to_owned(), format!("{df:+.1}"), "-6.3".into()]);
        t.row([
            "partial (pts)".to_owned(),
            format!("{dp:+.1}"),
            "+7.9".into(),
        ]);
        t.row(["non (pts)".to_owned(), format!("{dn:+.1}"), "≈-1.6".into()]);
    }
    t
}

/// Figure 3: top-5 NS TLD usage over time.
pub fn fig3_series(r: &StudyResults) -> Series {
    let tlds = r.tld_usage.top_tlds(5);
    let mut cols: Vec<&str> = vec!["date"];
    let tld_cols: Vec<String> = tlds.iter().map(|t| t.replace("xn--p1ai", "рф")).collect();
    for t in &tld_cols {
        cols.push(t);
    }
    let mut s = Series::new("Figure 3: top-5 NS TLD usage (% of domains)", &cols);
    let dates: Vec<Date> = r.tld_usage.dates().collect();
    for d in dates {
        let mut row = vec![d.to_string()];
        for t in &tlds {
            row.push(format!("{:.2}", r.tld_usage.share(d, t).unwrap_or(0.0)));
        }
        s.push(row);
    }
    s
}

/// Figure 3 endpoint shares vs the paper.
pub fn fig3_summary(r: &StudyResults) -> Table {
    let mut t = Table::new(
        "Figure 3 summary: NS TLD usage at study end",
        &["tld", "measured", "paper"],
    );
    let last = r.tld_usage.dates().last();
    let paper = [
        ("ru", "78.3%"),
        ("com", "24.7%"),
        ("pro", "12.4%"),
        ("org", "9.2%"),
        ("net", "7.3%"),
    ];
    if let Some(d) = last {
        for (tld, expected) in paper {
            t.row([
                format!(".{tld}"),
                format_pct(r.tld_usage.share(d, tld).unwrap_or(0.0)),
                expected.to_owned(),
            ]);
        }
        t.row([
            "distinct TLDs".to_owned(),
            r.tld_usage.distinct_tlds().to_string(),
            "270".into(),
        ]);
    }
    t
}

/// The ASNs Figure 4 plots.
pub fn fig4_asns() -> Vec<(Asn, &'static str)> {
    vec![
        (Asn::AMAZON, "Amazon (US)"),
        (Asn::SEDO, "Sedo (DE)"),
        (Asn::TIMEWEB, "Timeweb (RU)"),
        (Asn::CLOUDFLARE, "Cloudflare (US)"),
        (Asn::REG_RU, "REG.RU"),
        (Asn::BEGET, "Beget (RU)"),
        (Asn::SERVEREL, "Serverel (NL)"),
        (Asn::RU_CENTER, "RU-CENTER"),
    ]
}

/// Figure 4: hosting shares of the named networks (2022 window only, as in
/// the paper).
pub fn fig4_series(r: &StudyResults) -> Series {
    let asns = fig4_asns();
    let mut cols: Vec<&str> = vec!["date"];
    for (_, label) in &asns {
        cols.push(label);
    }
    let mut s = Series::new("Figure 4: hosting-network shares (%)", &cols);
    let window_start = Date::from_ymd(2022, 2, 22);
    for d in r.asn_share.dates().filter(|d| *d >= window_start) {
        let mut row = vec![d.to_string()];
        for (asn, _) in &asns {
            row.push(format!("{:.2}", r.asn_share.share(d, *asn).unwrap_or(0.0)));
        }
        s.push(row);
    }
    s
}

/// Figure 5: sanctioned-domain NS composition series.
pub fn fig5_series(r: &StudyResults) -> Series {
    let mut s = Series::new(
        "Figure 5: sanctioned domains' NS country composition",
        &["date", "full_pct", "partial_pct", "non_pct", "domains"],
    );
    for (date, c) in r.sanctioned_ns.rows() {
        if date < Date::from_ymd(2022, 2, 1) {
            continue;
        }
        s.push([
            date.to_string(),
            format!("{:.2}", c.pct_full()),
            format!("{:.2}", c.pct_partial()),
            format!("{:.2}", c.pct_non()),
            c.total().to_string(),
        ]);
    }
    s
}

/// Figure 5 key dates vs the paper.
pub fn fig5_summary(r: &StudyResults) -> Table {
    let mut t = Table::new(
        "Figure 5 summary (paper: 2022-02-24 → 34.0% partial, 5.2% non; 2022-03-04 → 93.8% full)",
        &["date", "full", "partial", "non", "paper"],
    );
    for (date, expected) in [
        (Date::from_ymd(2022, 2, 24), "34.0% partial / 5.2% non"),
        (Date::from_ymd(2022, 3, 4), "93.8% full"),
    ] {
        if let Some(c) = r.sanctioned_ns.at(date) {
            t.row([
                date.to_string(),
                format_pct(c.pct_full()),
                format_pct(c.pct_partial()),
                format_pct(c.pct_non()),
                expected.to_owned(),
            ]);
        }
    }
    t
}

/// Movement report (Figures 6/7 or §3.4 text) between two retained sweeps.
pub fn movement_table(
    r: &StudyResults,
    asn: Asn,
    label: &str,
    date_a: Date,
    date_b: Date,
    paper: &str,
) -> Option<(Table, MovementReport)> {
    let a = r.sweep_at(date_a)?;
    let b = r.sweep_at(date_b)?;
    let report = MovementReport::analyze_frames(a, b, asn, &r.interner);
    let mut t = Table::new(
        format!("{label}: movement in {asn} between {date_a} and {date_b} (paper: {paper})"),
        &["metric", "count", "pct of original"],
    );
    let orig = report.original().max(1);
    let pct = |n: usize| format!("{:.1}%", 100.0 * n as f64 / orig as f64);
    t.row([
        "in ASN at start".to_owned(),
        report.original().to_string(),
        "100.0%".into(),
    ]);
    t.row([
        "remained".to_owned(),
        report.remained().to_string(),
        pct(report.remained()),
    ]);
    t.row([
        "relocated out".to_owned(),
        report.relocated().to_string(),
        pct(report.relocated()),
    ]);
    t.row([
        "gone/unresolved".to_owned(),
        report.lost().to_string(),
        pct(report.lost()),
    ]);
    t.row([
        "relocated in".to_owned(),
        report.relocated_in.len().to_string(),
        String::new(),
    ]);
    t.row([
        "newly registered in".to_owned(),
        report.newly_registered.len().to_string(),
        String::new(),
    ]);
    // Top destinations.
    let mut dests: Vec<(Asn, usize)> = report.destinations().into_iter().collect();
    dests.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (dest, n) in dests.into_iter().take(3) {
        t.row([format!("→ {dest}"), n.to_string(), pct(n)]);
    }
    Some((t, report))
}

/// Figure 8: issuance timelines for the top-10 CAs, rendered as one row per
/// CA with first/last issuance and a stop marker.
pub fn fig8_table(r: &StudyResults) -> (Table, IssuanceTimeline) {
    let timeline = r.issuance.timeline(10);
    let horizon = ruwhere_types::CERT_WINDOW_END;
    let mut t = Table::new(
        "Figure 8: CA issuance timelines (paper: 6 of top 10 stop; LE/GlobalSign/Google continue)",
        &["issuer", "first", "last", "issue-days", "stopped?"],
    );
    for org in r.issuance.top_orgs(10) {
        let days = timeline.days.get(&org).cloned().unwrap_or_default();
        let first = days
            .iter()
            .next()
            .map(|d| d.to_string())
            .unwrap_or_default();
        let last = days
            .iter()
            .next_back()
            .map(|d| d.to_string())
            .unwrap_or_default();
        let stopped = r.issuance.effectively_stopped(&org, horizon);
        let _ = &horizon;
        t.row([
            org.clone(),
            first,
            last,
            days.len().to_string(),
            if stopped {
                "STOPPED".into()
            } else {
                "active".to_owned()
            },
        ]);
    }
    (t, timeline)
}

/// Table 1: issuance per period.
pub fn table1(r: &StudyResults) -> Table {
    let pt = r.issuance.period_table(3);
    let mut t = Table::new(
        "Table 1: issuing activity per period (paper: LE 91.58% → 98.06% → 99.23%)",
        &["period", "issuer", "# certs", "(%)"],
    );
    for period in Period::ALL {
        if let Some((rows, other, other_pct, _total)) = pt.periods.get(&period) {
            for row in rows {
                t.row([
                    period.to_string(),
                    row.org.clone(),
                    format_count(row.count),
                    format_pct(row.pct),
                ]);
            }
            t.row([
                period.to_string(),
                "Other CAs".to_owned(),
                format_count(*other),
                format_pct(*other_pct),
            ]);
        }
    }
    t
}

/// §4 text: certificates per day per period.
pub fn cert_volume_table(r: &StudyResults) -> Table {
    let mut t = Table::new(
        "§4: certificate volume per day (paper: 130k / 115k / 115k, scaled by the world's scale factor)",
        &["period", "certs/day (measured)"],
    );
    let windows = [
        (
            Period::PreConflict,
            ruwhere_types::CERT_WINDOW_START,
            Date::from_ymd(2022, 2, 23),
        ),
        (
            Period::PreSanctions,
            Date::from_ymd(2022, 2, 24),
            Date::from_ymd(2022, 3, 26),
        ),
        (
            Period::PostSanctions,
            Date::from_ymd(2022, 3, 27),
            ruwhere_types::CERT_WINDOW_END,
        ),
    ];
    for (p, from, to) in windows {
        t.row([
            p.to_string(),
            format!("{:.0}", r.issuance.daily_volume(from, to)),
        ]);
    }
    t
}

/// Table 2: revocations by the top-5 CAs.
pub fn table2(r: &StudyResults) -> Table {
    let mut t = Table::new(
        "Table 2: revocation activity (paper: DigiCert 308/308 and Sectigo 164/164 sanctioned revoked)",
        &["issuer", "issued", "revoked", "rate", "sanc. issued", "sanc. revoked", "sanc. rate"],
    );
    for row in r.revocation.top_by_revocations(5) {
        t.row([
            row.org.clone(),
            format_count(row.issued),
            format_count(row.revoked),
            format_pct(row.rate()),
            row.sanctioned_issued.to_string(),
            row.sanctioned_revoked.to_string(),
            format_pct(row.sanctioned_rate()),
        ]);
    }
    t
}

/// §4.3: the Russian Trusted Root CA.
pub fn russian_ca_table(r: &StudyResults) -> Option<Table> {
    let a = r.russian_ca.as_ref()?;
    let mut t = Table::new(
        "§4.3: Russian Trusted Root CA (paper: 170 certs; 130 .ru + 2 .рф; 36 sanctioned = 34%)",
        &["metric", "measured", "paper"],
    );
    t.row([
        "unique certs in scans".to_owned(),
        a.unique_certs.to_string(),
        "170".into(),
    ]);
    t.row([
        ".ru domains".to_owned(),
        a.domains_by_tld.get("ru").copied().unwrap_or(0).to_string(),
        "130".into(),
    ]);
    t.row([
        ".рф domains".to_owned(),
        a.domains_by_tld
            .get("xn--p1ai")
            .copied()
            .unwrap_or(0)
            .to_string(),
        "2".into(),
    ]);
    t.row([
        "sanctioned covered".to_owned(),
        format!(
            "{} ({:.0}%)",
            a.sanctioned_covered,
            100.0 * a.sanctioned_coverage()
        ),
        "36 (34%)".into(),
    ]);
    t.row(["in CT logs".to_owned(), a.in_ct.to_string(), "0".into()]);
    t.row([
        "other-CA certs in scan".to_owned(),
        a.other_ca_certs.to_string(),
        ">800k issued".into(),
    ]);
    Some(t)
}

/// §3.4 one-line summaries for the four named providers.
pub fn provider_actions_table(r: &StudyResults) -> Table {
    let mut t = Table::new(
        "§3.4: provider actions (movement between announcement date and study end)",
        &[
            "provider",
            "original",
            "remained",
            "relocated",
            "in (reloc+new)",
            "paper",
        ],
    );
    let end = r.retained.keys().next_back().copied();
    let Some(end) = end else { return t };
    let cases = [
        (
            Asn::AMAZON,
            "Amazon",
            Date::from_ymd(2022, 3, 8),
            ">50% relocate; 43% remain; 574 new + 988 reloc in",
        ),
        (
            Asn::SEDO,
            "Sedo",
            Date::from_ymd(2022, 3, 8),
            "98% relocate; 2.7k remain; 311 in",
        ),
        (
            Asn::CLOUDFLARE,
            "Cloudflare",
            Date::from_ymd(2022, 3, 7),
            "94% remain; 34k in",
        ),
        (
            Asn::GOOGLE,
            "Google",
            Date::from_ymd(2022, 3, 10),
            "57.1% relocate (75.2% intra-Google)",
        ),
    ];
    for (asn, name, start, paper) in cases {
        let (Some(a), Some(b)) = (r.sweep_at(start), r.sweep_at(end)) else {
            continue;
        };
        let report = MovementReport::analyze_frames(a, b, asn, &r.interner);
        let orig = report.original().max(1);
        let mut relocated = format!(
            "{} ({:.0}%)",
            report.relocated(),
            100.0 * report.relocated() as f64 / orig as f64
        );
        if asn == Asn::GOOGLE && report.relocated() > 0 {
            // Footnote 11: most Google movers stayed inside Google.
            relocated.push_str(&format!(
                " [{:.0}% intra-Google]",
                100.0 * report.relocated_share_to(Asn::GOOGLE_CLOUD)
            ));
        }
        t.row([
            name.to_owned(),
            report.original().to_string(),
            format!(
                "{} ({:.0}%)",
                report.remained(),
                100.0 * report.remained() as f64 / orig as f64
            ),
            relocated,
            format!(
                "{}+{}",
                report.relocated_in.len(),
                report.newly_registered.len()
            ),
            paper.to_owned(),
        ]);
    }
    t
}

/// §6 "Discussion": the paper's three headline findings, computed from the
/// measurement data.
pub fn discussion_table(r: &StudyResults) -> Table {
    let mut t = Table::new(
        "§6 discussion digest",
        &["finding", "measured", "paper's framing"],
    );
    // 1. High pre-existing domestic provisioning; changes are modest.
    if let Some(((_, h0), _)) = r.hosting_composition.extrema() {
        t.row([
            "domestic hosting pre-conflict".to_owned(),
            format_pct(h0.pct_full()),
            "\"vast majority (≈70%) fully hosted in Russia\"".into(),
        ]);
    }
    if let Some(((_, n0), (_, n1))) = r.ns_composition.extrema() {
        t.row([
            "NS composition net change".to_owned(),
            format!("{:+.1} pts", n1.pct_full() - n0.pct_full()),
            "\"changes in single digit percentages … modest effects\"".into(),
        ]);
    }
    // 2. Impacted sites quickly found new providers: Sedo leavers that
    //    still resolve at the end of the study.
    if let (Some(a), Some(b)) = (
        r.sweep_at(ruwhere_types::Date::from_ymd(2022, 3, 8)),
        r.final_sweep(),
    ) {
        let sedo = MovementReport::analyze_frames(a, b, Asn::SEDO, &r.interner);
        let moved = sedo.relocated() + sedo.lost();
        if moved > 0 {
            let recovered = 100.0 * sedo.relocated() as f64 / moved as f64;
            t.row([
                "evicted Sedo customers re-provisioned".to_owned(),
                format_pct(recovered),
                "\"virtually all of the impacted sites quickly found new providers\"".into(),
            ]);
        }
    }
    // 3. Certificate issuance is the one area of significant exposure.
    let totals = r.issuance.totals();
    let le = totals.get("Let's Encrypt").copied().unwrap_or(0);
    let total: u64 = totals.values().sum();
    if total > 0 {
        t.row([
            "Let's Encrypt share of window issuance".to_owned(),
            format_pct(100.0 * le as f64 / total as f64),
            "\"near-complete control Let's Encrypt holds … is startling\"".into(),
        ]);
    }
    if let Some(a) = &r.russian_ca {
        t.row([
            "domestic CA certificates actually served".to_owned(),
            a.unique_certs.to_string(),
            "\"yet to have a significant impact\" (170 certs)".into(),
        ]);
    }
    t
}

/// §3.1/§3.2 narrative: the largest partial→full transition day — the
/// Netnod attribution — plus the surrounding flow structure.
pub fn transition_table(r: &StudyResults) -> Table {
    use crate::composition::Composition as C;
    let mut t = Table::new(
        "Composition transition flows (paper: partial→full spike on 2022-03-03, Netnod)",
        &["metric", "value"],
    );
    if let Some((date, n)) = r.transitions.peak(C::Partial, C::Full) {
        t.row([
            "peak partial→full day".to_owned(),
            format!("{date} ({n} domains)"),
        ]);
    }
    for (from, to, label) in [
        (C::Partial, C::Full, "total partial→full"),
        (C::Non, C::Full, "total non→full"),
        (C::Full, C::Partial, "total full→partial"),
        (C::Full, C::Non, "total full→non"),
    ] {
        t.row([label.to_owned(), r.transitions.total(from, to).to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_study, StudyConfig};

    // One shared tiny study for all renderer tests (building it is the
    // expensive part).
    fn study() -> &'static StudyResults {
        use std::sync::OnceLock;
        static STUDY: OnceLock<StudyResults> = OnceLock::new();
        STUDY.get_or_init(|| {
            let mut cfg = StudyConfig::test_schedule();
            cfg.daily_from = Date::from_ymd(2022, 2, 22);
            run_study(&cfg)
        })
    }

    #[test]
    fn all_renderers_produce_output() {
        let r = study();
        assert!(!fig1_series(r).is_empty());
        assert!(!fig1_summary(r).is_empty());
        assert!(!hosting_summary(r).is_empty());
        assert!(!fig2_series(r).is_empty());
        assert!(!fig2_summary(r).is_empty());
        assert!(!fig3_series(r).is_empty());
        assert!(!fig3_summary(r).is_empty());
        assert!(!fig4_series(r).is_empty());
        assert!(!fig5_series(r).is_empty());
        assert!(!fig5_summary(r).is_empty());
        let (fig8, _) = fig8_table(r);
        assert!(!fig8.is_empty());
        assert!(!table1(r).is_empty());
        assert!(!table2(r).is_empty());
        assert!(!cert_volume_table(r).is_empty());
        assert!(russian_ca_table(r).is_some());
        assert!(!provider_actions_table(r).is_empty());
        assert!(!dataset_table(r).is_empty());
        assert!(discussion_table(r).len() >= 4);
    }

    #[test]
    fn movement_table_needs_retained_sweeps() {
        let r = study();
        let end = *r.retained.keys().next_back().unwrap();
        let got = movement_table(
            r,
            Asn::SEDO,
            "Figure 7",
            Date::from_ymd(2022, 3, 8),
            end,
            "98% relocate",
        );
        assert!(got.is_some());
        let missing = movement_table(r, Asn::SEDO, "x", Date::from_ymd(2021, 1, 1), end, "");
        assert!(missing.is_none());
    }
}
