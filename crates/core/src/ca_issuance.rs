//! CA issuance analysis (Figure 8, Table 1, §4 volume text).

use ruwhere_scan::CertDataset;
use ruwhere_types::{Date, Period};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-CA issuance-day sets (Figure 8: "a green dot indicates the CA
/// issued at least one certificate on the day").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IssuanceTimeline {
    /// Issuer organization → set of dates with ≥1 issuance.
    pub days: BTreeMap<String, BTreeSet<Date>>,
}

impl IssuanceTimeline {
    /// Whether `org` issued on `date`.
    pub fn issued_on(&self, org: &str, date: Date) -> bool {
        self.days.get(org).is_some_and(|s| s.contains(&date))
    }

    /// The last date `org` issued.
    pub fn last_issuance(&self, org: &str) -> Option<Date> {
        self.days
            .get(org)
            .and_then(|s| s.iter().next_back().copied())
    }

    /// Whether `org` stopped issuing before `horizon` minus `slack` days —
    /// used to count the "six of the ten top CAs stopped" finding.
    pub fn stopped_by(&self, org: &str, horizon: Date, slack: i32) -> bool {
        match self.last_issuance(org) {
            None => true,
            Some(d) => d < horizon.add_days(-slack),
        }
    }
}

/// One issuer row in the per-period table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodRow {
    /// Issuer organization.
    pub org: String,
    /// Certificates issued in the period.
    pub count: u64,
    /// Share of the period's issuance (%).
    pub pct: f64,
}

/// Table 1: per-period top issuers plus the "Other CAs" remainder.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PeriodTable {
    /// Period → (top rows, other-count, other-pct, total).
    pub periods: BTreeMap<Period, (Vec<PeriodRow>, u64, f64, u64)>,
}

/// The complete issuance analysis over one certificate dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaIssuanceAnalysis {
    /// Per-day, per-org issuance counts.
    per_day: BTreeMap<Date, BTreeMap<String, u64>>,
}

impl CaIssuanceAnalysis {
    /// Build from an indexed dataset.
    pub fn new(ds: &CertDataset) -> Self {
        let mut per_day: BTreeMap<Date, BTreeMap<String, u64>> = BTreeMap::new();
        for r in &ds.records {
            *per_day
                .entry(r.date)
                .or_default()
                .entry(r.issuer_org.clone())
                .or_default() += 1;
        }
        CaIssuanceAnalysis { per_day }
    }

    /// Total issuance per organization across the window.
    pub fn totals(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for m in self.per_day.values() {
            for (org, n) in m {
                *out.entry(org.clone()).or_default() += n;
            }
        }
        out
    }

    /// The top `n` organizations by total issuance.
    pub fn top_orgs(&self, n: usize) -> Vec<String> {
        let totals = self.totals();
        let mut v: Vec<(String, u64)> = totals.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.into_iter().take(n).map(|(o, _)| o).collect()
    }

    /// Figure 8's timeline structure for the top `n` CAs.
    pub fn timeline(&self, n: usize) -> IssuanceTimeline {
        let top: BTreeSet<String> = self.top_orgs(n).into_iter().collect();
        let mut days: BTreeMap<String, BTreeSet<Date>> = BTreeMap::new();
        for (date, m) in &self.per_day {
            for org in m.keys() {
                if top.contains(org) {
                    days.entry(org.clone()).or_default().insert(*date);
                }
            }
        }
        IssuanceTimeline { days }
    }

    /// Mean certificates per day within `[from, to]` (§4's 130 k / 115 k
    /// per-day numbers).
    pub fn daily_volume(&self, from: Date, to: Date) -> f64 {
        let days = (to - from + 1).max(1) as f64;
        let total: u64 = self
            .per_day
            .range(from..=to)
            .map(|(_, m)| m.values().sum::<u64>())
            .sum();
        total as f64 / days
    }

    /// Mean certificates per day for one organization within `[from, to]`.
    pub fn daily_volume_for(&self, org: &str, from: Date, to: Date) -> f64 {
        let days = (to - from + 1).max(1) as f64;
        let total: u64 = self
            .per_day
            .range(from..=to)
            .map(|(_, m)| m.get(org).copied().unwrap_or(0))
            .sum();
        total as f64 / days
    }

    /// Whether `org` has *effectively* stopped issuing by `horizon`: its
    /// rate over the final 30 days is under 10 % of its pre-conflict rate.
    ///
    /// A plain "no issuance in the last week" test misclassifies two
    /// cases the paper discusses: stopped CAs whose lesser-known brands
    /// leak isolated certificates (DigiCert's RapidSSL/GeoTrust dots in
    /// Figure 8), and small continuing CAs that issue sparsely.
    pub fn effectively_stopped(&self, org: &str, horizon: Date) -> bool {
        let pre = self.daily_volume_for(
            org,
            ruwhere_types::CERT_WINDOW_START,
            ruwhere_types::CONFLICT_START.pred(),
        );
        let recent = self.daily_volume_for(org, horizon.add_days(-29), horizon);
        if pre <= 0.0 {
            // Never issued pre-conflict: judge on recent activity alone.
            return recent <= 0.0;
        }
        recent < 0.10 * pre
    }

    /// Table 1: top `top_n` issuers per period.
    pub fn period_table(&self, top_n: usize) -> PeriodTable {
        let mut by_period: BTreeMap<Period, BTreeMap<String, u64>> = BTreeMap::new();
        for (date, m) in &self.per_day {
            let p = Period::of(*date);
            let entry = by_period.entry(p).or_default();
            for (org, n) in m {
                *entry.entry(org.clone()).or_default() += n;
            }
        }
        let mut table = PeriodTable::default();
        for (period, orgs) in by_period {
            let total: u64 = orgs.values().sum();
            let mut rows: Vec<(String, u64)> = orgs.into_iter().collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let top: Vec<PeriodRow> = rows
                .iter()
                .take(top_n)
                .map(|(org, n)| PeriodRow {
                    org: org.clone(),
                    count: *n,
                    pct: 100.0 * *n as f64 / total.max(1) as f64,
                })
                .collect();
            let other: u64 = rows.iter().skip(top_n).map(|(_, n)| n).sum();
            let other_pct = 100.0 * other as f64 / total.max(1) as f64;
            table.periods.insert(period, (top, other, other_pct, total));
        }
        table
    }
}

// Period needs Ord for BTreeMap keys; derive ordering chronologically.
// (ruwhere_types::Period already derives Ord.)

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_scan::CertRecord;

    fn record(date: Date, org: &str) -> CertRecord {
        CertRecord {
            date,
            issuer_org: org.into(),
            issuer_cn: format!("{org} CA"),
            serial: 1,
            domains: vec!["x.ru".parse().unwrap()],
            not_after: date.add_days(90),
        }
    }

    fn dataset() -> CertDataset {
        let mut records = Vec::new();
        // Pre-conflict: LE dominates, DigiCert issues until Feb 20.
        for day in Date::from_ymd(2022, 1, 1).to(Date::from_ymd(2022, 2, 23)) {
            for _ in 0..9 {
                records.push(record(day, "Let's Encrypt"));
            }
            if day <= Date::from_ymd(2022, 2, 20) {
                records.push(record(day, "DigiCert"));
            }
        }
        // After: LE only, slightly lower volume.
        for day in Date::from_ymd(2022, 2, 24).to(Date::from_ymd(2022, 5, 15)) {
            for _ in 0..8 {
                records.push(record(day, "Let's Encrypt"));
            }
        }
        CertDataset { records }
    }

    #[test]
    fn totals_and_top() {
        let a = CaIssuanceAnalysis::new(&dataset());
        let totals = a.totals();
        assert!(totals["Let's Encrypt"] > totals["DigiCert"]);
        assert_eq!(a.top_orgs(1), vec!["Let's Encrypt".to_owned()]);
        assert_eq!(a.top_orgs(5).len(), 2);
    }

    #[test]
    fn timeline_stops() {
        let a = CaIssuanceAnalysis::new(&dataset());
        let t = a.timeline(10);
        assert!(t.issued_on("DigiCert", Date::from_ymd(2022, 2, 20)));
        assert!(!t.issued_on("DigiCert", Date::from_ymd(2022, 3, 1)));
        assert_eq!(
            t.last_issuance("DigiCert"),
            Some(Date::from_ymd(2022, 2, 20))
        );
        let horizon = Date::from_ymd(2022, 5, 15);
        assert!(t.stopped_by("DigiCert", horizon, 7));
        assert!(!t.stopped_by("Let's Encrypt", horizon, 7));
        assert!(t.stopped_by("NoSuchCA", horizon, 7));
    }

    #[test]
    fn period_table_shares() {
        let a = CaIssuanceAnalysis::new(&dataset());
        let table = a.period_table(3);
        let (rows, other, other_pct, total) = &table.periods[&Period::PreConflict];
        assert_eq!(rows[0].org, "Let's Encrypt");
        assert!(rows[0].pct > 85.0);
        assert_eq!(rows[1].org, "DigiCert");
        assert_eq!(*other, 0);
        assert_eq!(*other_pct, 0.0);
        assert_eq!(*total, 9 * 54 + 51);

        let (rows, _, _, _) = &table.periods[&Period::PostSanctions];
        assert_eq!(rows.len(), 1);
        assert!((rows[0].pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn daily_volume() {
        let a = CaIssuanceAnalysis::new(&dataset());
        let pre = a.daily_volume(Date::from_ymd(2022, 1, 1), Date::from_ymd(2022, 2, 23));
        let post = a.daily_volume(Date::from_ymd(2022, 2, 24), Date::from_ymd(2022, 5, 15));
        assert!(pre > 9.0 && pre < 10.5, "pre {pre}");
        assert!((post - 8.0).abs() < 0.01, "post {post}");
    }
}
