//! Full / partial / non Russian composition classification (Figures 1, 5;
//! §3.1 hosting text).
//!
//! > "We label a domain as fully Russian-hosted if all of its A records
//! > geolocate inside the Russian Federation, partial if only a subset are
//! > in Russia, or non (Russian) if all such records are located outside
//! > the Russian Federation. Name service is similarly labeled based on
//! > geolocating the authoritative name servers for the domain." — §3.1

use crate::engine::FrameObserver;
use ruwhere_scan::{DailySweep, DomainDay};
use ruwhere_store::{CountrySym, Interner, InternerSnap, RecordView, SweepFrame, Sym};
use ruwhere_types::{Country, Date, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The three-way label (plus `Unknown` for domains that did not resolve or
/// geolocate at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Composition {
    /// All addresses geolocate to the Russian Federation.
    Full,
    /// A proper subset geolocates to Russia.
    Partial,
    /// No address geolocates to Russia.
    Non,
    /// No address data (resolution failure or geolocation gap).
    Unknown,
}

impl Composition {
    /// Classify a set of per-address country observations.
    ///
    /// Addresses with unknown geolocation are ignored unless *all* are
    /// unknown (mirroring how the paper handles the "small percentage of
    /// disagreement", footnote 5).
    pub fn classify<I: IntoIterator<Item = Option<Country>>>(countries: I) -> Composition {
        let mut russian = 0usize;
        let mut other = 0usize;
        for c in countries {
            match c {
                Some(c) if c.is_russia() => russian += 1,
                Some(_) => other += 1,
                None => {}
            }
        }
        match (russian, other) {
            (0, 0) => Composition::Unknown,
            (_, 0) => Composition::Full,
            (0, _) => Composition::Non,
            _ => Composition::Partial,
        }
    }

    /// Classify per-address country *symbols* — the frame-path twin of
    /// [`Composition::classify`], deciding Russian-ness from the interner
    /// snapshot instead of owned [`Country`] values.
    pub fn classify_syms(countries: &[CountrySym], snap: &InternerSnap<'_>) -> Composition {
        let mut russian = 0usize;
        let mut other = 0usize;
        for &c in countries {
            if c.is_none() {
                continue;
            }
            if snap.country_is_russia(c) {
                russian += 1;
            } else {
                other += 1;
            }
        }
        match (russian, other) {
            (0, 0) => Composition::Unknown,
            (_, 0) => Composition::Full,
            (0, _) => Composition::Non,
            _ => Composition::Partial,
        }
    }
}

/// Classify one frame record under `kind` (shared by the composition and
/// transition observers so both use the exact same rule).
pub fn classify_record_view(
    kind: InfraKind,
    rec: &RecordView<'_>,
    snap: &InternerSnap<'_>,
) -> Composition {
    let addrs = match kind {
        InfraKind::NameServers => rec.ns_addrs(),
        InfraKind::Hosting => rec.apex_addrs(),
    };
    Composition::classify_syms(addrs.countries(), snap)
}

/// Which infrastructure the composition describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InfraKind {
    /// Authoritative name-server addresses (Figures 1 and 5).
    NameServers,
    /// Apex A records — web hosting (§3.1 text).
    Hosting,
}

/// Per-date composition counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompositionCounts {
    /// Fully Russian.
    pub full: u64,
    /// Partially Russian.
    pub partial: u64,
    /// Not Russian.
    pub non: u64,
    /// No data.
    pub unknown: u64,
}

impl CompositionCounts {
    /// Total classified domains (including unknown).
    pub fn total(&self) -> u64 {
        self.full + self.partial + self.non + self.unknown
    }

    /// Total with usable data.
    pub fn known(&self) -> u64 {
        self.full + self.partial + self.non
    }

    /// Percentage helpers over the known set.
    pub fn pct_full(&self) -> f64 {
        100.0 * self.full as f64 / self.known().max(1) as f64
    }

    /// Partial percentage.
    pub fn pct_partial(&self) -> f64 {
        100.0 * self.partial as f64 / self.known().max(1) as f64
    }

    /// Non percentage.
    pub fn pct_non(&self) -> f64 {
        100.0 * self.non as f64 / self.known().max(1) as f64
    }

    fn bump(&mut self, c: Composition) {
        match c {
            Composition::Full => self.full += 1,
            Composition::Partial => self.partial += 1,
            Composition::Non => self.non += 1,
            Composition::Unknown => self.unknown += 1,
        }
    }
}

/// Domain filter for a composition series.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Filter {
    /// Whole population.
    All,
    /// A fixed subset.
    Static(std::collections::BTreeSet<DomainName>),
    /// Domains sanctioned as of each sweep's date (Figure 5's growing
    /// denominator).
    Sanctions(ruwhere_registry::SanctionsList),
}

impl Filter {
    /// Resolve the filter for one frame into sorted symbols. `None`
    /// accepts everything. Names absent from the interner cannot occur in
    /// any record of the frame, so dropping them is exact.
    fn resolve(&self, date: Date, snap: &InternerSnap<'_>) -> Option<Vec<Sym>> {
        let mut syms: Vec<Sym> = match self {
            Filter::All => return None,
            Filter::Static(set) => set.iter().filter_map(|d| snap.name_sym(d)).collect(),
            Filter::Sanctions(list) => list
                .sanctioned_at(date)
                .into_iter()
                .filter_map(|d| snap.name_sym(d))
                .collect(),
        };
        syms.sort_unstable();
        Some(syms)
    }
}

/// Per-frame scratch for the observer hooks (reset at `begin_frame`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct FrameScratch {
    counts: CompositionCounts,
    /// Sorted accepted symbols; `None` means no filtering.
    filter: Option<Vec<Sym>>,
}

/// A longitudinal composition accumulator. Feed it one [`DailySweep`] per
/// measurement day; read out the per-date series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompositionSeries {
    kind: InfraKind,
    filter: Filter,
    days: BTreeMap<Date, CompositionCounts>,
    /// Dates whose sweep was salvaged as partial (outage days). Raw counts
    /// for these days are kept — the Figure-1 dip must stay visible — but
    /// [`CompositionSeries::imputed_at`] can substitute a recent full day.
    partial_days: BTreeSet<Date>,
    scratch: FrameScratch,
}

impl CompositionSeries {
    /// Full-population series for `kind`.
    pub fn new(kind: InfraKind) -> Self {
        CompositionSeries {
            kind,
            filter: Filter::All,
            days: BTreeMap::new(),
            partial_days: BTreeSet::new(),
            scratch: FrameScratch::default(),
        }
    }

    /// Series restricted to a fixed set of `domains`.
    pub fn filtered(kind: InfraKind, domains: Vec<DomainName>) -> Self {
        CompositionSeries {
            kind,
            filter: Filter::Static(domains.into_iter().collect()),
            days: BTreeMap::new(),
            partial_days: BTreeSet::new(),
            scratch: FrameScratch::default(),
        }
    }

    /// Series restricted to the domains sanctioned as of each sweep date
    /// (Figure 5).
    pub fn sanctioned(kind: InfraKind, list: ruwhere_registry::SanctionsList) -> Self {
        CompositionSeries {
            kind,
            filter: Filter::Sanctions(list),
            days: BTreeMap::new(),
            partial_days: BTreeSet::new(),
            scratch: FrameScratch::default(),
        }
    }

    fn countries_of<'a>(&self, rec: &'a DomainDay) -> impl Iterator<Item = Option<Country>> + 'a {
        let addrs = match self.kind {
            InfraKind::NameServers => &rec.ns_addrs,
            InfraKind::Hosting => &rec.apex_addrs,
        };
        addrs.iter().map(|a| a.country)
    }

    /// Classify one domain record under this series' kind.
    pub fn classify_record(&self, rec: &DomainDay) -> Composition {
        Composition::classify(self.countries_of(rec))
    }

    /// Consume one row-form sweep.
    ///
    /// Compatibility path: columnarises the sweep through an ephemeral
    /// interner and runs the exact same fold as the frame path, so both
    /// entry points share one implementation.
    pub fn observe(&mut self, sweep: &DailySweep) {
        let interner = Interner::new();
        let frame = SweepFrame::from_daily_sweep(sweep, &interner);
        crate::engine::drive_one(self, &frame, &interner);
    }

    /// Per-date counts, in date order.
    pub fn rows(&self) -> impl Iterator<Item = (Date, &CompositionCounts)> {
        self.days.iter().map(|(d, c)| (*d, c))
    }

    /// Counts on one date.
    pub fn at(&self, date: Date) -> Option<&CompositionCounts> {
        self.days.get(&date)
    }

    /// Whether the sweep observed on `date` was a salvaged partial.
    pub fn is_partial_day(&self, date: Date) -> bool {
        self.partial_days.contains(&date)
    }

    /// Counts on `date` with explicit, bounded carry-forward imputation.
    ///
    /// For a full-sweep day this is just `(raw counts, false)`. For a
    /// partial (outage) day, the most recent full day within
    /// `max_lookback_days` is substituted and the result is flagged
    /// `true` — the imputation is never silent. If no full day exists in
    /// the lookback window, the raw partial counts are returned unflagged;
    /// callers can distinguish that residual case via
    /// [`CompositionSeries::is_partial_day`].
    ///
    /// [`CompositionSeries::at`] deliberately stays raw: analyses that
    /// *want* to see the Figure-1 dip read `at`, analyses that want a gap-
    /// tolerant trend read `imputed_at`.
    pub fn imputed_at(
        &self,
        date: Date,
        max_lookback_days: u32,
    ) -> Option<(CompositionCounts, bool)> {
        let raw = *self.days.get(&date)?;
        if !self.partial_days.contains(&date) {
            return Some((raw, false));
        }
        let donor = self
            .days
            .range(..date)
            .rev()
            .take_while(|(d, _)| (date - **d) as u32 <= max_lookback_days)
            .find(|(d, _)| !self.partial_days.contains(*d));
        match donor {
            Some((_, counts)) => Some((*counts, true)),
            None => Some((raw, false)),
        }
    }

    /// First and last observed rows (for net-change summaries).
    pub fn extrema(&self) -> Option<((Date, CompositionCounts), (Date, CompositionCounts))> {
        let first = self.days.iter().next()?;
        let last = self.days.iter().next_back()?;
        Some(((*first.0, *first.1), (*last.0, *last.1)))
    }
}

impl FrameObserver for CompositionSeries {
    fn begin_frame(&mut self, frame: &SweepFrame, snap: &InternerSnap<'_>) {
        self.scratch.counts = CompositionCounts::default();
        self.scratch.filter = self.filter.resolve(frame.date, snap);
    }

    fn observe_record(&mut self, rec: &RecordView<'_>, snap: &InternerSnap<'_>) {
        if let Some(accepted) = &self.scratch.filter {
            if accepted.binary_search(&rec.domain_sym()).is_err() {
                return;
            }
        }
        self.scratch
            .counts
            .bump(classify_record_view(self.kind, rec, snap));
    }

    fn end_frame(&mut self, frame: &SweepFrame, _snap: &InternerSnap<'_>) {
        self.days.insert(frame.date, self.scratch.counts);
        if frame.is_partial() {
            self.partial_days.insert(frame.date);
        } else {
            self.partial_days.remove(&frame.date);
        }
        self.scratch.filter = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_scan::{AddrInfo, SweepStats};
    use ruwhere_types::Asn;

    fn addr(ip: &str, cc: Option<&str>) -> AddrInfo {
        AddrInfo {
            ip: ip.parse().unwrap(),
            country: cc.map(|c| c.parse().unwrap()),
            asn: Some(Asn(1)),
        }
    }

    fn rec(domain: &str, ns_cc: &[Option<&str>], apex_cc: &[Option<&str>]) -> DomainDay {
        DomainDay {
            domain: domain.parse().unwrap(),
            ns_names: vec![],
            ns_addrs: ns_cc
                .iter()
                .enumerate()
                .map(|(i, cc)| addr(&format!("10.0.0.{}", i + 1), *cc))
                .collect(),
            apex_addrs: apex_cc
                .iter()
                .enumerate()
                .map(|(i, cc)| addr(&format!("10.0.1.{}", i + 1), *cc))
                .collect(),
        }
    }

    fn sweep(date: Date, domains: Vec<DomainDay>) -> DailySweep {
        DailySweep {
            date,
            domains,
            stats: SweepStats::default(),
            metrics: Default::default(),
        }
    }

    fn partial_sweep(date: Date, domains: Vec<DomainDay>) -> DailySweep {
        DailySweep {
            date,
            domains,
            stats: SweepStats {
                completeness: ruwhere_scan::Completeness::Partial,
                ..SweepStats::default()
            },
            metrics: Default::default(),
        }
    }

    #[test]
    fn imputation_carries_forward_flagged_and_bounded() {
        let d1 = Date::from_ymd(2021, 3, 21);
        let d2 = Date::from_ymd(2021, 3, 22); // outage day
        let mut series = CompositionSeries::new(InfraKind::NameServers);
        series.observe(&sweep(
            d1,
            vec![
                rec("a.ru", &[Some("RU")], &[]),
                rec("b.ru", &[Some("US")], &[]),
            ],
        ));
        // The outage day salvages a single record.
        series.observe(&partial_sweep(d2, vec![rec("a.ru", &[Some("RU")], &[])]));

        // Raw view keeps the dip.
        assert_eq!(series.at(d2).unwrap().total(), 1);
        assert!(series.is_partial_day(d2));
        assert!(!series.is_partial_day(d1));

        // Imputed view substitutes the day before, flagged.
        let (c, imputed) = series.imputed_at(d2, 7).unwrap();
        assert!(imputed);
        assert_eq!(c.total(), 2);
        // Full days pass through unflagged.
        let (c, imputed) = series.imputed_at(d1, 7).unwrap();
        assert!(!imputed);
        assert_eq!(c.total(), 2);
        // A zero-day lookback finds no donor: raw counts, unflagged.
        let (c, imputed) = series.imputed_at(d2, 0).unwrap();
        assert!(!imputed);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn classification_rules() {
        assert_eq!(
            Composition::classify([Some(Country::RU), Some(Country::RU)]),
            Composition::Full
        );
        assert_eq!(
            Composition::classify([Some(Country::RU), Some(Country::SE)]),
            Composition::Partial
        );
        assert_eq!(
            Composition::classify([Some(Country::US), Some(Country::DE)]),
            Composition::Non
        );
        assert_eq!(Composition::classify([]), Composition::Unknown);
        assert_eq!(Composition::classify([None, None]), Composition::Unknown);
        // Unknown geolocations do not poison an otherwise-full set.
        assert_eq!(
            Composition::classify([Some(Country::RU), None]),
            Composition::Full
        );
    }

    #[test]
    fn series_accumulates_by_kind() {
        let d = Date::from_ymd(2022, 3, 1);
        let records = vec![
            rec("a.ru", &[Some("RU"), Some("RU")], &[Some("US")]),
            rec("b.ru", &[Some("RU"), Some("SE")], &[Some("RU")]),
            rec("c.ru", &[Some("US")], &[Some("RU"), Some("NL")]),
            rec("d.ru", &[], &[]),
        ];
        let s = sweep(d, records);

        let mut ns = CompositionSeries::new(InfraKind::NameServers);
        ns.observe(&s);
        let c = ns.at(d).unwrap();
        assert_eq!((c.full, c.partial, c.non, c.unknown), (1, 1, 1, 1));
        assert_eq!(c.total(), 4);
        assert_eq!(c.known(), 3);

        let mut hosting = CompositionSeries::new(InfraKind::Hosting);
        hosting.observe(&s);
        let c = hosting.at(d).unwrap();
        assert_eq!((c.full, c.partial, c.non, c.unknown), (1, 1, 1, 1));
    }

    #[test]
    fn filtered_series() {
        let d = Date::from_ymd(2022, 3, 1);
        let s = sweep(
            d,
            vec![
                rec("sanctioned.ru", &[Some("RU")], &[]),
                rec("ordinary.ru", &[Some("US")], &[]),
            ],
        );
        let mut f = CompositionSeries::filtered(
            InfraKind::NameServers,
            vec!["sanctioned.ru".parse().unwrap()],
        );
        f.observe(&s);
        let c = f.at(d).unwrap();
        assert_eq!(c.total(), 1);
        assert_eq!(c.full, 1);
    }

    #[test]
    fn percentages_and_extrema() {
        let d1 = Date::from_ymd(2022, 2, 1);
        let d2 = Date::from_ymd(2022, 3, 1);
        let mut series = CompositionSeries::new(InfraKind::NameServers);
        series.observe(&sweep(
            d1,
            vec![
                rec("a.ru", &[Some("RU")], &[]),
                rec("b.ru", &[Some("US")], &[]),
            ],
        ));
        series.observe(&sweep(
            d2,
            vec![
                rec("a.ru", &[Some("RU")], &[]),
                rec("b.ru", &[Some("RU")], &[]),
            ],
        ));
        let ((fd, fc), (ld, lc)) = series.extrema().unwrap();
        assert_eq!(fd, d1);
        assert_eq!(ld, d2);
        assert!((fc.pct_full() - 50.0).abs() < 1e-9);
        assert!((lc.pct_full() - 100.0).abs() < 1e-9);
        assert_eq!(series.rows().count(), 2);
    }
}
