//! The end-to-end study harness: build a world, run the measurement
//! schedule, and collect every analysis the paper reports.
//!
//! The paper's dataset is daily for five years; at reproduction scale we
//! sweep weekly before the certificate window and daily from 2022 onward,
//! which preserves every figure's temporal structure (the 2022 events are
//! all at daily granularity) at a fraction of the cost. The cadence is
//! configurable.

use crate::asn_share::AsnShareSeries;
use crate::ca_issuance::CaIssuanceAnalysis;
use crate::composition::{CompositionSeries, InfraKind};
use crate::dataset_stats::DatasetStats;
use crate::engine::AnalysisEngine;
use crate::revocation::RevocationAnalysis;
use crate::russian_ca::RussianCaAnalysis;
use crate::tld_dependency::{TldDependencySeries, TldUsageSeries};
use crate::transitions::TransitionFlows;
use ruwhere_registry::SanctionsList;
use ruwhere_scan::{
    CertDataset, IpScanSnapshot, IpScanner, MatchRule, OpenIntelScanner, SweepOptions,
};
use ruwhere_store::checkpoint::fnv1a64;
use ruwhere_store::{
    CheckpointDir, CheckpointError, DayCheckpoint, Interner, InternerDelta, SweepFrame, TableSizes,
};
use ruwhere_types::{Date, CERT_WINDOW_END, CERT_WINDOW_START};
use ruwhere_world::{World, WorldConfig};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Measurement schedule and retention configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// World configuration (scale, windows, behaviour).
    pub world: WorldConfig,
    /// Sweep weekly before this date, daily from it on.
    pub daily_from: Date,
    /// Extra dates whose full sweeps are retained for movement analysis
    /// (the first and last sweeps are always retained).
    pub retain: Vec<Date>,
    /// Dates to run IP-wide TLS scans (the last one feeds §4.3).
    pub ip_scans: Vec<Date>,
    /// Extra sweep dates outside the weekly/daily cadence. OpenINTEL is
    /// daily, so event days the scaled-down weekly schedule would skip
    /// (the footnote-8 outage falls on a Monday; the weekly cadence runs
    /// Sundays) get explicit sweeps here.
    pub extra_sweeps: Vec<Date>,
    /// Sweep worker-pool size. Output is byte-identical for any value
    /// (the engine's determinism contract); this only trades wall-clock
    /// time. Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Print progress to stderr.
    pub verbose: bool,
    /// Directory to write (and resume from) durable day checkpoints.
    /// `None` runs fully in-memory, as before.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoints in `checkpoint_dir`: salvage the
    /// longest valid day prefix, replay it (interner, network clock,
    /// analysis observers), and sweep live from the first missing day.
    /// Without this flag a non-empty checkpoint directory is refused.
    pub resume: bool,
    /// Stop after processing this many study days (crash-harness knob:
    /// simulates an interrupted run that wrote only a prefix of its
    /// checkpoints). The analyses still finalize over what was processed.
    pub stop_after_sweeps: Option<usize>,
}

impl StudyConfig {
    /// The paper's schedule against a given world configuration.
    pub fn paper_schedule(world: WorldConfig) -> Self {
        let daily_from = Date::from_ymd(2022, 1, 1).max(world.start);
        let retain = vec![
            Date::from_ymd(2022, 2, 23),
            Date::from_ymd(2022, 3, 7),
            Date::from_ymd(2022, 3, 8),
            Date::from_ymd(2022, 3, 10),
            world.end,
        ];
        let ip_scans = vec![
            Date::from_ymd(2022, 3, 15),
            Date::from_ymd(2022, 4, 15),
            CERT_WINDOW_END,
        ];
        StudyConfig {
            world,
            daily_from,
            retain,
            ip_scans,
            // The 2021-03-22 measurement outage (footnote 8).
            extra_sweeps: vec![Date::from_ymd(2021, 3, 22)],
            workers: ruwhere_scan::available_workers(),
            verbose: false,
            checkpoint_dir: None,
            resume: false,
            stop_after_sweeps: None,
        }
    }

    /// A fast schedule for tests: tiny world, daily sweeps only from
    /// mid-February, fewer IP scans.
    pub fn test_schedule() -> Self {
        let world = WorldConfig::tiny();
        let mut cfg = Self::paper_schedule(world);
        cfg.daily_from = Date::from_ymd(2022, 2, 20);
        cfg
    }

    /// The sweep dates implied by the cadence.
    pub fn sweep_dates(&self) -> Vec<Date> {
        let mut dates = Vec::new();
        let mut d = self.world.start;
        while d < self.daily_from.min(self.world.end) {
            dates.push(d);
            d = d.add_days(7);
        }
        let mut d = self.daily_from.max(self.world.start);
        while d <= self.world.end {
            dates.push(d);
            d = d.succ();
        }
        for &d in &self.extra_sweeps {
            if d >= self.world.start && d <= self.world.end {
                dates.push(d);
            }
        }
        dates.sort_unstable();
        dates.dedup();
        dates
    }

    /// FNV-1a fingerprint of everything that shapes measurement output:
    /// the world configuration and the sweep/scan schedule. Stamped into
    /// every checkpoint segment so a directory can only be resumed by the
    /// same study. Deliberately EXCLUDES `workers` (output is
    /// byte-identical for any worker count — a study checkpointed at 4
    /// workers may resume at 1), `verbose`, and the checkpoint knobs
    /// themselves.
    pub fn fingerprint(&self) -> u64 {
        let canon = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}",
            self.world, self.daily_from, self.retain, self.ip_scans, self.extra_sweeps
        );
        fnv1a64(canon.as_bytes())
    }
}

/// Why a checkpointed study run could not proceed. Validation problems
/// (unwritable directory, mismatched config, refusing to clobber) are
/// reported here — never as panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StudyError {
    /// The checkpoint store failed (I/O, corruption beyond salvage,
    /// config fingerprint mismatch).
    Checkpoint(CheckpointError),
    /// The study configuration is inconsistent with the on-disk state.
    InvalidConfig(String),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            StudyError::InvalidConfig(msg) => write!(f, "invalid study configuration: {msg}"),
        }
    }
}

impl std::error::Error for StudyError {}

impl From<CheckpointError> for StudyError {
    fn from(e: CheckpointError) -> StudyError {
        StudyError::Checkpoint(e)
    }
}

/// Everything the analyses produce, ready for figure/table rendering.
pub struct StudyResults {
    /// Figure 1: NS-infrastructure country composition.
    pub ns_composition: CompositionSeries,
    /// §3.1 text: hosting composition.
    pub hosting_composition: CompositionSeries,
    /// Figure 5: sanctioned domains' NS composition.
    pub sanctioned_ns: CompositionSeries,
    /// Figure 2: NS TLD-dependency composition.
    pub tld_dependency: TldDependencySeries,
    /// Figure 3: per-TLD NS usage.
    pub tld_usage: TldUsageSeries,
    /// Figure 4: hosting ASN shares.
    pub asn_share: AsnShareSeries,
    /// Retained sweep frames for movement analysis (Figures 6, 7; §3.4).
    /// Columnar, metrics-stripped: symbols resolve via
    /// [`StudyResults::interner`].
    pub retained: BTreeMap<Date, SweepFrame>,
    /// The study-wide symbol table every frame and observer shares.
    pub interner: Arc<Interner>,
    /// The single-pass engine's work counters (frames walked, record
    /// visits, observer dispatches).
    pub analysis: AnalysisEngine,
    /// §4 certificate dataset (CT index over the analysis window).
    pub certs: CertDataset,
    /// Figure 8 / Table 1 analysis.
    pub issuance: CaIssuanceAnalysis,
    /// Table 2 analysis.
    pub revocation: RevocationAnalysis,
    /// §4.3 analysis (from the final IP scan).
    pub russian_ca: Option<RussianCaAnalysis>,
    /// All IP scans that ran.
    pub ip_scans: Vec<IpScanSnapshot>,
    /// The sanctions list used.
    pub sanctions: SanctionsList,
    /// §2 dataset-scale statistics.
    pub dataset: DatasetStats,
    /// Per-sweep composition transition flows (who moved, when).
    pub transitions: TransitionFlows,
    /// Measurement statistics: total DNS queries across all sweeps.
    pub total_queries: u64,
    /// Number of sweeps run.
    pub sweeps_run: usize,
}

impl StudyResults {
    /// The retained sweep frame at `date`, if any.
    pub fn sweep_at(&self, date: Date) -> Option<&SweepFrame> {
        self.retained.get(&date)
    }

    /// The last retained sweep frame (study end).
    pub fn final_sweep(&self) -> Option<&SweepFrame> {
        self.retained.values().next_back()
    }
}

/// Run the full study. Panics if a checkpointed run fails validation —
/// use [`try_run_study`] when `checkpoint_dir` is set and errors should
/// be reported instead.
pub fn run_study(cfg: &StudyConfig) -> StudyResults {
    // Infallible for non-checkpointed configs: every error path below
    // starts at the checkpoint store.
    try_run_study(cfg).unwrap_or_else(|e| panic!("study failed: {e}"))
}

/// Run the full study, durably checkpointing and/or resuming when
/// [`StudyConfig::checkpoint_dir`] is set.
///
/// With a checkpoint directory, each study day is written as a
/// checksummed segment after its sweep (frame + interner delta + network
/// clock — see `ruwhere_store::checkpoint`). With `resume`, the longest
/// valid prefix of segments is *replayed* instead of re-measured: the
/// world advances through the same dates (re-running scheduled IP scans
/// and zone publishes — both deterministic), the interner is re-primed
/// delta by delta in original order (preserving the seeds-first
/// symbol-assignment invariant), the network clock is restored day by
/// day (fault windows anchor to the absolute clock), and every observer
/// sees the checkpointed frames. A resumed run is therefore
/// byte-identical — report and interner `dump()` — to an uninterrupted
/// one, which the crash harness in `crates/bench` asserts.
pub fn try_run_study(cfg: &StudyConfig) -> Result<StudyResults, StudyError> {
    let store = match &cfg.checkpoint_dir {
        Some(dir) => Some(CheckpointDir::open(dir)?),
        None => None,
    };
    let fingerprint = cfg.fingerprint();
    let mut replayed: Vec<DayCheckpoint> = Vec::new();
    if let Some(store) = &store {
        if cfg.resume {
            let outcome = store.load(fingerprint)?;
            for q in &outcome.quarantined {
                eprintln!(
                    "[study] quarantined damaged checkpoint segment {}: {}{}",
                    q.original.display(),
                    q.reason,
                    q.moved_to
                        .as_ref()
                        .map(|m| format!(" (moved to {})", m.display()))
                        .unwrap_or_default(),
                );
            }
            replayed = outcome.days;
            if cfg.verbose && !replayed.is_empty() {
                eprintln!(
                    "[study] resuming: replaying {} checkpointed day(s)",
                    replayed.len()
                );
            }
        } else if store.has_segments()? {
            return Err(StudyError::InvalidConfig(format!(
                "checkpoint directory {} already contains segments; \
                 pass --resume to continue that run, or use a fresh directory",
                store.path().display()
            )));
        }
    }

    let mut world = World::new(cfg.world.clone());
    let sanctions = world.sanctions().clone();

    let mut ns_composition = CompositionSeries::new(InfraKind::NameServers);
    let mut hosting_composition = CompositionSeries::new(InfraKind::Hosting);
    let mut sanctioned_ns =
        CompositionSeries::sanctioned(InfraKind::NameServers, sanctions.clone());
    let mut tld_dependency = TldDependencySeries::new();
    let mut tld_usage = TldUsageSeries::new();
    let mut asn_share = AsnShareSeries::new();
    let mut dataset = DatasetStats::new();
    let mut transitions = TransitionFlows::new(InfraKind::NameServers);
    let mut retained: BTreeMap<Date, SweepFrame> = BTreeMap::new();
    let mut engine = AnalysisEngine::new();

    let sweep_dates = cfg.sweep_dates();
    let first = sweep_dates.first().copied();
    let last = sweep_dates.last().copied();
    // One symbol table spans the whole study: the scanner interns into it
    // (seeds first, then merged discoveries — DESIGN.md §10) and every
    // observer reads from it.
    let interner = Arc::new(Interner::new());
    let mut scanner = OpenIntelScanner::with_options(
        &world,
        SweepOptions::new()
            .workers(cfg.workers)
            .interner(interner.clone()),
    );
    let mut ip_scanner = IpScanner::new(&world);
    let mut ip_scans: Vec<IpScanSnapshot> = Vec::new();
    let mut scans_pending = cfg.ip_scans.clone();
    scans_pending.sort();

    // Queries accounted by replayed checkpoints (their sweeps ran in the
    // interrupted process); added to the live scanner's own count so
    // `total_queries` matches an uninterrupted run exactly.
    let mut replayed_queries: u64 = 0;
    for (i, &date) in sweep_dates.iter().enumerate() {
        world.advance_to(date);
        // Run any IP scans scheduled on or before this sweep date. These
        // re-run during replay too — they are a deterministic function of
        // the world, and the original run executed them at exactly this
        // point in the sequence.
        while scans_pending.first().is_some_and(|d| *d <= date) {
            scans_pending.remove(0);
            ip_scans.push(ip_scanner.scan(&mut world));
        }
        // Measurement-outage days (e.g. the 2021-03-22 TLD-server outage
        // behind Figure 1's dip, footnote 8) need no special-casing here:
        // the timeline installs the fault into the network, the sweep
        // mostly times out, and the scanner salvages it as a partial
        // sweep. The dip emerges mechanically.
        let frame = match replayed.get(i) {
            Some(ck) => {
                if ck.date != date {
                    return Err(StudyError::Checkpoint(CheckpointError::ChainBroken {
                        detail: format!(
                            "checkpoint day {i} is dated {}, but the schedule says {date} \
                             — the directory belongs to a different study",
                            ck.date
                        ),
                    }));
                }
                // Mirror the replaced sweep's world interactions, in
                // order: it published the day's zone snapshots
                // (idempotent), appended to the interner, and advanced
                // the network clock to its slowest lane's end.
                world.publish_tld_zones();
                ck.interner.replay(&interner)?;
                world.restore_net_clock_us(ck.net_clock_us);
                replayed_queries += ck.frame.stats.queries;
                ck.frame.clone()
            }
            None => {
                let base = TableSizes::of(&interner);
                let frame = scanner.sweep_frame(&mut world);
                if let Some(store) = &store {
                    store.write_day(
                        &DayCheckpoint {
                            day_index: i as u32,
                            date,
                            net_clock_us: world.network().now().as_micros(),
                            interner: InternerDelta::capture(&interner, base),
                            frame: frame.clone().strip_metrics(),
                        },
                        fingerprint,
                    )?;
                }
                frame
            }
        };
        // One walk over the frame feeds every series (the old design made
        // eight passes over cloned row data here).
        engine.observe_frame(
            &frame,
            &interner,
            &mut [
                &mut ns_composition,
                &mut hosting_composition,
                &mut sanctioned_ns,
                &mut tld_dependency,
                &mut tld_usage,
                &mut asn_share,
                &mut dataset,
                &mut transitions,
            ],
        );
        if cfg.retain.contains(&date) || first == Some(date) || last == Some(date) {
            // Movement analysis only needs the columns; the observability
            // payload is rendered per sweep, not re-read later.
            retained.insert(date, frame.strip_metrics());
        }
        if cfg.verbose && i % 25 == 0 {
            eprintln!(
                "[study] {date}  sweep {}/{}  queries so far: {}",
                i + 1,
                sweep_dates.len(),
                replayed_queries + scanner.queries_sent()
            );
        }
        if cfg.stop_after_sweeps.is_some_and(|n| i + 1 >= n) {
            break;
        }
    }

    // Certificate analyses over the paper's window.
    world.finalize_ocsp();
    let cert_from = CERT_WINDOW_START.max(cfg.world.cert_start);
    let cert_to = CERT_WINDOW_END.min(cfg.world.end);
    let certs = CertDataset::from_logs(world.ct_logs(), cert_from, cert_to, MatchRule::CnOrSan);
    let issuance = CaIssuanceAnalysis::new(&certs);
    let revocation = RevocationAnalysis::new(&certs, world.ocsp(), &sanctions, cert_to);
    let russian_ca = ip_scans
        .last()
        .map(|scan| RussianCaAnalysis::new(scan, &certs, &sanctions, cert_to));

    Ok(StudyResults {
        ns_composition,
        hosting_composition,
        sanctioned_ns,
        tld_dependency,
        tld_usage,
        asn_share,
        retained,
        interner,
        analysis: engine,
        certs,
        issuance,
        revocation,
        russian_ca,
        ip_scans,
        sanctions,
        dataset,
        transitions,
        total_queries: replayed_queries + scanner.queries_sent(),
        sweeps_run: cfg
            .stop_after_sweeps
            .map_or(sweep_dates.len(), |n| n.min(sweep_dates.len())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_cadence() {
        let mut world = WorldConfig::tiny();
        world.start = Date::from_ymd(2021, 12, 1);
        world.end = Date::from_ymd(2022, 1, 10);
        let mut cfg = StudyConfig::paper_schedule(world);
        cfg.daily_from = Date::from_ymd(2022, 1, 1);
        let dates = cfg.sweep_dates();
        // Weekly in December (12-01, 08, 15, 22, 29), daily in January.
        assert_eq!(dates[0], Date::from_ymd(2021, 12, 1));
        assert_eq!(dates[1], Date::from_ymd(2021, 12, 8));
        assert!(dates.contains(&Date::from_ymd(2022, 1, 1)));
        assert!(dates.contains(&Date::from_ymd(2022, 1, 2)));
        assert_eq!(*dates.last().unwrap(), Date::from_ymd(2022, 1, 10));
        // Strictly increasing.
        assert!(dates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn schedule_daily_only_when_daily_from_is_start() {
        let world = WorldConfig::tiny(); // starts 2022-01-01
        let cfg = StudyConfig::paper_schedule(world.clone());
        let dates = cfg.sweep_dates();
        assert_eq!(dates.len(), world.days());
    }
}
