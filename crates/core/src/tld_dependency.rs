//! Name-server TLD dependency (Figures 2 and 3).
//!
//! > "We extract the TLD of each name server to which .ru and .рф domain
//! > names delegate authority. If all of a domain's name servers are
//! > exclusively registered under the Russian Federation TLDs, we consider
//! > the TLD dependency fully Russian. … if only a subset are Russian TLDs,
//! > we consider it partial, otherwise we consider it non Russian." — §3.1

use crate::composition::{Composition, CompositionCounts};
use crate::engine::FrameObserver;
use ruwhere_scan::DailySweep;
use ruwhere_store::{Interner, InternerSnap, RecordView, SweepFrame, TldSym};
use ruwhere_types::Date;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Longitudinal full/partial/non series over NS-name TLDs (Figure 2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TldDependencySeries {
    days: BTreeMap<Date, CompositionCounts>,
    scratch: CompositionCounts,
}

impl TldDependencySeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one row-form sweep (columnarised through an ephemeral
    /// interner; the fold itself is the [`FrameObserver`] impl).
    pub fn observe(&mut self, sweep: &DailySweep) {
        let interner = Interner::new();
        let frame = SweepFrame::from_daily_sweep(sweep, &interner);
        crate::engine::drive_one(self, &frame, &interner);
    }

    /// Per-date counts in date order.
    pub fn rows(&self) -> impl Iterator<Item = (Date, &CompositionCounts)> {
        self.days.iter().map(|(d, c)| (*d, c))
    }

    /// Counts on one date.
    pub fn at(&self, date: Date) -> Option<&CompositionCounts> {
        self.days.get(&date)
    }

    /// Net percentage-point change in the full/partial/non shares between
    /// the first and last observation ("a net reduction of 6.3 %" — §3.1).
    pub fn net_change(&self) -> Option<(f64, f64, f64)> {
        let first = self.days.values().next()?;
        let last = self.days.values().next_back()?;
        Some((
            last.pct_full() - first.pct_full(),
            last.pct_partial() - first.pct_partial(),
            last.pct_non() - first.pct_non(),
        ))
    }
}

impl FrameObserver for TldDependencySeries {
    fn begin_frame(&mut self, _frame: &SweepFrame, _snap: &InternerSnap<'_>) {
        self.scratch = CompositionCounts::default();
    }

    fn observe_record(&mut self, rec: &RecordView<'_>, snap: &InternerSnap<'_>) {
        let (mut ru, mut other) = (0usize, 0usize);
        for &ns in rec.ns_name_syms() {
            if snap.tld_is_russian(snap.tld_of(ns)) {
                ru += 1;
            } else {
                other += 1;
            }
        }
        let c = match (ru, other) {
            (0, 0) => Composition::Unknown,
            (_, 0) => Composition::Full,
            (0, _) => Composition::Non,
            _ => Composition::Partial,
        };
        match c {
            Composition::Full => self.scratch.full += 1,
            Composition::Partial => self.scratch.partial += 1,
            Composition::Non => self.scratch.non += 1,
            Composition::Unknown => self.scratch.unknown += 1,
        }
    }

    fn end_frame(&mut self, frame: &SweepFrame, _snap: &InternerSnap<'_>) {
        self.days.insert(frame.date, self.scratch);
    }
}

/// Longitudinal per-TLD usage: for each date, how many domains delegate to
/// at least one name server under each TLD (Figure 3 — shares can sum to
/// more than 100 % because domains use multiple TLDs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TldUsageSeries {
    days: BTreeMap<Date, BTreeMap<String, u64>>,
    totals: BTreeMap<Date, u64>,
    /// Per-frame counts keyed by TLD symbol; resolved to strings once at
    /// `end_frame` instead of once per record.
    scratch: BTreeMap<TldSym, u64>,
    scratch_total: u64,
}

impl TldUsageSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one row-form sweep (columnarised through an ephemeral
    /// interner; the fold itself is the [`FrameObserver`] impl).
    pub fn observe(&mut self, sweep: &DailySweep) {
        let interner = Interner::new();
        let frame = SweepFrame::from_daily_sweep(sweep, &interner);
        crate::engine::drive_one(self, &frame, &interner);
    }

    /// Distinct TLDs ever observed (the paper counts 270).
    pub fn distinct_tlds(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for m in self.days.values() {
            set.extend(m.keys().cloned());
        }
        set.len()
    }

    /// The top `n` TLDs by usage on the final observed date.
    pub fn top_tlds(&self, n: usize) -> Vec<String> {
        let Some(last) = self.days.values().next_back() else {
            return Vec::new();
        };
        let mut v: Vec<(&String, &u64)> = last.iter().collect();
        v.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        v.into_iter().take(n).map(|(t, _)| t.clone()).collect()
    }

    /// Usage share (%) of `tld` on `date`.
    pub fn share(&self, date: Date, tld: &str) -> Option<f64> {
        let counts = self.days.get(&date)?;
        let total = *self.totals.get(&date)? as f64;
        Some(100.0 * *counts.get(tld).unwrap_or(&0) as f64 / total.max(1.0))
    }

    /// All observed dates in order.
    pub fn dates(&self) -> impl Iterator<Item = Date> + '_ {
        self.days.keys().copied()
    }
}

impl FrameObserver for TldUsageSeries {
    fn begin_frame(&mut self, _frame: &SweepFrame, _snap: &InternerSnap<'_>) {
        self.scratch.clear();
        self.scratch_total = 0;
    }

    fn observe_record(&mut self, rec: &RecordView<'_>, snap: &InternerSnap<'_>) {
        let ns = rec.ns_name_syms();
        if ns.is_empty() {
            return;
        }
        self.scratch_total += 1;
        let mut tlds: Vec<TldSym> = ns.iter().map(|&n| snap.tld_of(n)).collect();
        tlds.sort_unstable();
        tlds.dedup();
        for t in tlds {
            *self.scratch.entry(t).or_default() += 1;
        }
    }

    fn end_frame(&mut self, frame: &SweepFrame, snap: &InternerSnap<'_>) {
        let counts: BTreeMap<String, u64> = self
            .scratch
            .iter()
            .map(|(&t, &n)| (snap.tld(t).to_owned(), n))
            .collect();
        self.days.insert(frame.date, counts);
        self.totals.insert(frame.date, self.scratch_total);
        self.scratch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_scan::{DomainDay, SweepStats};

    fn rec(domain: &str, ns: &[&str]) -> DomainDay {
        DomainDay {
            domain: domain.parse().unwrap(),
            ns_names: ns.iter().map(|s| s.parse().unwrap()).collect(),
            ns_addrs: vec![],
            apex_addrs: vec![],
        }
    }

    fn sweep(date: Date, domains: Vec<DomainDay>) -> DailySweep {
        DailySweep {
            date,
            domains,
            stats: SweepStats::default(),
            metrics: Default::default(),
        }
    }

    #[test]
    fn dependency_classification() {
        let d = Date::from_ymd(2022, 1, 1);
        let s = sweep(
            d,
            vec![
                rec("a.ru", &["ns1.reg.ru", "ns2.reg.ru"]),
                rec("b.ru", &["ns1.beget.ru", "ns2.beget.pro"]),
                rec("c.ru", &["alla.ns.cloudflare.com"]),
                rec("d.xn--p1ai", &["ns1.reg.ru"]),
                rec("e.ru", &[]),
            ],
        );
        let mut series = TldDependencySeries::new();
        series.observe(&s);
        let c = series.at(d).unwrap();
        assert_eq!((c.full, c.partial, c.non, c.unknown), (2, 1, 1, 1));
    }

    #[test]
    fn rf_tld_counts_as_russian() {
        let d = Date::from_ymd(2022, 1, 1);
        let s = sweep(d, vec![rec("a.ru", &["ns1.dns.xn--p1ai"])]);
        let mut series = TldDependencySeries::new();
        series.observe(&s);
        assert_eq!(series.at(d).unwrap().full, 1);
    }

    #[test]
    fn net_change() {
        let mut series = TldDependencySeries::new();
        series.observe(&sweep(
            Date::from_ymd(2022, 1, 1),
            vec![rec("a.ru", &["ns1.x.ru"]), rec("b.ru", &["ns1.y.com"])],
        ));
        series.observe(&sweep(
            Date::from_ymd(2022, 2, 1),
            vec![rec("a.ru", &["ns1.x.com"]), rec("b.ru", &["ns1.y.com"])],
        ));
        let (df, dp, dn) = series.net_change().unwrap();
        assert!((df - -50.0).abs() < 1e-9);
        assert!((dp - 0.0).abs() < 1e-9);
        assert!((dn - 50.0).abs() < 1e-9);
    }

    #[test]
    fn usage_counts_each_domain_once_per_tld() {
        let d = Date::from_ymd(2022, 1, 1);
        let s = sweep(
            d,
            vec![
                // Two .ru NS: counts once for .ru.
                rec("a.ru", &["ns1.reg.ru", "ns2.reg.ru"]),
                rec("b.ru", &["ns1.beget.ru", "ns2.beget.pro"]),
                rec("c.ru", &["x.cloudflare.com", "y.cloudflare.com"]),
            ],
        );
        let mut usage = TldUsageSeries::new();
        usage.observe(&s);
        assert_eq!(usage.share(d, "ru"), Some(100.0 * 2.0 / 3.0));
        assert_eq!(usage.share(d, "pro"), Some(100.0 / 3.0));
        assert_eq!(usage.share(d, "com"), Some(100.0 / 3.0));
        assert_eq!(usage.share(d, "net"), Some(0.0));
        assert_eq!(usage.distinct_tlds(), 3);
        assert_eq!(usage.top_tlds(2), vec!["ru".to_owned(), "com".to_owned()]);
    }

    #[test]
    fn shares_can_exceed_100_in_total() {
        let d = Date::from_ymd(2022, 1, 1);
        let s = sweep(
            d,
            vec![rec("a.ru", &["ns1.x.ru", "ns2.x.com", "ns3.x.net"])],
        );
        let mut usage = TldUsageSeries::new();
        usage.observe(&s);
        let sum = usage.share(d, "ru").unwrap()
            + usage.share(d, "com").unwrap()
            + usage.share(d, "net").unwrap();
        assert!((sum - 300.0).abs() < 1e-9);
    }
}
