//! Rendering: ASCII tables and TSV series.
//!
//! Everything the benches and the `repro` binary print goes through these
//! two small builders so output stays consistent and machine-consumable.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Format a percentage like the paper (two decimals, `%` suffix).
pub fn format_pct(v: f64) -> String {
    format!("{v:.2}%")
}

/// Format a count with the paper's `k` / `M` suffixes.
pub fn format_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 10_000 {
        format!("{:.0}k", v as f64 / 1e3)
    } else if v >= 1_000 {
        format!("{:.1}k", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

/// An ASCII table builder.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with box-drawing rules and per-column alignment (numbers
    /// right, text left).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let numericish = |s: &str| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_digit() || ".,%kM-+()".contains(c))
        };
        let align: Vec<bool> = (0..cols)
            .map(|i| {
                self.rows
                    .iter()
                    .all(|r| r[i].is_empty() || numericish(&r[i]))
            })
            .collect();

        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let rule = |out: &mut String| {
            let _ = write!(out, "+");
            for w in &widths {
                let _ = write!(out, "{}+", "-".repeat(w + 2));
            }
            let _ = writeln!(out);
        };
        let emit = |out: &mut String, cells: &[String]| {
            let _ = write!(out, "|");
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                if align[i] {
                    let _ = write!(out, " {}{} |", " ".repeat(pad), c);
                } else {
                    let _ = write!(out, " {}{} |", c, " ".repeat(pad));
                }
            }
            let _ = writeln!(out);
        };
        rule(&mut out);
        emit(&mut out, &self.headers);
        rule(&mut out);
        for row in &self.rows {
            emit(&mut out, row);
        }
        rule(&mut out);
        out
    }
}

/// A TSV time-series / data-series builder (one header line, tab-separated
/// rows) — trivially plottable.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Series {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Series {
    /// New series with column names.
    pub fn new<S: Into<String>>(name: S, columns: &[&str]) -> Self {
        Series {
            name: name.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one data row.
    pub fn push<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Render as TSV with a `# name` comment line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.name);
        let _ = writeln!(out, "{}", self.columns.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_pcts() {
        assert_eq!(format_count(42), "42");
        assert_eq!(format_count(1_234), "1.2k");
        assert_eq!(format_count(76_000), "76k");
        assert_eq!(format_count(6_586_000), "6586k");
        assert_eq!(format_count(15_000_000), "15.0M");
        assert_eq!(format_pct(91.578), "91.58%");
        assert_eq!(format_pct(0.061), "0.06%");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Issuing activity", &["Issuer Org.", "# Certs", "(%)"]);
        t.row(["Let's Encrypt", "6586k", "91.58%"]);
        t.row(["DigiCert", "244k", "3.40%"]);
        let s = t.render();
        assert!(s.contains("## Issuing activity"));
        assert!(s.contains("| Let's Encrypt |"));
        // Numeric columns right-aligned: "3.40%" should be padded left.
        assert!(s.contains("|  3.40% |") || s.contains("| 3.40% |"));
        assert_eq!(t.len(), 2);
        // Every line same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.row(["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn series_renders_tsv() {
        let mut s = Series::new("fig1", &["date", "full", "partial", "non"]);
        s.push(["2022-02-24", "67.0", "16.5", "16.5"]);
        let out = s.render();
        assert!(out.starts_with("# fig1\n"));
        assert!(out.contains("date\tfull\tpartial\tnon"));
        assert!(out.contains("2022-02-24\t67.0\t16.5\t16.5"));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
