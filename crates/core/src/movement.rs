//! Domain movement between two measurement dates for one hosting network
//! (Figures 6 and 7; §3.4 Cloudflare/Google text).
//!
//! Given two sweeps and a subject ASN, classify:
//!
//! * domains in the ASN on date A: **remained** / **relocated** (with
//!   destination ASNs) / **gone** (no longer resolving or registered);
//! * domains in the ASN on date B but not on date A: **relocated in**
//!   (existed on date A elsewhere) vs **newly registered** (absent from
//!   the date-A seed set — the paper confirmed registration dates with
//!   Cisco's Whois API; our registry data plays that role).

use ruwhere_scan::DailySweep;
use ruwhere_store::{Interner, SweepFrame, Sym};
use ruwhere_types::{Asn, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Where a domain that left went.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Movement {
    /// Still in the subject ASN on date B.
    Remained,
    /// Resolving into different ASN(s) on date B.
    RelocatedTo(Vec<Asn>),
    /// Present on date B but without usable A records.
    Unresolved,
    /// No longer in the date-B dataset at all (lapsed/suspended).
    Gone,
}

/// The full movement report between two sweeps for one ASN.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MovementReport {
    /// The subject network.
    pub asn: Asn,
    /// Domains in the ASN on date A, with their outcomes.
    pub outcomes: BTreeMap<DomainName, Movement>,
    /// Arrivals on date B that existed (elsewhere) on date A.
    pub relocated_in: Vec<DomainName>,
    /// Arrivals on date B that were not in the date-A dataset.
    pub newly_registered: Vec<DomainName>,
}

impl MovementReport {
    /// Analyze movement for `asn` between `a` (earlier) and `b` (later).
    ///
    /// Row-form compatibility path: columnarises both sweeps through an
    /// ephemeral interner and delegates to
    /// [`MovementReport::analyze_frames`].
    pub fn analyze(a: &DailySweep, b: &DailySweep, asn: Asn) -> Self {
        let interner = Interner::new();
        let fa = SweepFrame::from_daily_sweep(a, &interner);
        let fb = SweepFrame::from_daily_sweep(b, &interner);
        Self::analyze_frames(&fa, &fb, asn, &interner)
    }

    /// Analyze movement for `asn` between frames `a` (earlier) and `b`
    /// (later), both built by `interner`.
    ///
    /// The whole comparison runs on `u32` symbols; domain names are only
    /// materialised (an `Arc` bump each) for the entries that make it into
    /// the report.
    pub fn analyze_frames(a: &SweepFrame, b: &SweepFrame, asn: Asn, interner: &Interner) -> Self {
        let snap = interner.snapshot();
        let asns_of = |frame: &SweepFrame| -> HashMap<Sym, Vec<Asn>> {
            frame
                .records()
                .map(|rec| {
                    let mut asns: Vec<Asn> =
                        rec.apex_addrs().asns().iter().filter_map(|x| *x).collect();
                    asns.sort_unstable();
                    asns.dedup();
                    (rec.domain_sym(), asns)
                })
                .collect()
        };
        let map_a = asns_of(a);
        let map_b = asns_of(b);

        let mut outcomes = BTreeMap::new();
        for (&sym, asns) in &map_a {
            if !asns.contains(&asn) {
                continue;
            }
            let outcome = match map_b.get(&sym) {
                None => Movement::Gone,
                Some(asns_b) if asns_b.contains(&asn) => Movement::Remained,
                Some(asns_b) if asns_b.is_empty() => Movement::Unresolved,
                Some(asns_b) => Movement::RelocatedTo(asns_b.clone()),
            };
            outcomes.insert(snap.name(sym).clone(), outcome);
        }

        let mut relocated_in = Vec::new();
        let mut newly_registered = Vec::new();
        for (&sym, asns_b) in &map_b {
            if !asns_b.contains(&asn) {
                continue;
            }
            match map_a.get(&sym) {
                // In the ASN on date A too: already classified above.
                Some(asns_a) if asns_a.contains(&asn) => {}
                Some(_) => relocated_in.push(snap.name(sym).clone()),
                None => newly_registered.push(snap.name(sym).clone()),
            }
        }
        relocated_in.sort();
        newly_registered.sort();

        MovementReport {
            asn,
            outcomes,
            relocated_in,
            newly_registered,
        }
    }

    /// Count of domains in the ASN on date A.
    pub fn original(&self) -> usize {
        self.outcomes.len()
    }

    /// Count that remained.
    pub fn remained(&self) -> usize {
        self.outcomes
            .values()
            .filter(|m| matches!(m, Movement::Remained))
            .count()
    }

    /// Count that relocated to a different ASN.
    pub fn relocated(&self) -> usize {
        self.outcomes
            .values()
            .filter(|m| matches!(m, Movement::RelocatedTo(_)))
            .count()
    }

    /// Count gone or unresolved.
    pub fn lost(&self) -> usize {
        self.outcomes
            .values()
            .filter(|m| matches!(m, Movement::Gone | Movement::Unresolved))
            .count()
    }

    /// Destination ASN histogram for relocated domains.
    pub fn destinations(&self) -> BTreeMap<Asn, usize> {
        let mut hist = BTreeMap::new();
        for m in self.outcomes.values() {
            if let Movement::RelocatedTo(asns) = m {
                for a in asns {
                    *hist.entry(*a).or_default() += 1;
                }
            }
        }
        hist
    }

    /// Fraction (0-1) of relocated domains whose destinations include
    /// `asn` — e.g. the intra-Google share of footnote 11.
    pub fn relocated_share_to(&self, asn: Asn) -> f64 {
        let relocated = self.relocated();
        if relocated == 0 {
            return 0.0;
        }
        let to = self
            .outcomes
            .values()
            .filter(|m| matches!(m, Movement::RelocatedTo(v) if v.contains(&asn)))
            .count();
        to as f64 / relocated as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruwhere_scan::{AddrInfo, DomainDay, SweepStats};
    use ruwhere_types::Date;

    fn rec(domain: &str, asns: &[u32]) -> DomainDay {
        DomainDay {
            domain: domain.parse().unwrap(),
            ns_names: vec![],
            ns_addrs: vec![],
            apex_addrs: asns
                .iter()
                .enumerate()
                .map(|(i, a)| AddrInfo {
                    ip: format!("10.9.0.{}", i + 1).parse().unwrap(),
                    country: None,
                    asn: Some(Asn(*a)),
                })
                .collect(),
        }
    }

    fn sweep(domains: Vec<DomainDay>) -> DailySweep {
        DailySweep {
            date: Date::from_ymd(2022, 3, 8),
            domains,
            stats: SweepStats::default(),
            metrics: Default::default(),
        }
    }

    #[test]
    fn full_classification() {
        let a = sweep(vec![
            rec("stay.ru", &[16509]),
            rec("move.ru", &[16509]),
            rec("die.ru", &[16509]),
            rec("dark.ru", &[16509]),
            rec("other.ru", &[13335]),
        ]);
        let b = sweep(vec![
            rec("stay.ru", &[16509]),
            rec("move.ru", &[29802]),
            rec("dark.ru", &[]),
            rec("other.ru", &[16509]),   // relocated in
            rec("freshie.ru", &[16509]), // newly registered
        ]);
        let report = MovementReport::analyze(&a, &b, Asn(16509));
        assert_eq!(report.original(), 4);
        assert_eq!(report.remained(), 1);
        assert_eq!(report.relocated(), 1);
        assert_eq!(report.lost(), 2);
        assert_eq!(report.relocated_in, vec!["other.ru".parse().unwrap()]);
        assert_eq!(report.newly_registered, vec!["freshie.ru".parse().unwrap()]);
        assert_eq!(report.destinations().get(&Asn(29802)), Some(&1));
        assert_eq!(
            report.outcomes.get(&"die.ru".parse().unwrap()),
            Some(&Movement::Gone)
        );
        assert_eq!(
            report.outcomes.get(&"dark.ru".parse().unwrap()),
            Some(&Movement::Unresolved)
        );
    }

    #[test]
    fn split_hosted_remainer() {
        // A domain adding a second provider but keeping the subject ASN
        // counts as remained.
        let a = sweep(vec![rec("x.ru", &[16509])]);
        let b = sweep(vec![rec("x.ru", &[16509, 29802])]);
        let report = MovementReport::analyze(&a, &b, Asn(16509));
        assert_eq!(report.remained(), 1);
        assert_eq!(report.relocated(), 0);
    }

    #[test]
    fn intra_provider_share() {
        let a = sweep(vec![
            rec("g1.ru", &[15169]),
            rec("g2.ru", &[15169]),
            rec("g3.ru", &[15169]),
            rec("g4.ru", &[15169]),
        ]);
        let b = sweep(vec![
            rec("g1.ru", &[396982]),
            rec("g2.ru", &[396982]),
            rec("g3.ru", &[396982]),
            rec("g4.ru", &[24940]),
        ]);
        let report = MovementReport::analyze(&a, &b, Asn(15169));
        assert_eq!(report.relocated(), 4);
        assert!((report.relocated_share_to(Asn(396982)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_subject() {
        let a = sweep(vec![rec("a.ru", &[1])]);
        let b = sweep(vec![rec("a.ru", &[1])]);
        let report = MovementReport::analyze(&a, &b, Asn(999));
        assert_eq!(report.original(), 0);
        assert_eq!(report.relocated_share_to(Asn(1)), 0.0);
    }
}
