//! Log-linear `u64` histograms with deterministic bucket boundaries.

/// Number of linear sub-buckets per power-of-two tier (and the width of
/// the initial exact range). Must be a power of two.
const SUBS: u64 = 16;
/// `log2(SUBS)`.
const SUB_BITS: u32 = 4;

/// A log-linear histogram of `u64` values (HDR-histogram style).
///
/// Values `0..16` land in exact unit buckets; above that, each
/// power-of-two tier `[2^t, 2^{t+1})` is split into 16 linear sub-buckets,
/// bounding relative error at 1/16 (6.25%). Bucket boundaries are a pure
/// function of the value, so two histograms fed the same multiset of
/// values — in any order, on any machine — are structurally identical.
///
/// [`merge`](Histogram::merge) is element-wise `u64` addition of bucket
/// counts plus min/max/sum folds: commutative and associative, which is
/// what makes per-worker histograms safe to combine in any shard order.
///
/// The bucket vector grows on demand to `bucket_index(max recorded) + 1`
/// and never shrinks, so equality of recorded multisets implies equality
/// of the backing vectors and the derived `Eq` is semantic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for a value. Total order preserving across bucket
/// boundaries: `a <= b` implies `bucket_index(a) <= bucket_index(b)`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let tier = 63 - v.leading_zeros() as usize; // >= SUB_BITS
        let sub = ((v >> (tier as u32 - SUB_BITS)) & (SUBS - 1)) as usize;
        (tier - SUB_BITS as usize + 1) * SUBS as usize + sub
    }
}

/// Inclusive lower bound of a bucket (the smallest value that maps to it).
fn bucket_lo(idx: usize) -> u64 {
    let subs = SUBS as usize;
    if idx < subs {
        idx as u64
    } else {
        let tier = idx / subs - 1 + SUB_BITS as usize;
        let sub = (idx % subs) as u64;
        (SUBS + sub) << (tier as u32 - SUB_BITS)
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum += v * n;
    }

    /// Fold another histogram in. Element-wise bucket addition plus
    /// min/max/sum folds — commutative and associative, so any merge tree
    /// over the same leaf histograms yields an identical result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q` (in per-mille, 0..=1000): the lower bound
    /// of the first bucket whose cumulative count reaches `q`/1000 of the
    /// total. Integer arithmetic throughout — no float rounding can make
    /// two structurally equal histograms disagree. Returns 0 when empty.
    pub fn quantile_permille(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Ceiling of count*q/1000, clamped to at least 1 observation.
        let target = ((self.count as u128 * q as u128).div_ceil(1000) as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_lo(idx).max(self.min);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_lo(idx), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_sixteen() {
        for v in 0..SUBS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_monotone() {
        // Every bucket's lower bound maps back to that bucket, and the
        // index function is monotone across five decades of values.
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            63,
            64,
            100,
            255,
            256,
            1000,
            4095,
            4096,
            65535,
            65536,
            1_000_000,
            120_000_000,
            u64::MAX / 2,
        ] {
            let idx = bucket_index(v);
            assert!(idx >= prev, "monotone violated at {v}");
            prev = idx;
            let lo = bucket_lo(idx);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            assert_eq!(bucket_index(lo), idx, "round trip at {v}");
            // Relative error of the bucket floor is bounded by 1/16.
            if v >= SUBS {
                assert!(v - lo <= v / SUBS, "error too large at {v}: lo {lo}");
            }
        }
    }

    #[test]
    fn every_boundary_in_first_tiers_round_trips() {
        // Exhaustive check across the first few tiers: indices are dense
        // (no holes) and each lower bound is the first value of its bucket.
        let mut expected = 0usize;
        let mut v = 0u64;
        while v < 4096 {
            let idx = bucket_index(v);
            if idx == expected {
                assert_eq!(bucket_lo(idx), v, "bucket {idx} floor");
                expected += 1;
            } else {
                assert_eq!(idx, expected - 1, "hole before value {v}");
            }
            v += 1;
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let series: [&[u64]; 3] = [&[1, 5, 900, 16], &[17, 17, 120_000], &[3, 1_000_000, 31]];
        let hist = |values: &[u64]| {
            let mut h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let [a, b, c] = [hist(series[0]), hist(series[1]), hist(series[2])];

        // (a+b)+c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a+(b+c)
        let mut right = b.clone();
        right.merge(&c);
        let mut right2 = a.clone();
        right2.merge(&right);
        // c+a+b (commuted)
        let mut comm = c.clone();
        comm.merge(&a);
        comm.merge(&b);

        assert_eq!(left, right2);
        assert_eq!(left, comm);
        // And equals the single-pass histogram over the concatenation.
        let mut all: Vec<u64> = Vec::new();
        for s in series {
            all.extend_from_slice(s);
        }
        assert_eq!(left, hist(&all));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn stats_and_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 100_000);
        assert_eq!(h.sum(), (1..=100u64).map(|v| v * 1000).sum::<u64>());
        let p50 = h.quantile_permille(500);
        // 6.25% bucket floors: p50 must land within one bucket of 50_000.
        assert!((46_000..=50_000).contains(&p50), "p50 {p50}");
        let p100 = h.quantile_permille(1000);
        assert!((93_000..=100_000).contains(&p100), "p100 {p100}");
        assert_eq!(Histogram::new().quantile_permille(500), 0);
    }

    #[test]
    fn equal_multisets_give_equal_vectors() {
        // Recording the same values in different orders must yield
        // derived-Eq equality (backing vectors included).
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [9u64, 100_000, 17, 0, 255] {
            a.record(v);
        }
        for v in [255u64, 0, 17, 100_000, 9] {
            b.record(v);
        }
        assert_eq!(a, b);
    }
}
