//! # ruwhere-obs
//!
//! Deterministic observability primitives for the ruwhere pipeline.
//!
//! Everything in this crate is keyed to the *simulator's* virtual clock —
//! there is deliberately no `std::time` anywhere. Metrics record virtual
//! microseconds (`netsim`'s `SimTime` domain), never wall time, so a
//! metric value is a property of the simulated world and the seed, not of
//! the machine the sweep ran on.
//!
//! The second invariant is *associativity*: every aggregate in this crate
//! ([`Counter`], [`Histogram`], [`Recorder`]) merges by element-wise `u64`
//! addition, which is commutative and associative. A sweep sharded across
//! N workers therefore produces byte-identical merged metrics for any N —
//! the same contract the sweep engine already holds for its measurement
//! output (`DailySweep`), extended to its telemetry.
//!
//! Layers:
//!
//! * [`Counter`] — a lock-free monotone counter for genuinely shared
//!   state (e.g. the cross-worker NS cache); plain `u64` fields are
//!   preferred wherever a `&mut` path exists.
//! * [`Histogram`] — a log-linear (HDR-style) histogram of `u64` values
//!   with deterministic bucket boundaries and ≤ 1/16 relative error.
//! * [`Recorder`] — a string-keyed bag of counters and histograms with a
//!   span helper, used by subsystems that want ad-hoc named metrics.
//! * [`json`] — deterministic JSON rendering helpers (stable key order,
//!   no floats in values), so exported metric files are byte-comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
pub mod json;
mod recorder;

pub use counter::Counter;
pub use histogram::Histogram;
pub use recorder::{Recorder, Span};
