//! Deterministic JSON rendering for metric exports.
//!
//! The workspace's serde shim is marker-only, so metric files are rendered
//! by hand — which is also what makes the byte-identical contract easy to
//! audit: keys appear in fixed (sorted) order and every value is a `u64`,
//! so there is no float formatting or map-ordering nondeterminism anywhere
//! in an exported file.

use std::fmt::Write;

use crate::{Histogram, Recorder};

/// Append a histogram as a JSON object:
/// `{"count":…,"sum":…,"min":…,"max":…,"p50":…,"p90":…,"p99":…,"buckets":[[lo,count],…]}`.
///
/// Percentile values are bucket lower bounds (integer arithmetic), and
/// `buckets` lists only non-empty buckets in value order.
pub fn push_histogram(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        h.quantile_permille(500),
        h.quantile_permille(900),
        h.quantile_permille(990),
    );
    for (i, (lo, n)) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{lo},{n}]");
    }
    out.push_str("]}");
}

/// Append a recorder as a JSON object with sorted keys:
/// `{"counters":{"k":v,…},"histograms":{"k":{…},…}}`.
pub fn push_recorder(out: &mut String, rec: &Recorder) {
    out.push_str("{\"counters\":{");
    for (i, (k, v)) in rec.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in rec.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        push_histogram(out, h);
    }
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_sorted() {
        let mut a = Recorder::new();
        a.incr("zeta");
        a.incr("alpha");
        a.record("lat_us", 40);
        a.record("lat_us", 17);
        let mut out = String::new();
        push_recorder(&mut out, &a);
        assert!(out.starts_with("{\"counters\":{\"alpha\":1,\"zeta\":1}"));
        assert!(out.contains("\"lat_us\":{\"count\":2,\"sum\":57,\"min\":17,\"max\":40"));

        // Same data recorded in another order renders byte-identically.
        let mut b = Recorder::new();
        b.record("lat_us", 17);
        b.incr("alpha");
        b.record("lat_us", 40);
        b.incr("zeta");
        let mut out2 = String::new();
        push_recorder(&mut out2, &b);
        assert_eq!(out, out2);
    }

    #[test]
    fn empty_histogram_renders_zeroes() {
        let mut out = String::new();
        push_histogram(&mut out, &Histogram::new());
        assert_eq!(
            out,
            "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"p50\":0,\"p90\":0,\"p99\":0,\"buckets\":[]}"
        );
    }
}
