//! Span-scoped, associatively-mergeable metric recorders.

use std::collections::BTreeMap;

use crate::Histogram;

/// A named bag of counters and histograms owned by one worker (or one
/// subsystem) and merged associatively after the fan-in.
///
/// Keys are `&'static str` metric names — the vocabulary is fixed at
/// compile time, which keeps the hot path allocation-free and the merged
/// key set identical across worker counts. Storage is `BTreeMap`, so
/// iteration (and therefore JSON export) is in deterministic key order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recorder {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Recorder {
    /// A fresh empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Add one to counter `key`.
    #[inline]
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Add `n` to counter `key`.
    #[inline]
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Record `v` into histogram `key`.
    #[inline]
    pub fn record(&mut self, key: &'static str, v: u64) {
        self.histograms.entry(key).or_default().record(v);
    }

    /// Open a span at virtual time `start_us`; close it with
    /// [`Span::end`] to record the elapsed virtual time.
    pub fn span(start_us: u64) -> Span {
        Span { start_us }
    }

    /// Current value of counter `key` (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Histogram `key`, if anything was recorded under it.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, h)| (k, h))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold another recorder in: counters add, histograms merge. Both
    /// operations are commutative and associative, so any merge order over
    /// per-worker recorders produces an identical result.
    pub fn merge(&mut self, other: &Recorder) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }
}

/// An open span over virtual time. Created by [`Recorder::span`].
#[derive(Debug, Clone, Copy)]
pub struct Span {
    start_us: u64,
}

impl Span {
    /// Close the span at virtual time `now_us`, recording the elapsed
    /// virtual microseconds into histogram `key` of `rec`.
    pub fn end(self, rec: &mut Recorder, key: &'static str, now_us: u64) {
        rec.record(key, now_us.saturating_sub(self.start_us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_matches_single_recorder() {
        let mut a = Recorder::new();
        let mut b = Recorder::new();
        let mut whole = Recorder::new();
        for (rec, vals) in [(&mut a, [5u64, 80]), (&mut b, [17, 2])] {
            for v in vals {
                rec.incr("events");
                rec.record("latency_us", v);
                whole.incr("events");
                whole.record("latency_us", v);
            }
        }
        let mut merged = Recorder::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
        // Commuted merge order gives the identical result.
        let mut swapped = Recorder::new();
        swapped.merge(&b);
        swapped.merge(&a);
        assert_eq!(swapped, whole);
        assert_eq!(merged.counter("events"), 4);
        assert_eq!(merged.histogram("latency_us").unwrap().count(), 4);
    }

    #[test]
    fn span_records_elapsed_virtual_time() {
        let mut rec = Recorder::new();
        let span = Recorder::span(1_000);
        span.end(&mut rec, "op_us", 4_500);
        assert_eq!(rec.histogram("op_us").unwrap().sum(), 3_500);
        // Clock can't run backwards, but a span must not panic if handed
        // a stale close time.
        Recorder::span(10).end(&mut rec, "op_us", 5);
        assert_eq!(rec.histogram("op_us").unwrap().count(), 2);
    }
}
