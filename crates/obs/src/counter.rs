//! Lock-free monotone counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free monotone event counter.
///
/// Intended for state genuinely shared across sweep workers (for example
/// the cross-worker NS-dependency cache): increments are relaxed atomic
/// adds, so contention never serializes the hot path. Because addition is
/// commutative, the final value is independent of interleaving — the
/// determinism contract cares about *totals*, and totals are exact.
///
/// Where a `&mut` path exists, prefer a plain `u64` field; `Counter` is
/// for the `&self` surfaces.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (e.g. at the start of a sweep).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for Counter {
    fn clone(&self) -> Counter {
        Counter(AtomicU64::new(self.get()))
    }
}

impl PartialEq for Counter {
    fn eq(&self, other: &Counter) -> bool {
        self.get() == other.get()
    }
}

impl Eq for Counter {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.incr();
                }
                c.add(5);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4 * 1005);
        c.reset();
        assert_eq!(c.get(), 0);
    }
}
