//! Integration tests: build a tiny world, evolve it across the conflict
//! window, and observe it through the network the way a scanner would.

use ruwhere_authdns::IterativeResolver;
use ruwhere_dns::{Name, RType};
use ruwhere_types::{Date, DomainName};
use ruwhere_world::{ConflictEvent, DnsPlan, World, WorldConfig};

fn tiny_world() -> World {
    World::new(WorldConfig::tiny())
}

#[test]
fn world_builds_with_expected_population() {
    let w = tiny_world();
    let cfg = w.config().clone();
    // population = initial + parking portfolio (~0.3%) + sanctioned overlay
    let portfolio = (cfg.initial_population as f64 * 0.003).ceil() as usize;
    assert_eq!(
        w.population(),
        cfg.initial_population + portfolio + cfg.sanctioned_count
    );
    assert_eq!(w.sanctions().len(), cfg.sanctioned_count);
    assert_eq!(w.today(), cfg.start);
    // Both registries populated; .рф a minority.
    let ru = w.registries()[0].count();
    let rf = w.registries()[1].count();
    assert!(ru > rf, "ru={ru} rf={rf}");
    assert!(rf > 0);
}

#[test]
fn seed_names_are_sorted_and_complete() {
    let w = tiny_world();
    let seeds = w.seed_names();
    let mut sorted = seeds.clone();
    sorted.sort();
    assert_eq!(seeds, sorted);
    // Seeds include the sanctioned domains and infra domains like reg.ru.
    assert!(seeds
        .iter()
        .any(|d| d.as_str().starts_with("sanctioned-entity-")));
    assert!(seeds.iter().any(|d| d.as_str() == "reg.ru"));
}

#[test]
fn end_to_end_resolution_through_simulated_internet() {
    let mut w = tiny_world();
    w.publish_tld_zones();
    let mut resolver = IterativeResolver::new(w.scanner_ip(), w.root_hints());

    // Pick an ordinary managed-plan domain from ground truth.
    let seeds = w.seed_names();
    let target: DomainName = seeds
        .iter()
        .find(|d| {
            w.domain_state(d)
                .is_some_and(|s| matches!(s.dns, DnsPlan::Managed(_)))
        })
        .expect("some managed domain exists")
        .clone();
    let truth_ip = w.domain_state(&target).unwrap().hosting.primary_ip;

    let qname = Name::from(&target);
    let res = resolver
        .resolve(w.network_mut(), &qname, RType::A)
        .expect("resolution should succeed");
    assert_eq!(res.addresses(), vec![truth_ip]);

    // NS resolution returns the plan's name servers.
    let res = resolver
        .resolve(w.network_mut(), &qname, RType::Ns)
        .expect("NS resolution should succeed");
    assert!(!res.ns_targets().is_empty());

    // And the NS hosts' addresses resolve too.
    for ns in res.ns_targets() {
        let a = resolver
            .resolve(w.network_mut(), &ns, RType::A)
            .unwrap_or_else(|e| panic!("NS host {ns} failed: {e:?}"));
        assert!(!a.addresses().is_empty(), "no address for NS host {ns}");
    }
}

#[test]
fn vanity_dns_domains_resolve() {
    let mut w = tiny_world();
    w.publish_tld_zones();
    let seeds = w.seed_names();
    let vanity: Vec<DomainName> = seeds
        .iter()
        .filter(|d| {
            w.domain_state(d)
                .is_some_and(|s| matches!(s.dns, DnsPlan::VanityOwn | DnsPlan::VanityExotic(_)))
        })
        .cloned()
        .collect();
    assert!(
        !vanity.is_empty(),
        "tiny world should have vanity-NS domains"
    );
    let mut resolver = IterativeResolver::new(w.scanner_ip(), w.root_hints());
    let mut resolved = 0;
    for d in vanity.iter().take(5) {
        let truth_ip = w.domain_state(d).unwrap().hosting.primary_ip;
        let res = resolver.resolve(w.network_mut(), &Name::from(d), RType::A);
        if let Ok(r) = res {
            assert_eq!(r.addresses(), vec![truth_ip], "wrong address for {d}");
            resolved += 1;
        }
    }
    assert!(resolved > 0, "no vanity domain resolved");
}

#[test]
fn netnod_event_rehomes_cloud_hosts() {
    let mut w = tiny_world();
    let netnod_date = w.timeline().date_of(ConflictEvent::NetnodRehoming).unwrap();

    // Resolve ns4-cloud.nic.ru before and after the event.
    w.publish_tld_zones();
    let mut resolver = IterativeResolver::new(w.scanner_ip(), w.root_hints());
    let host: Name = "ns4-cloud.nic.ru".parse().unwrap();
    let before = resolver
        .resolve(w.network_mut(), &host, RType::A)
        .expect("pre-event resolution")
        .addresses();
    assert_eq!(before.len(), 1);
    let cc_before = w.geo().lookup(w.today(), before[0]).unwrap();
    assert_eq!(
        cc_before.code(),
        "SE",
        "cloud host starts at Netnod (Sweden)"
    );

    w.advance_to(netnod_date);
    w.publish_tld_zones();
    resolver.clear_cache();
    let after = resolver
        .resolve(w.network_mut(), &host, RType::A)
        .expect("post-event resolution")
        .addresses();
    assert_eq!(after.len(), 1);
    assert_ne!(after[0], before[0], "IP must change");
    let cc_after = w.geo().lookup(w.today(), after[0]).unwrap();
    assert_eq!(cc_after.code(), "RU", "cloud host re-homed to Russia");
}

#[test]
fn certificates_flow_into_ct_log_and_endpoints() {
    let mut w = tiny_world();
    w.advance_to(Date::from_ymd(2022, 2, 1));
    assert!(
        w.ct_log().size() > 0,
        "CT log should have entries by February"
    );

    // Russian CA issuance never reaches CT.
    let russian = w
        .ct_log()
        .entries()
        .iter()
        .filter(|e| e.cert.issuer.organization == "Russian Trusted Root CA")
        .count();
    assert_eq!(russian, 0);

    // Every CT entry matches a Russian TLD (our generator's SAN rule).
    assert!(w
        .ct_log()
        .entries()
        .iter()
        .all(|e| e.cert.matches_russian_tld()));
}

#[test]
fn ca_stops_are_enforced() {
    let mut w = tiny_world();
    w.advance_to(Date::from_ymd(2022, 4, 30));
    // DigiCert's last regular (non-leak) issuance must precede its stop
    // date; Let's Encrypt keeps issuing.
    let mut last_digicert_regular = None;
    let mut last_le = None;
    for e in w.ct_log().entries() {
        if e.cert.issuer.organization == "Let's Encrypt" {
            last_le = Some(e.timestamp);
        }
        if e.cert.issuer.organization == "DigiCert"
            && e.cert.issuer.common_name.starts_with("DigiCert")
        {
            last_digicert_regular = Some(e.timestamp);
        }
    }
    let stop = Date::from_ymd(2022, 2, 26);
    if let Some(d) = last_digicert_regular {
        assert!(d < stop, "DigiCert primary brand issued at {d} after stop");
    }
    assert!(last_le.unwrap() > Date::from_ymd(2022, 4, 15));
}

#[test]
fn sanctioned_revocation_sweeps_happen() {
    let mut w = tiny_world();
    w.advance_to(Date::from_ymd(2022, 4, 1));
    w.finalize_ocsp();
    let end = Date::from_ymd(2022, 4, 1);

    // Every sanctioned DigiCert/Sectigo certificate is revoked.
    for org in ["DigiCert", "Sectigo"] {
        let issued: Vec<u64> = w
            .issued_certificates()
            .filter(|(ca, _, _, sanctioned)| *sanctioned && w.ca_specs()[ca.0 as usize].org == org)
            .map(|(_, serial, _, _)| serial)
            .collect();
        let crl = w.ocsp().crl(org);
        for s in &issued {
            assert!(
                crl.is_some_and(|c| c.is_revoked(*s, end)),
                "{org} serial {s} not revoked"
            );
        }
    }
}

#[test]
fn russian_ca_certs_are_served_but_not_logged() {
    let mut w = tiny_world();
    w.advance_to(Date::from_ymd(2022, 5, 1));
    let russian_issued: Vec<_> = w
        .issued_certificates()
        .filter(|(ca, _, _, _)| w.ca_specs()[ca.0 as usize].org == "Russian Trusted Root CA")
        .map(|(_, s, d, sanc)| (s, d.clone(), sanc))
        .collect();
    assert!(
        !russian_issued.is_empty(),
        "Russian CA should have issued by May"
    );
    assert!(
        russian_issued.iter().any(|(_, _, sanc)| *sanc),
        "some Russian CA certs secure sanctioned domains"
    );
    // None in CT.
    assert_eq!(
        w.ct_log()
            .entries()
            .iter()
            .filter(|e| e.cert.issuer.organization == "Russian Trusted Root CA")
            .count(),
        0
    );
}

#[test]
fn population_evolves_and_stays_consistent() {
    let mut w = tiny_world();
    let p0 = w.population();
    w.advance_to(Date::from_ymd(2022, 3, 15));
    let p1 = w.population();
    // Growth plus churn keeps population in a sane band.
    assert!(
        p1 > p0 / 2 && p1 < p0 * 2,
        "population went wild: {p0} → {p1}"
    );
    // Registry and domain map agree.
    let reg_total: usize = w.registries().iter().map(|r| r.count()).sum();
    // Registries also hold infra domains (reg.ru, nic.ru, …).
    assert!(reg_total >= w.population());
    assert!(reg_total <= w.population() + 64);
}

#[test]
fn deterministic_across_runs() {
    let build = || {
        let mut w = World::new(WorldConfig::tiny());
        w.advance_to(Date::from_ymd(2022, 3, 10));
        (
            w.population(),
            w.ct_log().size(),
            w.ct_log().sth().root,
            w.seed_names().len(),
        )
    };
    assert_eq!(build(), build());
}

#[test]
fn google_intra_move_shifts_hosting() {
    let mut w = tiny_world();
    let date = w
        .timeline()
        .date_of(ConflictEvent::GoogleIntraMove)
        .unwrap();
    let count_at = |w: &World, pid: ruwhere_world::catalog::ProviderId| {
        w.seed_names()
            .iter()
            .filter(|d| w.domain_state(d).is_some_and(|s| s.hosting.primary == pid))
            .count()
    };
    w.advance_to(date.pred());
    let google_before = count_at(&w, ruwhere_world::catalog::pid::GOOGLE);
    w.advance_to(date);
    let moved = count_at(&w, ruwhere_world::catalog::pid::GOOGLE_CLOUD);
    // At tiny scale Google may have no customers at all; when it does,
    // the 2022-03-16 event must shift some of them to AS396982.
    if google_before > 0 {
        assert!(moved > 0, "no domains moved to Google-Cloud");
    }
}

#[test]
fn invariants_hold_after_build_and_evolution() {
    let mut w = tiny_world();
    let problems = w.check_invariants();
    assert!(problems.is_empty(), "after build: {problems:?}");
    w.advance_to(Date::from_ymd(2022, 4, 15));
    let problems = w.check_invariants();
    assert!(problems.is_empty(), "after evolution: {problems:?}");
}
