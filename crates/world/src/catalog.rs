//! The cast of the simulation: providers, DNS plans, and CAs, with their
//! market-share schedules.
//!
//! Every named actor from the paper appears here with its real ASN and
//! country. Market shares are piecewise-linear schedules over three anchor
//! points — study start, conflict start (2022-02-24), study end — chosen so
//! the *measured* composition trajectories land on the figures' reported
//! values. Unnamed tail providers ("RU hosting #7") fill the remaining
//! share so that totals are consistent.

use ruwhere_types::{Asn, Country, Date, CONFLICT_START, STUDY_END, STUDY_START};
use serde::{Deserialize, Serialize};

/// Index into the provider table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProviderId(pub u16);

/// Index into the DNS-plan table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlanId(pub u16);

/// Index into the CA table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CaId(pub u16);

/// A network operator: hosts web servers and/or DNS servers in its ASN.
#[derive(Debug, Clone)]
pub struct ProviderSpec {
    /// Display name.
    pub name: &'static str,
    /// Autonomous system number (real ones for the named actors).
    pub asn: Asn,
    /// Country of operation — what IP2Location reports for its prefixes.
    pub country: Country,
}

/// A piecewise-linear market-share schedule over three anchors, with an
/// optional post-conflict hold: when `hold` is set, the share stays at its
/// conflict value until that date and only then moves toward `at_end` —
/// provider exoduses start on announcement dates (Sedo: 2022-03-09), not on
/// the invasion date.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShareSchedule {
    /// Share at study start (2017-06-18).
    pub at_start: f64,
    /// Share at conflict start (2022-02-24).
    pub at_conflict: f64,
    /// Share at study end (2022-05-25).
    pub at_end: f64,
    /// Optional date until which the conflict-time share holds.
    pub hold: Option<Date>,
    /// With `hold` set: jump straight to `at_end` after the hold date
    /// (a step event like the intra-Google relocation) instead of ramping.
    pub step: bool,
}

impl ShareSchedule {
    /// Constant share.
    pub const fn flat(v: f64) -> Self {
        ShareSchedule {
            at_start: v,
            at_conflict: v,
            at_end: v,
            hold: None,
            step: false,
        }
    }

    /// Three-anchor schedule without a hold.
    pub const fn new(at_start: f64, at_conflict: f64, at_end: f64) -> Self {
        ShareSchedule {
            at_start,
            at_conflict,
            at_end,
            hold: None,
            step: false,
        }
    }

    /// Attach a post-conflict hold date.
    #[must_use]
    pub const fn hold_until(mut self, date: Date) -> Self {
        self.hold = Some(date);
        self
    }

    /// Make the post-hold transition a step instead of a ramp.
    #[must_use]
    pub const fn as_step(mut self) -> Self {
        self.step = true;
        self
    }

    /// Interpolated share on `date` (clamped outside the window).
    pub fn at(&self, date: Date) -> f64 {
        let lerp = |a: f64, b: f64, lo: Date, hi: Date| {
            let span = (hi - lo).max(1) as f64;
            let t = ((date - lo) as f64 / span).clamp(0.0, 1.0);
            a + (b - a) * t
        };
        if date <= CONFLICT_START {
            return lerp(self.at_start, self.at_conflict, STUDY_START, CONFLICT_START);
        }
        match self.hold {
            // Exclusive: on the event day itself the new regime applies
            // (the intra-Google step must be in force when the 2022-03-16
            // rebalance runs).
            Some(h) if date < h => self.at_conflict,
            Some(_) if self.step => self.at_end,
            Some(h) => lerp(self.at_conflict, self.at_end, h, STUDY_END),
            None => lerp(self.at_conflict, self.at_end, CONFLICT_START, STUDY_END),
        }
    }
}

/// One name-server host in a DNS plan.
#[derive(Debug, Clone)]
pub struct NsHostSpec {
    /// Host name (its TLD drives the Figure 2/3 dependency analysis).
    pub host: &'static str,
    /// Operator at study start. The Netnod event re-homes specific hosts.
    pub operator: &'static str,
}

/// A managed DNS offering: a fixed NS set operated by one or two providers.
#[derive(Debug, Clone)]
pub struct DnsPlanSpec {
    /// Display name.
    pub name: &'static str,
    /// The NS hosts. Their operators' countries determine the Figure 1
    /// composition; their names' TLDs determine Figures 2 and 3.
    pub ns: Vec<NsHostSpec>,
    /// Share of the population on this plan over time.
    pub share: ShareSchedule,
}

/// A certificate authority with its market-share schedule and (optional)
/// issuance-stop date.
#[derive(Debug, Clone)]
pub struct CaSpec {
    /// Issuer Organization string.
    pub org: &'static str,
    /// Country.
    pub country: Country,
    /// Issuing brands (Common Names).
    pub brands: &'static [&'static str],
    /// Share of daily Russian-TLD issuance before the conflict.
    pub share_pre_conflict: f64,
    /// Share during pre-sanctions (2022-02-24 … 2022-03-26).
    pub share_pre_sanctions: f64,
    /// Share post-sanctions.
    pub share_post_sanctions: f64,
    /// Date the CA stopped issuing for Russian TLDs (None = continues).
    pub stop_date: Option<Date>,
    /// Background revocation rate over the analysis window (Table 2 column
    /// "Revoked" as a fraction of issued).
    pub background_revocation_rate: f64,
    /// Whether the CA revoked ALL of its sanctioned-domain certificates
    /// (DigiCert and Sectigo in Table 2).
    pub revokes_all_sanctioned: bool,
    /// Whether issuance is logged to CT.
    pub logs_to_ct: bool,
    /// Validity period in days.
    pub validity_days: u32,
}

/// Number of exotic long-tail TLDs used by vanity NS names (the paper
/// observes 270 distinct NS TLDs; the named plans cover the top 5 plus
/// a handful, the tail comes from these).
pub const EXOTIC_TLD_COUNT: usize = 260;

/// Synthesized exotic TLD for index `i` (two/three-letter codes).
pub fn exotic_tld(i: usize) -> String {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    let i = i % EXOTIC_TLD_COUNT;
    if i < 130 {
        // Two-letter pseudo-ccTLDs (base-26 encoding), skipping ru.
        let code = format!("{}{}", ALPHA[i / 26] as char, ALPHA[i % 26] as char);
        if code == "ru" {
            "zz".to_owned()
        } else {
            code
        }
    } else {
        // Three-letter gTLD-ish strings.
        let j = i - 130;
        format!("{}{}x", ALPHA[j % 26] as char, ALPHA[(j / 26) % 26] as char)
    }
}

/// Build the provider table. Indices are stable across runs (the world
/// refers to providers by [`ProviderId`] = table position).
pub fn providers() -> Vec<ProviderSpec> {
    let mut v = vec![
        // --- infrastructure (roots, TLD, scanner) ---
        ProviderSpec {
            name: "Root-Servers",
            asn: Asn(397196),
            country: Country::US,
        },
        ProviderSpec {
            name: "RIPN-TLD",
            asn: Asn(3267),
            country: Country::RU,
        },
        ProviderSpec {
            name: "OpenINTEL-Scanner",
            asn: Asn(1133),
            country: Country::NL,
        },
        // --- named Russian hosters (Figure 4's stable curves) ---
        ProviderSpec {
            name: "REG.RU",
            asn: Asn::REG_RU,
            country: Country::RU,
        },
        ProviderSpec {
            name: "RU-CENTER",
            asn: Asn::RU_CENTER,
            country: Country::RU,
        },
        ProviderSpec {
            name: "Timeweb",
            asn: Asn::TIMEWEB,
            country: Country::RU,
        },
        ProviderSpec {
            name: "Beget",
            asn: Asn::BEGET,
            country: Country::RU,
        },
        // --- named Western actors ---
        ProviderSpec {
            name: "Amazon",
            asn: Asn::AMAZON,
            country: Country::US,
        },
        ProviderSpec {
            name: "Sedo",
            asn: Asn::SEDO,
            country: Country::DE,
        },
        ProviderSpec {
            name: "Cloudflare",
            asn: Asn::CLOUDFLARE,
            country: Country::US,
        },
        ProviderSpec {
            name: "Google",
            asn: Asn::GOOGLE,
            country: Country::US,
        },
        ProviderSpec {
            name: "Google-Cloud",
            asn: Asn::GOOGLE_CLOUD,
            country: Country::US,
        },
        ProviderSpec {
            name: "Serverel",
            asn: Asn::SERVEREL,
            country: Country::NL,
        },
        ProviderSpec {
            name: "Hetzner",
            asn: Asn::HETZNER,
            country: Country::DE,
        },
        ProviderSpec {
            name: "Linode",
            asn: Asn::LINODE,
            country: Country::US,
        },
        ProviderSpec {
            name: "Netnod",
            asn: Asn::NETNOD,
            country: Country::SE,
        },
        ProviderSpec {
            name: "Yandex",
            asn: Asn(13238),
            country: Country::RU,
        },
        ProviderSpec {
            name: "GoDaddy",
            asn: Asn(26496),
            country: Country::US,
        },
        // Hosts of the three never-relocating sanctioned domains.
        ProviderSpec {
            name: "DE-Haven",
            asn: Asn(64610),
            country: Country::DE,
        },
        ProviderSpec {
            name: "CZ-Haven",
            asn: Asn(64611),
            country: Country::CZ,
        },
        ProviderSpec {
            name: "EE-Haven",
            asn: Asn(64612),
            country: Country::EE,
        },
        ProviderSpec {
            name: "PL-Host",
            asn: Asn(64613),
            country: Country::PL,
        },
    ];
    // Generic Russian hosting tail.
    for i in 0..12u16 {
        v.push(ProviderSpec {
            name: Box::leak(format!("RU hosting #{}", i + 1).into_boxed_str()),
            asn: Asn(65_000 + u32::from(i)),
            country: Country::RU,
        });
    }
    // Generic Western hosting tail.
    let western = [
        Country::DE,
        Country::US,
        Country::NL,
        Country::FR,
        Country::GB,
        Country::FI,
        Country::US,
        Country::CA,
    ];
    for (i, cc) in western.iter().enumerate() {
        v.push(ProviderSpec {
            name: Box::leak(format!("Western hosting #{}", i + 1).into_boxed_str()),
            asn: Asn(65_100 + i as u32),
            country: *cc,
        });
    }
    v
}

/// Well-known provider ids (positions in [`providers`]).
pub mod pid {
    use super::ProviderId;
    /// Root name-server operator.
    pub const ROOT: ProviderId = ProviderId(0);
    /// RIPN — operator of the `.ru`/`.рф` TLD servers.
    pub const RIPN: ProviderId = ProviderId(1);
    /// The measurement vantage (OpenINTEL-style scanner, NL).
    pub const SCANNER: ProviderId = ProviderId(2);
    /// REG.RU.
    pub const REG_RU: ProviderId = ProviderId(3);
    /// RU-CENTER.
    pub const RU_CENTER: ProviderId = ProviderId(4);
    /// Timeweb.
    pub const TIMEWEB: ProviderId = ProviderId(5);
    /// Beget.
    pub const BEGET: ProviderId = ProviderId(6);
    /// Amazon (AS16509).
    pub const AMAZON: ProviderId = ProviderId(7);
    /// Sedo (AS47846).
    pub const SEDO: ProviderId = ProviderId(8);
    /// Cloudflare (AS13335).
    pub const CLOUDFLARE: ProviderId = ProviderId(9);
    /// Google (AS15169).
    pub const GOOGLE: ProviderId = ProviderId(10);
    /// Google Cloud (AS396982).
    pub const GOOGLE_CLOUD: ProviderId = ProviderId(11);
    /// Serverel (NL).
    pub const SERVEREL: ProviderId = ProviderId(12);
    /// Hetzner (DE).
    pub const HETZNER: ProviderId = ProviderId(13);
    /// Linode (US).
    pub const LINODE: ProviderId = ProviderId(14);
    /// Netnod (SE).
    pub const NETNOD: ProviderId = ProviderId(15);
    /// Yandex.
    pub const YANDEX: ProviderId = ProviderId(16);
    /// GoDaddy.
    pub const GODADDY: ProviderId = ProviderId(17);
    /// German haven hosting one never-relocating sanctioned domain.
    pub const DE_HAVEN: ProviderId = ProviderId(18);
    /// Czech haven.
    pub const CZ_HAVEN: ProviderId = ProviderId(19);
    /// Estonian haven.
    pub const EE_HAVEN: ProviderId = ProviderId(20);
    /// Polish host (two sanctioned domains start here, repatriate later).
    pub const PL_HOST: ProviderId = ProviderId(21);
    /// First generic Russian hoster.
    pub const RU_GENERIC_BASE: u16 = 22;
    /// Number of generic Russian hosters.
    pub const RU_GENERIC_COUNT: u16 = 12;
    /// First generic Western hoster.
    pub const WESTERN_GENERIC_BASE: u16 = 34;
    /// Number of generic Western hosters.
    pub const WESTERN_GENERIC_COUNT: u16 = 8;
}

fn ns(host: &'static str, operator: &'static str) -> NsHostSpec {
    NsHostSpec { host, operator }
}

/// Build the managed DNS-plan table.
///
/// Group totals (start → conflict): fully-Russian NS 67.0 % stable; partial
/// 16.5 %; non-Russian 16.5 % — then the conflict-era shifts that Figure 1
/// reports. TLD usage trends (Figure 3) are encoded in the NS host names.
pub fn dns_plans() -> Vec<DnsPlanSpec> {
    vec![
        // ---- fully-Russian NS locations (62.0 % managed at start; vanity
        // ---- .ru NS adds 5 % for the paper's 67.0 %) ----
        DnsPlanSpec {
            name: "REG.RU DNS",
            ns: vec![ns("ns1.reg.ru", "REG.RU"), ns("ns2.reg.ru", "REG.RU")],
            share: ShareSchedule::new(0.150, 0.148, 0.170),
        },
        DnsPlanSpec {
            name: "RU-CENTER standard",
            ns: vec![ns("ns1.nic.ru", "RU-CENTER"), ns("ns2.nic.ru", "RU-CENTER")],
            share: ShareSchedule::new(0.080, 0.078, 0.089),
        },
        DnsPlanSpec {
            name: "Timeweb DNS",
            ns: vec![
                ns("ns1.timeweb.ru", "Timeweb"),
                ns("ns2.timeweb.ru", "Timeweb"),
            ],
            share: ShareSchedule::new(0.075, 0.078, 0.080),
        },
        DnsPlanSpec {
            // Beget's mixed-TLD NS set: Russian IPs, but a .pro name —
            // fully-Russian in Figure 1, *partial* in Figure 2. Its growth
            // drives the .pro trend (8.8 % → 12.4 %).
            name: "Beget DNS",
            ns: vec![ns("ns1.beget.ru", "Beget"), ns("ns2.beget.pro", "Beget")],
            share: ShareSchedule::new(0.065, 0.095, 0.102),
        },
        DnsPlanSpec {
            // Yandex: Russian IPs, .net names. Decline drives .net 9.1→7.3 %.
            name: "Yandex DNS",
            ns: vec![
                ns("dns1.yandex.net", "Yandex"),
                ns("dns2.yandex.net", "Yandex"),
            ],
            share: ShareSchedule::new(0.055, 0.046, 0.042),
        },
        DnsPlanSpec {
            name: "RU tail DNS (.ru)",
            ns: vec![
                ns("ns1.ruhost.ru", "RU hosting #1"),
                ns("ns2.ruhost.ru", "RU hosting #2"),
            ],
            share: ShareSchedule::new(0.145, 0.085, 0.040),
        },
        DnsPlanSpec {
            // Russian operator under .org names: the .org share's slight
            // growth (8.2 % → 9.2 %).
            name: "RU tail DNS (.org)",
            ns: vec![
                ns("ns1.rudns.org", "RU hosting #3"),
                ns("ns2.rudns.org", "RU hosting #4"),
            ],
            share: ShareSchedule::new(0.030, 0.035, 0.040),
        },
        DnsPlanSpec {
            // Russian operators adopting .com names over the years: part of
            // the .com rise (17.2 % → 24.7 %) — Russian *location*,
            // non-Russian *TLD dependency* (Figure 2's drift).
            name: "RU tail DNS (.com)",
            ns: vec![
                ns("ns1.rudns.com", "RU hosting #5"),
                ns("ns2.rudns2.com", "RU hosting #6"),
            ],
            share: ShareSchedule::new(0.020, 0.025, 0.046),
        },
        // ---- partially-Russian NS locations (16.5 % at start) ----
        DnsPlanSpec {
            // The Netnod story (§3.2): RU-CENTER's cloud NS hosts were
            // operated by Netnod (Sweden) until the 2022-03-03 IP
            // reconfiguration re-homed them to RU-CENTER. 76 k domains
            // (1.5 % of the population) flip partial→full that day.
            name: "RU-CENTER cloud (Netnod secondary)",
            ns: vec![
                ns("ns3-l2.nic.ru", "RU-CENTER"),
                ns("ns4-cloud.nic.ru", "Netnod"),
                ns("ns8-cloud.nic.ru", "Netnod"),
            ],
            share: ShareSchedule::flat(0.0152),
        },
        DnsPlanSpec {
            name: "RU primary + Hetzner secondary",
            ns: vec![
                ns("ns1.mixdns.ru", "RU hosting #7"),
                ns("helium.ns.hetzner.de", "Hetzner"),
            ],
            share: ShareSchedule::new(0.055, 0.050, 0.048).hold_until(Date::from_ymd(2022, 3, 25)),
        },
        DnsPlanSpec {
            name: "RU primary + Linode secondary",
            ns: vec![
                ns("ns2.mixdns.ru", "RU hosting #8"),
                ns("ns1.linode.com", "Linode"),
            ],
            share: ShareSchedule::new(0.030, 0.030, 0.027).hold_until(Date::from_ymd(2022, 3, 25)),
        },
        DnsPlanSpec {
            name: "RU primary + Western .net secondary",
            ns: vec![
                ns("ns1.mixdns2.ru", "RU hosting #9"),
                ns("backup1.westdns.net", "Western hosting #1"),
            ],
            share: ShareSchedule::new(0.035, 0.030, 0.022),
        },
        DnsPlanSpec {
            name: "RU primary + Western .org secondary",
            ns: vec![
                ns("ns3.mixdns2.ru", "RU hosting #10"),
                ns("backup2.westdns.org", "Western hosting #2"),
            ],
            share: ShareSchedule::new(0.030, 0.040, 0.038),
        },
        // ---- non-Russian NS locations (14.5 % managed at start; vanity
        // ---- exotic-TLD NS on non-RU hosting adds 2 % for 16.5 %) ----
        DnsPlanSpec {
            // Cloudflare: growth pre-conflict, stable after — "this network
            // sees little change since the conflict started" (§3.2).
            name: "Cloudflare DNS",
            ns: vec![
                ns("alla.ns.cloudflare.com", "Cloudflare"),
                ns("rudy.ns.cloudflare.com", "Cloudflare"),
            ],
            share: ShareSchedule::new(0.030, 0.048, 0.050),
        },
        DnsPlanSpec {
            name: "Amazon Route 53",
            ns: vec![
                ns("ns-1.awsdns-01.com", "Amazon"),
                ns("ns-2.awsdns-02.net", "Amazon"),
                ns("ns-3.awsdns-03.org", "Amazon"),
            ],
            share: ShareSchedule::new(0.020, 0.022, 0.018),
        },
        DnsPlanSpec {
            name: "GoDaddy DNS",
            ns: vec![
                ns("ns1.domaincontrol.com", "GoDaddy"),
                ns("ns2.domaincontrol.com", "GoDaddy"),
            ],
            share: ShareSchedule::new(0.022, 0.024, 0.020),
        },
        DnsPlanSpec {
            name: "Sedo parking NS",
            ns: vec![
                ns("ns1.sedoparking.com", "Sedo"),
                ns("ns2.sedoparking.com", "Sedo"),
            ],
            share: ShareSchedule::new(0.033, 0.033, 0.002).hold_until(Date::from_ymd(2022, 3, 9)),
        },
        DnsPlanSpec {
            name: "Google Cloud DNS",
            ns: vec![
                ns("ns-cloud-a1.googledomains.com", "Google"),
                ns("ns-cloud-a2.googledomains.com", "Google"),
            ],
            share: ShareSchedule::new(0.005, 0.006, 0.006),
        },
        DnsPlanSpec {
            name: "Western tail DNS",
            ns: vec![
                ns("ns1.eurodns-host.net", "Western hosting #3"),
                ns("ns2.eurodns-host.net", "Western hosting #4"),
            ],
            share: ShareSchedule::new(0.035, 0.012, 0.002),
        },
        DnsPlanSpec {
            // Where the Sedo parking portfolios land (§3.2): Serverel (NL).
            name: "Serverel parking NS",
            ns: vec![
                ns("ns1.serverelparking.com", "Serverel"),
                ns("ns2.serverelparking.com", "Serverel"),
            ],
            share: ShareSchedule::new(0.0, 0.0, 0.008).hold_until(Date::from_ymd(2022, 3, 9)),
        },
        DnsPlanSpec {
            // The strongest Figure 2 driver: Russian-located operators that
            // pair a .ru primary with a .com secondary — full-Russian in
            // location, *partial* in TLD dependency. Its growth supplies
            // the paper's +7.9-point partial-TLD rise.
            name: "RU tail DNS (.ru + .com mix)",
            ns: vec![
                ns("ns1.rumix.ru", "RU hosting #11"),
                ns("ns2.rumix-dns.com", "RU hosting #12"),
            ],
            share: ShareSchedule::new(0.0, 0.030, 0.065),
        },
    ]
}

/// Plan indices with special roles.
pub mod plan {
    /// Index of the RU-CENTER cloud plan (the Netnod event target).
    pub const NETNOD_CLOUD: usize = 8;
    /// Index of the Sedo parking plan.
    pub const SEDO_PARKING: usize = 16;
    /// Index of the Serverel parking plan (the Sedo exodus destination).
    pub const SERVEREL_PARKING: usize = 19;
    /// First fully-Russian-location plan (inclusive).
    pub const FULL_RU_RANGE: std::ops::Range<usize> = 0..8;
    /// Partially-Russian-location plans.
    pub const PARTIAL_RU_RANGE: std::ops::Range<usize> = 8..13;
    /// Non-Russian-location plans.
    pub const NON_RU_RANGE: std::ops::Range<usize> = 13..20;
    /// The appended fully-Russian-located, mixed-TLD plan (Figure 2 driver).
    pub const RU_COM_MIX: usize = 20;
}

/// Fraction of the population using vanity NS under the domain itself
/// (`ns1.<domain>.ru`) — fully-Russian in both location and TLD terms.
pub const VANITY_OWN_SHARE: f64 = 0.05;

/// Fraction using vanity NS under an exotic TLD (assigned to non-Russian
/// hosted domains; supplies the long tail of the paper's 270 NS TLDs).
pub const VANITY_EXOTIC_SHARE: f64 = 0.02;

/// Hosting-provider market shares (fraction of the population whose apex A
/// record resolves into each provider's ASN) — the Figure 4 calibration.
///
/// Named Russian hosters sum to ≈38.5 % ("together accounting for 38 % of
/// Russian domains at the start and 39 % at the end", §3.2); Cloudflare
/// holds ≈6.5 % throughout; Amazon and Sedo shed customers after their
/// March announcements, with Serverel (NL) absorbing the Sedo exodus.
pub fn hosting_shares() -> Vec<(ProviderId, ShareSchedule)> {
    let mar8 = Date::from_ymd(2022, 3, 8);
    let mar9 = Date::from_ymd(2022, 3, 9);
    let mar10 = Date::from_ymd(2022, 3, 10);
    let mar16 = Date::from_ymd(2022, 3, 16);
    let mut v = vec![
        (pid::REG_RU, ShareSchedule::new(0.140, 0.140, 0.142)),
        (pid::RU_CENTER, ShareSchedule::new(0.090, 0.090, 0.091)),
        (pid::TIMEWEB, ShareSchedule::new(0.080, 0.080, 0.081)),
        (pid::BEGET, ShareSchedule::new(0.075, 0.075, 0.076)),
        (pid::YANDEX, ShareSchedule::flat(0.020)),
        (pid::CLOUDFLARE, ShareSchedule::new(0.063, 0.063, 0.066)),
        // Amazon: 57 % of its 2022-03-08 set relocates by 2022-05-25.
        (
            pid::AMAZON,
            ShareSchedule::new(0.040, 0.040, 0.0175).hold_until(mar8),
        ),
        // Sedo: 98 % relocates after the 2022-03-09 plug pull.
        (
            pid::SEDO,
            ShareSchedule::new(0.033, 0.033, 0.0008).hold_until(mar9),
        ),
        (
            pid::GOOGLE,
            ShareSchedule::new(0.0035, 0.0035, 0.0014).hold_until(mar10),
        ),
        // Google-Cloud absorbs the intra-Google relocation of 2022-03-16
        // in a single step (footnote 11's "around March 16").
        (
            pid::GOOGLE_CLOUD,
            ShareSchedule::new(0.0, 0.0, 0.0016)
                .hold_until(mar16)
                .as_step(),
        ),
        // Serverel absorbs the bulk of the Sedo exodus.
        (
            pid::SERVEREL,
            ShareSchedule::new(0.0005, 0.0005, 0.0450).hold_until(mar9),
        ),
        (pid::HETZNER, ShareSchedule::new(0.020, 0.020, 0.018)),
        (pid::LINODE, ShareSchedule::new(0.010, 0.010, 0.009)),
        (pid::GODADDY, ShareSchedule::flat(0.010)),
    ];
    // Generic Russian tail: total Russian hosting 71.0 % at start; the
    // named Russian hosters above hold 40.5 %, the tail splits the rest.
    let ru_named: f64 = 0.140 + 0.090 + 0.080 + 0.075 + 0.020;
    let ru_tail_each = (0.710 - ru_named) / f64::from(pid::RU_GENERIC_COUNT);
    for i in 0..pid::RU_GENERIC_COUNT {
        v.push((
            ProviderId(pid::RU_GENERIC_BASE + i),
            ShareSchedule::new(ru_tail_each, ru_tail_each, ru_tail_each * 1.02),
        ));
    }
    // Generic Western tail: the remaining non-Russian share.
    let west_named: f64 = 0.063 + 0.040 + 0.033 + 0.0035 + 0.0 + 0.0005 + 0.020 + 0.010 + 0.010;
    let west_tail_each = (0.290 - west_named) / f64::from(pid::WESTERN_GENERIC_COUNT);
    for i in 0..pid::WESTERN_GENERIC_COUNT {
        v.push((
            ProviderId(pid::WESTERN_GENERIC_BASE + i),
            ShareSchedule::new(west_tail_each, west_tail_each, west_tail_each * 0.98),
        ));
    }
    v
}

/// Build the CA table, Figure 8's top ten plus the Russian Trusted Root CA.
///
/// Six of the ten stop issuing (paper §4.1): DigiCert, GoGetSSL, ZeroSSL,
/// Amazon, cPanel, Sectigo. Let's Encrypt, GlobalSign, Cloudflare and
/// Google continue.
pub fn cas() -> Vec<CaSpec> {
    vec![
        CaSpec {
            org: "Let's Encrypt",
            country: Country::US,
            brands: &["R3", "E1"],
            share_pre_conflict: 0.9158,
            share_pre_sanctions: 0.9806,
            share_post_sanctions: 0.9923,
            stop_date: None,
            background_revocation_rate: 0.0006,
            revokes_all_sanctioned: false,
            logs_to_ct: true,
            validity_days: 90,
        },
        CaSpec {
            org: "DigiCert",
            country: Country::US,
            brands: &["DigiCert TLS RSA", "RapidSSL", "GeoTrust"],
            share_pre_conflict: 0.0340,
            share_pre_sanctions: 0.0,
            share_post_sanctions: 0.0,
            // DigiCert's revocation of VTB's certificate and general halt.
            stop_date: Some(Date::from_ymd(2022, 2, 26)),
            background_revocation_rate: 0.0080,
            revokes_all_sanctioned: true,
            logs_to_ct: true,
            validity_days: 365,
        },
        CaSpec {
            org: "cPanel",
            country: Country::US,
            brands: &["cPanel, Inc. Certification Authority"],
            share_pre_conflict: 0.0213,
            share_pre_sanctions: 0.0034,
            share_post_sanctions: 0.0,
            stop_date: Some(Date::from_ymd(2022, 3, 24)),
            background_revocation_rate: 0.0015,
            revokes_all_sanctioned: false,
            logs_to_ct: true,
            validity_days: 90,
        },
        CaSpec {
            org: "Sectigo",
            country: Country::GB,
            brands: &["Sectigo RSA DV", "Sectigo ECC DV"],
            share_pre_conflict: 0.0090,
            share_pre_sanctions: 0.0,
            share_post_sanctions: 0.0,
            stop_date: Some(Date::from_ymd(2022, 3, 15)),
            background_revocation_rate: 0.0515,
            revokes_all_sanctioned: true,
            logs_to_ct: true,
            validity_days: 365,
        },
        CaSpec {
            org: "GlobalSign",
            country: Country::JP,
            brands: &["GlobalSign GCC R3 DV"],
            // RU-CENTER's recommended sanctions-safe CA (§1): share grows.
            share_pre_conflict: 0.0045,
            share_pre_sanctions: 0.0076,
            share_post_sanctions: 0.0052,
            stop_date: None,
            background_revocation_rate: 0.0168,
            revokes_all_sanctioned: false,
            logs_to_ct: true,
            validity_days: 365,
        },
        CaSpec {
            org: "GoGetSSL",
            country: Country::LV,
            brands: &["GoGetSSL RSA DV"],
            share_pre_conflict: 0.0055,
            share_pre_sanctions: 0.0,
            share_post_sanctions: 0.0,
            stop_date: Some(Date::from_ymd(2022, 3, 5)),
            background_revocation_rate: 0.0020,
            revokes_all_sanctioned: false,
            logs_to_ct: true,
            validity_days: 365,
        },
        CaSpec {
            org: "ZeroSSL",
            country: Country::AT,
            brands: &["ZeroSSL RSA Domain Secure Site CA"],
            share_pre_conflict: 0.0040,
            share_pre_sanctions: 0.0,
            share_post_sanctions: 0.0,
            stop_date: Some(Date::from_ymd(2022, 3, 10)),
            background_revocation_rate: 0.0030,
            revokes_all_sanctioned: false,
            logs_to_ct: true,
            validity_days: 90,
        },
        CaSpec {
            org: "Amazon",
            country: Country::US,
            brands: &["Amazon RSA 2048 M01"],
            share_pre_conflict: 0.0025,
            share_pre_sanctions: 0.0,
            share_post_sanctions: 0.0,
            stop_date: Some(Date::from_ymd(2022, 3, 8)),
            background_revocation_rate: 0.0010,
            revokes_all_sanctioned: false,
            logs_to_ct: true,
            validity_days: 365,
        },
        CaSpec {
            org: "Cloudflare",
            country: Country::US,
            brands: &["Cloudflare Inc ECC CA-3"],
            share_pre_conflict: 0.0022,
            share_pre_sanctions: 0.0040,
            share_post_sanctions: 0.0006,
            stop_date: None,
            background_revocation_rate: 0.0008,
            revokes_all_sanctioned: false,
            logs_to_ct: true,
            validity_days: 365,
        },
        CaSpec {
            org: "Google",
            country: Country::US,
            brands: &["GTS CA 1D4"],
            share_pre_conflict: 0.0012,
            share_pre_sanctions: 0.0044,
            share_post_sanctions: 0.0024,
            stop_date: None,
            background_revocation_rate: 0.0005,
            revokes_all_sanctioned: false,
            logs_to_ct: true,
            validity_days: 90,
        },
        CaSpec {
            // §4.3: state-run, not CT-logged, not browser-trusted.
            org: "Russian Trusted Root CA",
            country: Country::RU,
            brands: &["Russian Trusted Sub CA"],
            share_pre_conflict: 0.0,
            share_pre_sanctions: 0.0,
            share_post_sanctions: 0.0, // issuance modeled separately (§4.3)
            stop_date: None,
            background_revocation_rate: 0.0,
            revokes_all_sanctioned: false,
            logs_to_ct: false,
            validity_days: 365,
        },
    ]
}

/// CA indices with special roles.
pub mod ca {
    use super::CaId;
    /// Let's Encrypt.
    pub const LETS_ENCRYPT: CaId = CaId(0);
    /// DigiCert.
    pub const DIGICERT: CaId = CaId(1);
    /// cPanel.
    pub const CPANEL: CaId = CaId(2);
    /// Sectigo.
    pub const SECTIGO: CaId = CaId(3);
    /// GlobalSign.
    pub const GLOBALSIGN: CaId = CaId(4);
    /// GoGetSSL.
    pub const GOGETSSL: CaId = CaId(5);
    /// ZeroSSL.
    pub const ZEROSSL: CaId = CaId(6);
    /// Amazon.
    pub const AMAZON: CaId = CaId(7);
    /// Cloudflare.
    pub const CLOUDFLARE: CaId = CaId(8);
    /// Google Trust Services.
    pub const GOOGLE: CaId = CaId(9);
    /// The Russian Trusted Root CA.
    pub const RUSSIAN: CaId = CaId(10);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_ids_line_up() {
        let p = providers();
        assert_eq!(p[pid::REG_RU.0 as usize].name, "REG.RU");
        assert_eq!(p[pid::AMAZON.0 as usize].asn, Asn::AMAZON);
        assert_eq!(p[pid::SEDO.0 as usize].asn, Asn::SEDO);
        assert_eq!(p[pid::NETNOD.0 as usize].country, Country::SE);
        assert_eq!(p[pid::GOOGLE_CLOUD.0 as usize].asn, Asn::GOOGLE_CLOUD);
        assert_eq!(
            p.len(),
            pid::WESTERN_GENERIC_BASE as usize + pid::WESTERN_GENERIC_COUNT as usize
        );
        // Unique ASNs.
        let mut asns: Vec<u32> = p.iter().map(|s| s.asn.value()).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), p.len());
    }

    #[test]
    fn dns_plan_groups_sum_to_targets() {
        let plans = dns_plans();
        let sum = |range: std::ops::Range<usize>, f: fn(&ShareSchedule) -> f64| -> f64 {
            plans[range].iter().map(|p| f(&p.share)).sum()
        };
        // Managed plans leave 5 % for vanity .ru NS (fully-Russian) and 2 %
        // for exotic-TLD vanity NS (non-Russian): 62+5 = the paper's 67.0 %
        // full, 14.5+2 = 16.5 % non, 16.52 % partial.
        let full = |f: fn(&ShareSchedule) -> f64| {
            sum(plan::FULL_RU_RANGE, f) + f(&plans[plan::RU_COM_MIX].share)
        };
        assert!((full(|s| s.at_start) - 0.620).abs() < 1e-9);
        assert!((sum(plan::PARTIAL_RU_RANGE, |s| s.at_start) - 0.1652).abs() < 1e-9);
        assert!((sum(plan::NON_RU_RANGE, |s| s.at_start) - 0.145).abs() < 1e-9);
        // Composition is stable up to the conflict (§3.1).
        assert!((full(|s| s.at_conflict) - 0.620).abs() < 1e-9);
        assert!((sum(plan::PARTIAL_RU_RANGE, |s| s.at_conflict) - 0.1652).abs() < 1e-9);
        assert!((sum(plan::NON_RU_RANGE, |s| s.at_conflict) - 0.145).abs() < 1e-9);
        // Post-conflict: full grows (the 73.9 % endpoint — note the Netnod
        // plan is counted in the partial range here but is fully-Russian
        // *located* after 2022-03-03), non shrinks.
        assert!(full(|s| s.at_end) > 0.67);
        assert!(sum(plan::NON_RU_RANGE, |s| s.at_end) < 0.12);
        // Totals stay near 0.93 at each anchor (the remainder is vanity NS).
        let total_start: f64 = plans.iter().map(|p| p.share.at_start).sum();
        assert!(
            (total_start - 0.93).abs() < 0.001,
            "start total {total_start}"
        );
        let total_conflict: f64 = plans.iter().map(|p| p.share.at_conflict).sum();
        assert!(
            (total_conflict - 0.93).abs() < 0.001,
            "conflict total {total_conflict}"
        );
    }

    #[test]
    fn tld_dependency_drift_matches_figure2_magnitudes() {
        // Classify each plan by TLD composition and check the drift in
        // catalog space lands near the paper's −6.3 / +7.9 points.
        let plans = dns_plans();
        let is_ru_tld = |host: &str| host.ends_with(".ru") || host.ends_with(".xn--p1ai");
        let group_sum = |f: fn(&ShareSchedule) -> f64, want_full: bool| -> f64 {
            plans
                .iter()
                .filter(|p| {
                    let ru = p.ns.iter().filter(|h| is_ru_tld(h.host)).count();
                    let full_tld = ru == p.ns.len();
                    let partial_tld = ru > 0 && !full_tld;
                    if want_full {
                        full_tld
                    } else {
                        partial_tld
                    }
                })
                .map(|p| f(&p.share))
                .sum()
        };
        // Vanity-own NS (5 %) is full-TLD at both ends; constant, so it
        // cancels in the drift.
        let full_drift = group_sum(|s| s.at_end, true) - group_sum(|s| s.at_start, true);
        let partial_drift = group_sum(|s| s.at_end, false) - group_sum(|s| s.at_start, false);
        assert!(
            (-0.09..=-0.04).contains(&full_drift),
            "full-TLD drift {full_drift:.3} should be ≈ −0.063"
        );
        assert!(
            (0.05..=0.11).contains(&partial_drift),
            "partial-TLD drift {partial_drift:.3} should be ≈ +0.079"
        );
    }

    #[test]
    fn tld_trends_match_figure3() {
        // Aggregate NS-name TLD usage from the plan table at each anchor and
        // check the *directions* the paper reports: .com and .pro rise,
        // .net falls, .org rises slightly, .ru dominates throughout.
        let plans = dns_plans();
        let usage = |f: fn(&ShareSchedule) -> f64, tld: &str| -> f64 {
            plans
                .iter()
                .filter(|p| p.ns.iter().any(|h| h.host.ends_with(&format!(".{tld}"))))
                .map(|p| f(&p.share))
                .sum()
        };
        assert!(
            usage(|s| s.at_end, "com") > usage(|s| s.at_start, "com"),
            ".com must rise"
        );
        assert!(
            usage(|s| s.at_end, "pro") > usage(|s| s.at_start, "pro"),
            ".pro must rise"
        );
        assert!(
            usage(|s| s.at_end, "net") < usage(|s| s.at_start, "net"),
            ".net must fall"
        );
        assert!(
            usage(|s| s.at_end, "org") > usage(|s| s.at_start, "org"),
            ".org must rise"
        );
        assert!(usage(|s| s.at_end, "ru") > 0.5, ".ru stays dominant");
    }

    #[test]
    fn netnod_plan_is_where_expected() {
        let plans = dns_plans();
        let p = &plans[plan::NETNOD_CLOUD];
        assert!(p.name.contains("Netnod"));
        assert_eq!(p.ns.iter().filter(|h| h.operator == "Netnod").count(), 2);
        assert_eq!(plans[plan::SEDO_PARKING].name, "Sedo parking NS");
        assert_eq!(plans[plan::SERVEREL_PARKING].name, "Serverel parking NS");
        assert_eq!(plans[plan::RU_COM_MIX].name, "RU tail DNS (.ru + .com mix)");
        assert_eq!(plans.len(), plan::RU_COM_MIX + 1);
    }

    #[test]
    fn share_schedule_interpolates() {
        let s = ShareSchedule::new(0.10, 0.20, 0.40);
        assert!((s.at(STUDY_START) - 0.10).abs() < 1e-12);
        assert!((s.at(CONFLICT_START) - 0.20).abs() < 1e-12);
        assert!((s.at(STUDY_END) - 0.40).abs() < 1e-12);
        let mid = s.at(Date::from_ymd(2019, 10, 22));
        assert!(mid > 0.10 && mid < 0.20);
        // Clamped outside.
        assert!((s.at(Date::from_ymd(2016, 1, 1)) - 0.10).abs() < 1e-12);
        assert!((s.at(Date::from_ymd(2023, 1, 1)) - 0.40).abs() < 1e-12);
    }

    #[test]
    fn ca_table_matches_paper_shape() {
        let table = cas();
        assert_eq!(table.len(), 11);
        let stopped = table.iter().filter(|c| c.stop_date.is_some()).count();
        assert_eq!(stopped, 6, "six of the top ten stop issuing");
        let le = &table[ca::LETS_ENCRYPT.0 as usize];
        assert_eq!(le.org, "Let's Encrypt");
        assert!(le.share_post_sanctions > 0.99);
        assert!(table[ca::DIGICERT.0 as usize].revokes_all_sanctioned);
        assert!(table[ca::SECTIGO.0 as usize].revokes_all_sanctioned);
        assert!(!table[ca::RUSSIAN.0 as usize].logs_to_ct);
        // Pre-conflict shares sum to ~97.1% (the paper's "Other CAs" 2.89%).
        let sum: f64 = table.iter().map(|c| c.share_pre_conflict).sum();
        assert!((0.95..=1.0).contains(&sum), "pre-conflict share sum {sum}");
    }

    #[test]
    fn exotic_tlds_are_distinct_enough() {
        let mut set = std::collections::HashSet::new();
        for i in 0..EXOTIC_TLD_COUNT {
            let t = exotic_tld(i);
            assert!(t.len() == 2 || t.len() == 3);
            assert_ne!(t, "ru");
            set.insert(t);
        }
        // A synthetic scheme may collide occasionally; we need a wide tail,
        // not perfection (the paper has 270 TLDs, we need ~200+ distinct).
        assert!(set.len() > 150, "only {} distinct exotic TLDs", set.len());
    }
}
