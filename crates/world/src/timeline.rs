//! The dated conflict event timeline (§3.2–§4.3 of the paper).

use ruwhere_types::Date;
use serde::{Deserialize, Serialize};

/// Which piece of DNS infrastructure an [`InfraFault`] takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The `.ru`/`.рф` TLD servers (RIPN / TCI) — the 2021-03-22 outage
    /// behind the Figure-1 dip.
    RuTldServers,
    /// The root servers.
    Root,
    /// The gTLD (`.com`-side) servers.
    GtldServers,
}

/// A scheduled infrastructure outage: the named servers black-hole all
/// queries for `duration_hours` starting at the event date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfraFault {
    /// What goes down.
    pub target: FaultTarget,
    /// How long it stays down, in hours of simulated time.
    pub duration_hours: u32,
}

/// One dated event played against the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictEvent {
    /// 2022-02-24: the invasion. Marks the period boundary; also the start
    /// of elevated, anticipatory churn.
    ConflictStart,
    /// US OFAC SDN / UK lists add the bulk of the sanctioned domains.
    SanctionsListed,
    /// 2022-03-03: Netnod's IP reconfiguration re-homes RU-CENTER's cloud
    /// NS hosts to Russia; 76 k domains flip partial→full (§3.2, §3.3).
    NetnodRehoming,
    /// 2022-03-08: Amazon stops new Russian AWS registrations; the Amazon
    /// hosting exodus window opens (§3.4, Figure 6).
    AmazonHalt,
    /// 2022-03-09: Sedo "pulls the plug"; the Sedo exodus window opens
    /// (§3.4, Figure 7). 98 % relocate by 2022-05-25, mostly to Serverel.
    SedoPullsPlug,
    /// 2022-03-10: Google stops accepting new cloud customers in Russia.
    GoogleHalt,
    /// 2022-03-16: Google relocates serving infrastructure from AS15169 to
    /// AS396982 (footnote 11 — affects non-Russian domains too).
    GoogleIntraMove,
    /// 2022-03-01: the Russian Ministry of Digital Development's Trusted
    /// Root CA starts issuing (not CT-logged).
    RussianCaLaunch,
    /// Late March: DNS-hosting migration out of Hetzner and Linode (§3.2).
    HetznerLinodeMigration,
    /// 2022-03-26: sanctions fully in effect (period boundary).
    SanctionsInEffect,
    /// DigiCert revokes all certificates it issued for sanctioned domains
    /// (Table 2: 308/308).
    DigicertSanctionedRevocation,
    /// Sectigo revokes all certificates it issued for sanctioned domains
    /// (Table 2: 164/164).
    SectigoSanctionedRevocation,
    /// A dated infrastructure outage. The paper's instance: the
    /// 2021-03-22 `.ru` TLD-server outage that produces the sharp one-day
    /// dip in Figure 1 (footnote 8) — the measurement gap is caused
    /// *mechanically* by the servers being unreachable, not by editing
    /// analysis output.
    InfrastructureFault(InfraFault),
}

/// The full dated schedule.
#[derive(Debug, Clone)]
pub struct Timeline {
    events: Vec<(Date, ConflictEvent)>,
}

impl Timeline {
    /// The paper's event schedule.
    pub fn paper() -> Self {
        use ConflictEvent::*;
        let mut events = vec![
            (
                Date::from_ymd(2021, 3, 22),
                InfrastructureFault(InfraFault {
                    target: FaultTarget::RuTldServers,
                    duration_hours: 20,
                }),
            ),
            (Date::from_ymd(2022, 2, 24), ConflictStart),
            (Date::from_ymd(2022, 2, 25), SanctionsListed),
            (Date::from_ymd(2022, 3, 1), RussianCaLaunch),
            (Date::from_ymd(2022, 3, 3), NetnodRehoming),
            (Date::from_ymd(2022, 3, 8), AmazonHalt),
            (Date::from_ymd(2022, 3, 9), SedoPullsPlug),
            (Date::from_ymd(2022, 3, 10), GoogleHalt),
            (Date::from_ymd(2022, 3, 11), DigicertSanctionedRevocation),
            (Date::from_ymd(2022, 3, 16), GoogleIntraMove),
            (Date::from_ymd(2022, 3, 18), SectigoSanctionedRevocation),
            (Date::from_ymd(2022, 3, 25), HetznerLinodeMigration),
            (Date::from_ymd(2022, 3, 26), SanctionsInEffect),
        ];
        events.sort_by_key(|(d, _)| *d);
        Timeline { events }
    }

    /// Add extra dated events (configuration-injected faults and the
    /// like), keeping the schedule date-ordered. The sort is stable, so
    /// same-day events keep paper order before injected order.
    pub fn extend(&mut self, extra: impl IntoIterator<Item = (Date, ConflictEvent)>) {
        self.events.extend(extra);
        self.events.sort_by_key(|(d, _)| *d);
    }

    /// Events scheduled for exactly `date`.
    pub fn on(&self, date: Date) -> impl Iterator<Item = ConflictEvent> + '_ {
        self.events
            .iter()
            .filter(move |(d, _)| *d == date)
            .map(|(_, e)| *e)
    }

    /// The date of a specific event.
    pub fn date_of(&self, event: ConflictEvent) -> Option<Date> {
        self.events
            .iter()
            .find(|(_, e)| *e == event)
            .map(|(d, _)| *d)
    }

    /// All `(date, event)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (Date, ConflictEvent)> + '_ {
        self.events.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dates() {
        let t = Timeline::paper();
        assert_eq!(
            t.date_of(ConflictEvent::NetnodRehoming).unwrap(),
            Date::from_ymd(2022, 3, 3)
        );
        assert_eq!(
            t.date_of(ConflictEvent::AmazonHalt).unwrap(),
            Date::from_ymd(2022, 3, 8)
        );
        assert_eq!(
            t.date_of(ConflictEvent::SedoPullsPlug).unwrap(),
            Date::from_ymd(2022, 3, 9)
        );
        assert_eq!(
            t.date_of(ConflictEvent::GoogleIntraMove).unwrap(),
            Date::from_ymd(2022, 3, 16)
        );
    }

    #[test]
    fn on_filters_by_date() {
        let t = Timeline::paper();
        let events: Vec<_> = t.on(Date::from_ymd(2022, 3, 8)).collect();
        assert_eq!(events, vec![ConflictEvent::AmazonHalt]);
        assert_eq!(t.on(Date::from_ymd(2021, 1, 1)).count(), 0);
    }

    #[test]
    fn ordered() {
        let t = Timeline::paper();
        let dates: Vec<Date> = t.iter().map(|(d, _)| d).collect();
        let mut sorted = dates.clone();
        sorted.sort();
        assert_eq!(dates, sorted);
        assert_eq!(dates.len(), 13);
    }

    #[test]
    fn paper_includes_the_march_2021_outage() {
        let t = Timeline::paper();
        let outage: Vec<_> = t.on(Date::from_ymd(2021, 3, 22)).collect();
        assert_eq!(
            outage,
            vec![ConflictEvent::InfrastructureFault(InfraFault {
                target: FaultTarget::RuTldServers,
                duration_hours: 20,
            })]
        );
    }

    #[test]
    fn extend_keeps_order() {
        let mut t = Timeline::paper();
        let fault = ConflictEvent::InfrastructureFault(InfraFault {
            target: FaultTarget::Root,
            duration_hours: 2,
        });
        t.extend(vec![(Date::from_ymd(2022, 1, 15), fault)]);
        let dates: Vec<Date> = t.iter().map(|(d, _)| d).collect();
        let mut sorted = dates.clone();
        sorted.sort();
        assert_eq!(dates, sorted);
        assert!(t.on(Date::from_ymd(2022, 1, 15)).any(|e| e == fault));
    }
}
