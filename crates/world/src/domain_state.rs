//! Per-domain ground-truth state.

use crate::catalog::{CaId, PlanId, ProviderId};
use ruwhere_types::{Date, DomainName};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// How a domain's authoritative DNS is arranged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsPlan {
    /// On a managed plan from the catalog.
    Managed(PlanId),
    /// Vanity NS under the domain itself (`ns1.<domain>`, `ns2.<domain>`),
    /// served from the domain's own hosting IP (requires glue).
    VanityOwn,
    /// Vanity NS under a separate name in an exotic TLD
    /// (`ns1.<sld>.<tld>`), index into [`crate::catalog::exotic_tld`].
    VanityExotic(u16),
}

/// Where the domain's web content lives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostingPlan {
    /// Primary hosting provider.
    pub primary: ProviderId,
    /// A-record address at the primary.
    pub primary_ip: Ipv4Addr,
    /// Optional second A record at another provider (the paper's 0.19 %
    /// "partial" hosting).
    pub secondary: Option<(ProviderId, Ipv4Addr)>,
}

/// Per-domain TLS behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlsProfile {
    /// Preferred CA.
    pub ca: CaId,
    /// Next scheduled (re)issuance date.
    pub next_issue: Date,
    /// Certificates obtained per renewal event (real operators issue
    /// several: apex, www, staging; the paper's per-day volume implies
    /// multiple certificates per domain per cycle).
    pub certs_per_renewal: u8,
    /// Serial + CA of the certificate currently served by the endpoint.
    pub serving: Option<(CaId, u64)>,
}

/// Ground truth for one registered domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainState {
    /// The domain.
    pub name: DomainName,
    /// Web hosting.
    pub hosting: HostingPlan,
    /// DNS arrangement.
    pub dns: DnsPlan,
    /// TLS behaviour (None = plain-HTTP site, invisible to §4).
    pub tls: Option<TlsProfile>,
    /// Whether this domain is on a sanctions list.
    pub sanctioned: bool,
    /// Registration date (needed to distinguish "newly registered" from
    /// "relocated" arrivals in Figures 6/7).
    pub registered: Date,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::pid;

    #[test]
    fn construct() {
        let s = DomainState {
            name: "example.ru".parse().unwrap(),
            hosting: HostingPlan {
                primary: pid::REG_RU,
                primary_ip: "20.3.0.5".parse().unwrap(),
                secondary: None,
            },
            dns: DnsPlan::Managed(PlanId(0)),
            tls: Some(TlsProfile {
                ca: CaId(0),
                next_issue: Date::from_ymd(2022, 1, 1),
                certs_per_renewal: 2,
                serving: None,
            }),
            sanctioned: false,
            registered: Date::from_ymd(2019, 5, 1),
        };
        assert_eq!(s.hosting.primary, pid::REG_RU);
        assert!(matches!(s.dns, DnsPlan::Managed(PlanId(0))));
    }
}
