//! The scenario engine: a simulated Russian domain ecosystem whose ground
//! truth is calibrated to the paper's reported statistics.
//!
//! The paper measures the real Internet; we cannot. Instead, this crate
//! stands up a miniature Internet — providers with ASNs and prefixes,
//! authoritative DNS, TLS endpoints, CAs, CT logs — populated with a
//! scaled-down `.ru`/`.рф` domain population, and then plays the 2022
//! conflict timeline against it:
//!
//! * [`catalog`] — the cast: hosting/DNS providers (REG.RU, RU-CENTER,
//!   Timeweb, Beget, Amazon AS16509, Sedo AS47846, Cloudflare AS13335,
//!   Google, Netnod, Hetzner, Linode, Serverel, …) and CAs (Let's Encrypt,
//!   DigiCert, Sectigo, GlobalSign, cPanel, ZeroSSL, GoGetSSL, Amazon,
//!   Google, Cloudflare, Russian Trusted Root CA).
//! * [`timeline`] — the dated events of §3.2–§4.3: Netnod's 2022-03-03 IP
//!   reconfiguration, Amazon's 2022-03-08 halt, Sedo's 2022-03-09 plug
//!   pull, Google's 2022-03-10 halt and mid-March intra-Google relocation,
//!   CA issuance stops, the DigiCert/Sectigo revocation sweeps, and the
//!   Russian Trusted Root CA stand-up.
//! * [`config`] — scale factors, cadences and behavioural rates. The
//!   default scale is 1:100 (≈50 k live names against the paper's ≈5 M).
//! * [`World`] — construction plus the daily [`World::advance_to`] driver.
//!
//! The measurement pipeline (`ruwhere-scan`) observes this world only
//! through the network — resolving delegations from zone snapshots, probing
//! TLS endpoints, reading CT logs — exactly as OpenINTEL and Censys observe
//! the real one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod domain_state;
pub mod timeline;
pub mod tls;
pub mod world;

pub use catalog::{CaId, ProviderId};
pub use config::WorldConfig;
pub use domain_state::{DnsPlan, DomainState, HostingPlan};
pub use timeline::{ConflictEvent, FaultTarget, InfraFault, Timeline};
pub use tls::{ChainSummary, TlsEndpoint, TLS_PORT};
pub use world::World;
