//! World configuration: scale, windows, cadences, behaviour rates.

use crate::timeline::ConflictEvent;
use ruwhere_types::{Date, STUDY_END, STUDY_START};
use serde::{Deserialize, Serialize};

/// All knobs of the simulated ecosystem.
///
/// The defaults reproduce the paper at 1:100 scale. Tests use
/// [`WorldConfig::tiny`] to keep runtimes low.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Root seed for every stochastic choice.
    pub seed: u64,
    /// First simulated day.
    pub start: Date,
    /// Last simulated day.
    pub end: Date,
    /// Live `.ru` + `.рф` population at `start` (paper: just under 5 M).
    pub initial_population: usize,
    /// Fraction of the population under `.рф` (the rest is `.ru`).
    pub rf_fraction: f64,
    /// Net daily population growth rate (the black curve in Figure 1 climbs
    /// slightly over five years).
    pub daily_growth_rate: f64,
    /// Daily probability that a live domain lapses (churn; replaced by new
    /// registrations on top of growth).
    pub daily_churn_rate: f64,

    // --- DNS / hosting composition targets (§3.1) ---
    // NS composition targets (67.0 / 16.5 / 16.5 at start) live in the
    // plan-share schedules of `catalog::dns_plans`; the hosting fractions
    // below additionally drive vanity-NS and split-hosting sampling.
    /// Fraction of domains web-hosted fully in Russia at start (71.0 %).
    pub hosting_full_ru_at_start: f64,
    /// Fraction with split-country hosting at start (0.19 %).
    pub hosting_part_ru_at_start: f64,

    // --- certificates (§4) ---
    /// First day certificates are simulated (early enough that certificates
    /// whose validity ends after 2022-02-25 exist for Table 2).
    pub cert_start: Date,
    /// Mean certificates per day across all CAs before the conflict
    /// (paper: 130 k/day; 1.3 k at 1:100).
    pub certs_per_day: f64,
    /// Fraction of `certs_per_day` sustained after the conflict
    /// (paper: 115/130).
    pub cert_volume_conflict_factor: f64,

    // --- measurement artifacts ---
    /// Days between geolocation database snapshots (IP2Location refresh
    /// cadence; drives the footnote-5 lag for moved prefixes).
    pub geo_snapshot_interval_days: u32,
    /// Extra days of lag before a topology change reaches a geo snapshot.
    pub geo_snapshot_lag_days: u32,

    /// Number of sanctioned domains (paper: 107, kept unscaled).
    pub sanctioned_count: usize,
    /// Number of Russian-affiliated sites under non-RU TLDs that pick up
    /// Russian Trusted Root CA certificates (§4.3's "long tail of other
    /// TLDs"; paper: 170 total certs − 132 on `.ru`/`.рф`).
    pub extra_russian_sites: usize,
    /// Ablation (paper footnote 5): model the 2022-03-03 Netnod event as a
    /// *prefix move* (the Netnod-operated address block is re-announced by
    /// RU-CENTER's ASN, addresses unchanged) instead of the default *IP
    /// reconfiguration* (hosts get new Russian addresses). With a prefix
    /// move, geolocation "lags behind" until the next IP2Location snapshot
    /// — reproducing the measurement artifact the paper cautions about.
    pub netnod_prefix_move: bool,
    /// Additional dated events merged into the paper timeline — the
    /// injection point for ablations and fault-robustness experiments
    /// (e.g. an [`ConflictEvent::InfrastructureFault`] inside a test
    /// window). Paper events stay fixed; this only adds.
    pub extra_events: Vec<(Date, ConflictEvent)>,
}

impl WorldConfig {
    /// Paper-shaped configuration at the given scale denominator
    /// (`100` ⇒ 1:100 ⇒ ≈50 k live names).
    pub fn paper_scale(denominator: usize) -> Self {
        let d = denominator.max(1) as f64;
        WorldConfig {
            seed: 0x52_55_57_48, // "RUWH"
            start: STUDY_START,
            end: STUDY_END,
            initial_population: (4_950_000.0 / d) as usize,
            rf_fraction: 0.13,
            daily_growth_rate: 0.000055, // ≈ +10 % over 1803 days
            daily_churn_rate: 0.00075,   // drives ~11.7 M unique names over the window
            hosting_full_ru_at_start: 0.710,
            hosting_part_ru_at_start: 0.0019,
            cert_start: Date::from_ymd(2021, 11, 1),
            certs_per_day: 130_000.0 / d,
            cert_volume_conflict_factor: 115.0 / 130.0,
            geo_snapshot_interval_days: 14,
            geo_snapshot_lag_days: 3,
            sanctioned_count: 107,
            extra_russian_sites: 38,
            netnod_prefix_move: false,
            extra_events: Vec::new(),
        }
    }

    /// Default 1:100 paper configuration.
    pub fn paper() -> Self {
        Self::paper_scale(100)
    }

    /// A small, fast configuration for unit/integration tests: a few
    /// hundred domains over a window focused on the conflict.
    pub fn tiny() -> Self {
        let mut c = Self::paper_scale(10_000); // ~495 domains
        c.start = Date::from_ymd(2022, 1, 1);
        c.end = Date::from_ymd(2022, 5, 25);
        c.cert_start = Date::from_ymd(2021, 12, 1);
        c.sanctioned_count = 20;
        c.extra_russian_sites = 6;
        c
    }

    /// Number of simulated days (inclusive).
    pub fn days(&self) -> usize {
        (self.end - self.start + 1).max(0) as usize
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_hit_targets() {
        let c = WorldConfig::paper();
        assert_eq!(c.initial_population, 49_500);
        assert_eq!(c.days(), 1803);
        assert!((c.certs_per_day - 1300.0).abs() < 1.0);
        assert_eq!(c.sanctioned_count, 107);
    }

    #[test]
    fn tiny_is_small() {
        let c = WorldConfig::tiny();
        assert!(c.initial_population < 1000);
        assert!(c.days() < 200);
    }

    #[test]
    fn scale_is_monotone() {
        assert!(
            WorldConfig::paper_scale(50).initial_population
                > WorldConfig::paper_scale(100).initial_population
        );
        // Degenerate scale clamps instead of dividing by zero.
        assert!(WorldConfig::paper_scale(0).initial_population > 0);
    }
}
