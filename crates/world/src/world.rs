//! The [`World`]: construction and the daily evolution driver.

use crate::catalog::{
    self, ca as caid, pid, plan as planidx, CaId, CaSpec, DnsPlanSpec, PlanId, ProviderId,
    ProviderSpec, VANITY_EXOTIC_SHARE, VANITY_OWN_SHARE,
};
use crate::config::WorldConfig;
use crate::domain_state::{DnsPlan, DomainState, HostingPlan, TlsProfile};
use crate::timeline::{ConflictEvent, FaultTarget, InfraFault, Timeline};
use crate::tls::{ChainSummary, ServingMap, TlsEndpoint, TLS_PORT};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;
use ruwhere_authdns::{AuthServer, RootHint, SharedZoneSet, ZoneSet};
use ruwhere_ct::revocation::RevocationReason;
use ruwhere_ct::{CaPolicy, CertificateAuthority, CtLog, OcspResponder};
use ruwhere_dns::{Name, RData, Record, SoaData, Zone};
use ruwhere_geo::{GeoDbBuilder, LongitudinalGeoDb};
use ruwhere_netsim::{
    AsInfo, FaultWindow, IpAllocator, Ipv4Net, Network, ServerFault, ServerFaultMode, SimTime,
    Topology,
};
use ruwhere_registry::{Delegation, NameGenerator, Registry, SanctionSource, SanctionsList};
use ruwhere_types::{Date, DomainName, Period, SeedTree, CONFLICT_START};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// DNS port.
const DNS_PORT: u16 = 53;
/// WHOIS port.
const WHOIS_PORT: u16 = ruwhere_registry::WHOIS_PORT;
/// Zone-transfer service port (AXFR-over-TCP analogue).
pub const XFR_PORT: u16 = 10053;
/// Zone-transfer chunk payload size in bytes.
pub const XFR_CHUNK: usize = 3000;
/// Daily probability a sanctioned domain obtains a certificate ("testing
/// different CAs", §4.2).
const SANCTIONED_DAILY_ISSUE: f64 = 0.012;

/// A set with O(1) add / remove / uniform sampling, used for plan and
/// hosting membership.
#[derive(Debug, Default, Clone)]
pub struct MemberSet {
    items: Vec<DomainName>,
    pos: HashMap<DomainName, usize>,
}

impl MemberSet {
    /// Insert; no-op if present.
    pub fn add(&mut self, d: DomainName) {
        if self.pos.contains_key(&d) {
            return;
        }
        self.pos.insert(d.clone(), self.items.len());
        self.items.push(d);
    }

    /// Remove; no-op if absent.
    pub fn remove(&mut self, d: &DomainName) {
        if let Some(i) = self.pos.remove(d) {
            let last = self.items.len() - 1;
            self.items.swap_remove(i);
            if i <= last && i < self.items.len() {
                let moved = self.items[i].clone();
                self.pos.insert(moved, i);
            }
        }
    }

    /// Current size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Uniformly sampled member.
    pub fn sample(&self, rng: &mut StdRng) -> Option<&DomainName> {
        self.items.choose(rng)
    }

    /// Slice access (iteration order is arbitrary but deterministic).
    pub fn items(&self) -> &[DomainName] {
        &self.items
    }
}

/// An issued-certificate index row (for revocation sweeps and Table 2).
#[derive(Debug, Clone)]
struct IssuedCert {
    ca: CaId,
    serial: u64,
    domain: DomainName,
    sanctioned: bool,
}

/// One NS host's live state.
#[derive(Debug, Clone)]
struct NsHost {
    name: DomainName,
    ip: Ipv4Addr,
    /// Plan whose customer zones this host serves.
    plan: usize,
}

/// A scripted hosting move for a specific (sanctioned) domain.
#[derive(Debug, Clone)]
struct ScriptedMove {
    date: Date,
    domain: DomainName,
    to: ProviderId,
}

/// The simulated ecosystem. See the crate docs for the overall picture.
pub struct World {
    cfg: WorldConfig,
    seed: SeedTree,
    rng: StdRng,
    today: Date,
    timeline: Timeline,
    /// Scheduled lifts for installed infrastructure faults: on the keyed
    /// day, every `(addr, port)` listed is removed from the network's
    /// fault plan. Keyed by calendar date because virtual time only
    /// advances while measurements run — a 20-hour outage must still end
    /// by the next day even if nobody sent a packet overnight.
    fault_clears: BTreeMap<Date, Vec<(Ipv4Addr, u16)>>,

    providers: Vec<ProviderSpec>,
    web_alloc: Vec<IpAllocator>,
    infra_alloc: Vec<IpAllocator>,
    hosting_shares: Vec<(ProviderId, catalog::ShareSchedule)>,

    plans: Vec<DnsPlanSpec>,
    plan_zone_sets: Vec<SharedZoneSet>,
    ns_hosts: Vec<NsHost>,
    /// infra parent domain → (home plan, zone-set owner) for NS-host A
    /// records.
    infra_home: HashMap<DomainName, usize>,

    net: Network,
    registries: Vec<Registry>, // [0]=.ru, [1]=.рф
    ripn_zones: SharedZoneSet,
    gtld_zones: SharedZoneSet,
    root_zone: SharedZoneSet,
    scanner_ip: Ipv4Addr,
    root_ip: Ipv4Addr,
    ripn_ip: Ipv4Addr,
    gtld_ip: Ipv4Addr,

    sanctions: SanctionsList,
    scripted_moves: Vec<ScriptedMove>,
    whois_state: Arc<RwLock<Vec<Registry>>>,
    xfr_state: Arc<RwLock<HashMap<String, Vec<String>>>>,

    cas: Vec<CertificateAuthority>,
    ca_specs: Vec<CaSpec>,
    ct_logs: Vec<CtLog>,
    ocsp: OcspResponder,
    issued_index: Vec<IssuedCert>,
    pending_revocations: BTreeMap<Date, Vec<(CaId, u64)>>,
    issue_carry: Vec<f64>,
    russian_ca_queue: BTreeMap<Date, Vec<RussianCaTarget>>,

    serving: ServingMap,
    geo: LongitudinalGeoDb,

    domains: BTreeMap<DomainName, DomainState>,
    plan_members: Vec<MemberSet>,
    hosting_members: Vec<MemberSet>,
    vanity_own_members: MemberSet,
    vanity_exotic_members: MemberSet,
    tls_pool: MemberSet,
    namegen: NameGenerator,
    extra_sites: Vec<(String, Ipv4Addr)>,
    /// The Amazon↔Sedo parking portfolio (§3.2): moved by script, pinned
    /// against the background rebalancer.
    portfolio: Vec<DomainName>,
}

#[derive(Debug, Clone)]
enum RussianCaTarget {
    Domain(DomainName),
    ExtraSite(usize),
}

impl World {
    /// Build the world at `cfg.start` and return it (no days simulated yet).
    pub fn new(cfg: WorldConfig) -> Self {
        let seed = SeedTree::new(cfg.seed);
        let providers = catalog::providers();
        let plans = catalog::dns_plans();
        let ca_specs = catalog::cas();

        // --- topology & network ---
        let mut topo = Topology::new(seed.child("topo"));
        let mut web_alloc = Vec::with_capacity(providers.len());
        let mut infra_alloc = Vec::with_capacity(providers.len());
        for (i, p) in providers.iter().enumerate() {
            topo.add_as(AsInfo {
                asn: p.asn,
                org: p.name.to_owned(),
                country: p.country,
            });
            let web: Ipv4Net = format!("20.{}.0.0/17", i).parse().expect("static prefix");
            let infra: Ipv4Net = format!("20.{}.128.0/17", i).parse().expect("static prefix");
            topo.announce(web, p.asn);
            topo.announce(infra, p.asn);
            web_alloc.push(IpAllocator::new(web));
            infra_alloc.push(IpAllocator::new(infra));
        }
        let net = Network::new(topo, seed.child("net"));

        let root_ip = infra_alloc[pid::ROOT.0 as usize].alloc().expect("root ip");
        let gtld_ip = infra_alloc[pid::ROOT.0 as usize].alloc().expect("gtld ip");
        let ripn_ip = infra_alloc[pid::RIPN.0 as usize].alloc().expect("ripn ip");
        let scanner_ip = infra_alloc[pid::SCANNER.0 as usize]
            .alloc()
            .expect("scanner ip");

        // --- NS hosts & per-plan zone sets ---
        let mut ns_hosts: Vec<NsHost> = Vec::new();
        let mut plan_zone_sets: Vec<SharedZoneSet> = Vec::new();
        let mut infra_home: HashMap<DomainName, usize> = HashMap::new();
        let name_to_pid: HashMap<&str, usize> = providers
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name, i))
            .collect();
        for (plan_i, plan) in plans.iter().enumerate() {
            plan_zone_sets.push(Arc::new(RwLock::new(ZoneSet::new())));
            for h in &plan.ns {
                let host: DomainName = h.host.parse().expect("catalog host names are valid");
                let op = *name_to_pid
                    .get(h.operator)
                    .expect("catalog operator exists");
                let ip = infra_alloc[op].alloc().expect("infra space");
                infra_home.entry(host.registrable()).or_insert(plan_i);
                ns_hosts.push(NsHost {
                    name: host,
                    ip,
                    plan: plan_i,
                });
            }
        }

        let mut world = World {
            rng: seed.child("behave").rng(),
            namegen: NameGenerator::new(seed.child("names")),
            issue_carry: vec![0.0; ca_specs.len()],
            cas: ca_specs
                .iter()
                .map(|s| {
                    CertificateAuthority::new(
                        s.org,
                        s.country,
                        s.brands,
                        s.logs_to_ct,
                        s.validity_days,
                    )
                })
                .collect(),
            ca_specs,
            ct_logs: vec![CtLog::new("ruwhere-argon"), CtLog::new("ruwhere-xenon")],
            ocsp: OcspResponder::new(),
            issued_index: Vec::new(),
            pending_revocations: BTreeMap::new(),
            russian_ca_queue: BTreeMap::new(),
            serving: Arc::new(RwLock::new(HashMap::new())),
            geo: LongitudinalGeoDb::new(),
            domains: BTreeMap::new(),
            plan_members: vec![MemberSet::default(); plans.len()],
            hosting_members: vec![MemberSet::default(); providers.len()],
            vanity_own_members: MemberSet::default(),
            vanity_exotic_members: MemberSet::default(),
            tls_pool: MemberSet::default(),
            extra_sites: Vec::new(),
            portfolio: Vec::new(),
            scripted_moves: Vec::new(),
            sanctions: SanctionsList::new(),
            whois_state: Arc::new(RwLock::new(Vec::new())),
            xfr_state: Arc::new(RwLock::new(HashMap::new())),
            registries: vec![
                Registry::new("ru".parse().expect("static")),
                Registry::new("рф".parse().expect("static")),
            ],
            ripn_zones: Arc::new(RwLock::new(ZoneSet::new())),
            gtld_zones: Arc::new(RwLock::new(ZoneSet::new())),
            root_zone: Arc::new(RwLock::new(ZoneSet::new())),
            hosting_shares: catalog::hosting_shares(),
            today: cfg.start,
            timeline: {
                let mut t = Timeline::paper();
                t.extend(cfg.extra_events.iter().copied());
                t
            },
            fault_clears: BTreeMap::new(),
            seed,
            providers,
            web_alloc,
            infra_alloc,
            plans,
            plan_zone_sets,
            ns_hosts,
            infra_home,
            net,
            scanner_ip,
            root_ip,
            ripn_ip,
            gtld_ip,
            cfg,
        };

        world.build_dns_infrastructure();
        world.build_population();
        world.build_portfolio();
        world.build_sanctioned();
        world.build_extra_sites();
        world.settle_to_targets();
        world.snapshot_geo(world.cfg.start);
        world
    }

    /// Relax provider/plan memberships to their day-0 share targets.
    ///
    /// The initial population draw lands near, but not exactly on, the
    /// configured share schedules; without this step the background
    /// rebalancer spends the first simulated week doing large corrective
    /// moves, which a measurement study then misreads as real early-study
    /// churn (spurious composition transitions swamping genuine events).
    /// Settling before `cfg.start` makes day-one sweeps observe a world
    /// already in equilibrium.
    fn settle_to_targets(&mut self) {
        let start = self.cfg.start;
        for _ in 0..8 {
            self.rebalance_hosting(start);
            self.rebalance_plans(start);
        }
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Current simulated date.
    pub fn today(&self) -> Date {
        self.today
    }

    /// The event timeline in force.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Network access for measurement clients.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read-only network access.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Restore the network's global virtual clock to an absolute reading
    /// (microseconds), as recorded in a study checkpoint. Fault windows
    /// anchor to the absolute clock, so a resumed study must re-advance
    /// it through each replayed day in original order — this is the
    /// replay half of the sweep engine's post-sweep
    /// `advance_to_time(max lane end)`. Monotonic: a reading at or
    /// before the current clock is a no-op.
    pub fn restore_net_clock_us(&mut self, us: u64) {
        self.net
            .advance_to_time(ruwhere_netsim::SimTime::ZERO.plus_us(us));
    }

    /// Address the measurement client should source traffic from.
    pub fn scanner_ip(&self) -> Ipv4Addr {
        self.scanner_ip
    }

    /// Root hints for the resolver.
    pub fn root_hints(&self) -> Vec<RootHint> {
        vec![RootHint {
            name: "a.root-servers.invalid".parse().expect("static"),
            addr: self.root_ip,
        }]
    }

    /// The `.ru` and `.рф` registries.
    pub fn registries(&self) -> &[Registry] {
        &self.registries
    }

    /// The sanctions list.
    pub fn sanctions(&self) -> &SanctionsList {
        &self.sanctions
    }

    /// The primary CT log (CAs submit every certificate to all logs, so
    /// any single log is a complete view; see [`World::ct_logs`]).
    pub fn ct_log(&self) -> &CtLog {
        &self.ct_logs[0]
    }

    /// All CT logs. Real CAs submit to several independent logs for SCT
    /// diversity; indexers deduplicate across them.
    pub fn ct_logs(&self) -> &[CtLog] {
        &self.ct_logs
    }

    /// CRL/OCSP state.
    pub fn ocsp(&self) -> &OcspResponder {
        &self.ocsp
    }

    /// CA specs (for analysis labels).
    pub fn ca_specs(&self) -> &[CaSpec] {
        &self.ca_specs
    }

    /// The longitudinal geolocation database (IP2Location stand-in).
    pub fn geo(&self) -> &LongitudinalGeoDb {
        &self.geo
    }

    /// Ground truth for one domain (tests / validation only — the
    /// measurement pipeline must not read this).
    pub fn domain_state(&self, name: &DomainName) -> Option<&DomainState> {
        self.domains.get(name)
    }

    /// Live population size.
    pub fn population(&self) -> usize {
        self.domains.len()
    }

    /// Names of all live domains under the study ccTLDs, the zone-file seed
    /// list for a sweep (sorted for determinism).
    pub fn seed_names(&self) -> Vec<DomainName> {
        let mut v: Vec<DomainName> = self
            .registries
            .iter()
            .flat_map(|r| r.iter().map(|(n, _)| n.clone()))
            .collect();
        v.sort();
        v
    }

    // ------------------------------------------------------------------
    // construction helpers
    // ------------------------------------------------------------------

    fn plan_soa(mname: &Name) -> SoaData {
        SoaData {
            mname: mname.clone(),
            rname: "hostmaster.invalid".parse().expect("static"),
            serial: 1,
            refresh: 86_400,
            retry: 7_200,
            expire: 2_592_000,
            minimum: 3_600,
        }
    }

    /// Stand up root, TLD and plan infra DNS.
    fn build_dns_infrastructure(&mut self) {
        // Root zone: delegate ru / xn--p1ai to RIPN and every other TLD to
        // the shared gTLD server.
        let mut root = Zone::new(
            Name::root(),
            Self::plan_soa(&"a.root-servers.invalid".parse().expect("static")),
            86_400,
        );
        let ripn_ns: Name = "a.dns.ripn.net".parse().expect("static");
        let gtld_ns: Name = "a.gtld-servers.net".parse().expect("static");
        for tld in ["ru", "xn--p1ai"] {
            root.add(Record::new(
                tld.parse().expect("static"),
                86_400,
                RData::Ns(ripn_ns.clone()),
            ));
        }
        root.add(Record::new(ripn_ns.clone(), 86_400, RData::A(self.ripn_ip)));
        root.add(Record::new(gtld_ns.clone(), 86_400, RData::A(self.gtld_ip)));

        // External TLDs: the named ones used by plans plus the exotic tail.
        let mut external: Vec<String> = vec![
            "com".into(),
            "net".into(),
            "org".into(),
            "pro".into(),
            "de".into(),
        ];
        for i in 0..catalog::EXOTIC_TLD_COUNT {
            let t = catalog::exotic_tld(i);
            if !external.contains(&t) {
                external.push(t);
            }
        }
        {
            let mut g = self.gtld_zones.write();
            for tld in &external {
                let origin: Name = tld.parse().expect("catalog tlds are valid");
                root.add(Record::new(
                    origin.clone(),
                    86_400,
                    RData::Ns(gtld_ns.clone()),
                ));
                g.insert(Zone::new(origin, Self::plan_soa(&gtld_ns), 86_400));
            }
        }
        self.root_zone.write().insert(root);
        self.net.bind(
            self.root_ip,
            DNS_PORT,
            Box::new(AuthServer::new(Arc::clone(&self.root_zone))),
        );
        self.net.bind(
            self.gtld_ip,
            DNS_PORT,
            Box::new(AuthServer::new(Arc::clone(&self.gtld_zones))),
        );
        self.net.bind(
            self.ripn_ip,
            DNS_PORT,
            Box::new(AuthServer::new(Arc::clone(&self.ripn_zones))),
        );
        self.net.bind(
            self.ripn_ip,
            WHOIS_PORT,
            Box::new(WhoisService {
                state: Arc::clone(&self.whois_state),
            }),
        );
        self.net.bind(
            self.ripn_ip,
            XFR_PORT,
            Box::new(ZoneTransferService {
                state: Arc::clone(&self.xfr_state),
            }),
        );

        // Bind each plan NS host and build infra zones.
        let hosts = self.ns_hosts.clone();
        for h in &hosts {
            let zs = Arc::clone(&self.plan_zone_sets[h.plan]);
            self.net.bind(h.ip, DNS_PORT, Box::new(AuthServer::new(zs)));
        }
        let mut parents: Vec<DomainName> = self.infra_home.keys().cloned().collect();
        parents.sort();
        for parent in parents {
            self.rebuild_infra_zone(&parent);
            self.register_infra_domain(&parent);
        }
    }

    /// (Re)build the zone holding A records for every NS host under
    /// `parent`, in the home plan's zone set.
    fn rebuild_infra_zone(&mut self, parent: &DomainName) {
        let Some(&home) = self.infra_home.get(parent) else {
            return;
        };
        let origin = Name::from(parent);
        let mname = Name::from(&self.ns_hosts[0].name);
        let mut zone = Zone::new(origin, Self::plan_soa(&mname), 3_600);
        for h in &self.ns_hosts {
            if &h.name.registrable() == parent {
                zone.add(Record::new(Name::from(&h.name), 3_600, RData::A(h.ip)));
            }
        }
        // The infra domain delegates to its home hosts (self-hosting).
        for h in &self.ns_hosts {
            if h.plan == home && &h.name.registrable() == parent {
                zone.add(Record::new(
                    Name::from(parent),
                    3_600,
                    RData::Ns(Name::from(&h.name)),
                ));
            }
        }
        self.plan_zone_sets[home].write().insert(zone);
    }

    /// Register the infra domain in its registry (`.ru`) or external TLD
    /// zone (everything else), with glue for in-bailiwick hosts.
    fn register_infra_domain(&mut self, parent: &DomainName) {
        let Some(&home) = self.infra_home.get(parent) else {
            return;
        };
        let home_hosts: Vec<&NsHost> = self
            .ns_hosts
            .iter()
            .filter(|h| h.plan == home && &h.name.registrable() == parent)
            .collect();
        // Delegation targets: the home hosts if any live under the parent,
        // otherwise all hosts under the parent (their zone lives at home).
        let targets: Vec<&NsHost> = if home_hosts.is_empty() {
            self.ns_hosts
                .iter()
                .filter(|h| &h.name.registrable() == parent)
                .collect()
        } else {
            home_hosts
        };
        let nameservers: Vec<DomainName> = targets.iter().map(|h| h.name.clone()).collect();
        let glue: BTreeMap<DomainName, Vec<Ipv4Addr>> = self
            .ns_hosts
            .iter()
            .filter(|h| &h.name.registrable() == parent)
            .map(|h| (h.name.clone(), vec![h.ip]))
            .collect();

        if parent.tld() == "ru" || parent.tld() == "xn--p1ai" {
            let reg = if parent.tld() == "ru" { 0 } else { 1 };
            self.namegen.reserve(parent.clone());
            let _ =
                self.registries[reg].register(parent.clone(), self.cfg.start.add_days(-400), 30);
            let _ = self.registries[reg].set_delegation(parent, Delegation { nameservers, glue });
        } else {
            // External TLD: add delegation + glue directly to the TLD zone.
            let tld: Name = parent.tld().parse().expect("valid tld");
            let mut g = self.gtld_zones.write();
            if let Some(zone) = g.get_mut(&tld) {
                let owner = Name::from(parent);
                zone.remove(&owner, None);
                for t in &nameservers {
                    zone.add(Record::new(owner.clone(), 86_400, RData::Ns(Name::from(t))));
                }
                for (host, addrs) in &glue {
                    let howner = Name::from(host);
                    zone.remove(&howner, None);
                    for a in addrs {
                        zone.add(Record::new(howner.clone(), 86_400, RData::A(*a)));
                    }
                }
            }
        }
    }

    /// Sample a provider id from the hosting-share table at `date`,
    /// optionally restricted to Russian or non-Russian providers.
    fn sample_hosting(&mut self, date: Date, russia: Option<bool>) -> ProviderId {
        let mut total = 0.0;
        let mut weights: Vec<(ProviderId, f64)> = Vec::with_capacity(self.hosting_shares.len());
        for (pid_, sched) in &self.hosting_shares {
            let is_ru = self.providers[pid_.0 as usize].country.is_russia();
            if let Some(want_ru) = russia {
                if is_ru != want_ru {
                    continue;
                }
            }
            let w = sched.at(date).max(0.0);
            weights.push((*pid_, w));
            total += w;
        }
        let mut x = self.rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
        for (pid_, w) in &weights {
            x -= w;
            if x <= 0.0 {
                return *pid_;
            }
        }
        weights.last().map(|(p, _)| *p).unwrap_or(pid::REG_RU)
    }

    /// Sample a managed DNS plan at `date`.
    fn sample_plan(&mut self, date: Date) -> usize {
        let weights: Vec<f64> = self
            .plans
            .iter()
            .map(|p| p.share.at(date).max(0.0))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut x = self.rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        0
    }

    fn sample_ca(&mut self, date: Date) -> CaId {
        let period = Period::of(date);
        let weights: Vec<f64> = self
            .ca_specs
            .iter()
            .map(|s| match period {
                Period::PreConflict => s.share_pre_conflict,
                Period::PreSanctions => s.share_pre_sanctions,
                Period::PostSanctions => s.share_post_sanctions,
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut x = self.rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return CaId(i as u16);
            }
        }
        caid::LETS_ENCRYPT
    }

    /// Create and fully wire a new domain. Returns its name.
    fn add_domain(
        &mut self,
        name: DomainName,
        registered: Date,
        hosting_override: Option<ProviderId>,
        dns_override: Option<DnsPlan>,
        sanctioned: bool,
    ) -> DomainName {
        let date = registered.max(self.cfg.start);
        let primary = hosting_override.unwrap_or_else(|| self.sample_hosting(date, None));
        let primary_ip = self.web_alloc[primary.0 as usize]
            .alloc()
            .expect("provider address space exhausted — raise the scale denominator");
        let primary_is_ru = self.providers[primary.0 as usize].country.is_russia();

        // Split-country hosting for ~0.19 % of Russian-hosted domains.
        let secondary = if !sanctioned
            && primary_is_ru
            && self
                .rng
                .random_bool(self.cfg.hosting_part_ru_at_start / self.cfg.hosting_full_ru_at_start)
        {
            let sec = self.sample_hosting(date, Some(false));
            let ip = self.web_alloc[sec.0 as usize]
                .alloc()
                .expect("address space");
            Some((sec, ip))
        } else {
            None
        };

        let dns = dns_override.unwrap_or_else(|| {
            let vanity_own_p = VANITY_OWN_SHARE / self.cfg.hosting_full_ru_at_start;
            let vanity_exotic_p = VANITY_EXOTIC_SHARE / (1.0 - self.cfg.hosting_full_ru_at_start);
            if primary_is_ru && self.rng.random_bool(vanity_own_p.min(1.0)) {
                DnsPlan::VanityOwn
            } else if !primary_is_ru && self.rng.random_bool(vanity_exotic_p.min(1.0)) {
                DnsPlan::VanityExotic(self.rng.random_range(0..catalog::EXOTIC_TLD_COUNT as u16))
            } else {
                DnsPlan::Managed(PlanId(self.sample_plan(date) as u16))
            }
        });

        let tls = if self.rng.random_bool(0.80) {
            Some(TlsProfile {
                ca: self.sample_ca(date),
                next_issue: date,
                certs_per_renewal: self.rng.random_range(1..=4),
                serving: None,
            })
        } else {
            None
        };

        let state = DomainState {
            name: name.clone(),
            hosting: HostingPlan {
                primary,
                primary_ip,
                secondary,
            },
            dns,
            tls,
            sanctioned,
            registered,
        };

        // Registry entry.
        let reg_idx = if name.tld() == "ru" { 0 } else { 1 };
        let _ = self.registries[reg_idx].register(name.clone(), registered, 30);

        self.install_domain(&state);

        // Membership bookkeeping.
        self.hosting_members[primary.0 as usize].add(name.clone());
        if let Some((sec, _)) = state.hosting.secondary {
            self.hosting_members[sec.0 as usize].add(name.clone());
        }
        match &state.dns {
            DnsPlan::Managed(p) => self.plan_members[p.0 as usize].add(name.clone()),
            DnsPlan::VanityOwn => self.vanity_own_members.add(name.clone()),
            DnsPlan::VanityExotic(_) => self.vanity_exotic_members.add(name.clone()),
        }
        if state.tls.is_some() {
            self.tls_pool.add(name.clone());
        }
        self.domains.insert(name.clone(), state);
        name
    }

    /// Write the domain's zone, delegation, and TLS endpoints into the
    /// infrastructure, according to its current state.
    fn install_domain(&mut self, state: &DomainState) {
        let owner = Name::from(&state.name);
        let (ns_names, glue, zone_home): (
            Vec<DomainName>,
            BTreeMap<DomainName, Vec<Ipv4Addr>>,
            ZoneHome,
        ) = match &state.dns {
            DnsPlan::Managed(p) => {
                let plan_i = p.0 as usize;
                let names: Vec<DomainName> = self
                    .ns_hosts
                    .iter()
                    .filter(|h| h.plan == plan_i)
                    .map(|h| h.name.clone())
                    .collect();
                (names, BTreeMap::new(), ZoneHome::Plan(plan_i))
            }
            DnsPlan::VanityOwn => {
                let ns1 = state.name.prepend("ns1").expect("valid label");
                let ns2 = state.name.prepend("ns2").expect("valid label");
                let glue: BTreeMap<DomainName, Vec<Ipv4Addr>> = [
                    (ns1.clone(), vec![state.hosting.primary_ip]),
                    (ns2.clone(), vec![state.hosting.primary_ip]),
                ]
                .into();
                (vec![ns1, ns2], glue, ZoneHome::SelfHosted)
            }
            DnsPlan::VanityExotic(i) => {
                let tld = catalog::exotic_tld(*i as usize);
                let sld = state.name.labels().next().expect("non-empty");
                let parent: DomainName = format!("{sld}-dns.{tld}").parse().expect("valid name");
                let ns1 = parent.prepend("ns1").expect("valid label");
                (vec![ns1], BTreeMap::new(), ZoneHome::ExoticVanity(parent))
            }
        };

        // The domain's own zone: apex A (+ optional secondary) + NS set.
        let mname = Name::from(&ns_names[0]);
        let mut zone = Zone::new(owner.clone(), Self::plan_soa(&mname), 3_600);
        zone.add(Record::new(
            owner.clone(),
            300,
            RData::A(state.hosting.primary_ip),
        ));
        if let Some((_, ip)) = state.hosting.secondary {
            zone.add(Record::new(owner.clone(), 300, RData::A(ip)));
        }
        for n in &ns_names {
            zone.add(Record::new(owner.clone(), 3_600, RData::Ns(Name::from(n))));
        }
        for (host, addrs) in &glue {
            for a in addrs {
                zone.add(Record::new(Name::from(host), 3_600, RData::A(*a)));
            }
        }

        match zone_home {
            ZoneHome::Plan(plan_i) => {
                self.plan_zone_sets[plan_i].write().insert(zone);
            }
            ZoneHome::SelfHosted => {
                // AuthServer at the web IP, serving just this zone.
                let zs: SharedZoneSet = Arc::new(RwLock::new(ZoneSet::new()));
                zs.write().insert(zone);
                self.net.bind(
                    state.hosting.primary_ip,
                    DNS_PORT,
                    Box::new(AuthServer::new(zs)),
                );
            }
            ZoneHome::ExoticVanity(parent) => {
                // Serve both the parent vanity zone and the domain zone at
                // the web IP; delegate the parent in its exotic TLD zone.
                let ns1 = parent.prepend("ns1").expect("valid label");
                let mut pzone = Zone::new(
                    Name::from(&parent),
                    Self::plan_soa(&Name::from(&ns1)),
                    3_600,
                );
                pzone.add(Record::new(
                    Name::from(&ns1),
                    3_600,
                    RData::A(state.hosting.primary_ip),
                ));
                pzone.add(Record::new(
                    Name::from(&parent),
                    3_600,
                    RData::Ns(Name::from(&ns1)),
                ));
                let zs: SharedZoneSet = Arc::new(RwLock::new(ZoneSet::new()));
                zs.write().insert(zone);
                zs.write().insert(pzone);
                self.net.bind(
                    state.hosting.primary_ip,
                    DNS_PORT,
                    Box::new(AuthServer::new(zs)),
                );
                let tld: Name = parent.tld().parse().expect("valid tld");
                let mut g = self.gtld_zones.write();
                if let Some(tzone) = g.get_mut(&tld) {
                    let powner = Name::from(&parent);
                    tzone.remove(&powner, None);
                    tzone.add(Record::new(powner, 86_400, RData::Ns(Name::from(&ns1))));
                    let nowner = Name::from(&ns1);
                    tzone.remove(&nowner, None);
                    tzone.add(Record::new(
                        nowner,
                        86_400,
                        RData::A(state.hosting.primary_ip),
                    ));
                }
            }
        }

        // Registry delegation.
        let reg_idx = if state.name.tld() == "ru" { 0 } else { 1 };
        let _ = self.registries[reg_idx].set_delegation(
            &state.name,
            Delegation {
                nameservers: ns_names,
                glue,
            },
        );

        // TLS endpoints.
        if state.tls.is_some() {
            self.net.bind(
                state.hosting.primary_ip,
                TLS_PORT,
                Box::new(TlsEndpoint::new(
                    Arc::clone(&self.serving),
                    state.hosting.primary_ip,
                )),
            );
            if let Some((_, ip)) = state.hosting.secondary {
                self.net.bind(
                    ip,
                    TLS_PORT,
                    Box::new(TlsEndpoint::new(Arc::clone(&self.serving), ip)),
                );
            }
        }
    }

    /// Tear a domain out of the infrastructure (expiry / deletion).
    fn remove_domain(&mut self, name: &DomainName) {
        let Some(state) = self.domains.remove(name) else {
            return;
        };
        let owner = Name::from(name);
        match &state.dns {
            DnsPlan::Managed(p) => {
                self.plan_zone_sets[p.0 as usize].write().remove(&owner);
                self.plan_members[p.0 as usize].remove(name);
            }
            DnsPlan::VanityOwn => {
                self.net.unbind(state.hosting.primary_ip, DNS_PORT);
                self.vanity_own_members.remove(name);
            }
            DnsPlan::VanityExotic(i) => {
                self.net.unbind(state.hosting.primary_ip, DNS_PORT);
                self.vanity_exotic_members.remove(name);
                let tld = catalog::exotic_tld(*i as usize);
                let sld = name.labels().next().expect("non-empty");
                if let Ok(parent) = format!("{sld}-dns.{tld}").parse::<DomainName>() {
                    let tldname: Name = parent.tld().parse().expect("valid");
                    let mut g = self.gtld_zones.write();
                    if let Some(tzone) = g.get_mut(&tldname) {
                        tzone.remove(&Name::from(&parent), None);
                        if let Ok(ns1) = parent.prepend("ns1") {
                            tzone.remove(&Name::from(&ns1), None);
                        }
                    }
                }
            }
        }
        self.hosting_members[state.hosting.primary.0 as usize].remove(name);
        if let Some((sec, ip)) = state.hosting.secondary {
            self.hosting_members[sec.0 as usize].remove(name);
            self.net.unbind(ip, TLS_PORT);
            self.serving.write().remove(&ip);
        }
        if state.tls.is_some() {
            self.net.unbind(state.hosting.primary_ip, TLS_PORT);
            self.serving.write().remove(&state.hosting.primary_ip);
            self.tls_pool.remove(name);
        }
        let reg_idx = if name.tld() == "ru" { 0 } else { 1 };
        let _ = self.registries[reg_idx].delete(name);
    }

    /// Initial population at `cfg.start`.
    fn build_population(&mut self) {
        let n = self.cfg.initial_population;
        let rf = (n as f64 * self.cfg.rf_fraction) as usize;
        let mut reg_dates_rng = self.seed.child("regdates").rng();
        for i in 0..n {
            let tld = if i < rf { "рф" } else { "ru" };
            let name = self.namegen.generate(tld);
            let registered = self
                .cfg
                .start
                .add_days(-reg_dates_rng.random_range(30..2500));
            self.add_domain(name, registered, None, None, false);
        }
    }

    /// The domain-parking portfolio that oscillates between Amazon and
    /// Sedo before settling at Serverel (§3.2: "domains that switch back
    /// and forth between Amazon (US) and Sedo (Germany), and then
    /// ultimately move to Serverel (Netherlands)").
    fn build_portfolio(&mut self) {
        let size = (self.cfg.initial_population as f64 * 0.003).ceil() as usize;
        for _ in 0..size {
            let name = self.namegen.generate("ru");
            let name = self.add_domain(
                name,
                self.cfg.start.add_days(-200),
                Some(pid::SEDO),
                Some(DnsPlan::Managed(PlanId(planidx::SEDO_PARKING as u16))),
                false,
            );
            self.portfolio.push(name);
        }
        // The oscillation, visible in Figure 4's crossing curves.
        let hops = [
            (Date::from_ymd(2022, 2, 25), pid::AMAZON),
            (Date::from_ymd(2022, 3, 12), pid::SEDO),
            (Date::from_ymd(2022, 3, 30), pid::AMAZON),
            (Date::from_ymd(2022, 4, 18), pid::SERVEREL),
        ];
        for name in self.portfolio.clone() {
            for (date, to) in hops {
                self.scripted_moves.push(ScriptedMove {
                    date,
                    domain: name.clone(),
                    to,
                });
            }
        }
    }

    /// The 107 sanctioned domains with their scripted composition (§3.3).
    fn build_sanctioned(&mut self) {
        let n = self.cfg.sanctioned_count;
        // Proportions from the paper: 101/107 Russian-hosted pre-conflict,
        // 3 abroad that repatriate, 3 that never do; NS: 34 % partial
        // (almost all via Netnod), 5.2 % non.
        let n_stay_abroad = (3 * n / 107).max(if n >= 3 { 3 } else { n });
        let n_repatriate = if n >= 6 { 3 } else { 0 };
        let n_partial = (34 * n + 50) / 100;
        let n_non = (52 * n + 500) / 1000;

        let mut listed_rng = self.seed.child("sanctions").rng();
        for i in 0..n {
            let name: DomainName = format!("sanctioned-entity-{i:03}.ru")
                .parse()
                .expect("static pattern");
            self.namegen.reserve(name.clone());

            // Hosting.
            let hosting = if i < n_stay_abroad {
                // The three that remain in DE / CZ / EE.
                Some([pid::DE_HAVEN, pid::CZ_HAVEN, pid::EE_HAVEN][i % 3])
            } else if i < n_stay_abroad + n_repatriate {
                // Previously "Germany or Poland"; repatriate on scripted
                // dates.
                let from = [pid::PL_HOST, pid::PL_HOST, pid::DE_HAVEN][i % 3];
                let when = [
                    Date::from_ymd(2022, 3, 15),
                    Date::from_ymd(2022, 4, 12),
                    Date::from_ymd(2022, 5, 20),
                ][i % 3];
                self.scripted_moves.push(ScriptedMove {
                    date: when,
                    domain: name.clone(),
                    to: pid::REG_RU,
                });
                Some(from)
            } else {
                Some(self.sample_hosting_ru_static(i))
            };

            // DNS: indexes from the end of the range get partial/non plans.
            let dns = if i >= n.saturating_sub(n_non) {
                // Non-Russian DNS (stays non through the window): Cloudflare.
                Some(DnsPlan::Managed(PlanId(planidx::NON_RU_RANGE.start as u16)))
            } else if i >= n.saturating_sub(n_non + n_partial) {
                // Partial: nearly all on the Netnod cloud plan; one on a
                // non-Netnod partial plan flips on 2022-03-04 (scripted).
                if i == n.saturating_sub(n_non + n_partial) {
                    Some(DnsPlan::Managed(PlanId(planidx::NETNOD_CLOUD as u16 + 1)))
                } else {
                    Some(DnsPlan::Managed(PlanId(planidx::NETNOD_CLOUD as u16)))
                }
            } else {
                // Fully Russian managed plan.
                Some(DnsPlan::Managed(PlanId((i % 3) as u16))) // REG.RU / RUC / Timeweb
            };

            let registered = self.cfg.start.add_days(-(400 + (i as i32 * 13) % 1200));
            self.add_domain(name.clone(), registered, hosting, dns, true);

            // Listing dates: most predate the conflict (Crimea-era lists),
            // a late wave lands after February 25, 2022.
            let (source, date) = if listed_rng.random_bool(0.88) {
                (
                    SanctionSource::UsOfacSdn,
                    Date::from_ymd(2018, 4, 6).add_days(listed_rng.random_range(0..1200)),
                )
            } else {
                let waves = [
                    Date::from_ymd(2022, 2, 25),
                    Date::from_ymd(2022, 3, 2),
                    Date::from_ymd(2022, 3, 11),
                ];
                (SanctionSource::UkSanctions, waves[i % 3])
            };
            self.sanctions
                .add(name, source, date.min(Date::from_ymd(2022, 3, 11)));
        }
    }

    fn sample_hosting_ru_static(&mut self, i: usize) -> ProviderId {
        // Spread sanctioned domains across Russian hosters deterministically.
        let ru: Vec<ProviderId> = self
            .hosting_shares
            .iter()
            .filter(|(p, _)| self.providers[p.0 as usize].country.is_russia())
            .map(|(p, _)| *p)
            .collect();
        ru[i % ru.len()]
    }

    /// Russian-affiliated sites under other TLDs (§4.3's long tail).
    fn build_extra_sites(&mut self) {
        for i in 0..self.cfg.extra_russian_sites {
            let tld = ["com", "net", "org", "su"][i % 4];
            let name = format!("russian-affiliate-{i:02}.{tld}");
            let host = ProviderId(pid::RU_GENERIC_BASE + (i as u16 % pid::RU_GENERIC_COUNT));
            let ip = self.web_alloc[host.0 as usize].alloc().expect("space");
            self.net.bind(
                ip,
                TLS_PORT,
                Box::new(TlsEndpoint::new(Arc::clone(&self.serving), ip)),
            );
            self.extra_sites.push((name, ip));
        }
    }

    // ------------------------------------------------------------------
    // daily evolution
    // ------------------------------------------------------------------

    /// Advance the world to `date`, simulating every intervening day.
    pub fn advance_to(&mut self, date: Date) {
        while self.today < date {
            let next = self.today.succ();
            self.step_day(next);
            self.today = next;
        }
    }

    fn step_day(&mut self, date: Date) {
        self.lift_expired_faults(date);
        let events: Vec<ConflictEvent> = self.timeline.on(date).collect();
        for ev in events {
            self.apply_event(ev, date);
        }
        self.apply_scripted_moves(date);
        self.churn(date);
        self.rebalance_hosting(date);
        self.rebalance_plans(date);
        if date >= self.cfg.cert_start {
            self.issue_certificates(date);
            self.issue_sanctioned_certificates(date);
            self.process_revocations(date);
            self.russian_ca_tick(date);
        }
        let since_start = (date - self.cfg.start) as u32;
        if since_start > 0 && since_start.is_multiple_of(self.cfg.geo_snapshot_interval_days) {
            self.snapshot_geo(date.add_days(self.cfg.geo_snapshot_lag_days as i32));
        }
    }

    fn apply_event(&mut self, ev: ConflictEvent, date: Date) {
        match ev {
            ConflictEvent::NetnodRehoming => self.netnod_rehoming(date),
            ConflictEvent::GoogleIntraMove => self.google_intra_move(date),
            ConflictEvent::DigicertSanctionedRevocation => {
                self.revoke_all_sanctioned(caid::DIGICERT, date)
            }
            ConflictEvent::SectigoSanctionedRevocation => {
                self.revoke_all_sanctioned(caid::SECTIGO, date)
            }
            ConflictEvent::RussianCaLaunch => self.schedule_russian_ca(date),
            ConflictEvent::InfrastructureFault(f) => self.install_infra_fault(f, date),
            // Stop dates are enforced through CA policy below; the
            // remaining events are markers whose effects flow from the
            // share schedules.
            _ => {}
        }
        // CA stop dates.
        for (i, spec) in self.ca_specs.iter().enumerate() {
            if spec.stop_date == Some(date) {
                self.cas[i].policy = CaPolicy::Suspended;
            }
        }
    }

    /// Install a timeline [`InfraFault`] into the network's fault plan.
    ///
    /// The targeted servers black-hole all queries from the current virtual
    /// instant for `duration_hours` of virtual time; because virtual time
    /// only advances during measurements, a calendar-day lift is also
    /// scheduled so the outage cannot outlive its day (see
    /// [`World::lift_expired_faults`]). This is the mechanism behind the
    /// Figure-1 dip: on 2021-03-22 the `.ru` TLD servers go dark, sweeps
    /// that day mostly time out, and the next day's sweep recovers.
    fn install_infra_fault(&mut self, fault: InfraFault, date: Date) {
        let addr = match fault.target {
            FaultTarget::RuTldServers => self.ripn_ip,
            FaultTarget::Root => self.root_ip,
            FaultTarget::GtldServers => self.gtld_ip,
        };
        let now = self.net.now();
        let end = SimTime(
            now.as_micros()
                .saturating_add(u64::from(fault.duration_hours) * 3_600_000_000),
        );
        self.net.faults_mut().add_server_fault(ServerFault {
            addr,
            port: Some(DNS_PORT),
            mode: ServerFaultMode::Outage,
            window: FaultWindow::between(now, end),
        });
        // Lift on the first day after the outage's calendar span.
        let span_days = fault.duration_hours.div_ceil(24).max(1) as i32;
        self.fault_clears
            .entry(date.add_days(span_days))
            .or_default()
            .push((addr, DNS_PORT));
    }

    /// Remove infrastructure faults whose calendar span ended by `date`,
    /// plus any whose virtual-time window has elapsed.
    fn lift_expired_faults(&mut self, date: Date) {
        let due: Vec<Date> = self.fault_clears.range(..=date).map(|(d, _)| *d).collect();
        for d in due {
            if let Some(targets) = self.fault_clears.remove(&d) {
                for (addr, port) in targets {
                    self.net.faults_mut().remove_server_faults(addr, Some(port));
                }
            }
        }
        let now = self.net.now();
        self.net.faults_mut().clear_expired(now);
    }

    /// §3.2/§3.3: Netnod's 2022-03-03 event.
    ///
    /// Default mode — *IP reconfiguration*: the Netnod-operated nic.ru
    /// cloud hosts get new, Russian addresses. Measurements flip the same
    /// day ("quickly changed from partial to fully Russian").
    ///
    /// Ablation mode ([`WorldConfig::netnod_prefix_move`]) — the address
    /// block itself is re-announced by RU-CENTER's ASN. ASN-based views
    /// flip immediately, but the *geolocation* database only reflects the
    /// change at its next snapshot: the footnote-5 lag.
    fn netnod_rehoming(&mut self, date: Date) {
        if self.cfg.netnod_prefix_move {
            let netnod_infra = self.infra_alloc[pid::NETNOD.0 as usize].net();
            let ruc_asn = self.providers[pid::RU_CENTER.0 as usize].asn;
            self.net.topology_mut().announce(netnod_infra, ruc_asn);
            // No geo snapshot here: the vendor's database catches up at the
            // next scheduled refresh.
            let _ = date;
            return;
        }
        let netnod_pid = pid::NETNOD.0 as usize;
        let ruc_pid = pid::RU_CENTER.0 as usize;
        let mut touched_parents = Vec::new();
        let netnod_net = self.infra_alloc[netnod_pid].net();
        for i in 0..self.ns_hosts.len() {
            if netnod_net.contains(self.ns_hosts[i].ip) {
                let new_ip = self.infra_alloc[ruc_pid].alloc().expect("space");
                let old_ip = self.ns_hosts[i].ip;
                self.ns_hosts[i].ip = new_ip;
                let plan = self.ns_hosts[i].plan;
                self.net.unbind(old_ip, DNS_PORT);
                self.net.bind(
                    new_ip,
                    DNS_PORT,
                    Box::new(AuthServer::new(Arc::clone(&self.plan_zone_sets[plan]))),
                );
                touched_parents.push(self.ns_hosts[i].name.registrable());
            }
        }
        touched_parents.sort();
        touched_parents.dedup();
        for parent in touched_parents {
            self.rebuild_infra_zone(&parent);
            self.register_infra_domain(&parent);
        }
    }

    /// §3.4 footnote 11: intra-Google relocation around 2022-03-16.
    fn google_intra_move(&mut self, _date: Date) {
        let members: Vec<DomainName> = self.hosting_members[pid::GOOGLE.0 as usize]
            .items()
            .to_vec();
        let take = (members.len() as f64 * 0.43).ceil() as usize;
        for name in members.into_iter().take(take) {
            self.move_hosting(&name, pid::GOOGLE_CLOUD);
        }
    }

    /// Whether `ca` refuses sanctioned customers as of `date`: true once
    /// its timeline revoke-all-sanctioned event has fired (Table 2's 100%
    /// revocation rows stay at 100% only if no re-issuance follows).
    fn refuses_sanctioned(&self, ca: CaId, date: Date) -> bool {
        let cutoff = match ca {
            caid::DIGICERT => self
                .timeline
                .date_of(ConflictEvent::DigicertSanctionedRevocation),
            caid::SECTIGO => self
                .timeline
                .date_of(ConflictEvent::SectigoSanctionedRevocation),
            _ => None,
        };
        cutoff.is_some_and(|d| date >= d)
    }

    fn revoke_all_sanctioned(&mut self, ca: CaId, date: Date) {
        let serials: Vec<u64> = self
            .issued_index
            .iter()
            .filter(|c| c.ca == ca && c.sanctioned)
            .map(|c| c.serial)
            .collect();
        let org = self.ca_specs[ca.0 as usize].org.to_owned();
        let crl = self.ocsp.crl_mut(&org);
        for s in serials {
            crl.revoke(s, date, RevocationReason::PrivilegeWithdrawn);
        }
    }

    /// §4.3: spread ~170 Russian Trusted Root CA issuances over a few weeks.
    fn schedule_russian_ca(&mut self, launch: Date) {
        // Targets: all sanctioned domains' "34 %" (the paper: 36 of 170
        // certificates secure sanctioned domains), a set of ordinary
        // Russian domains, and the extra non-RU-TLD Russian sites.
        // Only endpoints that can actually *serve* the certificate matter
        // for §4.3's scan-based numbers.
        let sanctioned_targets: Vec<DomainName> = self
            .domains
            .values()
            .filter(|d| d.sanctioned && d.tls.is_some())
            .map(|d| d.name.clone())
            .collect();
        let sanctioned_total = self.domains.values().filter(|d| d.sanctioned).count();
        let n_sanctioned =
            ((sanctioned_total as f64 * 0.34).round() as usize).min(sanctioned_targets.len());
        let mut targets: Vec<RussianCaTarget> = sanctioned_targets
            .into_iter()
            .take(n_sanctioned)
            .map(RussianCaTarget::Domain)
            .collect();
        // Ordinary .ru/.рф adopters: 170 total − sanctioned − extra sites.
        let ordinary_total = 170usize
            .saturating_sub(n_sanctioned)
            .saturating_sub(self.extra_sites.len());
        // The paper observes exactly 2 .рф adopters: pick those first,
        // then fill with .ru names.
        let mut names: Vec<DomainName> = self.tls_pool.items().to_vec();
        names.sort();
        let eligible = |world: &Self, name: &DomainName| {
            world.domains.get(name).is_some_and(|d| {
                !d.sanctioned
                    && world.providers[d.hosting.primary.0 as usize]
                        .country
                        .is_russia()
            })
        };
        let mut ordinary: Vec<DomainName> = names
            .iter()
            .filter(|n| n.tld() == "xn--p1ai" && eligible(self, n))
            .take(2)
            .cloned()
            .collect();
        for name in names {
            if ordinary.len() >= ordinary_total {
                break;
            }
            if name.tld() != "xn--p1ai" && eligible(self, &name) {
                ordinary.push(name);
            }
        }
        targets.extend(ordinary.into_iter().map(RussianCaTarget::Domain));
        targets.extend((0..self.extra_sites.len()).map(RussianCaTarget::ExtraSite));

        // Spread over ~5 weeks.
        let mut rng = self.seed.child("russian-ca").rng();
        for t in targets {
            let day = launch.add_days(rng.random_range(0..35));
            self.russian_ca_queue.entry(day).or_default().push(t);
        }
    }

    fn russian_ca_tick(&mut self, date: Date) {
        let Some(targets) = self.russian_ca_queue.remove(&date) else {
            return;
        };
        for t in targets {
            let (cn, san, ips, sanctioned): (String, Vec<DomainName>, Vec<Ipv4Addr>, bool) =
                match &t {
                    RussianCaTarget::Domain(name) => {
                        let Some(d) = self.domains.get(name).filter(|d| d.tls.is_some()) else {
                            continue;
                        };
                        let mut ips = vec![d.hosting.primary_ip];
                        if let Some((_, ip)) = d.hosting.secondary {
                            ips.push(ip);
                        }
                        (
                            name.as_str().to_owned(),
                            vec![name.clone()],
                            ips,
                            d.sanctioned,
                        )
                    }
                    RussianCaTarget::ExtraSite(i) => {
                        let (name, ip) = &self.extra_sites[*i];
                        let san = DomainName::parse(name).ok().into_iter().collect();
                        (name.clone(), san, vec![*ip], false)
                    }
                };
            let subject = match DomainName::parse(&cn) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let ca_i = caid::RUSSIAN.0 as usize;
            let chain = vec!["Russian Trusted Root CA".to_owned()];
            if let Some(cert) = self.cas[ca_i].issue(&subject, san, 0, date, chain) {
                // Not CT-logged (logs_to_ct = false) — visible to the
                // IP-wide scan only, via the served chain.
                let summary = ChainSummary::from_certificate(&cert);
                let mut serving = self.serving.write();
                for ip in ips {
                    serving.insert(ip, summary.clone());
                }
                drop(serving);
                self.issued_index.push(IssuedCert {
                    ca: caid::RUSSIAN,
                    serial: cert.serial,
                    domain: subject,
                    sanctioned,
                });
            }
        }
    }

    fn apply_scripted_moves(&mut self, date: Date) {
        let due: Vec<ScriptedMove> = self
            .scripted_moves
            .iter()
            .filter(|m| m.date == date)
            .cloned()
            .collect();
        for m in due {
            self.move_hosting(&m.domain, m.to);
        }
        // The scripted sanctioned partial→full flip of 2022-03-04.
        if date == Date::from_ymd(2022, 3, 4) {
            let flip: Vec<DomainName> = self
                .domains
                .values()
                .filter(|d| {
                    d.sanctioned
                        && matches!(d.dns, DnsPlan::Managed(PlanId(p)) if p as usize == planidx::NETNOD_CLOUD + 1)
                })
                .map(|d| d.name.clone())
                .take(1)
                .collect();
            for name in flip {
                self.move_plan(&name, 0); // REG.RU DNS: fully Russian
            }
        }
    }

    /// Registrations and lapses.
    fn churn(&mut self, date: Date) {
        let pop = self.domains.len();
        let lapses = self.binomial(pop, self.cfg.daily_churn_rate);
        let growth = (pop as f64 * self.cfg.daily_growth_rate).round() as usize;
        let births = lapses + growth;

        for _ in 0..lapses {
            // Sample a random non-sanctioned domain by provider-weighted
            // sampling of hosting members.
            let provider = self.sample_hosting(date, None);
            let candidate = self.hosting_members[provider.0 as usize]
                .sample(&mut self.rng)
                .cloned();
            if let Some(name) = candidate {
                if self.domains.get(&name).is_some_and(|d| !d.sanctioned) {
                    self.remove_domain(&name);
                }
            }
        }
        for _ in 0..births {
            let tld = if self.rng.random_bool(self.cfg.rf_fraction) {
                "рф"
            } else {
                "ru"
            };
            let name = self.namegen.generate(tld);
            self.add_domain(name, date, None, None, false);
        }
    }

    fn binomial(&mut self, n: usize, p: f64) -> usize {
        // Normal approximation is fine at our scales; exact draw for tiny n.
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if n < 64 {
            return (0..n).filter(|_| self.rng.random_bool(p.min(1.0))).count();
        }
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let u: f64 = self.rng.random();
        let v: f64 = self.rng.random();
        let z = (-2.0 * u.max(1e-12).ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        (mean + sd * z).round().clamp(0.0, n as f64) as usize
    }

    /// Move domains between hosting providers toward the share targets.
    fn rebalance_hosting(&mut self, date: Date) {
        let pop = self.domains.len().max(1);
        let mut deficits: Vec<(ProviderId, f64)> = Vec::new();
        let mut surplus_pool: Vec<DomainName> = Vec::new();
        for (pid_, sched) in self.hosting_shares.clone() {
            let target = sched.at(date) * pop as f64;
            let actual = self.hosting_members[pid_.0 as usize].len() as f64;
            let gap = actual - target;
            let cap = (actual * 0.08).max(24.0);
            if gap > 1.0 {
                let k = gap.min(cap).round() as usize;
                let mut picked = 0;
                let mut guard = 0;
                while picked < k && guard < k * 4 {
                    guard += 1;
                    let Some(name) = self.hosting_members[pid_.0 as usize]
                        .sample(&mut self.rng)
                        .cloned()
                    else {
                        break;
                    };
                    let ok = self.domains.get(&name).is_some_and(|d| {
                        !d.sanctioned && d.hosting.primary == pid_ && d.hosting.secondary.is_none()
                    }) && !self.portfolio.contains(&name);
                    if ok && !surplus_pool.contains(&name) {
                        surplus_pool.push(name);
                        picked += 1;
                    }
                }
            } else if gap < -1.0 {
                deficits.push((pid_, -gap));
            }
        }
        let total_deficit: f64 = deficits.iter().map(|(_, d)| d).sum();
        if total_deficit <= 0.0 {
            return;
        }
        for name in surplus_pool {
            let mut x = self.rng.random_range(0.0..total_deficit);
            let mut dest = deficits[0].0;
            for (p, d) in &deficits {
                x -= d;
                if x <= 0.0 {
                    dest = *p;
                    break;
                }
            }
            self.move_hosting(&name, dest);
        }
    }

    /// Move domains between managed DNS plans toward the share targets.
    fn rebalance_plans(&mut self, date: Date) {
        let pop = self.domains.len().max(1);
        let mut deficits: Vec<(usize, f64)> = Vec::new();
        let mut surplus_pool: Vec<DomainName> = Vec::new();
        for i in 0..self.plans.len() {
            let target = self.plans[i].share.at(date) * pop as f64;
            let actual = self.plan_members[i].len() as f64;
            let gap = actual - target;
            let cap = (actual * 0.08).max(24.0);
            if gap > 1.0 {
                let k = gap.min(cap).round() as usize;
                let mut picked = 0;
                let mut guard = 0;
                while picked < k && guard < k * 4 {
                    guard += 1;
                    let Some(name) = self.plan_members[i].sample(&mut self.rng).cloned() else {
                        break;
                    };
                    if self.domains.get(&name).is_some_and(|d| !d.sanctioned)
                        && !surplus_pool.contains(&name)
                    {
                        surplus_pool.push(name);
                        picked += 1;
                    }
                }
            } else if gap < -1.0 {
                deficits.push((i, -gap));
            }
        }
        let total_deficit: f64 = deficits.iter().map(|(_, d)| d).sum();
        if total_deficit <= 0.0 {
            return;
        }
        for name in surplus_pool {
            let mut x = self.rng.random_range(0.0..total_deficit);
            let mut dest = deficits[0].0;
            for (p, d) in &deficits {
                x -= d;
                if x <= 0.0 {
                    dest = *p;
                    break;
                }
            }
            self.move_plan(&name, dest);
        }
    }

    /// Re-home a domain's web hosting (and TLS endpoint) to `to`.
    pub fn move_hosting(&mut self, name: &DomainName, to: ProviderId) {
        let Some(state) = self.domains.get(name).cloned() else {
            return;
        };
        if state.hosting.primary == to {
            return;
        }
        let new_ip = self.web_alloc[to.0 as usize]
            .alloc()
            .expect("address space");
        let old_ip = state.hosting.primary_ip;

        // Update zone A record wherever the domain's zone lives.
        match &state.dns {
            DnsPlan::Managed(p) => {
                let mut zs = self.plan_zone_sets[p.0 as usize].write();
                if let Some(zone) = zs.get_mut(&Name::from(name)) {
                    let owner = Name::from(name);
                    zone.remove(&owner, Some(ruwhere_dns::RType::A));
                    zone.add(Record::new(owner, 300, RData::A(new_ip)));
                    if let Some((_, ip)) = state.hosting.secondary {
                        zone.add(Record::new(Name::from(name), 300, RData::A(ip)));
                    }
                }
            }
            DnsPlan::VanityOwn | DnsPlan::VanityExotic(_) => {
                // Vanity DNS rides on the web IP: re-install from scratch.
                self.net.unbind(old_ip, DNS_PORT);
            }
        }

        // TLS endpoint moves with the address.
        if state.tls.is_some() {
            self.net.unbind(old_ip, TLS_PORT);
            let chain = self.serving.write().remove(&old_ip);
            if let Some(chain) = chain {
                self.serving.write().insert(new_ip, chain);
            }
            self.net.bind(
                new_ip,
                TLS_PORT,
                Box::new(TlsEndpoint::new(Arc::clone(&self.serving), new_ip)),
            );
        }

        self.hosting_members[state.hosting.primary.0 as usize].remove(name);
        self.hosting_members[to.0 as usize].add(name.clone());
        let mut new_state = state.clone();
        new_state.hosting.primary = to;
        new_state.hosting.primary_ip = new_ip;
        if matches!(state.dns, DnsPlan::VanityOwn | DnsPlan::VanityExotic(_)) {
            self.install_domain(&new_state);
        }
        self.domains.insert(name.clone(), new_state);
    }

    /// Switch a domain's managed DNS plan.
    pub fn move_plan(&mut self, name: &DomainName, to_plan: usize) {
        let Some(state) = self.domains.get(name).cloned() else {
            return;
        };
        let owner = Name::from(name);
        match &state.dns {
            DnsPlan::Managed(p) => {
                if p.0 as usize == to_plan {
                    return;
                }
                self.plan_zone_sets[p.0 as usize].write().remove(&owner);
                self.plan_members[p.0 as usize].remove(name);
            }
            DnsPlan::VanityOwn => {
                self.net.unbind(state.hosting.primary_ip, DNS_PORT);
                self.vanity_own_members.remove(name);
            }
            DnsPlan::VanityExotic(_) => {
                self.net.unbind(state.hosting.primary_ip, DNS_PORT);
                self.vanity_exotic_members.remove(name);
            }
        }
        let mut new_state = state;
        new_state.dns = DnsPlan::Managed(PlanId(to_plan as u16));
        self.plan_members[to_plan].add(name.clone());
        self.install_domain(&new_state);
        self.domains.insert(name.clone(), new_state);
    }

    /// Daily certificate issuance across the CA table.
    fn issue_certificates(&mut self, date: Date) {
        let vol = self.cfg.certs_per_day
            * if date < CONFLICT_START {
                1.0
            } else {
                self.cfg.cert_volume_conflict_factor
            };
        let period = Period::of(date);
        for i in 0..self.ca_specs.len() {
            if CaId(i as u16) == caid::RUSSIAN {
                continue;
            }
            let spec_share = match period {
                Period::PreConflict => self.ca_specs[i].share_pre_conflict,
                Period::PreSanctions => self.ca_specs[i].share_pre_sanctions,
                Period::PostSanctions => self.ca_specs[i].share_post_sanctions,
            };
            let stopped = self.ca_specs[i].stop_date.is_some_and(|d| date >= d);
            let mut n = if stopped {
                0
            } else {
                let want = vol * spec_share + self.issue_carry[i];
                let k = want.floor();
                self.issue_carry[i] = want - k;
                k as usize
            };
            // Figure 8's isolated dots: a stopped multi-brand CA leaks the
            // occasional certificate from a lesser-known CN.
            let mut leak_brand = false;
            if stopped && self.ca_specs[i].brands.len() > 1 {
                let h = self
                    .seed
                    .child("brand-leak")
                    .child_idx(i as u64)
                    .child_idx(date.days_since_epoch() as u64)
                    .seed();
                if h.is_multiple_of(11) {
                    n = 1;
                    leak_brand = true;
                }
            }
            for _ in 0..n {
                let Some(name) = self.tls_pool.sample(&mut self.rng).cloned() else {
                    break;
                };
                // Sanctions compliance: once a CA has executed its
                // revoke-all event it never issues to a sanctioned entity
                // again (DigiCert revoked VTB's certificate *and* cut the
                // entity off; it did not re-issue the next week). The slot
                // is dropped rather than resampled — the volume loss is
                // one draw out of thousands.
                if self.refuses_sanctioned(CaId(i as u16), date)
                    && self.domains.get(&name).is_some_and(|d| d.sanctioned)
                {
                    continue;
                }
                let brand = if leak_brand {
                    1 + (self
                        .rng
                        .random_range(0..self.ca_specs[i].brands.len().max(2) - 1))
                } else {
                    self.rng
                        .random_range(0..self.ca_specs[i].brands.len().max(1))
                };
                self.issue_for(CaId(i as u16), &name, brand, date, leak_brand);
            }
        }
    }

    /// Elevated issuance by sanctioned operators "testing different CAs".
    fn issue_sanctioned_certificates(&mut self, date: Date) {
        let names: Vec<DomainName> = self
            .domains
            .values()
            .filter(|d| d.sanctioned)
            .map(|d| d.name.clone())
            .collect();
        // Anchor case: major sanctioned entities held commercial
        // certificates before the conflict (the paper's trigger example is
        // DigiCert's revocation of Russian Bank VTB's certificate,
        // footnote 2). Guarantee DigiCert and Sectigo each hold at least
        // one sanctioned certificate inside the analysis window so the
        // 100 %-revocation rows of Table 2 are non-vacuous at any scale.
        if date == Date::from_ymd(2022, 1, 5).max(self.cfg.cert_start) {
            for (i, ca) in [(0usize, caid::DIGICERT), (1usize, caid::SECTIGO)] {
                if let Some(name) = names.get(i).cloned() {
                    self.issue_for(ca, &name, 0, date, false);
                }
            }
        }
        for name in names {
            if !self.rng.random_bool(SANCTIONED_DAILY_ISSUE) {
                continue;
            }
            // CA choice: mostly Let's Encrypt; the commercial CAs appear
            // pre-stop (giving DigiCert/Sectigo sanctioned certificates to
            // revoke in Table 2).
            let roll: f64 = self.rng.random();
            let ca = if roll < 0.72 {
                caid::LETS_ENCRYPT
            } else if roll < 0.80 {
                caid::GLOBALSIGN
            } else if roll < 0.90 {
                caid::DIGICERT
            } else if roll < 0.96 {
                caid::SECTIGO
            } else {
                caid::ZEROSSL
            };
            let stopped = self.ca_specs[ca.0 as usize]
                .stop_date
                .is_some_and(|d| date >= d);
            if stopped || self.refuses_sanctioned(ca, date) {
                continue;
            }
            let brand = self
                .rng
                .random_range(0..self.ca_specs[ca.0 as usize].brands.len().max(1));
            self.issue_for(ca, &name, brand, date, false);
        }
    }

    /// Issue one certificate for `name` from `ca` and wire all state.
    fn issue_for(&mut self, ca: CaId, name: &DomainName, brand: usize, date: Date, force: bool) {
        let i = ca.0 as usize;
        let saved_policy = self.cas[i].policy;
        if force {
            self.cas[i].policy = CaPolicy::Issuing;
        }
        let san = vec![
            name.clone(),
            name.prepend("www").unwrap_or_else(|_| name.clone()),
        ];
        let chain = vec![format!("{} Root", self.ca_specs[i].org)];
        let cert = self.cas[i].issue(name, san, brand, date, chain);
        if force {
            self.cas[i].policy = saved_policy;
        }
        let Some(cert) = cert else { return };

        let sanctioned = self
            .domains
            .get(name)
            .map(|d| d.sanctioned)
            .unwrap_or(false);
        if cert.ct_logged {
            for log in &mut self.ct_logs {
                log.append(cert.clone(), date);
            }
        }
        self.issued_index.push(IssuedCert {
            ca,
            serial: cert.serial,
            domain: name.clone(),
            sanctioned,
        });
        // Serve the fresh certificate — unless the endpoint already serves
        // a Russian Trusted Root CA chain (its operator deliberately
        // switched to the state CA; later background issuance must not
        // silently revert what the IP scan should observe, §4.3). Domains
        // without a TLS endpoint get the certificate (it exists in CT) but
        // never serve it.
        if let Some(d) = self.domains.get(name).filter(|d| d.tls.is_some()) {
            let summary = ChainSummary::from_certificate(&cert);
            let mut serving = self.serving.write();
            let keeps_russian = |ip: &std::net::Ipv4Addr, s: &HashMap<Ipv4Addr, ChainSummary>| {
                s.get(ip)
                    .is_some_and(|c| c.chain_contains_org("Russian Trusted Root CA"))
            };
            if !keeps_russian(&d.hosting.primary_ip, &serving) {
                serving.insert(d.hosting.primary_ip, summary.clone());
            }
            if let Some((_, ip)) = d.hosting.secondary {
                if !keeps_russian(&ip, &serving) {
                    serving.insert(ip, summary);
                }
            }
        }
        // Background revocation.
        let rate = self.ca_specs[i].background_revocation_rate;
        if rate > 0.0 && self.rng.random_bool(rate.min(1.0)) {
            let when = date.add_days(self.rng.random_range(3..45));
            self.pending_revocations
                .entry(when)
                .or_default()
                .push((ca, cert.serial));
        }
    }

    fn process_revocations(&mut self, date: Date) {
        let due: Vec<(CaId, u64)> = self
            .pending_revocations
            .range(..=date)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        self.pending_revocations.retain(|d, _| *d > date);
        for (ca, serial) in due {
            let org = self.ca_specs[ca.0 as usize].org.to_owned();
            let reason = if self.rng.random_bool(0.5) {
                RevocationReason::CessationOfOperation
            } else {
                RevocationReason::Superseded
            };
            self.ocsp.crl_mut(&org).revoke(serial, date, reason);
        }
    }

    fn snapshot_geo(&mut self, effective: Date) {
        let db = GeoDbBuilder::from_topology(self.net.topology()).build();
        self.geo.add_snapshot(effective, db);
    }

    /// Install today's TLD zone snapshots into the RIPN server. Call before
    /// running a measurement sweep.
    pub fn publish_tld_zones(&mut self) {
        let mut zs = self.ripn_zones.write();
        for r in &self.registries {
            zs.insert(r.zone_snapshot(self.today));
        }
        drop(zs);
        *self.whois_state.write() = self.registries.clone();
        // Refresh the zone-transfer chunks (the daily zone file the
        // registry makes available to measurement partners).
        let mut xfr = HashMap::new();
        for r in &self.registries {
            let text = r.zone_snapshot(self.today).to_text();
            let bytes = text.as_bytes();
            let mut chunks = Vec::with_capacity(bytes.len() / XFR_CHUNK + 1);
            let mut start = 0;
            while start < bytes.len() {
                // Split on a line boundary at or before the chunk size.
                let mut end = (start + XFR_CHUNK).min(bytes.len());
                if end < bytes.len() {
                    while end > start && bytes[end - 1] != b'\n' {
                        end -= 1;
                    }
                    if end == start {
                        end = (start + XFR_CHUNK).min(bytes.len());
                    }
                }
                chunks.push(String::from_utf8_lossy(&bytes[start..end]).into_owned());
                start = end;
            }
            if chunks.is_empty() {
                chunks.push(String::new());
            }
            xfr.insert(r.tld().as_str().to_owned(), chunks);
        }
        *self.xfr_state.write() = xfr;
    }

    /// Address of the registry's zone-transfer service.
    pub fn xfr_server(&self) -> (Ipv4Addr, u16) {
        (self.ripn_ip, XFR_PORT)
    }

    /// Address of the registry's WHOIS service (port 43 protocol over the
    /// simulated network) — the stand-in for Cisco's Whois Domain API that
    /// §3.4 uses to confirm registration dates.
    pub fn whois_server(&self) -> (Ipv4Addr, u16) {
        (self.ripn_ip, WHOIS_PORT)
    }

    /// Finish OCSP issuer registration (max serials) — call before reading
    /// revocation state in analysis.
    pub fn finalize_ocsp(&mut self) {
        for (i, spec) in self.ca_specs.iter().enumerate() {
            let max = self.cas[i].issued_count();
            self.ocsp.register_issuer(spec.org, max);
        }
    }

    /// Enumerate (CA, serial, domain, sanctioned) issuance rows for
    /// ground-truth validation in tests.
    pub fn issued_certificates(&self) -> impl Iterator<Item = (CaId, u64, &DomainName, bool)> {
        self.issued_index
            .iter()
            .map(|c| (c.ca, c.serial, &c.domain, c.sanctioned))
    }

    /// The extra non-RU-TLD Russian-affiliated sites (name, address).
    pub fn extra_sites(&self) -> &[(String, Ipv4Addr)] {
        &self.extra_sites
    }

    /// Verify internal cross-structure consistency; returns the list of
    /// violations (empty = consistent). Used by tests after build and
    /// after evolution to catch bookkeeping regressions.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut problems = Vec::new();

        // 1. Membership lists agree with domain states.
        let mut hosting_counts = vec![0usize; self.providers.len()];
        let mut plan_counts = vec![0usize; self.plans.len()];
        let mut vanity_own = 0usize;
        let mut vanity_exotic = 0usize;
        for (name, state) in &self.domains {
            hosting_counts[state.hosting.primary.0 as usize] += 1;
            if let Some((sec, _)) = state.hosting.secondary {
                hosting_counts[sec.0 as usize] += 1;
            }
            match &state.dns {
                DnsPlan::Managed(p) => plan_counts[p.0 as usize] += 1,
                DnsPlan::VanityOwn => vanity_own += 1,
                DnsPlan::VanityExotic(_) => vanity_exotic += 1,
            }
            // 2. Registry entry exists.
            let reg = &self.registries[if name.tld() == "ru" { 0 } else { 1 }];
            if reg.get(name).is_none() {
                problems.push(format!("{name}: missing registry entry"));
            }
            // 3. TLS domains have bound endpoints.
            if state.tls.is_some() && !self.net.is_bound(state.hosting.primary_ip, TLS_PORT) {
                problems.push(format!("{name}: TLS endpoint not bound"));
            }
            // 4. Managed domains have their zone in the plan's zone set.
            if let DnsPlan::Managed(p) = &state.dns {
                if self.plan_zone_sets[p.0 as usize]
                    .read()
                    .get(&Name::from(name))
                    .is_none()
                {
                    problems.push(format!("{name}: zone missing from plan set"));
                }
            }
        }
        for (i, expected) in hosting_counts.iter().enumerate() {
            let actual = self.hosting_members[i].len();
            if actual != *expected {
                problems.push(format!(
                    "hosting members[{}] = {actual}, states say {expected}",
                    self.providers[i].name
                ));
            }
        }
        for (i, expected) in plan_counts.iter().enumerate() {
            let actual = self.plan_members[i].len();
            if actual != *expected {
                problems.push(format!(
                    "plan members[{}] = {actual}, states say {expected}",
                    self.plans[i].name
                ));
            }
        }
        if self.vanity_own_members.len() != vanity_own {
            problems.push(format!(
                "vanity-own members = {}, states say {vanity_own}",
                self.vanity_own_members.len()
            ));
        }
        if self.vanity_exotic_members.len() != vanity_exotic {
            problems.push(format!(
                "vanity-exotic members = {}, states say {vanity_exotic}",
                self.vanity_exotic_members.len()
            ));
        }
        // 5. Serving map points at addresses that are actually bound.
        for ip in self.serving.read().keys() {
            if !self.net.is_bound(*ip, TLS_PORT) {
                problems.push(format!("serving map entry {ip} has no bound endpoint"));
            }
        }
        problems
    }
}

enum ZoneHome {
    Plan(usize),
    SelfHosted,
    ExoticVanity(DomainName),
}

/// Chunked zone transfer (the AXFR-over-TCP analogue): request
/// `XFR <tld> <chunk>`; response `XFRHDR <total-chunks>\n<payload>`.
struct ZoneTransferService {
    state: Arc<RwLock<HashMap<String, Vec<String>>>>,
}

impl ruwhere_netsim::Service for ZoneTransferService {
    fn handle(
        &mut self,
        payload: &[u8],
        _src: (Ipv4Addr, u16),
        _now: ruwhere_netsim::SimTime,
    ) -> Option<Vec<u8>> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut parts = text.split_whitespace();
        if parts.next()? != "XFR" {
            return None;
        }
        let tld = parts.next()?;
        let chunk: usize = parts.next()?.parse().ok()?;
        let state = self.state.read();
        let chunks = state.get(tld)?;
        let body = chunks.get(chunk)?;
        Some(format!("XFRHDR {}\n{}", chunks.len(), body).into_bytes())
    }

    fn processing_us(&self) -> u64 {
        800
    }
}

/// Port-43 WHOIS over the registry database (see
/// [`ruwhere_registry::whois`] for the protocol).
struct WhoisService {
    state: Arc<RwLock<Vec<Registry>>>,
}

impl ruwhere_netsim::Service for WhoisService {
    fn handle(
        &mut self,
        payload: &[u8],
        _src: (Ipv4Addr, u16),
        _now: ruwhere_netsim::SimTime,
    ) -> Option<Vec<u8>> {
        let query = std::str::from_utf8(payload).ok()?;
        Some(ruwhere_registry::whois::respond(&self.state.read(), query).into_bytes())
    }

    fn processing_us(&self) -> u64 {
        400
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn member_set_add_remove_sample() {
        let mut set = MemberSet::default();
        assert!(set.is_empty());
        for i in 0..50 {
            set.add(d(&format!("m{i}.ru")));
        }
        assert_eq!(set.len(), 50);
        // Duplicate adds are no-ops.
        set.add(d("m0.ru"));
        assert_eq!(set.len(), 50);
        // Removal from the middle keeps positions consistent.
        set.remove(&d("m10.ru"));
        set.remove(&d("m49.ru")); // last element
        set.remove(&d("m0.ru"));
        assert_eq!(set.len(), 47);
        set.remove(&d("not-present.ru"));
        assert_eq!(set.len(), 47);
        // Every remaining element is reachable by repeated sampling.
        let mut rng = SeedTree::new(1).child("t").rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(set.sample(&mut rng).unwrap().clone());
        }
        assert_eq!(seen.len(), 47);
        assert!(!seen.contains(&d("m10.ru")));
        assert!(!seen.contains(&d("m0.ru")));
        assert!(!seen.contains(&d("m49.ru")));
    }

    #[test]
    fn member_set_positions_survive_interleaving() {
        let mut set = MemberSet::default();
        let mut model: std::collections::BTreeSet<DomainName> = Default::default();
        let mut rng = SeedTree::new(2).child("x").rng();
        for step in 0..2_000u32 {
            if rng.random_bool(0.6) || model.is_empty() {
                let name = d(&format!("x{step}.ru"));
                set.add(name.clone());
                model.insert(name);
            } else {
                let pick = set.sample(&mut rng).unwrap().clone();
                set.remove(&pick);
                model.remove(&pick);
            }
            assert_eq!(set.len(), model.len(), "diverged at step {step}");
        }
        let mut items: Vec<DomainName> = set.items().to_vec();
        items.sort();
        let expected: Vec<DomainName> = model.into_iter().collect();
        assert_eq!(items, expected);
    }

    #[test]
    fn binomial_approximation_is_sane() {
        let mut w = World::new(WorldConfig::tiny());
        // Small-n exact path.
        let k = w.binomial(10, 0.0);
        assert_eq!(k, 0);
        let k = w.binomial(10, 1.0);
        assert_eq!(k, 10);
        // Large-n normal path stays within hard bounds and near the mean.
        let mut total = 0usize;
        for _ in 0..200 {
            let k = w.binomial(10_000, 0.01);
            assert!(k <= 10_000);
            total += k;
        }
        let mean = total as f64 / 200.0;
        assert!(
            (80.0..120.0).contains(&mean),
            "mean {mean} too far from 100"
        );
    }

    #[test]
    fn sample_hosting_respects_country_restriction() {
        let mut w = World::new(WorldConfig::tiny());
        let date = w.today();
        for _ in 0..50 {
            let ru = w.sample_hosting(date, Some(true));
            assert!(w.providers[ru.0 as usize].country.is_russia());
            let non = w.sample_hosting(date, Some(false));
            assert!(!w.providers[non.0 as usize].country.is_russia());
        }
    }

    #[test]
    fn move_hosting_updates_zone_and_endpoints() {
        let mut w = World::new(WorldConfig::tiny());
        // Pick a managed-plan TLS domain.
        let name = w
            .seed_names()
            .into_iter()
            .find(|n| {
                w.domain_state(n).is_some_and(|s| {
                    matches!(s.dns, DnsPlan::Managed(_)) && s.tls.is_some() && !s.sanctioned
                })
            })
            .expect("suitable domain exists");
        let old_ip = w.domain_state(&name).unwrap().hosting.primary_ip;
        w.move_hosting(&name, pid::SERVEREL);
        let state = w.domain_state(&name).unwrap().clone();
        assert_eq!(state.hosting.primary, pid::SERVEREL);
        assert_ne!(state.hosting.primary_ip, old_ip);
        // Old TLS endpoint unbound, new one bound.
        assert!(!w.network().is_bound(old_ip, TLS_PORT));
        assert!(w.network().is_bound(state.hosting.primary_ip, TLS_PORT));
        // The zone now answers with the new address.
        if let DnsPlan::Managed(p) = state.dns {
            let zs = w.plan_zone_sets[p.0 as usize].read();
            let zone = zs.get(&Name::from(&name)).expect("zone present");
            match zone.lookup(&Name::from(&name), ruwhere_dns::RType::A) {
                ruwhere_dns::zone::Lookup::Answer(recs) => {
                    assert_eq!(recs.len(), 1);
                    assert_eq!(recs[0].data, RData::A(state.hosting.primary_ip));
                }
                other => panic!("expected answer, got {other:?}"),
            }
        }
        // Idempotent move to the same provider is a no-op.
        let ip_before = state.hosting.primary_ip;
        w.move_hosting(&name, pid::SERVEREL);
        assert_eq!(w.domain_state(&name).unwrap().hosting.primary_ip, ip_before);
    }

    #[test]
    fn move_plan_moves_zone_between_sets() {
        let mut w = World::new(WorldConfig::tiny());
        let name = w
            .seed_names()
            .into_iter()
            .find(|n| {
                w.domain_state(n)
                    .is_some_and(|s| matches!(s.dns, DnsPlan::Managed(PlanId(0))) && !s.sanctioned)
            })
            .expect("plan-0 domain exists");
        let owner = Name::from(&name);
        assert!(w.plan_zone_sets[0].read().get(&owner).is_some());
        w.move_plan(&name, 5);
        assert!(w.plan_zone_sets[0].read().get(&owner).is_none());
        assert!(w.plan_zone_sets[5].read().get(&owner).is_some());
        assert!(matches!(
            w.domain_state(&name).unwrap().dns,
            DnsPlan::Managed(PlanId(5))
        ));
        // Registry delegation now lists plan 5's name servers.
        let reg = &w.registries[if name.tld() == "ru" { 0 } else { 1 }];
        let delegation = &reg.get(&name).unwrap().delegation;
        let plan5_hosts: Vec<DomainName> = w
            .ns_hosts
            .iter()
            .filter(|h| h.plan == 5)
            .map(|h| h.name.clone())
            .collect();
        assert_eq!(delegation.nameservers, plan5_hosts);
    }

    #[test]
    fn remove_domain_cleans_everything() {
        let mut w = World::new(WorldConfig::tiny());
        let name = w
            .seed_names()
            .into_iter()
            .find(|n| {
                w.domain_state(n)
                    .is_some_and(|s| matches!(s.dns, DnsPlan::Managed(_)) && s.tls.is_some())
            })
            .unwrap();
        let state = w.domain_state(&name).unwrap().clone();
        let pop = w.population();
        w.remove_domain(&name);
        assert_eq!(w.population(), pop - 1);
        assert!(w.domain_state(&name).is_none());
        assert!(!w.network().is_bound(state.hosting.primary_ip, TLS_PORT));
        if let DnsPlan::Managed(p) = state.dns {
            assert!(w.plan_zone_sets[p.0 as usize]
                .read()
                .get(&Name::from(&name))
                .is_none());
        }
        let reg = &w.registries[if name.tld() == "ru" { 0 } else { 1 }];
        assert!(reg.get(&name).is_none());
        // Removing again is a no-op.
        w.remove_domain(&name);
        assert_eq!(w.population(), pop - 1);
    }

    #[test]
    fn portfolio_is_scripted_through_the_oscillation() {
        let mut w = World::new(WorldConfig::tiny());
        let member = w.portfolio.first().cloned().expect("portfolio exists");
        assert_eq!(w.domain_state(&member).unwrap().hosting.primary, pid::SEDO);
        w.advance_to(Date::from_ymd(2022, 2, 26));
        assert_eq!(
            w.domain_state(&member).unwrap().hosting.primary,
            pid::AMAZON
        );
        w.advance_to(Date::from_ymd(2022, 3, 13));
        assert_eq!(w.domain_state(&member).unwrap().hosting.primary, pid::SEDO);
        w.advance_to(Date::from_ymd(2022, 4, 20));
        assert_eq!(
            w.domain_state(&member).unwrap().hosting.primary,
            pid::SERVEREL
        );
    }
}
